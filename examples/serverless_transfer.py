"""Passing data between serverless functions over RDMA (§5.3.2).

ServerlessBench TestCase5 on an Fn-like platform: function A finishes,
function B starts (warm) on another machine, and A's payload must reach
B.  Over verbs, both sides pay the full RDMA control path (~30 ms); over
KRCORE the transfer collapses to tens of microseconds.

Run:  python examples/serverless_transfer.py
"""

from repro.apps.serverless import ServerlessPlatform, run_transfer_testcase
from repro.bench.setups import krcore_cluster, verbs_cluster

PAYLOADS = [1024, 4096, 9216]


def main():
    print("ServerlessBench TestCase5: function-to-function transfer time\n")
    print(f"{'payload':>9}  {'verbs':>12}  {'KRCORE':>12}  {'reduction':>9}")
    for payload in PAYLOADS:
        sim_v, cluster_v = verbs_cluster(num_nodes=3)
        verbs_result = sim_v.run_process(
            run_transfer_testcase(
                sim_v, cluster_v.node(0), cluster_v.node(1), payload, "verbs"
            )
        )
        sim_k, cluster_k, meta, modules = krcore_cluster(num_nodes=3)
        krcore_result = sim_k.run_process(
            run_transfer_testcase(
                sim_k, cluster_k.node(1), cluster_k.node(2), payload, "krcore"
            )
        )
        reduction = 100 * (1 - krcore_result.transfer_ns / verbs_result.transfer_ns)
        print(
            f"{payload:>8}B  {verbs_result.transfer_ns / 1e6:>10.2f}ms"
            f"  {krcore_result.transfer_ns / 1e3:>10.1f}us  {reduction:>8.2f}%"
        )

    # The platform itself: cold vs warm container starts.
    print("\ncontainer starts on the Fn-like platform:")
    sim, cluster, meta, modules = krcore_cluster(num_nodes=3)
    platform = ServerlessPlatform(sim)

    def handler(ctx, payload):
        yield 100_000  # 100 us of compute
        return "ok"

    platform.deploy("fn", handler, cluster.node(1))

    def invoke_twice():
        start = sim.now
        yield from platform.invoke("fn")
        cold = sim.now - start
        start = sim.now
        yield from platform.invoke("fn")
        warm = sim.now - start
        return cold, warm

    cold, warm = sim.run_process(invoke_twice())
    print(f"  cold start: {cold / 1e6:6.1f} ms    warm start: {warm / 1e6:6.1f} ms")


if __name__ == "__main__":
    main()
