"""Quickstart: connect with KRCORE in microseconds and move bytes.

Builds a small simulated cluster, loads the KRCORE kernel module on each
node, then shows the core API from Fig 7 of the paper:

* ``qconnect`` -- a full-fledged RDMA connection in ~5 us (vs ~15.7 ms
  for user-space verbs);
* one-sided READ/WRITE through a virtual QP;
* two-sided messaging with ``qbind`` / ``qpop_msgs``.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.krcore import KrcoreLib, KrcoreModule, MetaServer
from repro.sim import Simulator
from repro.verbs import DriverContext, RecvBuffer, WorkRequest
from repro.verbs.connection import ConnectionManager, rc_connect


def main():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=4)

    # Boot: one meta server, then a KRCORE module per node (meta first).
    meta = MetaServer(cluster.node(0))
    modules = [KrcoreModule(cluster.node(i), meta) for i in range(4)]
    client_node, server_node = cluster.node(1), cluster.node(2)

    lib_client = KrcoreLib(client_node)
    lib_server = KrcoreLib(server_node)

    def demo():
        # -- control path: microsecond connect ------------------------------
        start = sim.now
        vqp = yield from lib_client.create_vqp()
        yield from lib_client.qconnect(vqp, server_node.gid)
        print(f"KRCORE qconnect:        {(sim.now - start) / 1000:8.2f} us")

        # For contrast: the verbs control path on a fresh process.
        ConnectionManager(cluster.node(3), DriverContext(cluster.node(3), kernel=True))
        ctx = DriverContext(client_node)
        start = sim.now
        yield from ctx.ensure_init()
        cq = yield from ctx.create_cq()
        yield from rc_connect(ctx, cq, cluster.node(3).gid)
        print(f"verbs first connection: {(sim.now - start) / 1000:8.2f} us")

        # -- one-sided data path --------------------------------------------
        remote_addr = server_node.memory.alloc(4096)
        remote_mr = yield from lib_server.reg_mr(remote_addr, 4096)
        server_node.memory.write(remote_addr, b"hello from the server")
        local_addr = client_node.memory.alloc(4096)
        local_mr = yield from lib_client.reg_mr(local_addr, 4096)

        start = sim.now
        yield from lib_client.read_sync(
            vqp, local_addr, local_mr.lkey, remote_addr, remote_mr.rkey, 21
        )
        print(f"one-sided 21B READ:     {(sim.now - start) / 1000:8.2f} us "
              f"-> {client_node.memory.read(local_addr, 21)!r}")

        # -- two-sided messaging --------------------------------------------
        PORT = 7
        server_vqp = yield from lib_server.create_vqp()
        yield from lib_server.qbind(server_vqp, PORT)
        yield from lib_server.post_recv(
            server_vqp, RecvBuffer(remote_addr + 1024, 1024, remote_mr.lkey)
        )
        msg_vqp = yield from lib_client.create_vqp()
        yield from lib_client.qconnect(msg_vqp, server_node.gid, PORT)
        client_node.memory.write(local_addr, b"ping over a VQP")
        yield from lib_client.post_send(
            msg_vqp, WorkRequest.send(local_addr, 15, local_mr.lkey)
        )
        results = yield from lib_server.qpop_msgs_wait(server_vqp)
        src_vqp, completion = results[0]
        payload = server_node.memory.read(remote_addr + 1024, completion.byte_len)
        print(f"qpop_msgs delivered:    {payload!r} "
              f"(reply VQP to {src_vqp.remote_gid} created without any lookup)")

    sim.run_process(demo())
    print(f"\nsimulated time elapsed: {sim.now / 1e6:.2f} ms")


if __name__ == "__main__":
    main()
