"""Elastic scaling of a RACE-style disaggregated KV store (§5.3.1).

A load spike forces the system to bootstrap new computing workers; each
worker must connect to the storage nodes before serving requests.  This
example runs the real bootstrap machinery for all three backends at a
small scale and prints the resulting worker-ready timeline, then runs
actual YCSB-C GETs through a worker on each backend.

Run:  python examples/race_scaling.py
"""

from repro.apps.race import (
    KrcoreBackend,
    LiteBackend,
    RaceClient,
    RaceStorage,
    VerbsBackend,
)
from repro.apps.race.backends import register_storage
from repro.bench.fig16 import _bootstrap
from repro.bench.setups import krcore_cluster, lite_cluster, verbs_cluster
from repro.workloads import YcsbWorkload

WORKERS = 21


def bootstrap_timelines():
    print(f"bootstrapping {WORKERS} workers per backend (fork + connect):")
    for backend in ("krcore", "lite", "verbs"):
        ready_times, _phase = _bootstrap(backend, WORKERS)
        ready_ms = sorted(t / 1e6 for t in ready_times)
        print(
            f"  {backend:7s} first worker {ready_ms[0]:8.1f} ms   "
            f"half fleet {ready_ms[len(ready_ms) // 2]:8.1f} ms   "
            f"all ready {ready_ms[-1]:8.1f} ms"
        )


def ycsb_gets():
    print("\nYCSB-C GETs through one worker (100 ops each):")
    workload_keys = YcsbWorkload(num_keys=200)

    def run_backend(name):
        if name == "verbs":
            sim, cluster = verbs_cluster(num_nodes=3, memory_size=32 << 20)
            storage = RaceStorage(cluster.node(1), heap_bytes=1 << 19)
            backend = VerbsBackend(cluster.node(0))
            catalog = storage.catalog()
        elif name == "lite":
            sim, cluster, modules = lite_cluster(num_nodes=3, memory_size=32 << 20)
            storage = RaceStorage(cluster.node(1), heap_bytes=1 << 19)
            backend = LiteBackend(cluster.node(0))
            catalog = storage.catalog()
        else:
            sim, cluster, meta, modules = krcore_cluster(num_nodes=3)
            storage = RaceStorage(cluster.node(1), heap_bytes=1 << 19, register=False)
            region = sim.run_process(register_storage(storage, krcore_module=modules[1]))
            backend = KrcoreBackend(cluster.node(0))
            catalog = storage.catalog(rkey=region.rkey)
        workload = YcsbWorkload(num_keys=200)
        for key in workload.load_keys():
            storage.load(key, b"value-" + key)
        client = RaceClient(backend, [catalog])

        def proc():
            setup_start = sim.now
            yield from client.setup()
            setup_us = (sim.now - setup_start) / 1000
            start = sim.now
            for _ in range(100):
                op, key = workload.next_op()
                value = yield from client.get(key)
                assert value == b"value-" + key
            per_op = (sim.now - start) / 100 / 1000
            return setup_us, per_op

        setup_us, per_op = sim.run_process(proc())
        print(f"  {name:7s} worker setup {setup_us:10.1f} us   GET {per_op:6.2f} us/op")

    for name in ("krcore", "lite", "verbs"):
        run_backend(name)


if __name__ == "__main__":
    bootstrap_timelines()
    ycsb_gets()
