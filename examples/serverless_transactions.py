"""The paper's opening scenario (§2.1): "before executing the application
code, a serverless function that issues database transactions must first
establish network connections to remote storage nodes."

A warm-started function runs one FaRM-style transaction (two reads, one
write, ~13 us of actual work).  Over verbs, connection setup multiplies
its end-to-end time by ~1000x; over KRCORE, setup nearly vanishes.

Run:  python examples/serverless_transactions.py
"""

from repro.apps.race import KrcoreBackend, VerbsBackend
from repro.apps.serverless import ServerlessPlatform, WARM_START_NS
from repro.apps.txn import TxnClient, TxnStorage
from repro.bench.setups import krcore_cluster, verbs_cluster


def run_function(kind):
    """Deploy + invoke one transaction-issuing function; return timings."""
    if kind == "verbs":
        sim, cluster = verbs_cluster(num_nodes=4, memory_size=32 << 20)
        fn_node, storage_nodes = cluster.node(0), [cluster.node(1), cluster.node(2)]
        storages = [TxnStorage(node, num_records=128) for node in storage_nodes]
        catalogs = [s.catalog() for s in storages]
        make_backend = lambda: VerbsBackend(fn_node)
    else:
        sim, cluster, meta, modules = krcore_cluster(num_nodes=5)
        fn_node, storage_nodes = cluster.node(1), [cluster.node(2), cluster.node(3)]
        storages = []
        catalogs = []
        for node in storage_nodes:
            storage = TxnStorage(node, num_records=128, register=False)
            total = storage.num_records * (8 + storage.value_bytes)
            module = node.services["krcore"]
            region = sim.run_process(module.reg_mr(storage.base, total))
            storage.region = region
            storages.append(storage)
            catalogs.append(storage.catalog())
    storages[0].load(0, (500).to_bytes(8, "big"))
    storages[1 % len(storages)].load(0, (500).to_bytes(8, "big"))

    platform = ServerlessPlatform(sim)
    timings = {}

    def handler(ctx, payload):
        client = TxnClient(make_backend() if kind == "verbs" else KrcoreBackend(ctx.node), catalogs)
        start = ctx.sim.now
        yield from client.setup()  # the RDMA control path
        timings["setup_us"] = (ctx.sim.now - start) / 1000
        start = ctx.sim.now

        def work(txn):
            a = yield from txn.read(0)  # record 0 on storage 0
            b = yield from txn.read(1)  # record 0 on storage 1
            balance = int.from_bytes(a[:8], "big")
            txn.write(0, (balance - 10).to_bytes(8, "big"))
            return int.from_bytes(b[:8], "big")

        result = yield from client.run(work)
        timings["txn_us"] = (ctx.sim.now - start) / 1000
        return result

    platform.deploy("txn-fn", handler, fn_node)
    platform.prewarm("txn-fn")  # warm start, like the paper's setup

    def invoke():
        start = sim.now
        result = yield from platform.invoke("txn-fn")
        timings["end_to_end_us"] = (sim.now - start) / 1000
        return result

    sim.run_process(invoke())
    return timings


def main():
    print("warm-started serverless function issuing one distributed transaction\n")
    print(f"{'backend':>8}  {'conn setup':>12}  {'transaction':>12}  {'end-to-end':>12}")
    for kind in ("verbs", "krcore"):
        t = run_function(kind)
        print(
            f"{kind:>8}  {t['setup_us']:>10.1f}us  {t['txn_us']:>10.1f}us"
            f"  {t['end_to_end_us'] / 1000:>10.2f}ms"
        )
    print(f"\n(warm container start alone costs {WARM_START_NS / 1e6:.0f} ms; "
          "with KRCORE the network setup no longer adds to it)")


if __name__ == "__main__":
    main()
