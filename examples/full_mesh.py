"""Burst-parallel serverless workers building a full mesh (Fig 8b).

Every worker connects to every other worker -- the communication pattern
of burst-parallel serverless jobs.  With verbs each worker pays driver
init plus per-connection hardware setup, gated by the ~712 QP/s per-node
ceiling; with KRCORE each qconnect is a syscall plus (at most) one cached
metadata lookup.

Run:  python examples/full_mesh.py
"""

from repro.bench.fig08 import _full_mesh

WORKER_COUNTS = [6, 12, 24]


def main():
    print("full-mesh connection establishment (all-to-all workers)\n")
    print(f"{'workers':>8}  {'verbs':>12}  {'LITE':>12}  {'KRCORE':>12}  {'saved':>7}")
    for workers in WORKER_COUNTS:
        verbs_ms = _full_mesh("verbs", workers)
        lite_ms = _full_mesh("lite", workers)
        krcore_ms = _full_mesh("krcore", workers)
        saved = 100 * (1 - krcore_ms / verbs_ms)
        print(
            f"{workers:>8}  {verbs_ms:>10.1f}ms  {lite_ms:>10.1f}ms"
            f"  {krcore_ms * 1000:>10.1f}us  {saved:>6.2f}%"
        )
    print(
        "\nKRCORE cuts ~99%+ of the mesh creation time regardless of the"
        " worker count (paper Fig 8b: 240 workers in 81 us vs 2.7 s)."
    )


if __name__ == "__main__":
    main()
