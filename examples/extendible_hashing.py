"""Online resizing of the extendible RACE table — entirely one-sided.

A computing node keeps inserting into a tiny (depth-1) table on a passive
storage node; every byte of the resize — allocating new subtables,
moving slots, repointing directory entries — happens through remote
READ/WRITE/CAS/FETCH_ADD.  A second client with a stale cached directory
still finds every key (miss -> refresh -> retry).

Run:  python examples/extendible_hashing.py
"""

from repro.apps.race import ExtendibleRaceClient, ExtendibleRaceStorage, VerbsBackend
from repro.cluster import Cluster
from repro.sim import Simulator
from repro.verbs import ConnectionManager, DriverContext


def main():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=3, memory_size=64 << 20)
    for node in cluster.nodes:
        ConnectionManager(node, DriverContext(node, kernel=True))
    storage = ExtendibleRaceStorage(cluster.node(1), initial_depth=1)
    writer = ExtendibleRaceClient(VerbsBackend(cluster.node(0)), storage.catalog())
    reader = ExtendibleRaceClient(VerbsBackend(cluster.node(2)), storage.catalog())

    def demo():
        yield from writer.setup()
        yield from reader.setup()  # caches the 2-subtable directory
        print(f"boot: {storage.subtable_count_local()} subtables, "
              f"directory depth 1")
        for i in range(400):
            yield from writer.put(b"key%04d" % i, b"value%04d" % i)
            if i in (50, 150, 399):
                print(f"after {i + 1:4d} inserts: "
                      f"{storage.subtable_count_local():3d} subtables, "
                      f"{writer.stats_splits:2d} splits by this client")
        # The reader's directory is long stale; it recovers by itself.
        hits = 0
        for i in range(0, 400, 13):
            value = yield from reader.get(b"key%04d" % i)
            assert value == b"value%04d" % i
            hits += 1
        print(f"stale reader found {hits}/{hits} sampled keys "
              f"({reader.stats_dir_refreshes - 1} directory refreshes)")

    sim.run_process(demo())
    print(f"simulated time: {sim.now / 1e6:.1f} ms")


if __name__ == "__main__":
    main()
