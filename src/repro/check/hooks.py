"""The checker hook point consulted by instrumented control-plane code.

Mirrors the ``repro.obs`` pay-for-what-you-use contract: the module-level
global :data:`CHECKER` is ``None`` unless a model-checking run installed
a :class:`repro.check.invariants.Checker`, and every hook site guards
with exactly one falsy check::

    from repro.check import hooks as _check
    ...
    if _check.CHECKER is not None:
        _check.CHECKER.pool_rc_insert(self, gid, qp, evicted)

so production runs (benchmarks, figure CSVs, chaos digests) pay one
module-attribute load per site and nothing else.  Hooks never yield and
never advance simulated time: an installed checker observes the run
without perturbing it.

This module is intentionally dependency-free (it is imported by
``repro.krcore`` and ``repro.cluster``, which the rest of ``repro.check``
imports in turn).
"""

from contextlib import contextmanager

#: The process-wide invariant checker, or None (checks disabled).
CHECKER = None


def install(checker):
    """Install ``checker`` as the process-wide invariant checker."""
    global CHECKER
    CHECKER = checker
    return checker


def uninstall():
    """Remove the installed checker (idempotent)."""
    global CHECKER
    CHECKER = None


def current():
    return CHECKER


@contextmanager
def checking(checker):
    """Context manager: install ``checker``, restore the previous one on
    exit (so nested tests never leak global state)."""
    global CHECKER
    previous = CHECKER
    CHECKER = checker
    try:
        yield checker
    finally:
        CHECKER = previous
