"""Delta-debug a failing schedule down to a minimal decision list.

A schedule is just the non-FIFO decisions ``[(step, choice)]``; replay
is deterministic, so ``still_fails(decisions)`` is a pure predicate and
classic ddmin applies.  Two reduction passes run to a fixed point:

1. **ddmin chunk removal** -- drop halves, then quarters, ... of the
   decision list while the failure persists;
2. **choice lowering** -- for each surviving decision, try choice - 1
   repeatedly (reaching choice 0 == FIFO drops the entry), so the
   minimal trace not only has few decisions but the *smallest* ones.

Dropping a decision renumbers nothing: steps are global choice-point
indices and unaffected points fall back to FIFO, so any sublist of a
valid decision list is itself a valid schedule -- the property ddmin
needs for its progress guarantee.
"""

__all__ = ["shrink_decisions"]


def shrink_decisions(decisions, still_fails, max_runs=500):
    """Minimize ``decisions`` (a list of ``(step, choice)``) under the
    predicate ``still_fails``.  Returns ``(minimal, runs_used)``.

    ``still_fails`` must be deterministic and true for ``decisions``
    itself.  ``max_runs`` bounds the number of predicate evaluations
    (each is a full scenario replay); reduction stops early when spent.
    """
    runs = 0

    def fails(candidate):
        nonlocal runs
        runs += 1
        return still_fails(candidate)

    current = list(decisions)
    # Pass 1: ddmin subset removal.
    granularity = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and runs < max_runs:
            candidate = current[:start] + current[start + chunk:]
            if candidate and fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the start at the same granularity.
                start = 0
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(current))
    # A single decision may still be removable entirely.
    if len(current) == 1 and runs < max_runs and fails([]):
        current = []
    # Pass 2: lower each surviving choice toward FIFO.
    index = 0
    while index < len(current) and runs < max_runs:
        step, choice = current[index]
        lowered = False
        while choice > 0 and runs < max_runs:
            next_choice = choice - 1
            if next_choice == 0:
                candidate = current[:index] + current[index + 1:]
            else:
                candidate = list(current)
                candidate[index] = (step, next_choice)
            if fails(candidate):
                current = candidate
                choice = next_choice
                lowered = True
                if next_choice == 0:
                    break
            else:
                break
        if lowered and choice == 0:
            continue  # the entry vanished; same index is the next entry
        index += 1
    return current, runs
