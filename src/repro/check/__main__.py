"""``python -m repro.check``: the model-checking CLI.

Examples::

    python -m repro.check --list
    python -m repro.check pool_churn                      # one FIFO run
    python -m repro.check pool_churn --mode random --seeds 50
    python -m repro.check kvs_lin --mode pct --seeds 20 --depth 3
    python -m repro.check racey_pipeline --mode dfs --budget 200
    python -m repro.check chaos_small --mode random --seeds 10 --shrink \\
        --out tests/schedules/found.json
    python -m repro.check --replay tests/schedules/*.json

Exit status is 0 iff no invariant violation was found (for ``--replay``:
iff every replayed schedule with a recorded ``invariant`` reproduces it
and every one without stays clean -- so both regression polarities are
checkable in CI).
"""

import argparse
import json
import sys

from repro.check.controller import FifoStrategy, Schedule
from repro.check.runner import (
    dfs_explore,
    replay_schedule,
    result_schedule,
    run_once,
    shrink_failure,
    sweep,
)
from repro.check.scenarios import SCENARIOS, get_scenario


def _parse_kwargs(pairs):
    kwargs = {}
    for pair in pairs or ():
        key, _, raw = pair.partition("=")
        if not _:
            raise SystemExit(f"--set needs key=value, got {pair!r}")
        try:
            kwargs[key] = json.loads(raw)
        except json.JSONDecodeError:
            kwargs[key] = raw
    return kwargs


def _print_violations(result):
    for violation in result.violations:
        print(f"  violation [{violation.invariant}] t={violation.t}")
        print(f"    {violation.detail}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Model-check the KRCORE control plane over schedules.",
    )
    parser.add_argument("scenario", nargs="?", help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true", help="list scenarios")
    parser.add_argument(
        "--replay", nargs="+", metavar="FILE",
        help="replay serialized schedule JSON file(s) instead of exploring",
    )
    parser.add_argument(
        "--mode", choices=("fifo", "random", "pct", "dfs"), default="fifo",
        help="exploration mode (default: one FIFO run)",
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="seeds per randomized sweep (default 20)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the sweep (default 0)")
    parser.add_argument("--budget", type=int, default=200,
                        help="max runs for dfs / max replays for shrink")
    parser.add_argument("--depth", type=int, default=3,
                        help="PCT depth (bug depth to target, default 3)")
    parser.add_argument("--shrink", action="store_true",
                        help="delta-debug the first failing schedule")
    parser.add_argument("--out", metavar="FILE",
                        help="write the (shrunk) failing schedule JSON here")
    parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", dest="overrides",
        help="override a scenario kwarg (JSON value), repeatable",
    )
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            spec = SCENARIOS[name]
            lin = " [lin]" if spec.lin else ""
            print(f"{name:16s}{lin} {spec.doc}")
        return 0

    log = (lambda line: None) if args.quiet else print

    if args.replay:
        failed = 0
        for path in args.replay:
            schedule = Schedule.load(path)
            result = replay_schedule(schedule)
            expected = schedule.invariant
            reproduced = [
                v for v in result.violations if v.invariant == expected
            ]
            if expected is None:
                ok = result.ok
                verdict = "clean" if ok else "UNEXPECTED-VIOLATION"
            else:
                ok = bool(reproduced)
                verdict = "reproduced" if ok else "NOT-REPRODUCED"
            log(f"{path}: {verdict} ({result.describe()})")
            if not ok:
                _print_violations(result)
                failed += 1
        return 1 if failed else 0

    if not args.scenario:
        parser.error("a scenario name (or --list / --replay) is required")
    get_scenario(args.scenario)  # fail fast on typos
    kwargs = _parse_kwargs(args.overrides)

    failure = None
    if args.mode == "fifo":
        result = run_once(args.scenario, FifoStrategy(), kwargs)
        log(result.describe())
        log(f"summary: {result.summary}")
        if not result.ok:
            failure = result
    elif args.mode == "dfs":
        results, failure = dfs_explore(
            args.scenario, kwargs, max_runs=args.budget, log=log
        )
        log(f"dfs: {len(results)} runs, "
            f"{'failure found' if failure else 'all clean'}")
    else:
        results, failure = sweep(
            args.scenario, mode=args.mode, seeds=args.seeds,
            seed_base=args.seed_base, scenario_kwargs=kwargs,
            depth=args.depth, log=log,
        )
        log(f"sweep: {len(results)} runs, "
            f"{'failure found' if failure else 'all clean'}")

    if failure is None:
        return 0

    print(f"FAILURE: {failure.describe()}")
    _print_violations(failure)
    schedule = result_schedule(failure)
    if args.shrink:
        schedule, replay, runs = shrink_failure(
            failure, max_runs=args.budget, log=log
        )
        print(
            f"shrunk to {len(schedule.decisions)} decision(s) "
            f"in {runs} replays: {schedule.decisions}"
        )
        _print_violations(replay)
    if args.out:
        schedule.save(args.out)
        print(f"schedule written to {args.out}")
    else:
        sys.stdout.write(schedule.to_json())
    return 1


if __name__ == "__main__":
    sys.exit(main())
