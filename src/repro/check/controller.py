"""The schedule controller: explore same-timestamp interleavings.

The engine dispatches same-timestamp callbacks in FIFO (schedule) order;
that order is the *only* nondeterminism a real concurrent execution
would add, because everything else in the simulation is seeded.  A
:class:`ScheduleController` installed on a :class:`~repro.sim.Simulator`
(``controller.attach(sim)``) replaces the run loop with one that keeps
every currently-runnable callback in a ``pending`` list and asks a
:class:`Strategy` which to dispatch next.

The controller drives both engine cores (``repro.sim.engine_flat`` and
``repro.sim.engine_classic``), keyed on ``Simulator.FLAT_CORE``: the
classic drive consumes the ready deque and future heap, the flat drive
consumes the ready slab and timestamp cohorts (the "cohort hook").  Both
present the *same* pending lists in the same order at the same moments,
so choice points, recorded decisions, and replays are interchangeable
across engines — the committed schedule corpus replays byte-identically
under either core (``tests/test_check_controller.py`` pins this).

Semantics contract
------------------

With :class:`FifoStrategy` (the default) the driven run is event-for-
event identical to the engine's own loop: future entries mature under the
same lazy rule (only while the next matured record predates the lowest
pending one -- maturing eagerly past a matured plain callback would
dispatch it late), timer maturation requeues in the same order, dispatch
decodes the same inline records, orphan failures re-raise at the same
point, and the dispatch counters advance identically.
``tests/test_check_controller.py`` pins this down against golden traces
and randomized workloads.

A *choice point* is any moment where two or more callbacks are pending
at the current timestamp.  The controller numbers choice points with a
global step counter; a schedule is fully described by the decisions
``[(step, choice_index)]`` where the choice differed from FIFO (index
0), which is what :class:`Schedule` serializes.

Strategies
----------

* :class:`FifoStrategy` -- always index 0 (the engine's order).
* :class:`RandomWalkStrategy` -- uniform seeded choice per point.
* :class:`PctStrategy` -- PCT-style randomized priorities: each distinct
  runnable (process or callback object) draws a random priority on first
  sight and the highest-priority pending entry runs; at ``depth - 1``
  pre-drawn change points the current leader is demoted below everyone,
  which probabilistically covers every d-ordering bug of depth <= depth.
* :class:`ReplayStrategy` -- replay recorded decisions (FIFO elsewhere),
  the deterministic-replay half of the shrinking loop.
"""

import heapq
import json
import random

from repro.obs import metrics as _obs_metrics

__all__ = [
    "FifoStrategy",
    "PctStrategy",
    "RandomWalkStrategy",
    "ReplayStrategy",
    "Schedule",
    "ScheduleController",
]


class FifoStrategy:
    """The engine's own order: always dispatch the lowest sequence number."""

    name = "fifo"

    def choose(self, step, pending):
        return 0

    def describe(self):
        return {"mode": self.name}


class RandomWalkStrategy:
    """Uniform seeded choice at every choice point."""

    name = "random"

    def __init__(self, seed):
        self.seed = seed
        self.rng = random.Random(seed)

    def choose(self, step, pending):
        return self.rng.randrange(len(pending))

    def describe(self):
        return {"mode": self.name, "seed": self.seed}


class PctStrategy:
    """PCT-style randomized priorities with ``depth - 1`` change points.

    Priorities attach to the runnable *object* (the process being
    resumed, or the raw callback), so one logical actor keeps its
    priority across its whole lifetime -- the property PCT's coverage
    guarantee rests on.  References to priority holders are retained so
    CPython id() reuse cannot silently alias two actors within a run.

    A pending entry is ``(seq, callback, arg)`` under the classic engine
    and ``(callback, arg)`` under the flat one, so the actor is always
    ``entry[-2]``.  Note the engines encode zero-delay timer actors
    differently (a per-yield ``_TimerResume`` object vs the process
    itself), so a PCT seed explores different-but-equally-valid schedules
    per engine; recorded *decisions* replay identically on both.
    """

    name = "pct"

    def __init__(self, seed, depth=3, horizon=2000):
        self.seed = seed
        self.depth = depth
        self.horizon = horizon
        self.rng = random.Random(seed)
        self._change_points = sorted(
            self.rng.randrange(1, max(horizon, 2)) for _ in range(max(depth - 1, 0))
        )
        self._prio = {}  # id(actor) -> [priority, actor]
        self._demotions = 0

    def _priority(self, entry):
        actor = entry[-2]
        record = self._prio.get(id(actor))
        if record is None:
            record = [self.rng.random(), actor]
            self._prio[id(actor)] = record
        return record[0]

    def choose(self, step, pending):
        while self._change_points and step >= self._change_points[0]:
            self._change_points.pop(0)
            leader = max(pending, key=self._priority)
            self._demotions += 1
            # Demote below every initial [0, 1) draw, uniquely per demotion.
            actor = leader[-2]
            self._prio[id(actor)] = [-self._demotions - self.rng.random(), actor]
        return max(range(len(pending)), key=lambda i: self._priority(pending[i]))

    def describe(self):
        return {"mode": self.name, "seed": self.seed, "depth": self.depth}


class ReplayStrategy:
    """Replay recorded ``(step, choice)`` decisions; FIFO everywhere else."""

    name = "replay"

    def __init__(self, decisions):
        self.decisions = [(int(step), int(choice)) for step, choice in decisions]
        self._by_step = dict(self.decisions)

    def choose(self, step, pending):
        return self._by_step.get(step, 0)

    def describe(self):
        return {"mode": self.name, "decisions": self.decisions}


class ScheduleController:
    """Drives a :class:`~repro.sim.Simulator` under a schedule strategy.

    One controller serves one simulator for its whole lifetime: the step
    counter, recorded decisions, and choice-point log span every
    ``run()`` call, so a schedule replays across multi-phase scenarios.
    """

    def __init__(self, strategy=None, record=True):
        self.strategy = FifoStrategy() if strategy is None else strategy
        self.record = record
        self.steps = 0
        #: Non-FIFO decisions actually taken: [(step, choice_index)].
        self.decisions = []
        #: Every choice point seen: [(step, n_alternatives, chosen)].
        self.points = []
        self.sim = None

    def attach(self, sim):
        if sim._controller is not None and sim._controller is not self:
            raise ValueError("simulator already has a schedule controller")
        sim._controller = self
        self.sim = sim
        return sim

    def detach(self, sim):
        if sim._controller is self:
            sim._controller = None

    # ------------------------------------------------------------------ drive

    def drive(self, sim, until=None):
        """The controller's run loop; see the module docstring for the
        exact-equivalence contract with ``Simulator.run``.  Dispatches on
        the engine core: the flat engine is driven through its timestamp
        cohorts, the classic one through its ready deque and heap."""
        if getattr(sim, "FLAT_CORE", False):
            return self._drive_flat(sim, until)
        return self._drive_classic(sim, until)

    def _drive_classic(self, sim, until=None):
        heap = sim._heap
        ready = sim._ready
        popheap = heapq.heappop
        dispatched = 0
        timer_fires = 0
        start_ns = sim.now
        orphans = sim._orphan_failures
        strategy = self.strategy
        record = self.record
        #: Runnable entries at the current timestamp, ascending sequence
        #: order (a strict superset view of the engine's ready deque).
        pending = []
        try:
            while True:
                while ready:
                    pending.append(ready.popleft())
                if pending and until is not None and sim.now > until:
                    break
                # Lazy heap maturation, exactly the engine's rule: only
                # while the heap head matured at the current timestamp
                # with a sequence number below the lowest pending one.
                while heap and heap[0][0] == sim.now and (
                    not pending or heap[0][1] < pending[0][0]
                ):
                    head = popheap(heap)
                    if head[3].__class__ is int:
                        # Timer maturing (hop 1 of 2): fresh sequence
                        # number, appended like the engine's requeue.
                        dispatched += 1
                        timer_fires += 1
                        sim._seq += 1
                        pending.append((sim._seq, head[2], head[3]))
                    else:
                        # A plain scheduled callback: its (old, lowest)
                        # sequence number puts it at the front.
                        pending.insert(0, (head[1], head[2], head[3]))
                if not pending:
                    if not heap:
                        break
                    when = heap[0][0]
                    if until is not None and when > until:
                        break
                    sim.now = when
                    continue
                if len(pending) == 1:
                    index = 0
                else:
                    self.steps += 1
                    index = strategy.choose(self.steps, pending)
                    if index:
                        index %= len(pending)
                    if record:
                        self.points.append((self.steps, len(pending), index))
                        if index:
                            self.decisions.append((self.steps, index))
                _seq, callback, arg = pending.pop(index)
                dispatched += 1
                cls = arg.__class__
                if cls is int:
                    # Timer resume (hop 2 of 2).
                    if callback._wait_gen == arg:
                        callback._resume(None, None)
                elif cls is tuple:
                    # Event waiter resume: (wait generation, event).
                    gen = arg[0]
                    if callback._wait_gen == gen:
                        event = arg[1]
                        callback._resume(event.value, event._exc)
                elif arg is None:
                    callback()
                else:
                    callback(arg)
                if orphans:
                    _process, exc = orphans.popleft()
                    raise exc
        finally:
            if pending:
                # Hand undispatched work back to the engine's structures
                # (an exception or an ``until`` bound mid-timestamp), so
                # a later run() -- controlled or not -- continues cleanly.
                pending.extend(ready)
                ready.clear()
                ready.extend(pending)
            sim.events_dispatched += dispatched
            sim.timer_fires += timer_fires
            type(sim).total_events_dispatched += dispatched
            type(sim).total_sim_ns += sim.now - start_ns
            registry = _obs_metrics.METRICS
            if registry is not None:
                registry.counter("sim.dispatches").inc(dispatched)
                registry.counter("sim.timer_fires").inc(timer_fires)
                registry.counter("sim.runs").inc()
                registry.counter("sim.elapsed_ns").inc(sim.now - start_ns)
        if until is not None and sim.now < until:
            sim.now = int(until)

    def _drive_flat(self, sim, until=None):
        """The cohort hook: drive the flat engine's slabs.

        Pending entries are ``(callback, arg)`` pairs in dispatch order
        (the flat engine's order is positional — no sequence numbers).
        The one place the classic engine's sequence arbitration still
        matters is cohort maturation: a plain callback matured out of the
        current cohort predates every other pending entry, so it enters
        at the *front* of ``pending`` and further maturation stalls until
        it is dispatched (``front_matured``, mirroring the classic lazy
        rule ``heap[0][1] < pending[0][0]``).  Timer records always
        mature: their hop-2 requeue is newer than everything pending.
        """
        rbuf = sim._rbuf
        heap = sim._heap
        free = sim._free
        popheap = heapq.heappop
        dispatched = 0
        timer_fires = 0
        start_ns = sim.now
        orphans = sim._orphan_failures
        strategy = self.strategy
        record = self.record
        pos = sim._rpos
        cohort = sim._cohort
        cpos = sim._cpos
        #: True while pending[0] is a plain callback matured out of the
        #: current cohort (it blocks further maturation; on exit it is
        #: rewound into the cohort rather than handed back, so the flag
        #: never needs to outlive one drive call).
        front_matured = False
        #: Runnable entries at the current timestamp, dispatch order.
        pending = []
        try:
            while True:
                while pos < len(rbuf):
                    pending.append((rbuf[pos], rbuf[pos + 1]))
                    pos += 2
                del rbuf[:]
                pos = 0
                if pending and until is not None and sim.now > until:
                    break
                # Lazy cohort maturation, exactly the classic rule: only
                # while no earlier-scheduled matured plain callback is
                # still pending at the front.
                if cohort is not None and not front_matured:
                    n = len(cohort)
                    while cpos < n:
                        arg = cohort[cpos + 1]
                        if arg.__class__ is int:
                            # Timer maturing (hop 1): requeued behind
                            # everything pending, like the engine's.
                            dispatched += 1
                            timer_fires += 1
                            pending.append((cohort[cpos], arg))
                            cpos += 2
                        else:
                            # A plain scheduled callback: it predates
                            # every pending entry, so it goes first and
                            # blocks further maturation until dispatched.
                            pending.insert(0, (cohort[cpos], arg))
                            cpos += 2
                            front_matured = True
                            break
                    if cpos >= n:
                        cohort.clear()
                        free.append(cohort)
                        cohort = None
                if not pending:
                    if not heap:
                        break
                    when = heap[0][0]
                    if until is not None and when > until:
                        break
                    sim.now = when
                    # Collect the whole cohort at this timestamp into a
                    # recycled stride-2 slab, in sequence (FIFO) order —
                    # exactly the engine's clock advance.
                    cohort = free.pop() if free else []
                    cpos = 0
                    while heap and heap[0][0] == when:
                        entry = popheap(heap)
                        cohort.append(entry[2])
                        cohort.append(entry[3])
                    continue
                if len(pending) == 1:
                    index = 0
                else:
                    self.steps += 1
                    index = strategy.choose(self.steps, pending)
                    if index:
                        index %= len(pending)
                    if record:
                        self.points.append((self.steps, len(pending), index))
                        if index:
                            self.decisions.append((self.steps, index))
                callback, arg = pending.pop(index)
                if index == 0:
                    front_matured = False
                dispatched += 1
                cls = arg.__class__
                if cls is int:
                    if arg > 0:
                        # Timer resume (hop 2).
                        if callback._wait_gen == arg:
                            callback._resume(None, None)
                    else:
                        # Zero-delay timer maturing (hop 1): requeue the
                        # hop-2 record where a ready-slab append would
                        # land it (the slab is empty right now, so the
                        # pending tail is the slab tail).
                        pending.append((callback, -arg))
                        continue
                elif cls is tuple:
                    # Event waiter resume: (wait generation, event).
                    if callback._wait_gen == arg[0]:
                        event = arg[1]
                        callback._resume(event.value, event._exc)
                elif arg is None:
                    callback()
                else:
                    callback(arg)
                if orphans:
                    _process, exc = orphans.popleft()
                    raise exc
        finally:
            if front_matured and cohort is not None:
                # pending[0] is a cohort callback that matured but was
                # never dispatched: rewind it into the cohort (the slab
                # still holds it at cpos - 2) so any later run — engine
                # or controller — re-matures it in schedule order.
                pending.pop(0)
                cpos -= 2
            if pending:
                # Hand undispatched work back to the engine's slab (an
                # exception or an ``until`` bound mid-timestamp), so a
                # later run() -- controlled or not -- continues cleanly.
                flat = []
                for entry in pending:
                    flat.append(entry[0])
                    flat.append(entry[1])
                flat.extend(rbuf)
                rbuf[:] = flat
            sim._rpos = 0
            sim._cohort = cohort
            sim._cpos = cpos
            sim.events_dispatched += dispatched
            sim.timer_fires += timer_fires
            type(sim).total_events_dispatched += dispatched
            type(sim).total_sim_ns += sim.now - start_ns
            registry = _obs_metrics.METRICS
            if registry is not None:
                registry.counter("sim.dispatches").inc(dispatched)
                registry.counter("sim.timer_fires").inc(timer_fires)
                registry.counter("sim.runs").inc()
                registry.counter("sim.elapsed_ns").inc(sim.now - start_ns)
        if until is not None and sim.now < until:
            sim.now = int(until)


class Schedule:
    """A serialized schedule: scenario + decisions, replayable byte-
    identically.  The JSON layout is versioned and canonical (sorted
    keys, trailing newline) so committed traces diff cleanly."""

    VERSION = 1

    def __init__(self, scenario, decisions, scenario_kwargs=None, seed=None,
                 invariant=None, note=None):
        self.scenario = scenario
        self.decisions = [(int(step), int(choice)) for step, choice in decisions]
        self.scenario_kwargs = dict(scenario_kwargs or {})
        self.seed = seed
        self.invariant = invariant
        self.note = note

    def to_dict(self):
        data = {
            "version": self.VERSION,
            "scenario": self.scenario,
            "scenario_kwargs": self.scenario_kwargs,
            "decisions": [list(pair) for pair in self.decisions],
        }
        if self.seed is not None:
            data["seed"] = self.seed
        if self.invariant is not None:
            data["invariant"] = self.invariant
        if self.note is not None:
            data["note"] = self.note
        return data

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data):
        if data.get("version") != cls.VERSION:
            raise ValueError(f"unsupported schedule version: {data.get('version')!r}")
        return cls(
            data["scenario"],
            [tuple(pair) for pair in data.get("decisions", [])],
            scenario_kwargs=data.get("scenario_kwargs"),
            seed=data.get("seed"),
            invariant=data.get("invariant"),
            note=data.get("note"),
        )

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
