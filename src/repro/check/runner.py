"""Run scenarios under schedule strategies: sweep, DFS, replay, shrink.

The runner owns the glue the CLI and the tests share:

* :func:`run_once` -- one scenario under one strategy, with the checker
  installed and (for history-recording scenarios) the observability
  layer capturing op histories for the linearizability pass;
* :func:`sweep` -- a seed-budgeted randomized sweep (random-walk or PCT
  priorities);
* :func:`dfs_explore` -- bounded exhaustive enumeration of decision
  prefixes for small configs;
* :func:`replay_schedule` -- deterministic re-execution of a serialized
  :class:`~repro.check.controller.Schedule`;
* :func:`shrink_failure` -- delta-debug a failing schedule to a minimal
  decision list (same invariant, byte-identical replay).
"""

import hashlib
import json

from repro.check import hooks
from repro.check.controller import (
    FifoStrategy,
    PctStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    Schedule,
    ScheduleController,
)
from repro.check.invariants import Checker
from repro.check.linearizability import check_histories, extract_histories
from repro.check.scenarios import get_scenario
from repro.check.shrink import shrink_decisions
from repro.obs import observe

__all__ = [
    "CheckResult",
    "dfs_explore",
    "replay_schedule",
    "run_once",
    "shrink_failure",
    "sweep",
]


class CheckResult:
    """Everything one checked run produced."""

    def __init__(self, scenario, scenario_kwargs, strategy_desc, controller,
                 checker, summary, histories=None, nonlinearizable=()):
        self.scenario = scenario
        self.scenario_kwargs = dict(scenario_kwargs)
        self.strategy = strategy_desc
        self.decisions = list(controller.decisions)
        self.points = list(controller.points)
        self.steps = controller.steps
        self.violations = list(checker.violations)
        self.observed = dict(checker.observed)
        self.summary = summary
        self.histories = histories
        self.nonlinearizable = list(nonlinearizable)

    @property
    def ok(self):
        return not self.violations

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "scenario_kwargs": self.scenario_kwargs,
            "strategy": self.strategy,
            "steps": self.steps,
            "decisions": [list(pair) for pair in self.decisions],
            "violations": [v.to_dict() for v in self.violations],
            "observed": {k: self.observed[k] for k in sorted(self.observed)},
            "summary": self.summary,
            "nonlinearizable": self.nonlinearizable,
        }

    def digest(self):
        """SHA-256 of the canonical result JSON: two byte-identical runs
        produce equal digests (the determinism property tests rely on
        this being sensitive to every observable difference)."""
        text = json.dumps(self.to_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(text.encode()).hexdigest()

    def describe(self):
        status = "PASS" if self.ok else f"FAIL({len(self.violations)})"
        return (
            f"{self.scenario} [{self.strategy}] {status} "
            f"steps={self.steps} decisions={len(self.decisions)}"
        )


def run_once(scenario_name, strategy=None, scenario_kwargs=None):
    """Run ``scenario_name`` once under ``strategy`` (FIFO by default)."""
    spec = get_scenario(scenario_name)
    kwargs = dict(spec.defaults)
    kwargs.update(scenario_kwargs or {})
    strategy = strategy or FifoStrategy()
    controller = ScheduleController(strategy)
    checker = Checker()
    with hooks.checking(checker):
        with observe() as (tracer, _metrics):
            summary = spec.fn(controller, checker, **kwargs)
            histories = extract_histories(tracer)
    nonlinearizable = check_histories(histories) if histories else []
    if spec.lin:
        for key in nonlinearizable:
            ops = sorted(histories[key], key=lambda op: op.invoke)
            checker.custom(
                "linearizability",
                max((op.invoke for op in ops), default=0),
                f"history for key {key} is not linearizable "
                f"({len(ops)} ops: {ops})",
            )
    return CheckResult(
        scenario_name, kwargs, strategy.describe(), controller, checker,
        summary, histories=histories or None, nonlinearizable=nonlinearizable,
    )


def result_schedule(result, note=None):
    """The :class:`Schedule` that reproduces ``result``."""
    seed = result.strategy.get("seed") if isinstance(result.strategy, dict) else None
    invariant = result.violations[0].invariant if result.violations else None
    return Schedule(
        result.scenario,
        result.decisions,
        scenario_kwargs=result.scenario_kwargs,
        seed=seed,
        invariant=invariant,
        note=note,
    )


def replay_schedule(schedule):
    """Re-execute a serialized schedule (decisions pin every recorded
    choice point; unrecorded points fall back to FIFO)."""
    return run_once(
        schedule.scenario,
        strategy=ReplayStrategy(schedule.decisions),
        scenario_kwargs=schedule.scenario_kwargs,
    )


def sweep(scenario_name, mode="random", seeds=20, seed_base=0,
          scenario_kwargs=None, depth=3, stop_on_failure=True, log=None):
    """Budgeted randomized sweep; returns (results, first_failure)."""
    results = []
    failure = None
    for index in range(seeds):
        seed = seed_base + index
        if mode == "pct":
            strategy = PctStrategy(seed, depth=depth)
        else:
            strategy = RandomWalkStrategy(seed)
        result = run_once(scenario_name, strategy, scenario_kwargs)
        results.append(result)
        if log is not None:
            log(result.describe())
        if not result.ok and failure is None:
            failure = result
            if stop_on_failure:
                break
    return results, failure


def dfs_explore(scenario_name, scenario_kwargs=None, max_runs=200,
                max_steps=None, log=None):
    """Bounded DFS over decision prefixes (exhaustive for small configs).

    Each run replays a fixed decision prefix with FIFO past it; the
    choice points it records then seed child prefixes -- only for points
    *after* the last fixed step, so no prefix is enumerated twice.
    ``max_steps`` bounds how deep in the run new branches may open.
    """
    runs = 0
    stack = [[]]
    results = []
    failure = None
    while stack and runs < max_runs:
        prefix = stack.pop()
        runs += 1
        result = run_once(
            scenario_name, ReplayStrategy(prefix), scenario_kwargs
        )
        results.append(result)
        if log is not None:
            log(f"dfs prefix={prefix} -> {result.describe()}")
        if not result.ok:
            failure = result
            break
        frontier = prefix[-1][0] if prefix else 0
        for step, n_alts, _chosen in result.points:
            if step <= frontier:
                continue
            if max_steps is not None and step > max_steps:
                break
            for choice in range(1, n_alts):
                stack.append(prefix + [(step, choice)])
    return results, failure


def shrink_failure(result, max_runs=300, log=None):
    """Delta-debug a failing result's decisions; returns (schedule,
    replay_result, runs_used) with the minimal decision list."""
    if result.ok:
        raise ValueError("shrink_failure needs a failing CheckResult")
    invariant = result.violations[0].invariant

    def still_fails(decisions):
        replay = run_once(
            result.scenario,
            ReplayStrategy(decisions),
            result.scenario_kwargs,
        )
        return any(v.invariant == invariant for v in replay.violations)

    minimal, runs = shrink_decisions(
        result.decisions, still_fails, max_runs=max_runs
    )
    if log is not None:
        log(
            f"shrink: {len(result.decisions)} -> {len(minimal)} decisions "
            f"in {runs} replays"
        )
    schedule = Schedule(
        result.scenario,
        minimal,
        scenario_kwargs=result.scenario_kwargs,
        invariant=invariant,
        note=f"shrunk from {len(result.decisions)} decisions ({runs} replays)",
    )
    return schedule, replay_schedule(schedule), runs
