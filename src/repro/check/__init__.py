"""``repro.check``: a deterministic-simulation model checker.

Built on three observations about the simulation engine:

1. all nondeterminism in a run is the *same-timestamp dispatch order* of
   the engine's ready queue (everything else is seeded), so a
   :class:`ScheduleController` that picks which pending callback runs
   next systematically explores exactly the interleavings real
   concurrency would produce;
2. the control plane's correctness arguments (pool accounting, DCCache
   incarnations, MR leases, meta replication, exactly-once completion
   dispatch) are all checkable as *invariants* over hook events --
   :class:`Checker` collects them without perturbing the run;
3. every explored schedule is just a list of ``(step, choice)``
   decisions, so a failing schedule can be delta-debugged down to a
   minimal JSON trace that replays byte-identically as a regression
   test.

Usage::

    python -m repro.check pool_churn --mode random --seeds 50
    python -m repro.check --replay tests/schedules/pool_churn_accept_leak.json

Exports are lazy: ``repro.krcore`` imports :mod:`repro.check.hooks` at
module load, so this package must not eagerly import the scenario layer
(which imports ``repro.krcore`` back).
"""

_LAZY = {
    "Checker": "repro.check.invariants",
    "Violation": "repro.check.invariants",
    "ScheduleController": "repro.check.controller",
    "Schedule": "repro.check.controller",
    "FifoStrategy": "repro.check.controller",
    "RandomWalkStrategy": "repro.check.controller",
    "PctStrategy": "repro.check.controller",
    "ReplayStrategy": "repro.check.controller",
    "Op": "repro.check.linearizability",
    "check_register": "repro.check.linearizability",
    "check_histories": "repro.check.linearizability",
    "extract_histories": "repro.check.linearizability",
    "shrink_decisions": "repro.check.shrink",
    "run_once": "repro.check.runner",
    "result_schedule": "repro.check.runner",
    "replay_schedule": "repro.check.runner",
    "sweep": "repro.check.runner",
    "dfs_explore": "repro.check.runner",
    "shrink_failure": "repro.check.runner",
    "CheckResult": "repro.check.runner",
    "SCENARIOS": "repro.check.scenarios",
    "get_scenario": "repro.check.scenarios",
}

__all__ = sorted(_LAZY) + ["hooks"]

from repro.check import hooks  # noqa: E402  (dependency-free, always safe)


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
