"""Model-checking scenarios: small workloads with many real interleavings.

Each scenario is a function ``fn(controller, checker, **kwargs)`` that
builds its own :class:`~repro.sim.Simulator`, attaches the controller
(so the strategy owns same-timestamp dispatch order), runs a workload
exercising one slice of the control plane, calls
``checker.finalize(...)``, and returns a small summary dict.  The
runner (:mod:`repro.check.runner`) supplies the controller/checker and
handles strategy sweeps, replay, and shrinking.

Scenario catalogue
------------------

``racey_pipeline``
    A deliberately order-sensitive producer/consumer toy on the bare
    engine: under FIFO the producers of each round always run before the
    consumers, under reordering a consumer can drain an empty buffer.
    Exists to validate the controller + shrinker end-to-end (a failure
    here is a *scenario* property, not a control-plane bug).
``pool_churn``
    Tiny RC pools (``max_rc_per_cpu=1``) with cross-traffic between
    three nodes and a low background-RC threshold: establish / accept /
    LRU-evict / retire races, plus a thread-migration retarget.  Drives
    the pool-accounting, DCCache, and completion-dispatch invariants.
``chaos_small``
    A shrunk chaos run (crash + restart + meta outage over a sharded
    plane) with the full invariant registry attached and the chaos
    harness's own invariants folded in.
``batch_fault``
    Doorbell-batched WR chains (``QueuePair.post_send_batch``) posted
    over a lossy link with a tiny retry budget: some chain hits a
    mid-chain RETRY_EXC and wrecks the QP, and the ``batch-exactly-once``
    invariant must still hold -- every chain member completes exactly
    once (successors flush, none dropped, none duplicated).  The QP is
    reconfigured between chains so later chains run on a clean queue.
``kvs_lin``
    Concurrent 8-byte one-sided READ/WRITEs against per-key server
    slots with every op recorded; the Wing & Gong checker must find the
    per-key histories linearizable under *any* schedule.
``meta_failover``
    MR publication / retraction over a replicated 3-shard plane with
    per-shard outage windows; checks replica convergence and records
    the lookup histories (reported, not enforced: a failover read from
    a not-yet-converged replica is legal for this plane, which only
    guarantees convergence -- see DESIGN.md §10).
``mr_churn``
    The MicroView churn-chaos harness (pod dereg/re-register storms +
    meta outage + stale accepts) under the full registry, most notably
    ``mr-read-churn-window``: no schedule may let a READ execute
    against an MR retracted more than one lease ago.
``cluster_scale``
    The partitioned qconnect-storm model: a ``partitions=1`` run with
    the controller attached to the single partition's engine, digest-
    compared against a plain multi-partition run of the same spec.
    FIFO replay is byte-identical to an uncontrolled run, so the clean
    corpus baseline pins cross-partition equivalence; *reordering*
    strategies may legally diverge (same-timestamp dispatch order moves
    per-node drain-batch boundaries, which the equivalence claim — all
    engines are FIFO — does not cover).
"""

from collections import deque

from repro.check.linearizability import record_invoke, record_response
from repro.obs import current_tracer

__all__ = ["SCENARIOS", "get_scenario", "scenario"]

US = 1_000
MS = 1_000_000

SCENARIOS = {}


class ScenarioSpec:
    __slots__ = ("name", "fn", "lin", "defaults", "doc")

    def __init__(self, name, fn, lin, defaults):
        self.name = name
        self.fn = fn
        self.lin = lin
        self.defaults = dict(defaults)
        self.doc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""


def scenario(name, lin=False, **defaults):
    """Register a scenario.  ``lin=True`` makes the runner *enforce*
    linearizability of the recorded histories (it always reports)."""

    def decorate(fn):
        SCENARIOS[name] = ScenarioSpec(name, fn, lin, defaults)
        return fn

    return decorate


def get_scenario(name):
    spec = SCENARIOS.get(name)
    if spec is None:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})")
    return spec


# --------------------------------------------------------------- racey toy


@scenario("racey_pipeline", rounds=4, lanes=3, gap_ns=1 * US)
def racey_pipeline(controller, checker, rounds=4, lanes=3, gap_ns=1 * US):
    """Order-sensitive producer/consumer toy (controller validation)."""
    from repro.sim import Simulator

    sim = Simulator()
    controller.attach(sim)
    buffer = deque()
    stats = {"produced": 0, "consumed": 0, "underflows": 0}

    def producer(lane):
        for _ in range(rounds):
            yield gap_ns
            buffer.append(lane)
            stats["produced"] += 1

    def consumer(lane):
        for _ in range(rounds):
            yield gap_ns
            if buffer:
                buffer.popleft()
                stats["consumed"] += 1
            else:
                stats["underflows"] += 1
                checker.custom(
                    "racey-underflow",
                    sim.now,
                    f"consumer {lane} drained an empty buffer "
                    f"(round boundary t={sim.now})",
                )

    # Producers first: FIFO start order makes every round produce before
    # it consumes, so the toy is safe under the engine's own schedule.
    for lane in range(lanes):
        sim.process(producer(lane), name=f"producer-{lane}")
    for lane in range(lanes):
        sim.process(consumer(lane), name=f"consumer-{lane}")
    sim.run()
    checker.finalize(now=sim.now)
    return stats


# ------------------------------------------------------------- pool churn


def _boot_region(module, meta, slots=8, slot_bytes=64):
    """Register + boot-publish a server data region (harness idiom)."""
    node = module.node
    length = slots * slot_bytes
    addr = node.memory.alloc(length)
    region = node.memory.register(addr, length)
    module.valid_mr.record(region)
    meta.publish_mr(node.gid, region.rkey, region.addr, region.length)
    return addr, region


@scenario("pool_churn", ops=6, gap_ns=4 * US, rc_threshold=3)
def pool_churn(controller, checker, ops=6, gap_ns=4 * US, rc_threshold=3):
    """RC establish/accept/evict/retire churn with 1-entry RC pools."""
    from repro.cluster import Cluster
    from repro.krcore import KrcoreLib, KrcoreModule, MetaServer
    from repro.sim import Simulator

    sim = Simulator()
    controller.attach(sim)
    cluster = Cluster(sim, num_nodes=4, cores=2)
    meta = MetaServer(cluster.node(0))
    nodes = [cluster.node(i) for i in range(1, 4)]
    modules = {}
    for node in cluster.nodes:
        modules[node.gid] = KrcoreModule(
            node,
            meta,
            dc_per_cpu=1,
            max_rc_per_cpu=1,
            background_rc=True,
            rc_traffic_threshold=rc_threshold,
        )
    regions = {node.gid: _boot_region(modules[node.gid], meta) for node in nodes}
    scratch_bytes = 64
    done = {"clients": 0}

    def client(node):
        # Read both peers round-robin from CPU 0: with a 1-entry RC pool
        # and two hot targets, background RC creation keeps evicting.
        lib = KrcoreLib(node, cpu_id=0)
        module = modules[node.gid]
        scratch = node.memory.alloc(scratch_bytes)
        sregion = yield from module.reg_mr(scratch, scratch_bytes)
        peers = [peer for peer in nodes if peer.gid != node.gid]
        vqps = {}
        for peer in peers:
            vqp = yield from lib.create_vqp()
            yield from lib.qconnect(vqp, peer.gid)
            vqps[peer.gid] = vqp
        for index in range(ops):
            yield gap_ns
            for peer in peers:
                base, region = regions[peer.gid]
                yield from lib.read_sync(
                    vqps[peer.gid], scratch, sregion.lkey,
                    base, region.rkey, scratch_bytes,
                )
        # Thread migration: retarget one VQP onto CPU 1's pool mid-flight,
        # then prove it still works.
        victim = peers[0]
        yield from module.migrate_vqp(vqps[victim.gid], 1)
        base, region = regions[victim.gid]
        yield from lib.read_sync(
            vqps[victim.gid], scratch, sregion.lkey,
            base, region.rkey, scratch_bytes,
        )
        done["clients"] += 1

    for node in nodes:
        sim.process(client(node), name=f"churn-client@{node.gid}")
    sim.run()
    plane = modules[nodes[0].gid].meta_plane
    checker.finalize(modules=modules.values(), plane=plane, now=sim.now)
    return {
        "clients_done": done["clients"],
        "rc_inserts": checker.observed.get("pool.insert", 0),
        "rc_retires": checker.observed.get("pool.retire", 0),
    }


# ------------------------------------------------------------ small chaos


@scenario("chaos_small", seed=11, ops_per_client=12)
def chaos_small(controller, checker, seed=11, ops_per_client=12):
    """A shrunk chaos run (crash+restart+outage) under the registry."""
    from repro.faults.harness import ChaosHarness
    from repro.faults.plan import FaultPlan
    from repro.krcore import MetaPlane

    plan = (
        FaultPlan(seed)
        .crash_node(2 * MS, "node2")
        .restart_node(4 * MS, "node2")
        .meta_outage(5 * MS, 1 * MS)
    )
    harness = ChaosHarness(
        seed, plan, ops_per_client=ops_per_client, meta_shards=2
    )
    controller.attach(harness.sim)
    report = harness.run()
    checker.finalize(
        modules=harness.modules.values(),
        plane=MetaPlane.ensure(harness.meta),
        now=harness.sim.now,
    )
    for name, holds in sorted(report.invariants.items()):
        if not holds:
            checker.custom(
                f"chaos-{name}", harness.sim.now,
                f"chaos harness invariant {name} failed ({report.summary()})",
            )
    return {
        "report_digest": report.digest(),
        "ops_ok": report.ops_ok,
        "ops_failed": report.ops_failed,
        "faults": len(report.fault_log),
    }


# ------------------------------------------------------- batched chains


@scenario("batch_fault", chains=3, chain=5, drop_pct=35, seed=9)
def batch_fault(controller, checker, chains=3, chain=5, drop_pct=35, seed=9):
    """Batched WR chains over a lossy link (batch-exactly-once)."""
    from repro.cluster import Cluster
    from repro.cluster.fabric import LinkFault
    from repro.sim import Simulator
    from repro.verbs import (
        CompletionQueue, DriverContext, QpState, QpType, WcStatus, WorkRequest,
    )

    sim = Simulator()
    controller.attach(sim)
    cluster = Cluster(sim, num_nodes=2)
    node_a, node_b = cluster.node(0), cluster.node(1)
    cq = CompletionQueue(sim)
    ctx_a = DriverContext(node_a, kernel=True)
    ctx_b = DriverContext(node_b, kernel=True)
    # A tiny retry budget so a couple of consecutive drops escalate to
    # RETRY_EXC quickly instead of riding out the full timeout ladder.
    qp_a = ctx_a.create_qp_fast(QpType.RC, cq, recv_cq=cq, sq_depth=64)
    qp_a.retry_cnt = 1
    qp_a.timeout_ns = 2 * US
    qp_b = ctx_b.create_qp_fast(QpType.RC, cq, recv_cq=cq, sq_depth=64)
    qp_a.to_init(); qp_a.to_rtr((node_b.gid, qp_b.qpn)); qp_a.to_rts()
    qp_b.to_init(); qp_b.to_rtr((node_a.gid, qp_a.qpn)); qp_b.to_rts()
    nbytes = 32
    src = node_a.memory.alloc(nbytes)
    dst = node_b.memory.alloc(nbytes)
    lregion = node_a.memory.register(src, nbytes)
    rregion = node_b.memory.register(dst, nbytes)
    cluster.fabric.set_link_fault(
        node_a.gid, node_b.gid, LinkFault(drop_prob=drop_pct / 100, seed=seed)
    )
    stats = {"success": 0, "retry_exc": 0, "flushed": 0, "repairs": 0}

    def client():
        for round_no in range(chains):
            wrs = [
                WorkRequest.write(
                    src, nbytes, lregion.lkey, dst, rregion.rkey,
                    wr_id=round_no * 100 + index,
                )
                for index in range(chain)
            ]
            qp_a.post_send_batch(wrs)
            drained = 0
            while drained < chain:
                completions = yield from cq.wait_poll(chain - drained)
                for wc in completions:
                    drained += wc.covers
                    if wc.status is WcStatus.SUCCESS:
                        stats["success"] += 1
                    elif wc.status is WcStatus.FLUSH_ERR:
                        stats["flushed"] += 1
                    else:
                        stats["retry_exc"] += 1
            if qp_a.state is not QpState.RTS:
                stats["repairs"] += 1
                yield from qp_a.reconfigure()

    sim.process(client(), name="batch-client")
    sim.run()
    checker.finalize(now=sim.now)
    return stats


# ------------------------------------------------------- linearizable KVS


@scenario("kvs_lin", lin=True, seed=3, clients=3, ops=8, keys=4)
def kvs_lin(controller, checker, seed=3, clients=3, ops=8, keys=4):
    """Concurrent 8-byte one-sided ops; histories must linearize."""
    import random

    from repro.cluster import Cluster
    from repro.krcore import KrcoreLib, KrcoreModule, MetaServer
    from repro.sim import Simulator

    sim = Simulator()
    controller.attach(sim)
    cluster = Cluster(sim, num_nodes=2 + clients)
    meta = MetaServer(cluster.node(0))
    server = cluster.node(1)
    client_nodes = [cluster.node(2 + i) for i in range(clients)]
    modules = {
        node.gid: KrcoreModule(node, meta, background_rc=False)
        for node in cluster.nodes
    }
    slot_bytes = 8
    base, region = _boot_region(modules[server.gid], meta, slots=keys,
                                slot_bytes=slot_bytes)
    stats = {"ops": 0}

    def client(cnum, node):
        rng = random.Random(seed * 1009 + cnum)
        tracer = current_tracer()
        lib = KrcoreLib(node, cpu_id=0)
        module = modules[node.gid]
        scratch = node.memory.alloc(slot_bytes)
        sregion = yield from module.reg_mr(scratch, slot_bytes)
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, server.gid)
        for index in range(ops):
            yield rng.randrange(1, 3 * US)
            key = rng.randrange(keys)
            raddr = base + key * slot_bytes
            if rng.random() < 0.5:
                value = (cnum + 1) * 1000 + index + 1
                node.memory.write(scratch, value.to_bytes(slot_bytes, "big"))
                aid = record_invoke(tracer, sim.now, f"k{key}", "w",
                                    f"c{cnum}", value=value)
                yield from lib.write_sync(
                    vqp, scratch, sregion.lkey, raddr, region.rkey, slot_bytes
                )
                record_response(tracer, sim.now, aid)
            else:
                aid = record_invoke(tracer, sim.now, f"k{key}", "r", f"c{cnum}")
                yield from lib.read_sync(
                    vqp, scratch, sregion.lkey, raddr, region.rkey, slot_bytes
                )
                value = int.from_bytes(node.memory.read(scratch, slot_bytes), "big")
                record_response(tracer, sim.now, aid, value=value)
            stats["ops"] += 1

    for cnum, node in enumerate(client_nodes):
        sim.process(client(cnum, node), name=f"lin-client-{cnum}")
    sim.run()
    checker.finalize(
        modules=modules.values(),
        plane=modules[server.gid].meta_plane,
        now=sim.now,
    )
    return stats


# ----------------------------------------------------------- meta failover


@scenario("meta_failover", seed=5, writers=2, rounds=3, shards=3)
def meta_failover(controller, checker, seed=5, writers=2, rounds=3, shards=3):
    """MR publish/retract over a replicated plane with shard outages."""
    from repro.cluster import Cluster
    from repro.krcore import KrcoreModule, MetaPlane, MetaServer
    from repro.sim import Simulator

    sim = Simulator()
    controller.attach(sim)
    cluster = Cluster(sim, num_nodes=shards + writers)
    shard_nodes = [cluster.node(i) for i in range(shards)]
    writer_nodes = [cluster.node(shards + i) for i in range(writers)]
    plane = MetaPlane([MetaServer(node) for node in shard_nodes])
    modules = {
        node.gid: KrcoreModule(node, plane, background_rc=False)
        for node in cluster.nodes
    }
    stats = {"published": 0, "lookups": 0, "lookup_failures": 0}

    def outages():
        # One staggered outage window per shard; lookups must fail over.
        for index in range(shards):
            yield 300 * US
            plane.set_outage(400 * US, shard=index)

    def writer(wnum, node):
        # Each writer churns its *own* MR records (distinct keys: two
        # writers never race on one key, so convergence is well-defined).
        tracer = current_tracer()
        module = modules[node.gid]
        length = 64
        for index in range(rounds):
            yield 200 * US
            addr = node.memory.alloc(length)
            aid = record_invoke(
                tracer, sim.now, f"mr:{node.gid}", "w", f"w{wnum}", value=addr
            )
            region = yield from module.reg_mr(addr, length)
            # Publication rides async kernel messages: the write is only
            # known applied once a later lookup observes it, so the op
            # stays open-ended (see linearizability.Op).
            del aid
            stats["published"] += 1
            yield 200 * US
            for reader_gid in sorted(modules):
                if reader_gid == node.gid:
                    continue
                reader = modules[reader_gid]
                raid = record_invoke(
                    tracer, sim.now, f"mr:{node.gid}", "r", reader_gid
                )
                try:
                    record = yield from reader.plane_lookup_mr(
                        0, node.gid, region.rkey
                    )
                except Exception:
                    # No answer is not an observation: leave the op
                    # incomplete (extract_histories drops open reads).
                    stats["lookup_failures"] += 1
                else:
                    # A reachable shard with no record observes the
                    # initial state (0, the register checker's default).
                    record_response(
                        tracer, sim.now, raid,
                        value=0 if record is None else record[0],
                    )
                stats["lookups"] += 1
            if index + 1 < rounds:
                yield from module.dereg_mr(region)

    sim.process(outages(), name="meta-outages")
    for wnum, node in enumerate(writer_nodes):
        sim.process(writer(wnum, node), name=f"meta-writer-{wnum}")
    sim.run()
    checker.finalize(modules=modules.values(), plane=plane, now=sim.now)
    return stats


# --------------------------------------------------------------- MR churn


@scenario("mr_churn", seed=5, cycles=14)
def mr_churn(controller, checker, seed=5, cycles=14):
    """MicroView pod churn + meta outage under the churn-window invariant."""
    from repro.faults.microview import MicroViewChaosHarness

    harness = MicroViewChaosHarness(seed, cycles=cycles, check=False)
    controller.attach(harness.sim)
    report = harness.run()
    checker.finalize(
        modules=harness.modules.values(), plane=harness.meta, now=harness.sim.now
    )
    # Fold in the harness's schedule-independent correctness invariants.
    # degraded_mode_engaged is deliberately left out: whether the outage
    # catches enough expired entries is scenario *effectiveness*, and a
    # reordered schedule may legally shift the epoch-roll/outage overlap.
    for name in ("harvest_progress", "shared_qp_healthy", "churn_and_faults_applied"):
        if not report.invariants[name]:
            checker.custom(
                f"microview-{name}", harness.sim.now,
                f"microview harness invariant {name} failed ({report.summary()})",
            )
    return {
        "report_digest": report.digest(),
        "cycles": report.cycles,
        "failed_reads": report.failed_reads,
        "churns": report.churns,
        "stale_accepts": report.stale_accepts,
        "reads_after_retract": checker.observed.get("mr.read_after_retract", 0),
    }


# --------------------------------------------------------- partitioned scale


@scenario("cluster_scale", seed=13, racks=4, nodes_per_rack=3,
          tenants_per_node=2, ops_per_tenant=8, partitions=2)
def cluster_scale(controller, checker, seed=13, racks=4, nodes_per_rack=3,
                  tenants_per_node=2, ops_per_tenant=8, partitions=2):
    """Partitioned qconnect storm: P-way run must match P=1 (FIFO only)."""
    from repro.cluster import timing
    from repro.cluster.scale import (
        ScaleSpec, build_scale_partition, digest_records, run_scale,
    )
    from repro.sim.partition import run_partitioned

    spec = ScaleSpec(
        racks=racks, nodes_per_rack=nodes_per_rack,
        tenants_per_node=tenants_per_node, ops_per_tenant=ops_per_tenant,
        mean_think_ns=6 * US, seed=seed,
    )
    built = []

    def build(args, index):
        partition = build_scale_partition(args, index)
        built.append(partition)
        controller.attach(partition.sim)
        return partition

    base = run_partitioned(build, (spec, 1), 1, timing.INTER_RACK_ONE_WAY_NS)
    base_digest = digest_records(base.harvests[0]["records"])
    comparison = run_scale(spec, partitions=partitions)
    if comparison.digest() != base_digest:
        checker.custom(
            "cluster-scale-equivalence", built[0].sim.now,
            f"partitions={partitions} digest {comparison.digest()[:16]} != "
            f"partitions=1 digest {base_digest[:16]} under this schedule",
        )
    checker.finalize(now=built[0].sim.now)
    return {
        "digest": base_digest,
        "completed": len(base.harvests[0]["records"]),
        "windows": base.windows,
        "comparison_partitions": partitions,
    }
