"""A Wing & Gong linearizability checker over recorded op histories.

Histories are recorded through ``repro.obs`` async trace events (so the
recording rides the observability layer rather than adding a parallel
one): each operation is an async span on the ``check.history`` track
whose ``begin`` args carry ``(key, kind, proc, value)`` and whose ``end``
args carry the response value for reads.  :func:`extract_histories`
pairs them back up per key.

The checker itself is the classic Wing & Gong DFS with the two standard
accelerations:

* **P-compositionality**: linearizability is compositional, so each
  key's history is checked independently (:func:`check_histories`) --
  exponential state collapses to per-key history sizes.
* **Memoization** on (linearized-set, register value): two DFS paths
  that linearized the same subset of ops and reached the same register
  value are equivalent, so each such state is explored once
  (Lowe's just-in-time linearizability optimisation).

Semantics are a single register per key: a read returns the value of
the latest linearized write (``initial`` before any).  An operation with
``response=None`` is *incomplete* (invoked, never returned): it may be
linearized anywhere after its invocation or not at all -- required for
histories with crashed clients or writes acknowledged only by a later
observation.
"""

__all__ = ["Op", "check_register", "check_histories", "extract_histories"]


class Op:
    """One operation in a history.

    ``kind`` is ``'r'`` or ``'w'``; ``value`` is the value written (for
    writes) or returned (for reads).  ``response is None`` marks an
    incomplete op.  Times are simulated ns; only their order matters.
    """

    __slots__ = ("proc", "kind", "value", "invoke", "response", "uid")

    def __init__(self, proc, kind, value, invoke, response, uid=None):
        self.proc = proc
        self.kind = kind
        self.value = value
        self.invoke = int(invoke)
        self.response = None if response is None else int(response)
        self.uid = uid

    def to_dict(self):
        return {
            "proc": self.proc,
            "kind": self.kind,
            "value": self.value,
            "invoke": self.invoke,
            "response": self.response,
        }

    def __repr__(self):
        span = f"{self.invoke}..{'?' if self.response is None else self.response}"
        return f"Op({self.proc} {self.kind}{self.value!r} @{span})"


def check_register(ops, initial=0):
    """True iff ``ops`` is linearizable as a single read/write register.

    Iterative DFS over partial linearizations.  A state is the bitmask
    of linearized ops plus the current register value; a candidate next
    op is any un-linearized op whose invocation does not come after the
    response of another un-linearized *complete* op (it must be allowed
    to go first: ops are candidates iff their invoke time is <= the
    minimum response among pending complete ops).  Incomplete ops never
    constrain others and may be left un-linearized at the end.
    """
    ops = sorted(ops, key=lambda op: (op.invoke, 0 if op.response is None else 1))
    n = len(ops)
    if n == 0:
        return True
    complete_mask = 0
    for index, op in enumerate(ops):
        if op.response is not None:
            complete_mask |= 1 << index
    all_mask = (1 << n) - 1
    seen = set()
    # Each frame: (mask_of_linearized, register_value).
    stack = [(0, initial)]
    while stack:
        mask, value = stack.pop()
        if mask & complete_mask == complete_mask:
            return True
        if (mask, value) in seen:
            continue
        seen.add((mask, value))
        pending = all_mask & ~mask
        # The earliest response among pending *complete* ops bounds which
        # ops may linearize next: anything invoked after it must wait.
        horizon = None
        probe = pending & complete_mask
        while probe:
            low = probe & -probe
            response = ops[low.bit_length() - 1].response
            if horizon is None or response < horizon:
                horizon = response
            probe ^= low
        probe = pending
        while probe:
            low = probe & -probe
            probe ^= low
            index = low.bit_length() - 1
            op = ops[index]
            if horizon is not None and op.invoke > horizon:
                continue
            if op.kind == "w":
                stack.append((mask | low, op.value))
            elif op.value == value:
                stack.append((mask | low, value))
    return False


def check_histories(histories, initial=0):
    """Check each key's history independently (P-compositionality).

    ``histories`` maps key -> list of :class:`Op`.  Returns the list of
    keys whose history is NOT linearizable (empty == pass).
    """
    return [
        key
        for key in sorted(histories)
        if not check_register(histories[key], initial=initial)
    ]


# --------------------------------------------------------- trace recording

TRACK = "check.history"
EVENT = "check.op"


def record_invoke(tracer, now, key, kind, proc, value=None):
    """Record an operation invocation; returns the async id to pass to
    :func:`record_response` (or to drop, leaving the op incomplete)."""
    aid = tracer.next_async_id()
    tracer.async_begin(
        now, TRACK, EVENT, aid, key=key, kind=kind, proc=proc, value=value
    )
    return aid


def record_response(tracer, now, aid, value=None):
    tracer.async_end(now, TRACK, EVENT, aid, value=value)


def extract_histories(tracer):
    """Pair the ``check.history`` async events back into per-key op lists."""
    begins = {}
    histories = {}
    for event in tracer.events:
        if event.get("cat") != "async" or event.get("name") != EVENT:
            continue
        if event["ph"] == "b":
            begins[event["id"]] = event
        elif event["ph"] == "e":
            begin = begins.pop(event["id"], None)
            if begin is None:
                continue
            args = begin.get("args", {})
            value = args.get("value")
            if args.get("kind") == "r":
                value = event.get("args", {}).get("value")
            histories.setdefault(args["key"], []).append(
                Op(
                    args.get("proc", "?"),
                    args["kind"],
                    value,
                    begin["ts"],
                    event["ts"],
                    uid=event["id"],
                )
            )
    # Un-ended begins are incomplete ops.
    for aid, begin in begins.items():
        args = begin.get("args", {})
        if args.get("kind") != "w":
            continue  # an incomplete read constrains nothing
        histories.setdefault(args["key"], []).append(
            Op(args.get("proc", "?"), "w", args.get("value"), begin["ts"], None, uid=aid)
        )
    return histories
