"""The invariant registry: control-plane safety properties as hooks.

A :class:`Checker` is installed process-wide via ``repro.check.hooks``
and fed by guarded call sites in ``krcore`` (pool, module, MRStore,
meta) and ``cluster`` (RNIC).  Hooks are synchronous, never yield, and
read simulated time off the calling object's own clock, so an installed
checker observes a run without perturbing it.

Invariants
----------

``pool-qp-accounting``
    Every RNIC-registered RCQP the pool ever managed is either still
    owned by a pool or was retired (unregistered from its RNIC).  An
    evicted/dropped QP left registered is a driver-memory leak -- the
    accept-path variant of this was a real bug fixed in PR 4.
``dccache-incarnation``
    Every DCCache insert sourced from the meta plane carries DCT
    metadata that some incarnation of the target node actually
    published: a cache entry must never outlive the *namespace* of node
    incarnations (cross-wired or corrupted metadata).
``mrstore-lease``
    MRStore never promotes a verdict past its lease: a fresh-lookup
    entry is stamped with the current epoch, and a degraded-mode stale
    accept keeps an epoch strictly in the past (re-stamping it -- the
    PR 4 bug -- would suppress revalidation after the meta plane
    recovers).
``mr-read-churn-window``
    No one-sided READ executes against a remote MR retracted more than
    one lease ago: ``dereg_mr`` defers the physical free by exactly one
    lease, so a READ landing later than ``retract_t + lease_ns`` would
    touch freed memory.  Fed by registration/retraction hooks in
    ``KrcoreModule`` and execution hooks on the verbs READ paths
    (including vectored READ_V segments).
``meta-replica-divergence`` / ``meta-lost-write``
    At quiescence, every live owner shard of a written meta key holds
    the last written value (convergence); a write visible on *no* live
    owner was lost across failover.
``wr-exactly-once``
    No signaled work-request completion is dispatched twice through one
    module's ``poll_inner`` (Algorithm 2's wr_id token table), and no
    token is left undispatched at quiescence.
``batch-exactly-once``
    Every WR of a doorbell-batched chain (``QueuePair.post_send_batch``)
    completes exactly once: a mid-chain fault (RETRY_EXC) must neither
    drop its successors (they flush with FLUSH_ERR) nor complete any
    chain member twice.  Checked per physical WR at the ``_complete``
    hook, with a quiescence sweep for chain members that never
    completed.
``rnic-busy-conservation``
    Busy intervals of one serialized RNIC engine (capacity-1 resource)
    never overlap: occupancy is conserved, so modelled throughput
    ceilings cannot be double-counted.
``breaker-state-sanity``
    Circuit breakers only walk the legal state machine (closed -> open
    -> half_open -> {closed, open}) and every reported transition
    departs from the state last observed -- a breaker that skips states
    or forks its own history is mis-wired.
``admission-no-drop`` / ``admission-accounting``
    An op the admission gate *admitted* is never subsequently shed
    (admission is a promise), and at quiescence every arrival settled
    exactly once: admitted + shed + rejected, with no waiter stranded
    in the queue.

Scenario-specific invariants are reported through :meth:`Checker.custom`.
"""

import hashlib
import json

__all__ = ["Checker", "Violation"]


class Violation:
    """One observed invariant violation."""

    __slots__ = ("invariant", "t", "detail")

    def __init__(self, invariant, t, detail):
        self.invariant = invariant
        self.t = int(t)
        self.detail = detail

    def to_dict(self):
        return {"invariant": self.invariant, "t": self.t, "detail": self.detail}

    def __repr__(self):
        return f"Violation({self.invariant!r}, t={self.t}, {self.detail!r})"


class Checker:
    """Collects hook events and evaluates the invariant registry.

    Immediate invariants (lease stamps, duplicate dispatch, busy
    overlap, cache provenance) are checked at the hook; accounting
    invariants that need quiescence (pool ownership, replica
    convergence, token drain) run in :meth:`finalize`.
    """

    def __init__(self):
        self.violations = []
        #: Hook activity counters, name -> count.  Directed tests assert
        #: these are nonzero, so a silently disconnected hook fails.
        self.observed = {}
        # pool accounting: id(qp) -> [qp, gid, rnic-at-insert, state]
        self._rc_tracked = {}
        # dccache provenance: gid -> {(dct_number, dct_key), ...}
        self._published_dct = {}
        self._incarnations = {}  # gid -> latest incarnation seen
        # meta writes: key(bytes) -> last value (None == deleted)
        self._meta_last = {}
        # wr dispatch: id(module) -> [module, set(wr_id)]
        self._wr_seen = {}
        # doorbell chains: id(wr) -> [wr, qp, chain_no, index, completions]
        self._batch_wrs = {}
        self._batch_chains = 0
        # rnic busy: id(resource) -> [resource, label, last_end]
        self._busy = {}
        # mr churn: (gid, rkey) -> (retract_t, lease_ns) for retracted MRs
        self._mr_retired = {}
        # degrade breakers: id(breaker) -> [breaker, last_state]
        self._breakers = {}
        # admission lifecycle: (id(gate), op_id) -> last event
        self._admission = {}
        # admission gates seen, for quiescence accounting: id -> gate
        self._gates = {}

    # ------------------------------------------------------------- reporting

    def _note(self, kind):
        self.observed[kind] = self.observed.get(kind, 0) + 1

    def violate(self, invariant, t, detail):
        self.violations.append(Violation(invariant, t, detail))

    def custom(self, invariant, t, detail):
        """Report a scenario-specific invariant violation."""
        self._note(f"custom.{invariant}")
        self.violate(invariant, t, detail)

    @property
    def ok(self):
        return not self.violations

    # ------------------------------------------------- krcore pool accounting

    def pool_rc_insert(self, pool, gid, qp, evicted):
        """An RCQP entered ``pool`` (establish_rc / _on_rc_accept),
        possibly LRU-evicting ``evicted = (gid, qp)``."""
        self._note("pool.insert")
        self._rc_tracked[id(qp)] = [qp, gid, qp.node.rnic, "pooled"]
        if evicted is not None:
            egid, eqp = evicted
            record = self._rc_tracked.get(id(eqp))
            if record is None:
                record = [eqp, egid, eqp.node.rnic, "evicted"]
                self._rc_tracked[id(eqp)] = record
            else:
                record[3] = "evicted"

    def pool_rc_drop(self, pool, gid, qp):
        """An RCQP was dropped from a pool (invalidate_node)."""
        self._note("pool.drop")
        record = self._rc_tracked.get(id(qp))
        if record is None:
            self._rc_tracked[id(qp)] = [qp, gid, qp.node.rnic, "dropped"]
        else:
            record[3] = "dropped"

    def rc_retired(self, qp):
        """A previously pooled RCQP finished retirement (unregistered)."""
        self._note("pool.retire")
        record = self._rc_tracked.get(id(qp))
        if record is not None:
            record[3] = "retired"

    # -------------------------------------------------- DCCache incarnations

    def dct_published(self, gid, incarnation, meta):
        """A node incarnation came up and published its DCT metadata."""
        self._note("dct.publish")
        self._published_dct.setdefault(gid, set()).add(tuple(meta))
        self._incarnations[gid] = incarnation

    def dc_cache_insert(self, module, gid, meta):
        """A DCCache insert sourced from the meta plane (authoritative
        lookups only -- piggybacked metadata is deliberately unhooked,
        an in-flight message from an older incarnation is legal)."""
        self._note("dccache.insert")
        published = self._published_dct.get(gid)
        if published is not None and tuple(meta) not in published:
            self.violate(
                "dccache-incarnation",
                module.sim.now,
                f"{module.node.gid} cached DCT meta {tuple(meta)} for {gid}, "
                f"never published by any incarnation "
                f"(latest {self._incarnations.get(gid)})",
            )

    # --------------------------------------------------------- MRStore lease

    def mr_accept(self, store, gid, rkey, entry_epoch, now_epoch, stale):
        """MRStore cached a positive verdict for (gid, rkey)."""
        self._note("mrstore.accept")
        if entry_epoch > now_epoch:
            self.violate(
                "mrstore-lease",
                store.sim.now,
                f"{store.module.node.gid} cached ({gid}, rkey={rkey}) with "
                f"future epoch {entry_epoch} > {now_epoch}",
            )
        elif stale and entry_epoch >= now_epoch:
            self.violate(
                "mrstore-lease",
                store.sim.now,
                f"{store.module.node.gid} re-stamped a stale accept of "
                f"({gid}, rkey={rkey}) to the current epoch {now_epoch} -- "
                "suppresses revalidation after the meta plane recovers",
            )
        elif not stale and entry_epoch != now_epoch:
            self.violate(
                "mrstore-lease",
                store.sim.now,
                f"{store.module.node.gid} cached a fresh verdict for "
                f"({gid}, rkey={rkey}) at past epoch {entry_epoch} != {now_epoch}",
            )

    # ------------------------------------------------------- MR churn window

    def mr_registered(self, gid, rkey, t):
        """``KrcoreModule.reg_mr`` registered (gid, rkey): the key is live
        again, so any earlier retraction record for it is obsolete."""
        self._note("mr.registered")
        self._mr_retired.pop((gid, rkey), None)

    def mr_retracted(self, gid, rkey, t, lease_ns):
        """``KrcoreModule.dereg_mr`` retracted (gid, rkey); the physical
        free lands one lease later."""
        self._note("mr.retracted")
        self._mr_retired[(gid, rkey)] = (int(t), int(lease_ns))

    def read_executed(self, gid, rkey, t):
        """A one-sided READ's memory op executed against (gid, rkey)."""
        record = self._mr_retired.get((gid, rkey))
        if record is None:
            return
        self._note("mr.read_after_retract")
        retract_t, lease_ns = record
        if t > retract_t + lease_ns:
            self.violate(
                "mr-read-churn-window",
                t,
                f"READ executed against ({gid}, rkey={rkey}) at t={int(t)}, "
                f"{int(t) - retract_t} ns after its retraction at "
                f"{retract_t} -- past the one-lease ({lease_ns} ns) "
                "deferred-free window",
            )

    # ------------------------------------------------------------ meta plane

    def meta_write(self, server, key, value):
        """A meta shard applied a write (``value is None`` == delete)."""
        self._note("meta.write")
        self._meta_last[bytes(key)] = value

    # ------------------------------------------------------- completion path

    def wr_dispatch(self, module, wr_id):
        """``poll_inner`` on ``module`` saw a completion for ``wr_id``."""
        self._note("wr.dispatch")
        record = self._wr_seen.get(id(module))
        if record is None:
            self._wr_seen[id(module)] = [module, {wr_id}]
            return
        seen = record[1]
        if wr_id in seen:
            self.violate(
                "wr-exactly-once",
                module.sim.now,
                f"{module.node.gid} dispatched wr_id {wr_id} twice",
            )
        else:
            seen.add(wr_id)

    def batch_posted(self, qp, wrs):
        """A doorbell-batched chain was posted via ``post_send_batch``."""
        self._note("batch.posted")
        self._batch_chains += 1
        chain_no = self._batch_chains
        for index, wr in enumerate(wrs):
            self._batch_wrs[id(wr)] = [wr, qp, chain_no, index, 0]

    def wr_completed(self, qp, wr, status):
        """``QueuePair._complete`` resolved ``wr`` (every WR, batched or
        not; unsignaled successes count -- they resolve without a CQE).
        Only chain members registered by :meth:`batch_posted` are
        tracked, so unbatched traffic leaves no trace in the digest."""
        record = self._batch_wrs.get(id(wr))
        if record is None:
            return
        self._note("batch.complete")
        record[4] += 1
        if record[4] > 1:
            self.violate(
                "batch-exactly-once",
                qp.sim.now,
                f"qpn={qp.qpn} on {qp.node.gid}: chain {record[2]} WR "
                f"#{record[3]} (wr_id={wr.wr_id}) completed {record[4]} "
                f"times (last status {status.name})",
            )

    def rnic_busy(self, rnic, label, resource, start, end):
        """A serialized RNIC engine was occupied over [start, end]."""
        self._note("rnic.busy")
        record = self._busy.get(id(resource))
        if record is None:
            self._busy[id(resource)] = [resource, label, int(end)]
            return
        if start < record[2]:
            self.violate(
                "rnic-busy-conservation",
                rnic.sim.now,
                f"rnic@{rnic.node.gid} {label} interval [{start}, {end}] "
                f"overlaps previous busy interval ending at {record[2]}",
            )
        record[2] = max(record[2], int(end))

    # ------------------------------------------------------ degrade breakers

    #: The circuit-breaker state machine (mirrors
    #: ``repro.degrade.BREAKER_TRANSITIONS``; duplicated here so the
    #: checker does not import the layer it is auditing).
    _BREAKER_LEGAL = frozenset(
        [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
            ("half_open", "open"),
        ]
    )

    def breaker_transition(self, breaker, old, new, t):
        """A :class:`repro.degrade.CircuitBreaker` changed state."""
        self._note("breaker.transition")
        record = self._breakers.get(id(breaker))
        if record is None:
            record = self._breakers[id(breaker)] = [breaker, "closed"]
        if old != record[1]:
            self.violate(
                "breaker-state-sanity",
                t,
                f"breaker {breaker.name!r} reports transition from {old!r} "
                f"but was last observed in {record[1]!r}",
            )
        if (old, new) not in self._BREAKER_LEGAL:
            self.violate(
                "breaker-state-sanity",
                t,
                f"breaker {breaker.name!r} made illegal transition "
                f"{old!r} -> {new!r}",
            )
        record[1] = new

    # ----------------------------------------------------- admission control

    #: Legal lifecycle steps for one admission op: (previous, event).
    #: ``None`` = first observation of the op_id.
    _ADMISSION_LEGAL = frozenset(
        [
            (None, "admitted"),
            (None, "queued"),
            (None, "rejected"),
            ("queued", "admitted"),
            ("queued", "shed"),
        ]
    )

    def admission_event(self, gate, op_id, event, t):
        """One step in an :class:`repro.degrade.AdmissionGate` op's life."""
        self._note(f"admission.{event}")
        self._gates[id(gate)] = gate
        key = (id(gate), op_id)
        prev = self._admission.get(key)
        if (prev, event) not in self._ADMISSION_LEGAL:
            name = (
                "admission-no-drop"
                if prev == "admitted"
                else "admission-accounting"
            )
            self.violate(
                name,
                t,
                f"gate {gate.name!r} op {op_id}: illegal lifecycle step "
                f"{prev!r} -> {event!r}",
            )
        self._admission[key] = event

    # --------------------------------------------------------------- finalize

    def finalize(self, modules=(), plane=None, now=0):
        """Run the quiescence checks; call after the simulation drained."""
        modules = list(modules)
        self._finalize_pools(now)
        self._finalize_admission(now)
        if plane is not None:
            self._finalize_meta(plane, now)
        for module in modules:
            if module._wrid_tokens:
                self.violate(
                    "wr-exactly-once",
                    now,
                    f"{module.node.gid} left {len(module._wrid_tokens)} wr_id "
                    "token(s) undispatched at quiescence (lost completion)",
                )
        for wr, qp, chain_no, index, completions in self._batch_wrs.values():
            if completions == 0:
                self.violate(
                    "batch-exactly-once",
                    now,
                    f"qpn={qp.qpn} on {qp.node.gid}: chain {chain_no} WR "
                    f"#{index} (wr_id={wr.wr_id}, {wr.opcode.value}) never "
                    "completed (dropped successor of a faulted chain?)",
                )
        return self.violations

    def _finalize_pools(self, now):
        for qp, gid, rnic, state in self._rc_tracked.values():
            if qp.node.rnic is not rnic:
                continue  # the node restarted; that RNIC no longer exists
            registered = rnic.qp(qp.qpn) is qp
            if state in ("evicted", "dropped") and registered:
                self.violate(
                    "pool-qp-accounting",
                    now,
                    f"RCQP qpn={qp.qpn} to {gid} was {state} from the pool on "
                    f"{qp.node.gid} but is still RNIC-registered (leak)",
                )
            elif state == "pooled" and not registered:
                self.violate(
                    "pool-qp-accounting",
                    now,
                    f"RCQP qpn={qp.qpn} to {gid} is pool-owned on "
                    f"{qp.node.gid} but not RNIC-registered",
                )

    def _finalize_admission(self, now):
        for gate in self._gates.values():
            if gate.pending:
                self.violate(
                    "admission-accounting",
                    now,
                    f"gate {gate.name!r} still holds {gate.pending} queued "
                    "op(s) at quiescence (waiter neither admitted nor shed)",
                )
            settled = gate.stats_admitted + gate.stats_shed + gate.stats_rejected
            if gate.stats_arrivals != settled:
                self.violate(
                    "admission-accounting",
                    now,
                    f"gate {gate.name!r}: {gate.stats_arrivals} arrival(s) but "
                    f"{settled} settled (admitted={gate.stats_admitted} "
                    f"shed={gate.stats_shed} rejected={gate.stats_rejected})",
                )

    def _finalize_meta(self, plane, now):
        for key, expected in sorted(self._meta_last.items()):
            owners = [shard for shard in plane.owners(key) if shard.node.alive]
            if not owners:
                continue
            actual = {
                shard.node.gid: shard.store.get_local(key) for shard in owners
            }
            values = list(actual.values())
            label = key.decode("latin-1")
            if all(value != expected for value in values):
                self.violate(
                    "meta-lost-write",
                    now,
                    f"meta key {label}: last write {expected!r} visible on no "
                    f"live owner ({actual!r})",
                )
            elif any(value != expected for value in values):
                self.violate(
                    "meta-replica-divergence",
                    now,
                    f"meta key {label}: owners diverge at quiescence "
                    f"({actual!r}, expected {expected!r})",
                )

    # ---------------------------------------------------------------- export

    def to_dict(self):
        return {
            "violations": [v.to_dict() for v in self.violations],
            "observed": {k: self.observed[k] for k in sorted(self.observed)},
        }

    def digest(self):
        """SHA-256 over the canonical JSON of violations + hook counts."""
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()

    def summary(self):
        status = "PASS" if self.ok else f"FAIL({len(self.violations)})"
        hooks = sum(self.observed.values())
        return f"invariants={status} hook_events={hooks}"
