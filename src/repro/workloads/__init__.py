"""Workload generators: YCSB mixes, Zipf key popularity, load spikes."""

from repro.workloads.zipf import ZipfGenerator
from repro.workloads.ycsb import YcsbWorkload, YCSB_A, YCSB_B, YCSB_C
from repro.workloads.spike import LoadSpikeTrace
from repro.workloads.tpcc import TpccLayout, TpccWorkload

__all__ = [
    "LoadSpikeTrace",
    "TpccLayout",
    "TpccWorkload",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YcsbWorkload",
    "ZipfGenerator",
]
