"""A TPC-C-lite workload over the FaRM-style transaction substrate.

Fig 1 pairs FaRM-v2 with TPC-C; this module provides a scaled-down
New-Order / Payment mix whose transactions run through
:class:`repro.apps.txn.TxnClient` against passive storage.

Record-id layout (one flat id space, partitioned across storage nodes by
the TxnClient):

    warehouse w                      -> W_BASE + w            (ytd)
    district (w, d)                  -> D_BASE + w*10 + d     (next_o_id, ytd)
    customer (w, d, c)               -> C_BASE + (w*10 + d)*CUSTOMERS + c
                                                              (balance)
    stock (w, i)                     -> S_BASE + w*ITEMS + i  (quantity)
    order slot (w, d, o % ORDER_SLOTS)
                                     -> O_BASE + (w*10 + d)*ORDER_SLOTS + slot

All integers are stored big-endian in the first 8 bytes of the record;
the district packs (next_o_id << 32 | ytd).
"""

import random
import struct

DISTRICTS = 10
CUSTOMERS = 16
ITEMS = 64
ORDER_SLOTS = 64

_U64 = struct.Struct(">Q")


def _u64(raw):
    return _U64.unpack_from(raw)[0]


class TpccLayout:
    """Record-id arithmetic for ``num_warehouses``."""

    def __init__(self, num_warehouses=1):
        self.num_warehouses = num_warehouses
        self.w_base = 0
        self.d_base = self.w_base + num_warehouses
        self.c_base = self.d_base + num_warehouses * DISTRICTS
        self.s_base = self.c_base + num_warehouses * DISTRICTS * CUSTOMERS
        self.o_base = self.s_base + num_warehouses * ITEMS
        self.total_records = self.o_base + num_warehouses * DISTRICTS * ORDER_SLOTS

    def warehouse(self, w):
        return self.w_base + w

    def district(self, w, d):
        return self.d_base + w * DISTRICTS + d

    def customer(self, w, d, c):
        return self.c_base + (w * DISTRICTS + d) * CUSTOMERS + c

    def stock(self, w, item):
        return self.s_base + w * ITEMS + item

    def order_slot(self, w, d, order_id):
        return self.o_base + (w * DISTRICTS + d) * ORDER_SLOTS + order_id % ORDER_SLOTS


class TpccWorkload:
    """Generates and executes the New-Order / Payment mix."""

    def __init__(self, client, layout=None, seed=3, new_order_fraction=0.5,
                 initial_stock=10_000, initial_balance=1_000_000):
        self.client = client
        self.layout = layout or TpccLayout()
        self.rng = random.Random(seed)
        self.new_order_fraction = new_order_fraction
        self.initial_stock = initial_stock
        self.initial_balance = initial_balance
        self.stats = {"new_order": 0, "payment": 0}

    # -------------------------------------------------------------- loading

    def load(self, storages):
        """Populate initial state locally on the storage nodes.

        ``storages`` must follow the TxnClient's placement: record ``n`` on
        node ``n % len(storages)`` at local id ``n // len(storages)``.
        """
        layout = self.layout

        def put(record_id, value):
            storages[record_id % len(storages)].load(
                record_id // len(storages), _U64.pack(value)
            )

        for w in range(layout.num_warehouses):
            put(layout.warehouse(w), 0)
            for d in range(DISTRICTS):
                put(layout.district(w, d), 1 << 32)  # next_o_id=1, ytd=0
                for c in range(CUSTOMERS):
                    put(layout.customer(w, d, c), self.initial_balance)
            for item in range(ITEMS):
                put(layout.stock(w, item), self.initial_stock)

    # ------------------------------------------------------------ execution

    def next_transaction(self):
        """Process: run one randomly chosen transaction; returns its kind."""
        if self.rng.random() < self.new_order_fraction:
            yield from self.new_order()
            return "new_order"
        yield from self.payment()
        return "payment"

    def new_order(self):
        """Process: the TPC-C New-Order transaction (scaled down)."""
        layout = self.layout
        w = self.rng.randrange(layout.num_warehouses)
        d = self.rng.randrange(DISTRICTS)
        items = self.rng.sample(range(ITEMS), self.rng.randint(1, 4))
        quantities = [self.rng.randint(1, 5) for _ in items]

        def work(txn):
            district_raw = yield from txn.read(layout.district(w, d))
            packed = _u64(district_raw)
            order_id, ytd = packed >> 32, packed & 0xFFFFFFFF
            txn.write(layout.district(w, d), _U64.pack(((order_id + 1) << 32) | ytd))
            for item, quantity in zip(items, quantities):
                stock_raw = yield from txn.read(layout.stock(w, item))
                stock = _u64(stock_raw)
                if stock < quantity:
                    stock += 91  # TPC-C's restock rule
                txn.write(layout.stock(w, item), _U64.pack(stock - quantity))
            txn.write(layout.order_slot(w, d, order_id), _U64.pack(order_id))
            return order_id

        order_id = yield from self.client.run(work)
        self.stats["new_order"] += 1
        return order_id

    def payment(self):
        """Process: the TPC-C Payment transaction (scaled down)."""
        layout = self.layout
        w = self.rng.randrange(layout.num_warehouses)
        d = self.rng.randrange(DISTRICTS)
        c = self.rng.randrange(CUSTOMERS)
        amount = self.rng.randint(1, 50)

        def work(txn):
            warehouse_raw = yield from txn.read(layout.warehouse(w))
            txn.write(layout.warehouse(w), _U64.pack(_u64(warehouse_raw) + amount))
            district_raw = yield from txn.read(layout.district(w, d))
            packed = _u64(district_raw)
            order_id, ytd = packed >> 32, packed & 0xFFFFFFFF
            txn.write(layout.district(w, d), _U64.pack((order_id << 32) | (ytd + amount)))
            customer_raw = yield from txn.read(layout.customer(w, d, c))
            balance = _u64(customer_raw)
            txn.write(layout.customer(w, d, c), _U64.pack(balance - amount))
            return amount

        amount = yield from self.client.run(work)
        self.stats["payment"] += 1
        return amount
