"""Load-spike traces, like the ones motivating elastic scaling (§5.3.1)."""

from repro.sim import SEC


class LoadSpikeTrace:
    """A step-function offered load: ``base_rate`` until ``spike_at_ns``,
    then ``spike_rate`` (requests/second)."""

    def __init__(self, base_rate, spike_rate, spike_at_ns=0, end_ns=6 * SEC):
        if spike_rate < base_rate:
            raise ValueError("a spike should not lower the load")
        self.base_rate = base_rate
        self.spike_rate = spike_rate
        self.spike_at_ns = spike_at_ns
        self.end_ns = end_ns

    def rate_at(self, t_ns):
        """Offered load (requests/second) at simulated time ``t_ns``."""
        if t_ns < self.spike_at_ns or t_ns >= self.end_ns:
            return self.base_rate
        return self.spike_rate

    def offered_in_window(self, start_ns, end_ns):
        """Requests offered within [start_ns, end_ns)."""
        if end_ns <= start_ns:
            return 0.0
        total = 0.0
        # Integrate the step function across the window.
        points = sorted({start_ns, end_ns, max(start_ns, min(self.spike_at_ns, end_ns))})
        for left, right in zip(points, points[1:]):
            total += self.rate_at(left) * (right - left) / 1e9
        return total
