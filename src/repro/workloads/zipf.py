"""Zipfian key sampling (the distribution YCSB uses, theta = 0.99)."""

import bisect
import random


class ZipfGenerator:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^theta.

    Deterministic for a given seed; uses a precomputed CDF + bisect so
    sampling is O(log n).
    """

    def __init__(self, n, theta=0.99, seed=42):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        cdf = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / ((rank + 1) ** theta)
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def sample(self):
        point = self._rng.random()
        return bisect.bisect_left(self._cdf, point)

    def sample_many(self, count):
        return [self.sample() for _ in range(count)]
