"""YCSB workload mixes (Cooper et al., SoCC'10).

YCSB-C (100% reads, Zipfian) is the mix the paper uses for RACE (§5.3.1).
"""

import random

from repro.workloads.zipf import ZipfGenerator

YCSB_A = {"read": 0.5, "update": 0.5}
YCSB_B = {"read": 0.95, "update": 0.05}
YCSB_C = {"read": 1.0, "update": 0.0}


class YcsbWorkload:
    """Generates (op, key) pairs for a YCSB mix over ``num_keys`` keys."""

    def __init__(self, mix=None, num_keys=10_000, theta=0.99, seed=7):
        self.mix = dict(YCSB_C if mix is None else mix)
        read_fraction = self.mix.get("read", 0.0)
        update_fraction = self.mix.get("update", 0.0)
        if abs(read_fraction + update_fraction - 1.0) > 1e-9:
            raise ValueError("mix fractions must sum to 1")
        self.read_fraction = read_fraction
        self.num_keys = num_keys
        self._zipf = ZipfGenerator(num_keys, theta=theta, seed=seed)
        self._rng = random.Random(seed + 1)

    @staticmethod
    def key_bytes(rank):
        return b"user%08d" % rank

    def next_op(self):
        """Returns ("read"|"update", key_bytes)."""
        rank = self._zipf.sample()
        op = "read" if self._rng.random() < self.read_fraction else "update"
        return op, self.key_bytes(rank)

    def load_keys(self):
        """Every key, for the initial load phase."""
        return [self.key_bytes(rank) for rank in range(self.num_keys)]
