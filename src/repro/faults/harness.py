"""The chaos harness: YCSB over KRCORE under a seeded fault plan.

:func:`run_chaos` boots a meta server + KRCORE cluster, starts client
processes running a YCSB read/update mix as one-sided READ/WRITEs
against server-resident value slots, lets a :class:`FaultPlan` fire
underneath, and checks the robustness invariants:

* **exactly-once** -- every signaled WR completes or errors exactly
  once: the wr_id token table drains to empty, and Algorithm 2's covers
  cross-check (an AssertionError if violated) never fires;
* **no corruption** -- every delivered READ payload is self-consistent
  (all value words identical and tagged with the slot's rank, or the
  slot is still zero);
* **metadata convergence** -- after every fault has fired (including
  crash + restart), fresh qconnects and reads against every server
  succeed again;
* **lease safety** -- a retracted MR stops being readable at most one
  lease after retraction.

Every random choice is seeded, so one ``(seed, workload)`` pair gives a
byte-identical :class:`ChaosReport` -- ``report.digest()`` makes the
determinism testable.
"""

import hashlib

from repro.cluster import timing
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.krcore import KrcoreLib, KrcoreModule, MetaPlane, MetaServer
from repro.sim import Simulator
from repro.verbs import WcStatus
from repro.verbs.errors import KrcoreError, MetaUnavailableError
from repro.workloads.ycsb import YCSB_A, YcsbWorkload

#: Bytes per value slot; a multiple of the 8-byte tag word.
VALUE_BYTES = 64
_WORD = 8


def _value_word(rank, counter):
    """The 8-byte tag every word of a written value carries."""
    return (((rank + 1) << 32) | (counter & 0xFFFFFFFF)).to_bytes(_WORD, "big")


def _verify_value(rank, data):
    """True iff ``data`` is an uncorrupted slot image for ``rank``:
    either still all-zero, or every word identical and rank-tagged."""
    if data == b"\x00" * len(data):
        return True
    first = data[:_WORD]
    if int.from_bytes(first, "big") >> 32 != rank + 1:
        return False
    return all(
        data[i : i + _WORD] == first for i in range(_WORD, len(data), _WORD)
    )


class _ServerInfo:
    """Mutable handle to one server's data region (updated on restart)."""

    __slots__ = ("gid", "base", "rkey")

    def __init__(self, gid, base, rkey):
        self.gid = gid
        self.base = base
        self.rkey = rkey


class ChaosReport:
    """What one chaos run did; digest-able for determinism checks."""

    def __init__(self, seed):
        self.seed = seed
        self.op_log = []  # deterministic per-op lines
        self.fault_log = []  # (t, kind, summary) from the injector
        self.invariants = {}  # name -> bool
        self.ops_ok = 0
        self.ops_failed = 0
        self.retried_ops = 0
        self.stale_accepts = 0
        #: Shard failovers observed across all modules (informational --
        #: not part of the digest, like the other counters).
        self.meta_failovers = 0
        #: qconnects that degraded to a full RC handshake because every
        #: owner shard was unreachable.
        self.rc_fallbacks = 0

    def record(self, line):
        self.op_log.append(line)

    @property
    def all_invariants_hold(self):
        return bool(self.invariants) and all(self.invariants.values())

    def digest(self):
        hasher = hashlib.sha256()
        for line in self.op_log:
            hasher.update(line.encode())
            hasher.update(b"\n")
        for entry in self.fault_log:
            hasher.update(repr(entry).encode())
            hasher.update(b"\n")
        for name in sorted(self.invariants):
            hasher.update(f"{name}={self.invariants[name]}".encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def summary(self):
        return (
            f"seed={self.seed} ok={self.ops_ok} failed={self.ops_failed} "
            f"retried={self.retried_ops} faults={len(self.fault_log)} "
            f"invariants={'PASS' if self.all_invariants_hold else 'FAIL'}"
        )


class ChaosHarness:
    """One chaos run.  Use :func:`run_chaos` unless you need the pieces."""

    def __init__(
        self,
        seed,
        plan=None,
        num_servers=2,
        num_clients=2,
        ops_per_client=150,
        mix=None,
        num_keys=64,
        mr_lease_ns=2 * timing.MS,
        horizon_ns=8 * timing.MS,
        max_attempts=500,
        op_gap_ns=None,
        meta_shards=1,
    ):
        self.seed = seed
        self.sim = Simulator()
        self.report = ChaosReport(seed)
        self.num_keys = num_keys
        self.ops_per_client = ops_per_client
        self.mix = YCSB_A if mix is None else mix
        self.mr_lease_ns = mr_lease_ns
        self.horizon_ns = horizon_ns
        self.max_attempts = max_attempts
        # Pace each client across the fault horizon: back-to-back sync ops
        # would finish in microseconds, long before the plan fires.
        if op_gap_ns is None:
            op_gap_ns = max(horizon_ns // max(ops_per_client, 1), 0)
        self.op_gap_ns = op_gap_ns
        self._robust_seq = 0  # distinct jitter salt per _robust call
        self.module_kwargs = dict(background_rc=False, mr_lease_ns=mr_lease_ns)

        # Layout: nodes 0..S-1 = meta shards, then servers (the fault
        # victims), then clients.  Meta and client nodes are never
        # crashed, so every client process runs to completion and the
        # meta QPs survive -- meta failures are injected as (possibly
        # per-shard) outage windows instead.
        from repro.cluster import Cluster

        num_nodes = meta_shards + num_servers + num_clients
        self.cluster = Cluster(self.sim, num_nodes=num_nodes)
        self.meta_nodes = [self.cluster.node(i) for i in range(meta_shards)]
        self.meta_node = self.meta_nodes[0]
        self.server_nodes = [
            self.cluster.node(meta_shards + i) for i in range(num_servers)
        ]
        self.client_nodes = [
            self.cluster.node(meta_shards + num_servers + i)
            for i in range(num_clients)
        ]
        if meta_shards == 1:
            self.meta = MetaServer(self.meta_node)
        else:
            self.meta = MetaPlane([MetaServer(node) for node in self.meta_nodes])
        self.modules = {}
        for node in self.cluster.nodes:
            self.modules[node.gid] = KrcoreModule(node, self.meta, **self.module_kwargs)

        # Server data regions: one VALUE_BYTES slot per key rank.
        self.servers = {}
        for node in self.server_nodes:
            self.servers[node.gid] = self._register_data_region(node)

        if plan is None:
            plan = FaultPlan.random(
                seed,
                [n.gid for n in self.server_nodes],
                horizon_ns,
                meta_gid=self.meta_node.gid,
            )
        self.plan = plan
        self.injector = FaultInjector(
            self.cluster, self.meta, plan, on_restart=self._on_restart
        )
        self._clients_done = 0
        self._done_event = self.sim.event()

    # ------------------------------------------------------------------ setup

    def _register_data_region(self, node):
        length = self.num_keys * VALUE_BYTES
        addr = node.memory.alloc(length)
        region = node.memory.register(addr, length)
        module = self.modules[node.gid]
        module.valid_mr.record(region)
        self.meta.publish_mr(node.gid, region.rkey, region.addr, region.length)
        return _ServerInfo(node.gid, addr, region.rkey)

    def _on_restart(self, node):
        """Reload the software stack on a rebooted node, operator-style:
        a fresh KRCORE module (new DCT key) and the data region again."""
        self.modules[node.gid] = KrcoreModule(node, self.meta, **self.module_kwargs)
        self.servers[node.gid] = self._register_data_region(node)

    # ----------------------------------------------------------------- clients

    def _client(self, client_id, node):
        lib = KrcoreLib(node, cpu_id=0)
        workload = YcsbWorkload(
            mix=self.mix,
            num_keys=self.num_keys,
            seed=self.seed * 7919 + client_id,
        )
        scratch = node.memory.alloc(VALUE_BYTES)
        scratch_region = yield from self.modules[node.gid].reg_mr(scratch, VALUE_BYTES)
        vqps = {}
        for info in self.servers.values():
            vqp = yield from lib.create_vqp()
            yield from self._robust(
                lambda v=vqp, g=info.gid: lib.qconnect(v, g), vqp=vqp
            )
            vqps[info.gid] = vqp
        counter = 0
        server_gids = sorted(self.servers)
        for index in range(self.ops_per_client):
            if self.op_gap_ns:
                yield self.op_gap_ns
            kind, key = workload.next_op()
            rank = int(key[4:].decode())
            gid = server_gids[rank % len(server_gids)]
            if kind == "update":
                counter += 1
            outcome, attempts = yield from self._robust(
                lambda k=kind, r=rank, g=gid, c=counter: self._attempt(
                    lib, vqps[g], scratch, scratch_region, node, k, r, g, c
                ),
                vqp=vqps[gid],
            )
            self.report.record(
                f"t={self.sim.now} c{client_id} op{index} {kind} rank={rank} "
                f"srv={gid} {outcome} attempts={attempts}"
            )
        self._clients_done += 1
        if self._clients_done == len(self.client_nodes):
            self._done_event.trigger(None)

    def _attempt(self, lib, vqp, scratch, scratch_region, node, kind, rank, gid, counter):
        info = self.servers[gid]
        raddr = info.base + rank * VALUE_BYTES
        if kind == "read":
            yield from lib.read_sync(
                vqp, scratch, scratch_region.lkey, raddr, info.rkey, VALUE_BYTES
            )
            data = node.memory.read(scratch, VALUE_BYTES)
            if not _verify_value(rank, data):
                raise AssertionError(
                    f"corrupt read: rank={rank} data={data[:16].hex()}..."
                )
        else:
            node.memory.write(
                scratch, _value_word(rank, counter) * (VALUE_BYTES // _WORD)
            )
            yield from lib.write_sync(
                vqp, scratch, scratch_region.lkey, raddr, info.rkey, VALUE_BYTES
            )

    def _robust(self, make_process, vqp=None):
        """Process: run ``make_process()`` with the recovery policy --
        revalidate ``vqp`` on REM_ACCESS (stale DCT key after a restart),
        back off exponentially on everything else, give up after
        ``max_attempts``.

        Returns ("ok"|"failed:<reason>", attempts).
        """
        attempts = 0
        # Shared with the in-kernel retry loops (lookup_dct_robust): the
        # harness and control plane must not drift apart on backoff shape.
        backoff = timing.KRCORE_BACKOFF_BASE_NS
        # Seed-derived salt: each _robust call jitters its own way, so
        # clients knocked down by the same fault do not re-arrive as one
        # synchronized herd -- while (seed, workload) still fixes the run.
        self._robust_seq += 1
        salt = f"{self.seed}:{self._robust_seq}"
        last = "unknown"
        while attempts < self.max_attempts:
            attempts += 1
            try:
                yield from make_process()
                if attempts > 1:
                    self.report.retried_ops += 1
                self.report.ops_ok += 1
                return ("ok", attempts)
            except MetaUnavailableError:
                last = "meta_unavailable"
            except KrcoreError as err:
                code = err.code
                last = getattr(code, "value", None) or type(err).__name__
                if code is WcStatus.REM_ACCESS_ERR and vqp is not None:
                    # Stale metadata is the likely culprit (the server
                    # restarted with a new DCT key, or its data region is
                    # not re-registered yet): refresh and try again.
                    try:
                        yield from vqp.revalidate()
                    except KrcoreError:
                        pass
            yield backoff + timing.backoff_jitter_ns(backoff, salt, attempts)
            backoff = min(backoff * 2, timing.KRCORE_BACKOFF_MAX_NS)
        self.report.ops_failed += 1
        return (f"failed:{last}", attempts)

    # ------------------------------------------------------------ verification

    def _controller(self):
        """Process: wait for clients + the full fault schedule, then run
        the convergence, lease, and exactly-once checks."""
        yield self._done_event
        deadline = self._plan_end() + 500 * timing.US
        if self.sim.now < deadline:
            yield deadline - self.sim.now
        yield from self._check_convergence()
        yield from self._check_lease()
        self._check_exactly_once()
        self.report.fault_log = list(self.injector.applied)
        self.report.stale_accepts = sum(
            m.mr_store.stats_stale_accepts for m in self.modules.values()
        )
        self.report.meta_failovers = sum(
            m.stats_meta_failovers for m in self.modules.values()
        )
        self.report.rc_fallbacks = sum(
            m.stats_rc_fallbacks for m in self.modules.values()
        )

    def _plan_end(self):
        end = self.horizon_ns
        for event in self.plan.events:
            end = max(end, event.at_ns + event.params.get("duration_ns", 0))
        return end

    def _check_convergence(self):
        """Fresh qconnect + verified read against every server, from every
        client node: DCT metadata and MR records converged post-faults."""
        ok = True
        for cnum, node in enumerate(self.client_nodes):
            lib = KrcoreLib(node, cpu_id=1)
            scratch = node.memory.alloc(VALUE_BYTES)
            region = yield from self.modules[node.gid].reg_mr(scratch, VALUE_BYTES)
            for gid in sorted(self.servers):
                vqp = yield from lib.create_vqp()
                outcome, attempts = yield from self._robust(
                    lambda v=vqp, g=gid: self._verify_one(
                        lib, v, scratch, region, node, g
                    ),
                    vqp=vqp,
                )
                self.report.record(
                    f"t={self.sim.now} verify c{cnum} srv={gid} {outcome} "
                    f"attempts={attempts}"
                )
                if outcome != "ok":
                    ok = False
        self.report.invariants["convergence"] = ok

    def _verify_one(self, lib, vqp, scratch, region, node, gid):
        yield from lib.qconnect(vqp, gid)
        info = self.servers[gid]
        yield from lib.read_sync(
            vqp, scratch, region.lkey, info.base, info.rkey, VALUE_BYTES
        )
        data = node.memory.read(scratch, VALUE_BYTES)
        if not _verify_value(0, data):
            raise AssertionError(f"corrupt verify read from {gid}")

    def _check_lease(self):
        """Register, read, retract; one lease later the MR is unreadable."""
        crashed = self.plan.crash_targets()
        stable = [g for g in sorted(self.servers) if g not in crashed]
        gid = stable[0] if stable else sorted(self.servers)[0]
        server_node = next(n for n in self.cluster.nodes if n.gid == gid)
        smod = self.modules[gid]
        addr = server_node.memory.alloc(VALUE_BYTES)
        region = yield from smod.reg_mr(addr, VALUE_BYTES)
        yield 200 * timing.US  # let the publish land at the meta server

        node = self.client_nodes[0]
        lib = KrcoreLib(node, cpu_id=2)
        scratch = node.memory.alloc(VALUE_BYTES)
        sregion = yield from self.modules[node.gid].reg_mr(scratch, VALUE_BYTES)
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, gid)
        readable = True
        try:
            yield from lib.read_sync(
                vqp, scratch, sregion.lkey, addr, region.rkey, VALUE_BYTES
            )
        except KrcoreError:
            readable = False

        yield from smod.dereg_mr(region)
        yield self.mr_lease_ns + 200 * timing.US
        still_readable = True
        try:
            yield from lib.read_sync(
                vqp, scratch, sregion.lkey, addr, region.rkey, VALUE_BYTES
            )
        except KrcoreError:
            still_readable = False
        self.report.invariants["lease_safety"] = readable and not still_readable
        self.report.record(
            f"t={self.sim.now} lease srv={gid} before={readable} "
            f"after={still_readable}"
        )

    def _check_exactly_once(self):
        """The wr_id token table drains: every signaled WR's completion
        was dispatched exactly once (duplicates would KeyError / covers-
        mismatch during the run; leftovers would mean a lost one)."""
        leftover = {
            gid: len(module._wrid_tokens)
            for gid, module in self.modules.items()
            if module._wrid_tokens
        }
        self.report.invariants["exactly_once"] = not leftover
        self.report.invariants["no_corruption"] = True  # reads assert inline
        self.report.invariants["all_ops_resolved"] = self.report.ops_failed == 0
        if leftover:
            self.report.record(f"leftover_tokens={leftover}")

    # --------------------------------------------------------------------- run

    def run(self):
        self.injector.start()
        for cnum, node in enumerate(self.client_nodes):
            self.sim.process(
                self._client(cnum, node), name=f"chaos-client-{cnum}"
            )
        self.sim.process(self._controller(), name="chaos-controller")
        self.sim.run()
        return self.report


def run_chaos(seed, plan=None, **kwargs):
    """Run one seeded chaos experiment; returns its :class:`ChaosReport`."""
    return ChaosHarness(seed, plan=plan, **kwargs).run()
