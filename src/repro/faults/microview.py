"""MicroView churn chaos: pod dereg/re-register storms under meta faults.

The MR-churn counterpart of :func:`repro.faults.gray.run_gray_chaos`: a
collector node harvests every pod MR each cycle (rotating through the
serial / doorbell-batched / vectored strategies) while a seeded churn
driver retracts and re-registers pods out from under it and a fault plan
darkens the meta plane mid-run.  This is the scenario the MRStore
lease/epoch machinery exists for, and the run is checked end to end:

* ``no_dead_mr_read`` -- the :mod:`repro.check` churn-window invariant:
  no READ executes against an MR retracted more than one lease ago
  (``dereg_mr`` defers the physical free exactly one lease);
* ``degraded_mode_engaged`` -- the meta outage actually pushed the
  collector's MRStore into stale-accept mode *and* the stale fast path
  served repeat validations without re-running the lookup slow path;
* ``shared_qp_healthy`` -- KRCORE's software pre-checks kept every
  churn race (retracted rkey mid-harvest) from wrecking the shared
  physical QP (§3.1 C#3);
* ``harvest_progress`` / ``churn_and_faults_applied`` -- the run did
  what the scenario claims: every cycle completed with bytes harvested,
  pods churned, faults fired, and the churn hooks observed traffic;
* ``checker_clean`` -- the full invariant registry holds.

A short MR lease (``LEASE_NS``) makes epochs roll over mid-run, so lease
expiry, stale accepts, and the deferred free all actually happen inside
the simulated window.  Everything derives from the seed;
``report.digest()`` is byte-stable.
"""

import hashlib

from repro.apps.microview import Collector, KrcoreBackend, PodDirectory
from repro.apps.microview.collector import STRATEGIES
from repro.check import hooks as _check_hooks
from repro.check.invariants import Checker
from repro.cluster import Cluster, timing
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.krcore import KrcoreModule, MetaPlane, MetaServer
from repro.sim import Simulator
from repro.verbs.types import QpState

#: Short MR lease so epochs roll over inside the chaos window.
LEASE_NS = 200 * timing.US


class MicroViewChaosReport:
    """What one churn-chaos run did; digest-able for determinism checks."""

    def __init__(self, seed):
        self.seed = seed
        self.op_log = []
        self.fault_log = []
        self.invariants = {}
        self.cycles = 0
        self.bytes_ok = 0
        self.failed_reads = 0
        self.churns = 0
        self.stale_accepts = 0
        self.stale_hits = 0
        self.checker_summary = ""

    def record(self, line):
        self.op_log.append(line)

    @property
    def all_invariants_hold(self):
        return bool(self.invariants) and all(self.invariants.values())

    def digest(self):
        hasher = hashlib.sha256()
        for line in self.op_log:
            hasher.update(line.encode())
            hasher.update(b"\n")
        for entry in self.fault_log:
            hasher.update(repr(entry).encode())
            hasher.update(b"\n")
        for name in sorted(self.invariants):
            hasher.update(f"{name}={self.invariants[name]}".encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def summary(self):
        return (
            f"seed={self.seed} cycles={self.cycles} "
            f"harvested={self.bytes_ok}B failed={self.failed_reads} "
            f"churns={self.churns} stale_accepts={self.stale_accepts} "
            f"stale_hits={self.stale_hits} "
            f"invariants={'PASS' if self.all_invariants_hold else 'FAIL'}"
        )


class MicroViewChaosHarness:
    """One seeded churn-chaos run.  Use :func:`run_microview_chaos`
    unless tests need the pieces (directory, collector, plan)."""

    def __init__(
        self,
        seed,
        workers=2,
        pods_per_worker=4,
        cycles=14,
        cycle_gap_ns=150 * timing.US,
        # Slow enough that a good fraction of pods outlive the meta
        # outage: stale accepts need entries that *expire* (epoch roll)
        # rather than churn away (new rkey, no cached record).  One
        # exhausted lookup costs ~0.8ms (failover probes + backoff), so
        # the outage below must outlast a whole validation-storm cycle
        # (pods x 0.8ms) for the stale markers to get re-hit.
        churn_interval_ns=1500 * timing.US,
        horizon_ns=16 * timing.MS,
        plan=None,
        check=True,
    ):
        self.seed = seed
        self.cycles = cycles
        self.pods_per_worker = pods_per_worker
        self.cycle_gap_ns = cycle_gap_ns
        self.churn_interval_ns = churn_interval_ns
        self.horizon_ns = horizon_ns
        self.check = check
        self.report = MicroViewChaosReport(seed)

        # Layout: nodes 0-1 host the two meta shards, 2 the collector,
        # 3.. the workers.
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, num_nodes=3 + workers)
        self.meta_nodes = [self.cluster.node(0), self.cluster.node(1)]
        self.collector_node = self.cluster.node(2)
        self.worker_nodes = [self.cluster.node(3 + i) for i in range(workers)]
        self.meta = MetaPlane([MetaServer(node) for node in self.meta_nodes])
        self.modules = {}
        for node in self.cluster.nodes:
            self.modules[node.gid] = KrcoreModule(
                node, self.meta, mr_lease_ns=LEASE_NS, background_rc=False
            )

        self.backend = KrcoreBackend(self.collector_node)
        self.directory = PodDirectory(
            [(node, self.modules[node.gid]) for node in self.worker_nodes]
        )
        self.collector = Collector(self.collector_node, self.backend, self.directory)

        if plan is None:
            plan = self._default_plan()
        self.plan = plan
        self.injector = FaultInjector(self.cluster, self.meta, plan)

    def _default_plan(self):
        """Deterministic faults: a full-plane meta outage spanning an
        epoch boundary (forcing stale accepts), then one lagging shard,
        plus a gray link under the harvest path."""
        h = self.horizon_ns
        return (
            FaultPlan(seed=self.seed)
            # Long enough to span several epoch rolls AND one whole
            # validation-storm cycle past the first roll: the first
            # expired validation of each pod is a slow-path stale
            # accept, the next cycle's repeats hit the check_cached
            # stale fast path.
            .meta_outage(h // 8, duration_ns=h * 5 // 8)
            .gray_link(h // 4, self.collector_node.gid,
                       self.worker_nodes[0].gid,
                       duration_ns=h // 8, latency_mult=3.0)
            .lag_meta(h * 4 // 5, duration_ns=h // 10,
                      extra_ns=100 * timing.US, shard=0)
        )

    # ------------------------------------------------------------------- run

    def _harvest_loop(self):
        yield from self.directory.deploy(self.pods_per_worker)
        yield from self.collector.setup()
        self.sim.process(
            self.directory.churn_driver(
                self.churn_interval_ns, self.horizon_ns, seed=self.seed
            ),
            name="microview-chaos-churn",
        )
        for cycle in range(self.cycles):
            strategy = STRATEGIES[cycle % len(STRATEGIES)]
            before_ok = self.collector.stats.bytes_ok
            before_failed = self.collector.stats.failed_reads
            yield from self.collector.harvest_cycle(strategy)
            stats = self.collector.stats
            self.report.record(
                f"cycle{cycle} {strategy} t={self.sim.now} "
                f"lat={stats.cycle_ns[-1]} "
                f"ok={stats.bytes_ok - before_ok} "
                f"failed={stats.failed_reads - before_failed}"
            )
            yield self.cycle_gap_ns

    def _finish(self, checker):
        stats = self.collector.stats
        report = self.report
        report.fault_log = list(self.injector.applied)
        report.cycles = stats.cycles
        report.bytes_ok = stats.bytes_ok
        report.failed_reads = stats.failed_reads
        report.churns = self.directory.stats_churns
        store = self.backend.lib.module.mr_store
        report.stale_accepts = store.stats_stale_accepts
        report.stale_hits = store.stats_stale_hits
        inv = report.invariants
        inv["harvest_progress"] = stats.cycles == self.cycles and stats.bytes_ok > 0
        inv["churn_and_faults_applied"] = (
            report.churns > 0 and bool(report.fault_log)
        )
        inv["degraded_mode_engaged"] = (
            report.stale_accepts > 0 and report.stale_hits > 0
        )
        inv["shared_qp_healthy"] = all(
            vqp.qp is None or vqp.qp.state is not QpState.ERR
            for vqp in self.backend._vqps.values()
        )
        if checker is not None:
            inv["no_dead_mr_read"] = not any(
                v.invariant == "mr-read-churn-window" for v in checker.violations
            )
            hooks_live = (
                checker.observed.get("mr.registered", 0) > 0
                and checker.observed.get("mr.retracted", 0) > 0
            )
            inv["churn_and_faults_applied"] = (
                inv["churn_and_faults_applied"] and hooks_live
            )
            inv["checker_clean"] = checker.ok
            report.checker_summary = checker.summary()

    def run(self):
        checker = Checker() if self.check else None

        def _drive():
            self.injector.start()
            self.sim.process(self._harvest_loop(), name="microview-chaos-harvest")
            self.sim.run()

        if checker is not None:
            with _check_hooks.checking(checker):
                _drive()
                checker.finalize(
                    modules=self.modules.values(),
                    plane=self.meta,
                    now=self.sim.now,
                )
        else:
            _drive()
        self._finish(checker)
        return self.report


def run_microview_chaos(seed, plan=None, **kwargs):
    """Run one seeded MicroView churn-chaos experiment; returns its report."""
    return MicroViewChaosHarness(seed, plan=plan, **kwargs).run()
