"""Run a seeded chaos experiment from the command line.

    python -m repro.faults --seed 5
    python -m repro.faults --seed 5 --ops 50 --trace /tmp/chaos.json
    python -m repro.faults --seed 5 --metrics -
    python -m repro.faults --gray --seed 5
    python -m repro.faults --microview --seed 5
    python -m repro.faults --scale --seed 5 --partitions 4

One run boots the chaos harness (YCSB over KRCORE under a random fault
plan drawn from ``--seed``), prints the report summary and the applied
faults, and exits non-zero if any robustness invariant failed.

``--gray`` runs the *gray-failure* harness instead: a storm tenant
saturates the control plane while every component stays slow-but-alive,
and the invariants assert the overload-protection layer
(``repro.degrade``) keeps the well-behaved tenant's goodput and p99
bounded.  ``--unprotected`` drops the protection policy to demonstrate
the collapse the layer prevents.

``--microview`` runs the MR-churn harness: the MicroView collector
harvests per-pod MRs while a churn driver deregisters and re-registers
pods under it and a meta outage forces the MRStore into stale-accept
mode.  Invariants assert no READ ever executes against an MR retracted
more than one lease ago, the degraded mode actually engaged, and the
shared physical QP survived every churn race.

``--scale`` runs the partitioned-equivalence-under-faults harness: a
seeded ``node_slow`` plan over a rack topology, applied partition-
locally, with invariants asserting the faulted run digests identically
at ``partitions=1`` and ``--partitions`` (and that the faults actually
perturbed the run).  This is the chaos leg for the partitioned engine
(:mod:`repro.sim.partition`).

``--trace PATH`` installs the ``repro.obs`` tracer for the run and
exports Chrome trace-event JSON (Perfetto-loadable): every injected
fault shows up as an instant on the ``faults`` track, interleaved with
the qconnect/meta/retransmission spans it provoked.  ``--metrics PATH``
exports the flat metrics snapshot (``-`` prints to stdout).
"""

import argparse
import sys

from repro.faults.harness import run_chaos


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run one seeded chaos experiment against the KRCORE stack.",
    )
    parser.add_argument(
        "--gray", action="store_true",
        help="run the gray-failure harness (two tenants, overload "
             "protection) instead of the binary-fault YCSB harness",
    )
    parser.add_argument(
        "--unprotected", action="store_true",
        help="with --gray: drop the repro.degrade policy, demonstrating "
             "the goodput collapse the protection layer prevents",
    )
    parser.add_argument(
        "--microview", action="store_true",
        help="run the MicroView MR-churn harness (pod dereg/re-register "
             "storms + meta outage) instead of the binary-fault harness",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="run the partitioned-equivalence-under-faults harness "
             "(node_slow plan over a rack topology, digests compared "
             "across partition counts)",
    )
    parser.add_argument(
        "--partitions", type=int, default=2,
        help="with --scale: partition count to compare against "
             "partitions=1 (default 2)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="fault-plan and workload seed (default 1); one seed gives a "
             "byte-identical report digest",
    )
    parser.add_argument(
        "--servers", type=int, default=2, help="server (fault victim) nodes"
    )
    parser.add_argument(
        "--clients", type=int, default=2, help="client nodes"
    )
    parser.add_argument(
        "--ops", type=int, default=150, help="YCSB ops per client"
    )
    parser.add_argument(
        "--meta-shards", type=int, default=1,
        help="meta-plane shard count (default 1: the paper's single "
             "deployment)",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="export a Chrome trace (Perfetto-loadable JSON) of the run",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="export the metrics snapshot as JSON ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    if sum((args.gray, args.microview, args.scale)) > 1:
        parser.error("--gray, --microview, and --scale are mutually exclusive")

    if args.scale:
        from repro.faults.scale import run_scale_chaos

        report = run_scale_chaos(args.seed, partitions=args.partitions)
        print(report.summary())
        for at_ns, kind, summary in report.fault_log:
            print(f"  t={at_ns}ns {kind}: {summary}")
        for name in sorted(report.invariants):
            print(f"  {name}: {'PASS' if report.invariants[name] else 'FAIL'}")
        print(f"digest: {report.digest()}")
        return 0 if report.all_invariants_hold else 1

    if args.gray or args.microview:
        if args.gray:
            from repro.faults.gray import run_gray_chaos

            report = run_gray_chaos(args.seed, protected=not args.unprotected)
        else:
            from repro.faults.microview import run_microview_chaos

            report = run_microview_chaos(args.seed)
        print(report.summary())
        for at_ns, kind, summary in report.fault_log:
            print(f"  t={at_ns}ns {kind}: {summary}")
        for name in sorted(report.invariants):
            print(f"  {name}: {'PASS' if report.invariants[name] else 'FAIL'}")
        if report.checker_summary:
            print(f"  {report.checker_summary}")
        print(f"digest: {report.digest()}")
        return 0 if report.all_invariants_hold else 1

    if args.trace is None and args.metrics is None:
        report = run_chaos(
            args.seed,
            num_servers=args.servers,
            num_clients=args.clients,
            ops_per_client=args.ops,
            meta_shards=args.meta_shards,
        )
    else:
        from repro import obs
        from repro.bench.perf import _export

        with obs.observe() as (tracer, registry):
            report = run_chaos(
                args.seed,
                num_servers=args.servers,
                num_clients=args.clients,
                ops_per_client=args.ops,
                meta_shards=args.meta_shards,
            )
        _export(args.trace, tracer.to_json)
        _export(args.metrics, registry.to_json)

    print(report.summary())
    for at_ns, kind, summary in report.fault_log:
        print(f"  t={at_ns}ns {kind}: {summary}")
    print(f"digest: {report.digest()}")
    return 0 if report.all_invariants_hold else 1


if __name__ == "__main__":
    sys.exit(main())
