"""Deterministic fault injection for the simulated KRCORE cluster.

Three pieces:

* :mod:`repro.faults.plan` -- a :class:`FaultPlan` is a seeded, fully
  deterministic schedule of faults (packet loss/duplication, latency
  degradation, RNIC stalls, node crash + restart, meta-server outages)
  pinned to simulated timestamps.
* :mod:`repro.faults.injector` -- a :class:`FaultInjector` walks a plan
  inside the simulation and applies each fault to the cluster.
* :mod:`repro.faults.harness` -- :func:`run_chaos` drives YCSB traffic
  over KRCORE while a plan fires, asserting the robustness invariants
  (exactly-once completion, no byte corruption, metadata convergence,
  lease safety) and returning a digest-able report.
"""

from repro.faults.harness import ChaosReport, run_chaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "run_chaos",
]
