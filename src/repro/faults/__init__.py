"""Deterministic fault injection for the simulated KRCORE cluster.

Three pieces:

* :mod:`repro.faults.plan` -- a :class:`FaultPlan` is a seeded, fully
  deterministic schedule of faults (packet loss/duplication, latency
  degradation, RNIC stalls, node crash + restart, meta-server outages)
  pinned to simulated timestamps.
* :mod:`repro.faults.injector` -- a :class:`FaultInjector` walks a plan
  inside the simulation and applies each fault to the cluster.
* :mod:`repro.faults.harness` -- :func:`run_chaos` drives YCSB traffic
  over KRCORE while a plan fires, asserting the robustness invariants
  (exactly-once completion, no byte corruption, metadata convergence,
  lease safety) and returning a digest-able report.
* :mod:`repro.faults.gray` -- :func:`run_gray_chaos` drives a two-tenant
  workload under *gray* faults (slow-but-alive links, lagging meta
  shards, throttling RNICs), asserting that the overload-protection
  layer (:mod:`repro.degrade`) keeps the well-behaved tenant's goodput
  and p99 bounded while a storm tenant saturates the control plane.
"""

from repro.faults.gray import GrayChaosReport, run_gray_chaos
from repro.faults.harness import ChaosReport, run_chaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GrayChaosReport",
    "run_chaos",
    "run_gray_chaos",
]
