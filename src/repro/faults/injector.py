"""The fault injector: walks a FaultPlan inside the simulation.

One driver process sleeps between the plan's (sorted) timestamps and
applies each event when it falls due.  Link faults are installed with a
private LCG seeded from ``(plan.seed, event index)``, so the packet-level
drop/duplicate draws are reproducible run-to-run regardless of how many
packets the workload pushes through.

A node crash also retracts the victim's DCT metadata from the meta
server, playing the role of the deployment's failure detector (§4.2:
metadata is "only invalidated when the host is down").  The restart
event reboots the node and then calls the harness-supplied ``on_restart``
hook, which is responsible for reloading the software stack (KRCORE
module, MR registrations) exactly like an operator would.
"""

from repro.cluster.fabric import LinkFault
from repro.faults import plan as plan_mod
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to a cluster."""

    def __init__(self, cluster, meta_server, plan, on_restart=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.fabric = cluster.fabric
        self.meta_server = meta_server
        self.plan = plan
        self.on_restart = on_restart
        #: Applied (timestamp, kind, summary) triples, for reports.
        self.applied = []

    def start(self):
        """Spawn the driver process; returns self for chaining."""
        self.sim.process(self._driver(), name="fault-injector")
        return self

    # -------------------------------------------------------------- driver

    def _node(self, gid):
        for node in self.cluster.nodes:
            if node.gid == gid:
                return node
        raise ValueError(f"no node {gid} in cluster")

    def _driver(self):
        for index, event in enumerate(self.plan.sorted_events()):
            delay = event.at_ns - self.sim.now
            if delay > 0:
                yield delay
            self._apply(index, event)
        yield 0

    def _apply(self, index, event):
        params = event.params
        kind = event.kind
        if kind == plan_mod.LINK_FAULT:
            src, dst = params["src_gid"], params["dst_gid"]
            fault = LinkFault(
                drop_prob=params["drop_prob"],
                dup_prob=params["dup_prob"],
                extra_ns=params["extra_ns"],
                seed=self.plan.seed * 1_000_003 + index,
            )
            self.fabric.set_link_fault(src, dst, fault)
            self.sim.schedule(
                params["duration_ns"],
                lambda s=src, d=dst: self.fabric.clear_link_fault(s, d),
            )
            summary = f"{src}->{dst} drop={params['drop_prob']} dup={params['dup_prob']}"
        elif kind == plan_mod.RNIC_STALL:
            node = self._node(params["gid"])
            self.sim.process(
                node.rnic.stall(params["duration_ns"], engine=params["engine"]),
                name=f"fault-stall@{node.gid}",
            )
            summary = f"{node.gid} {params['engine']} {params['duration_ns']}ns"
        elif kind == plan_mod.NODE_CRASH:
            node = self._node(params["gid"])
            node.fail()
            # The failure detector: §4.2 invalidates a dead host's DCT
            # metadata at the meta server.  Remote DCCaches stay stale on
            # purpose -- hitting them exercises revalidation.
            self.meta_server.retract_node(node.gid)
            summary = node.gid
        elif kind == plan_mod.NODE_RESTART:
            node = self._node(params["gid"])
            node.restart()
            if self.on_restart is not None:
                self.on_restart(node)
            summary = node.gid
        elif kind == plan_mod.META_OUTAGE:
            shard = params.get("shard")
            self.meta_server.set_outage(params["duration_ns"], shard=shard)
            summary = f"{params['duration_ns']}ns"
            if shard is not None:
                summary += f" shard={shard}"
        elif kind == plan_mod.GRAY_LINK:
            src, dst = params["src_gid"], params["dst_gid"]
            fault = LinkFault(
                extra_ns=params["extra_ns"],
                latency_mult=params["latency_mult"],
                seed=self.plan.seed * 1_000_003 + index,
            )
            self.fabric.set_link_fault(src, dst, fault)
            self.sim.schedule(
                params["duration_ns"],
                lambda s=src, d=dst: self.fabric.clear_link_fault(s, d),
            )
            summary = f"{src}->{dst} x{params['latency_mult']}"
        elif kind == plan_mod.META_LAG:
            shard = params.get("shard")
            self.meta_server.set_lag(
                params["duration_ns"], params["extra_ns"], shard=shard
            )
            summary = f"+{params['extra_ns']}ns for {params['duration_ns']}ns"
            if shard is not None:
                summary += f" shard={shard}"
        elif kind == plan_mod.RNIC_DEGRADE:
            node = self._node(params["gid"])
            node.rnic.set_degraded(params["duration_ns"], params["factor"])
            summary = f"{node.gid} x{params['factor']} {params['duration_ns']}ns"
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        if _trace.TRACER is not None:
            _trace.TRACER.instant(
                self.sim.now, "faults", f"fault.{kind}", summary=summary
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("faults.injected").inc()
            _metrics.METRICS.counter(f"faults.{kind}").inc()
        self.applied.append((self.sim.now, kind, summary))
