"""Partition-local fault targeting for the cluster-scale model.

The partitioned engine's fault story has one rule: **a fault belongs to
the partition that owns its target**.  A :class:`~repro.faults.plan
.FaultPlan` of ``node_slow`` windows names nodes by gid; each partition
applies exactly the windows of the nodes it owns (the model filters by
ownership when it builds per-node state), so the same plan perturbs the
same simulated entities identically at every partition count — which is
what this harness proves, run by run.

``run_scale_chaos`` draws a seeded ``node_slow`` plan over a rack
topology, runs the qconnect-storm model at ``partitions=1`` and at the
requested partition count (plus a clean P=1 control run), and checks:

* ``digests_match`` — the faulted run's digest is identical at every
  partition count (the headline equivalence-under-faults invariant);
* ``faults_applied`` — the faulted digest differs from the clean one
  (a plan that perturbs nothing proves nothing);
* ``all_ops_complete`` — slowdowns delay ops but never lose them;
* ``latency_degraded`` — mean qconnect latency under faults is at least
  the clean mean (service multipliers only ever add time).

Reports digest deterministically: one ``(seed, partitions)`` pair gives
one byte sequence, on every engine and host.
"""

import hashlib

from repro.cluster.scale import ScaleSpec, run_scale
from repro.faults.plan import NODE_SLOW, FaultPlan


def faults_from_plan(plan, topology):
    """Lower a ``node_slow`` plan onto the scale model's fault tuples.

    Returns ``(node, at_ns, duration_ns, mult)`` tuples in plan order.
    Raises on any other fault kind: the scale model's entities are
    abstract service queues, so link/crash/meta kinds have no meaning
    here and silently dropping them would fake coverage.
    """
    gid_to_node = {topology.gid(node): node for node in range(topology.num_nodes)}
    out = []
    for event in plan.sorted_events():
        if event.kind != NODE_SLOW:
            raise ValueError(
                f"the scale model only consumes node_slow faults, got "
                f"{event.kind!r} at t={event.at_ns}"
            )
        gid = event.params["gid"]
        if gid not in gid_to_node:
            raise ValueError(f"fault targets unknown node {gid!r}")
        out.append((
            gid_to_node[gid],
            event.at_ns,
            event.params["duration_ns"],
            event.params["factor"],
        ))
    return out


class ScaleChaosReport:
    """Outcome of one partitioned-equivalence-under-faults run."""

    def __init__(self, spec, partitions):
        self.spec = spec
        self.partitions = partitions
        self.fault_log = []  # (t, kind, summary) mirroring the other harnesses
        self.digests = {}  # partition count -> faulted digest
        self.clean_digest = None
        self.completed = 0
        self.expected = 0
        self.clean_mean_ns = 0.0
        self.faulted_mean_ns = 0.0
        self.windows = 0
        self.invariants = {}

    @property
    def all_invariants_hold(self):
        return all(self.invariants.values())

    def digest(self):
        h = hashlib.sha256()
        h.update(repr(sorted(self.spec.to_dict().items())).encode())
        for entry in self.fault_log:
            h.update(repr(entry).encode())
        for count in sorted(self.digests):
            h.update(f"{count}:{self.digests[count]}".encode())
        h.update((self.clean_digest or "").encode())
        h.update(f"{self.completed}/{self.expected}".encode())
        return h.hexdigest()

    def summary(self):
        return (
            f"scale-chaos seed={self.spec.seed} partitions={self.partitions} "
            f"nodes={self.spec.racks * self.spec.nodes_per_rack} "
            f"ops={self.completed}/{self.expected} windows={self.windows} "
            f"faults={len(self.fault_log)} "
            f"mean={self.clean_mean_ns:.0f}ns->{self.faulted_mean_ns:.0f}ns "
            f"invariants={'PASS' if self.all_invariants_hold else 'FAIL'}"
        )


def run_scale_chaos(seed, partitions=2, racks=6, nodes_per_rack=2,
                    tenants_per_node=2, ops_per_tenant=12,
                    mean_think_ns=6_000, fault_events=4, engine="default",
                    mode="inline"):
    """Prove fault-targeting equivalence for one seed; see module doc."""
    clean_spec = ScaleSpec(
        racks=racks, nodes_per_rack=nodes_per_rack,
        tenants_per_node=tenants_per_node, ops_per_tenant=ops_per_tenant,
        mean_think_ns=mean_think_ns, seed=seed, engine=engine,
    )
    topology = clean_spec.topology()
    # Horizon estimate: every tenant thinks ~mean between its ops.
    horizon = 2 * ops_per_tenant * mean_think_ns
    plan = FaultPlan.random_scale(seed, topology, horizon, events=fault_events)
    faulted_spec = ScaleSpec.from_dict({
        **clean_spec.to_dict(),
        "faults": faults_from_plan(plan, topology),
    })

    report = ScaleChaosReport(faulted_spec, partitions)
    report.fault_log = [
        (e.at_ns, e.kind,
         f"{e.params['gid']} x{e.params['factor']} for {e.params['duration_ns']}ns")
        for e in plan.sorted_events()
    ]

    clean = run_scale(clean_spec, partitions=1)
    base = run_scale(faulted_spec, partitions=1)
    other = run_scale(faulted_spec, partitions=partitions, mode=mode)

    report.clean_digest = clean.digest()
    report.digests = {1: base.digest(), partitions: other.digest()}
    report.completed = other.completed
    report.expected = (racks * nodes_per_rack * tenants_per_node
                       * ops_per_tenant)
    report.clean_mean_ns = clean.mean_latency_ns()
    report.faulted_mean_ns = base.mean_latency_ns()
    report.windows = other.windows

    report.invariants = {
        "digests_match": base.digest() == other.digest(),
        "faults_applied": base.digest() != clean.digest(),
        "all_ops_complete": other.completed == report.expected,
        "latency_degraded": report.faulted_mean_ns >= report.clean_mean_ns,
    }
    return report
