"""Fault plans: seeded, deterministic schedules of cluster faults.

A plan is data, not behavior: a sorted list of :class:`FaultEvent`
records, each naming a fault kind, a simulated timestamp, and kind-
specific parameters.  The :class:`repro.faults.injector.FaultInjector`
interprets them.  Because every random choice (both in
:meth:`FaultPlan.random` and in the per-link packet draws seeded from
the plan) derives from the plan's seed, a chaos run is reproducible from
``(seed, workload parameters)`` alone.
"""

import random

from repro.cluster import timing

#: Fault kinds understood by the injector.
LINK_FAULT = "link_fault"  # gid pair degraded for a window
RNIC_STALL = "rnic_stall"  # one engine wedged for a duration
NODE_CRASH = "node_crash"  # node fails (fabric detach + alive=False)
NODE_RESTART = "node_restart"  # failed node reboots (fresh RNIC/DRAM)
META_OUTAGE = "meta_outage"  # meta service unreachable for a window

#: Gray-failure kinds: everything stays alive, everything gets slow.
GRAY_LINK = "gray_link"  # wire latency multiplied for a window
META_LAG = "meta_lag"  # meta lookups serve with extra latency
RNIC_DEGRADE = "rnic_degrade"  # RNIC engines run N times slower
NODE_SLOW = "node_slow"  # node-local service times multiplied for a window


class FaultEvent:
    """One scheduled fault.  ``params`` is kind-specific (see builders)."""

    __slots__ = ("at_ns", "kind", "params")

    def __init__(self, at_ns, kind, **params):
        self.at_ns = int(at_ns)
        self.kind = kind
        self.params = params

    def __repr__(self):
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"FaultEvent(at={self.at_ns}, kind={self.kind!r}, {inner})"


class FaultPlan:
    """A deterministic fault schedule.

    Builder methods append events and return ``self`` for chaining::

        plan = (
            FaultPlan(seed=42)
            .degrade_link(1 * MS, "node2", "node1", duration_ns=2 * MS,
                          drop_prob=0.05)
            .crash_node(3 * MS, "node1")
            .restart_node(5 * MS, "node1")
        )
    """

    def __init__(self, seed=1):
        self.seed = seed
        self.events = []

    # ------------------------------------------------------------- builders

    def _add(self, event):
        self.events.append(event)
        return self

    def degrade_link(
        self,
        at_ns,
        src_gid,
        dst_gid,
        duration_ns,
        drop_prob=0.0,
        dup_prob=0.0,
        extra_ns=0,
        both_ways=False,
    ):
        """Degrade the directed link src -> dst (and optionally the
        reverse) for ``duration_ns``: packets drop / duplicate with the
        given probabilities and every traversal gains ``extra_ns``."""
        self._add(
            FaultEvent(
                at_ns,
                LINK_FAULT,
                src_gid=src_gid,
                dst_gid=dst_gid,
                duration_ns=int(duration_ns),
                drop_prob=drop_prob,
                dup_prob=dup_prob,
                extra_ns=int(extra_ns),
            )
        )
        if both_ways:
            self.degrade_link(
                at_ns,
                dst_gid,
                src_gid,
                duration_ns,
                drop_prob=drop_prob,
                dup_prob=dup_prob,
                extra_ns=extra_ns,
            )
        return self

    def stall_rnic(self, at_ns, gid, duration_ns, engine="command"):
        """Wedge one of ``gid``'s RNIC engines (``"command"`` or
        ``"inbound"``) for ``duration_ns``; queued work backs up FIFO."""
        return self._add(
            FaultEvent(
                at_ns, RNIC_STALL, gid=gid, duration_ns=int(duration_ns), engine=engine
            )
        )

    def crash_node(self, at_ns, gid):
        """Fail ``gid``: detached from the fabric, in-flight inbound ops
        error out on the requester side, DCT metadata is retracted."""
        return self._add(FaultEvent(at_ns, NODE_CRASH, gid=gid))

    def restart_node(self, at_ns, gid):
        """Reboot a previously crashed ``gid`` (fresh RNIC, DRAM, and a
        new DCT key once its software stack reloads)."""
        return self._add(FaultEvent(at_ns, NODE_RESTART, gid=gid))

    def meta_outage(self, at_ns, duration_ns, shard=None):
        """Make the meta service unreachable for ``duration_ns``.

        With a sharded plane, ``shard=i`` darkens only shard ``i`` (its
        replicas keep serving, so clients fail over); ``shard=None``
        darkens the whole plane, forcing the RC-fallback degraded path."""
        return self._add(
            FaultEvent(at_ns, META_OUTAGE, duration_ns=int(duration_ns), shard=shard)
        )

    def gray_link(
        self,
        at_ns,
        src_gid,
        dst_gid,
        duration_ns,
        latency_mult=4.0,
        extra_ns=0,
        both_ways=False,
    ):
        """Gray-degrade the directed link src -> dst for ``duration_ns``:
        no loss, but every traversal takes ``latency_mult`` times longer
        (plus ``extra_ns``) -- a congested or renegotiated-down link."""
        self._add(
            FaultEvent(
                at_ns,
                GRAY_LINK,
                src_gid=src_gid,
                dst_gid=dst_gid,
                duration_ns=int(duration_ns),
                latency_mult=float(latency_mult),
                extra_ns=int(extra_ns),
            )
        )
        if both_ways:
            self.gray_link(
                at_ns,
                dst_gid,
                src_gid,
                duration_ns,
                latency_mult=latency_mult,
                extra_ns=extra_ns,
            )
        return self

    def lag_meta(self, at_ns, duration_ns, extra_ns, shard=None):
        """Lag the meta service: lookups keep *succeeding* but each takes
        ``extra_ns`` longer for ``duration_ns``.  The hard half of the
        meta fault space -- outages trip the binary defenses (retry, RC
        fallback); lag is only visible to latency-aware ones (circuit
        breakers, deadline budgets).  ``shard`` routes as in
        :meth:`meta_outage`."""
        return self._add(
            FaultEvent(
                at_ns,
                META_LAG,
                duration_ns=int(duration_ns),
                extra_ns=int(extra_ns),
                shard=shard,
            )
        )

    def degrade_rnic(self, at_ns, gid, duration_ns, factor=8.0):
        """Run ``gid``'s RNIC engines ``factor`` times slower for
        ``duration_ns`` (thermal throttling / sick firmware)."""
        return self._add(
            FaultEvent(
                at_ns,
                RNIC_DEGRADE,
                gid=gid,
                duration_ns=int(duration_ns),
                factor=float(factor),
            )
        )

    def slow_node(self, at_ns, gid, duration_ns, factor=4.0):
        """Gray-degrade ``gid``'s *local service times* by ``factor`` for
        ``duration_ns`` — a sick host (CPU contention, page-cache storms)
        rather than a sick NIC.  This is the fault kind the partitioned
        cluster-scale model consumes: it is node-local by construction,
        so the partition that owns the node applies it identically at
        every partition count (see :mod:`repro.faults.scale`)."""
        return self._add(
            FaultEvent(
                at_ns,
                NODE_SLOW,
                gid=gid,
                duration_ns=int(duration_ns),
                factor=float(factor),
            )
        )

    # -------------------------------------------------------------- queries

    def sorted_events(self):
        """Events in firing order (stable for same-timestamp events)."""
        return sorted(self.events, key=lambda e: e.at_ns)

    def crash_targets(self):
        return {e.params["gid"] for e in self.events if e.kind == NODE_CRASH}

    def for_gids(self, gids):
        """The sub-plan of events targeting ``gids`` (same seed).

        Partition-local fault targeting: a partitioned runner hands each
        partition the sub-plan for the gids it owns, and the union over
        partitions is exactly the full plan — every event names at most
        one gid, so no event is duplicated or dropped by the split.
        Events without a ``gid``/``src_gid`` parameter (e.g. whole-plane
        meta outages) are global and excluded; route those through
        whichever entity owns the faulted service instead.
        """
        gids = set(gids)
        sub = FaultPlan(seed=self.seed)
        for event in self.events:
            target = event.params.get("gid", event.params.get("src_gid"))
            if target is not None and target in gids:
                sub.events.append(event)
        return sub

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return f"FaultPlan(seed={self.seed}, events={len(self.events)})"

    # ------------------------------------------------------------ generation

    @classmethod
    def random(
        cls,
        seed,
        victim_gids,
        horizon_ns,
        meta_gid=None,
        crash_ok=True,
        events=6,
    ):
        """A random-but-reproducible plan over ``victim_gids``.

        ``meta_gid`` (if given) is never crashed or stalled -- outages are
        injected through :meth:`meta_outage` windows instead, so the
        pre-connected meta QPs survive and the degraded paths (backoff,
        stale-lease acceptance, RC fallback) stay reachable.  A crashed
        victim is always scheduled to restart before ``horizon_ns``.
        """
        rng = random.Random(seed)
        victims = [g for g in victim_gids if g != meta_gid]
        if not victims:
            raise ValueError("no victim gids to build a plan from")
        plan = cls(seed=seed)
        crashed = set()
        for _ in range(events):
            kind = rng.choice(
                [LINK_FAULT, LINK_FAULT, RNIC_STALL, NODE_CRASH, META_OUTAGE]
            )
            at = rng.randrange(horizon_ns // 10, (horizon_ns * 6) // 10)
            if kind == LINK_FAULT:
                src = rng.choice(victims)
                dst = rng.choice([g for g in victim_gids if g != src] or victims)
                plan.degrade_link(
                    at,
                    src,
                    dst,
                    duration_ns=rng.randrange(horizon_ns // 10, horizon_ns // 3),
                    drop_prob=rng.choice([0.02, 0.05, 0.10]),
                    dup_prob=rng.choice([0.0, 0.02]),
                    extra_ns=rng.choice([0, 2 * timing.US]),
                    both_ways=rng.random() < 0.5,
                )
            elif kind == RNIC_STALL:
                plan.stall_rnic(
                    at,
                    rng.choice(victims),
                    duration_ns=rng.randrange(10 * timing.US, 100 * timing.US),
                    engine=rng.choice(["command", "inbound"]),
                )
            elif kind == NODE_CRASH and crash_ok:
                candidates = [g for g in victims if g not in crashed]
                if not candidates:
                    continue
                gid = rng.choice(candidates)
                crashed.add(gid)
                plan.crash_node(at, gid)
                plan.restart_node(
                    at + rng.randrange(horizon_ns // 10, horizon_ns // 4), gid
                )
            elif kind == META_OUTAGE:
                plan.meta_outage(
                    at, duration_ns=rng.randrange(horizon_ns // 20, horizon_ns // 8)
                )
        return plan

    @classmethod
    def random_gray(cls, seed, victim_gids, horizon_ns, meta_shards=1, events=6):
        """A random-but-reproducible *gray* plan: latency multipliers
        only, never a binary outage.  Everything stays reachable for the
        whole run -- the storm the overload-protection layer has to ride
        out rather than fail over from."""
        rng = random.Random(seed)
        victims = list(victim_gids)
        if not victims:
            raise ValueError("no victim gids to build a plan from")
        plan = cls(seed=seed)
        for _ in range(events):
            kind = rng.choice([GRAY_LINK, GRAY_LINK, META_LAG, RNIC_DEGRADE])
            at = rng.randrange(horizon_ns // 10, (horizon_ns * 6) // 10)
            duration = rng.randrange(horizon_ns // 10, horizon_ns // 3)
            if kind == GRAY_LINK:
                src = rng.choice(victims)
                dst = rng.choice([g for g in victims if g != src] or victims)
                plan.gray_link(
                    at,
                    src,
                    dst,
                    duration_ns=duration,
                    latency_mult=rng.choice([2.0, 4.0, 8.0]),
                    extra_ns=rng.choice([0, 2 * timing.US]),
                    both_ways=rng.random() < 0.5,
                )
            elif kind == META_LAG:
                plan.lag_meta(
                    at,
                    duration_ns=duration,
                    extra_ns=rng.choice([20, 50, 100]) * timing.US,
                    shard=rng.choice([None] + list(range(meta_shards))),
                )
            else:
                plan.degrade_rnic(
                    at,
                    rng.choice(victims),
                    duration_ns=duration,
                    factor=rng.choice([4.0, 8.0, 16.0]),
                )
        return plan

    @classmethod
    def random_scale(cls, seed, topology, horizon_ns, events=4):
        """A random-but-reproducible plan of ``node_slow`` windows over a
        :class:`repro.cluster.topology.RackTopology` — the fault family
        the partitioned cluster-scale model applies partition-locally.
        """
        rng = random.Random(seed)
        if topology.num_nodes < 1:
            raise ValueError("no nodes to build a plan from")
        plan = cls(seed=seed)
        for _ in range(events):
            node = rng.randrange(topology.num_nodes)
            at = rng.randrange(horizon_ns // 10, (horizon_ns * 6) // 10)
            plan.slow_node(
                at,
                topology.gid(node),
                duration_ns=rng.randrange(horizon_ns // 10, horizon_ns // 3),
                factor=rng.choice([2.0, 4.0, 8.0]),
            )
        return plan
