"""Gray-failure chaos: two tenants, one sick meta shard, no outages.

:func:`run_gray_chaos` is the overload-protection counterpart of
:func:`repro.faults.harness.run_chaos`.  The binary harness proves the
stack survives crashes and outages; this one proves it stays *useful*
under gray failure -- every component alive, one of them slow -- which
is the regime binary defenses (retry, RC fallback) cannot even see.

The scenario
------------

A cluster with a two-shard meta plane, three servers, and two client
nodes hosting two tenants:

* the **victim**: a well-behaved tenant issuing paced, open-loop
  qconnects (each forced through the uncached path, so each costs a
  real meta lookup), with an SLO on every op;
* the **storm**: a misbehaving tenant running closed-loop workers that
  hammer uncached qconnects against a server whose metadata lives on
  the *same* primary shard the victim needs.

A seeded gray plan then makes that shard sick: ``lag_meta`` (answers
arrive, half a millisecond late), a ``gray_link`` under the storm's
feet, and ``rnic_degrade`` on the shard host.  Nothing is ever down, so
nothing fails over on its own.

With ``protected=False`` the victim's lookups queue behind the lag at
its meta-client mutex, latencies compound into the milliseconds, and
goodput (ops completing within the SLO) collapses.  With
``protected=True`` (a :class:`repro.degrade.DegradePolicy` on both
tenants) the run rides it out: deadlines kill queued work whose budget
died, those deadline corpses feed the shard's circuit breaker, the
breaker opens and routes the victim to the healthy replica shard, and
the storm's admission gate sheds its excess before it reaches the wire.

Invariants (asserted by tests on the protected run, and expected to
*fail* on the unprotected one):

* ``victim_goodput_floor`` -- the victim completes at least
  ``GOODPUT_FLOOR`` of its ops within the SLO;
* ``victim_p99_bounded`` -- p99 latency of the victim's *successful*
  ops stays under ``P99_BOUND_NS`` (the deadline layer never reports a
  "success" the caller had written off);
* ``storm_contained`` -- the storm's admission gate actually engaged
  (shed or rejected at least once);
* ``checker_clean`` -- the breaker/admission invariants registered with
  :mod:`repro.check` (state-machine sanity, shed accounting, no
  admitted-then-dropped) hold over the whole run.

Everything derives from the seed; ``report.digest()`` is byte-stable.
"""

import hashlib

from repro.check import hooks as _check_hooks
from repro.check.invariants import Checker
from repro.cluster import Cluster, timing
from repro.degrade import DegradePolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.krcore import KrcoreLib, KrcoreModule, MetaPlane, MetaServer
from repro.krcore.meta import dct_key
from repro.sim import Simulator
from repro.verbs.errors import (
    DeadlineExceededError,
    KrcoreError,
    OverloadRejectedError,
)

#: The victim tenant's per-qconnect SLO.
SLO_NS = 400 * timing.US
#: The p99 bound asserted on the victim's successful ops: the SLO plus
#: slack for one op that passes its last checkpoint just under the wire.
P99_BOUND_NS = SLO_NS + 50 * timing.US
#: Minimum fraction of victim ops that must complete within the SLO.
GOODPUT_FLOOR = 0.70


def _p99(latencies):
    if not latencies:
        return 0
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


class GrayChaosReport:
    """What one gray-chaos run did; digest-able for determinism checks."""

    def __init__(self, seed, protected):
        self.seed = seed
        self.protected = protected
        self.op_log = []
        self.fault_log = []
        self.invariants = {}
        #: Victim latencies (ns) of *successful* qconnects, in op order.
        self.victim_latencies = []
        self.victim_ops = 0
        self.victim_good = 0  # completed within the SLO
        self.victim_deadline_fails = 0
        self.victim_other_fails = 0
        self.storm_ops_ok = 0
        self.storm_shed = 0  # OverloadRejectedError at the storm's gate
        self.storm_deadline_fails = 0
        self.storm_other_fails = 0
        self.checker_summary = ""

    def record(self, line):
        self.op_log.append(line)

    @property
    def victim_goodput(self):
        if not self.victim_ops:
            return 0.0
        return self.victim_good / self.victim_ops

    @property
    def victim_p99_ns(self):
        return _p99(self.victim_latencies)

    @property
    def all_invariants_hold(self):
        return bool(self.invariants) and all(self.invariants.values())

    def digest(self):
        hasher = hashlib.sha256()
        for line in self.op_log:
            hasher.update(line.encode())
            hasher.update(b"\n")
        for entry in self.fault_log:
            hasher.update(repr(entry).encode())
            hasher.update(b"\n")
        for name in sorted(self.invariants):
            hasher.update(f"{name}={self.invariants[name]}".encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def summary(self):
        return (
            f"seed={self.seed} protected={self.protected} "
            f"goodput={self.victim_goodput:.2f} "
            f"victim_p99={self.victim_p99_ns}ns "
            f"storm ok={self.storm_ops_ok} shed={self.storm_shed} "
            f"invariants={'PASS' if self.all_invariants_hold else 'FAIL'}"
        )


class GrayChaosHarness:
    """One gray-failure run.  Use :func:`run_gray_chaos` unless you need
    the pieces (tests poke at breakers, gates, and the plan)."""

    def __init__(
        self,
        seed,
        protected=True,
        plan=None,
        victim_ops=80,
        victim_gap_ns=40 * timing.US,
        storm_workers=6,
        horizon_ns=4 * timing.MS,
        slo_ns=SLO_NS,
        check=True,
    ):
        self.seed = seed
        self.protected = protected
        self.sim = Simulator()
        self.report = GrayChaosReport(seed, protected)
        self.victim_ops = victim_ops
        self.victim_gap_ns = victim_gap_ns
        self.storm_workers = storm_workers
        self.horizon_ns = horizon_ns
        self.slo_ns = slo_ns
        self.check = check

        # Layout: nodes 0-1 host the two meta shards, 2-4 are servers,
        # 5 is the victim tenant's node, 6 the storm tenant's.
        self.cluster = Cluster(self.sim, num_nodes=7)
        self.meta_nodes = [self.cluster.node(0), self.cluster.node(1)]
        self.server_nodes = [self.cluster.node(2 + i) for i in range(3)]
        self.victim_node = self.cluster.node(5)
        self.storm_node = self.cluster.node(6)
        self.meta = MetaPlane([MetaServer(node) for node in self.meta_nodes])

        # Tenant policies.  The victim gets the full preset (its deadline
        # comes per-op via qconnect); the storm gets the same plus a
        # tight token-bucket quota, which is the knob a deployment
        # actually turns on a tenant that hammers the control plane.
        if protected:
            victim_policy = DegradePolicy.protected()
            storm_policy = DegradePolicy.protected(
                admission_rate_per_sec=30_000.0,
                admission_burst=2,
                admission_max_pending=1,
            )
        else:
            victim_policy = storm_policy = None

        kwargs = dict(background_rc=False)
        self.modules = {}
        for node in self.cluster.nodes:
            if node is self.victim_node:
                policy = victim_policy
            elif node is self.storm_node:
                policy = storm_policy
            else:
                policy = None
            self.modules[node.gid] = KrcoreModule(
                node, self.meta, degrade=policy, **kwargs
            )

        # Pick two server targets whose DCT keys share a primary shard
        # (three servers over two shards: the pigeonhole guarantees a
        # pair), so the storm's load and the victim's lookups meet on the
        # same sick shard.
        by_primary = {}
        for node in self.server_nodes:
            primary = self.meta.primary_index(dct_key(node.gid))
            by_primary.setdefault(primary, []).append(node.gid)
        self.sick_shard, pair = next(
            (shard, gids) for shard, gids in sorted(by_primary.items())
            if len(gids) >= 2
        )
        self.victim_target, self.storm_target = pair[0], pair[1]

        if plan is None:
            plan = self._default_plan()
        self.plan = plan
        self.injector = FaultInjector(self.cluster, self.meta, plan)

    def _default_plan(self):
        """The deterministic storm: one sick shard, three gray faults."""
        h = self.horizon_ns
        sick_gid = self.meta_nodes[self.sick_shard].gid
        return (
            FaultPlan(seed=self.seed)
            # Answers keep coming, 500 us late: invisible to outage
            # probes, lethal to a microsecond SLO.
            .lag_meta(h // 10, duration_ns=h // 2, extra_ns=500 * timing.US,
                      shard=self.sick_shard)
            # The storm's path to the sick shard gets congested too.
            .gray_link(h * 15 // 100, self.storm_node.gid, sick_gid,
                       duration_ns=h * 2 // 5, latency_mult=4.0)
            # And the shard host's RNIC is throttling.
            .degrade_rnic(h // 5, sick_gid, duration_ns=h * 2 // 5,
                          factor=8.0)
        )

    # ----------------------------------------------------------------- victim

    def _victim_op(self, index, lib, done):
        """One open-loop victim qconnect, forced through the uncached path."""
        module = self.modules[self.victim_node.gid]
        module.dc_cache.pop(self.victim_target, None)
        vqp = yield from lib.create_vqp()
        started = self.sim.now
        outcome = "ok"
        try:
            yield from lib.qconnect(
                vqp,
                self.victim_target,
                deadline_ns=self.slo_ns if self.protected else None,
            )
        except DeadlineExceededError:
            outcome = "deadline"
            self.report.victim_deadline_fails += 1
        except KrcoreError as err:
            outcome = type(err).__name__
            self.report.victim_other_fails += 1
        latency = self.sim.now - started
        self.report.victim_ops += 1
        if outcome == "ok":
            self.report.victim_latencies.append(latency)
            if latency <= self.slo_ns:
                self.report.victim_good += 1
        self.report.record(
            f"victim op{index} start={started} lat={latency} {outcome}"
        )
        done[0] += 1
        if done[0] == self.victim_ops + self.storm_workers:
            done[1].trigger(None)

    def _victim_launcher(self, done):
        """Open-loop pacing: one op process per tick, no matter how the
        previous one is doing -- a slow control plane must not get to
        slow down its own offered load."""
        lib = KrcoreLib(self.victim_node, cpu_id=0)
        for index in range(self.victim_ops):
            self.sim.process(
                self._victim_op(index, lib, done),
                name=f"gray-victim-{index}",
            )
            yield self.victim_gap_ns

    # ------------------------------------------------------------------ storm

    def _storm_worker(self, worker, done):
        """Closed-loop uncached qconnect hammer.  Workers are packed onto
        two CPUs: enough distinct meta clients to pile onto the shard
        concurrently, while several workers share each per-CPU admission
        gate -- which is what makes its bounded queue actually shed."""
        lib = KrcoreLib(self.storm_node, cpu_id=worker % 2)
        module = self.modules[self.storm_node.gid]
        attempt = 0
        salt = f"storm{self.seed}:{worker}"
        while self.sim.now < self.horizon_ns:
            module.dc_cache.pop(self.storm_target, None)
            vqp = yield from lib.create_vqp()
            try:
                yield from lib.qconnect(vqp, self.storm_target)
            except OverloadRejectedError:
                self.report.storm_shed += 1
            except DeadlineExceededError:
                self.report.storm_deadline_fails += 1
            except KrcoreError:
                self.report.storm_other_fails += 1
            else:
                self.report.storm_ops_ok += 1
                attempt = 0
                continue
            # Rejected/failed: back off with seed-derived jitter so the
            # workers do not re-arrive as one synchronized herd.
            attempt += 1
            backoff = timing.KRCORE_BACKOFF_BASE_NS
            yield backoff + timing.backoff_jitter_ns(backoff, salt, attempt)
        done[0] += 1
        if done[0] == self.victim_ops + self.storm_workers:
            done[1].trigger(None)

    # ------------------------------------------------------------------- run

    def _controller(self, done):
        yield done[1]
        self.report.fault_log = list(self.injector.applied)
        gates = [
            pool.admission
            for pool in self.modules[self.storm_node.gid]._pools
            if pool.admission is not None
        ]
        contained = any(
            gate.stats_shed + gate.stats_rejected for gate in gates
        ) or self.report.storm_shed > 0
        inv = self.report.invariants
        inv["victim_goodput_floor"] = self.report.victim_goodput >= GOODPUT_FLOOR
        inv["victim_p99_bounded"] = self.report.victim_p99_ns <= P99_BOUND_NS
        inv["storm_contained"] = contained

    def run(self):
        # done = [completed process count, completion event]
        done = [0, self.sim.event()]
        checker = Checker() if self.check else None

        def _drive():
            self.injector.start()
            self.sim.process(self._victim_launcher(done), name="gray-victim")
            for worker in range(self.storm_workers):
                self.sim.process(
                    self._storm_worker(worker, done),
                    name=f"gray-storm-{worker}",
                )
            self.sim.process(self._controller(done), name="gray-controller")
            self.sim.run()

        if checker is not None:
            with _check_hooks.checking(checker):
                _drive()
                checker.finalize(
                    modules=self.modules.values(),
                    plane=self.meta,
                    now=self.sim.now,
                )
            self.report.invariants["checker_clean"] = checker.ok
            self.report.checker_summary = checker.summary()
        else:
            _drive()
        return self.report


def run_gray_chaos(seed, protected=True, plan=None, **kwargs):
    """Run one seeded gray-failure experiment; returns its report."""
    return GrayChaosHarness(seed, protected=protected, plan=plan, **kwargs).run()
