"""The RDMA NIC model.

Two serialized engines reproduce the two bottlenecks the paper measures:

* the **command processor** handles control-path work (building hardware
  queues for create_qp, configuring QPs to RTR/RTS).  Its occupancy per
  connection setup yields the ~712 QP/s server-side ceiling of Fig 8a.
* the **inbound engine** handles responder-side data-path work.  Its per-op
  occupancy yields the async peaks of Fig 10 (138M/s READ, 145M/s WRITE,
  lower for DCT).

Latency and occupancy are modelled separately: an op holds the engine for
its (few-ns) service time, then pays a fixed pipeline latency that does not
block other ops.
"""

from repro.check import hooks as _check
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Resource


class Rnic:
    """One ConnectX-4-like RNIC attached to a node."""

    def __init__(self, sim, node):
        self.sim = sim
        self.node = node
        self.command_processor = Resource(sim, capacity=1)
        self.inbound_engine = Resource(sim, capacity=1)
        self._qps = {}
        self._dct_targets = {}
        self._next_qpn = 1
        self._next_dctn = 1
        #: Fractional-ns remainder so sub-ns service times still add up to
        #: the right aggregate rate (sim time is integer ns).
        self._service_carry = 0.0
        #: Inbound ops served (benchmarks read this for unbiased rates).
        self.stats_inbound_ops = 0

    # -- registries -----------------------------------------------------------

    def register_qp(self, qp):
        qpn = self._next_qpn
        self._next_qpn += 1
        self._qps[qpn] = qp
        return qpn

    def unregister_qp(self, qp):
        self._qps.pop(qp.qpn, None)

    def qp(self, qpn):
        return self._qps.get(qpn)

    def create_dct_target(self, dc_key):
        """Create a DCT target (cheap: hardware context only, §3)."""
        number = self._next_dctn
        self._next_dctn += 1
        from repro.verbs.qp import DctTarget  # local import to avoid a cycle

        target = DctTarget(self.node, number, dc_key)
        self._dct_targets[number] = target
        return target

    def dct_target(self, number):
        return self._dct_targets.get(number)

    # -- engines ---------------------------------------------------------------

    def command(self, service_ns):
        """Process: occupy the command processor for ``service_ns``."""
        # Resource.serve inlined: this runs per control-path op and the
        # extra generator frame of ``yield from serve()`` is measurable.
        resource = self.command_processor
        grant = yield resource.acquire()
        start = self.sim.now
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"rnic@{self.node.gid}", "rnic.command"
            )
        try:
            yield int(service_ns)
        finally:
            resource.release(grant)
            if _check.CHECKER is not None:
                _check.CHECKER.rnic_busy(
                    self, "command", resource, start, self.sim.now
                )
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"rnic@{self.node.gid}", "rnic.command")
        if _metrics.METRICS is not None:
            registry = _metrics.METRICS
            registry.counter("rnic.command_ops").inc()
            registry.counter("rnic.command_busy_ns").inc(int(service_ns))

    def stall(self, duration_ns, engine="command"):
        """Process: wedge one engine for ``duration_ns`` (fault injection).

        Models a firmware/command-engine hiccup: the engine finishes its
        current op, then sits occupied, so queued work (connection setups,
        QP repairs, inbound ops) backs up behind the stall and drains in
        FIFO order afterwards -- no work is lost.
        """
        resource = self.command_processor if engine == "command" else self.inbound_engine
        grant = yield resource.acquire()
        start = self.sim.now
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"rnic@{self.node.gid}", "rnic.stall", engine=engine
            )
        try:
            yield int(duration_ns)
        finally:
            resource.release(grant)
            if _check.CHECKER is not None:
                _check.CHECKER.rnic_busy(
                    self, f"stall:{engine}", resource, start, self.sim.now
                )
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"rnic@{self.node.gid}", "rnic.stall")
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("rnic.stall_ns").inc(int(duration_ns))

    def serve_inbound(self, service_ns):
        """Process: occupy the inbound engine for ``service_ns``.

        Accepts fractional nanoseconds; the remainder is carried so that
        aggregate throughput matches the configured rate exactly.
        """
        total = service_ns + self._service_carry
        whole = int(total)
        self._service_carry = total - whole
        # Resource.serve inlined: this is the per-op responder hot path.
        resource = self.inbound_engine
        grant = yield resource.acquire()
        start = self.sim.now
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"rnic@{self.node.gid}", "rnic.inbound"
            )
        try:
            yield whole
        finally:
            resource.release(grant)
            if _check.CHECKER is not None:
                _check.CHECKER.rnic_busy(
                    self, "inbound", resource, start, self.sim.now
                )
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"rnic@{self.node.gid}", "rnic.inbound")
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("rnic.inbound_busy_ns").inc(whole)
        self.stats_inbound_ops += 1
