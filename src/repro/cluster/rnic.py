"""The RDMA NIC model.

Two serialized engines reproduce the two bottlenecks the paper measures:

* the **command processor** handles control-path work (building hardware
  queues for create_qp, configuring QPs to RTR/RTS).  Its occupancy per
  connection setup yields the ~712 QP/s server-side ceiling of Fig 8a.
* the **inbound engine** handles responder-side data-path work.  Its per-op
  occupancy yields the async peaks of Fig 10 (138M/s READ, 145M/s WRITE,
  lower for DCT).

Latency and occupancy are modelled separately: an op holds the engine for
its (few-ns) service time, then pays a fixed pipeline latency that does not
block other ops.
"""

from repro.check import hooks as _check
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Resource


class Rnic:
    """One ConnectX-4-like RNIC attached to a node."""

    def __init__(self, sim, node):
        self.sim = sim
        self.node = node
        self.command_processor = Resource(sim, capacity=1)
        self.inbound_engine = Resource(sim, capacity=1)
        self._qps = {}
        self._dct_targets = {}
        self._next_qpn = 1
        self._next_dctn = 1
        #: Fractional-ns remainder so sub-ns service times still add up to
        #: the right aggregate rate (sim time is integer ns).
        self._service_carry = 0.0
        #: Inbound ops served (benchmarks read this for unbiased rates).
        self.stats_inbound_ops = 0
        #: Admission bound on the command queue (repro.degrade): when
        #: this many ops already wait for the command processor, further
        #: control-path work is rejected instead of queued.  None (the
        #: default) keeps the queue unbounded.
        self.command_queue_limit = None
        #: Gray-failure window: until this timestamp both engines serve
        #: ``_degrade_factor`` times slower (alive, just sick); 0 = never.
        self._degraded_until = 0
        self._degrade_factor = 1.0
        self.stats_command_rejects = 0
        #: CPU nanoseconds burned by cores busy-polling CQs on this node
        #: (``CompletionQueue`` poll modes ``busy``/``adaptive``).  This is
        #: host CPU, not engine occupancy -- it never queues behind the
        #: command processor or inbound engine; it is what a dedicated
        #: polling core costs the node.
        self.stats_cq_poll_busy_ns = 0

    # -- registries -----------------------------------------------------------

    def register_qp(self, qp):
        qpn = self._next_qpn
        self._next_qpn += 1
        self._qps[qpn] = qp
        return qpn

    def unregister_qp(self, qp):
        self._qps.pop(qp.qpn, None)

    def qp(self, qpn):
        return self._qps.get(qpn)

    def create_dct_target(self, dc_key):
        """Create a DCT target (cheap: hardware context only, §3)."""
        number = self._next_dctn
        self._next_dctn += 1
        from repro.verbs.qp import DctTarget  # local import to avoid a cycle

        target = DctTarget(self.node, number, dc_key)
        self._dct_targets[number] = target
        return target

    def dct_target(self, number):
        return self._dct_targets.get(number)

    # -- engines ---------------------------------------------------------------

    def set_degraded(self, duration_ns, factor):
        """Gray failure: both engines run ``factor`` times slower for the
        next ``duration_ns`` (thermal throttling, firmware gone sick --
        the RNIC still answers, so nothing binary ever trips).
        Overlapping windows extend; the latest factor wins."""
        self._degraded_until = max(
            self._degraded_until, self.sim.now + int(duration_ns)
        )
        self._degrade_factor = float(factor)

    def account_cq_poll(self, spent_ns):
        """Charge ``spent_ns`` of host CPU burned spinning on a CQ."""
        self.stats_cq_poll_busy_ns += int(spent_ns)
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("rnic.cq_poll_busy_ns").inc(int(spent_ns))

    def command(self, service_ns):
        """Process: occupy the command processor for ``service_ns``."""
        limit = self.command_queue_limit
        if limit is not None and self.command_processor.queue_length >= limit:
            # Bounded command queue: reject before joining a line that
            # already guarantees a blown budget (EAGAIN, not a stall).
            self.stats_command_rejects += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("rnic.command_rejects").inc()
            from repro.verbs.errors import OverloadRejectedError

            raise OverloadRejectedError(
                f"rnic@{self.node.gid}: command queue at its bound ({limit})"
            )
        if self._degraded_until and self.sim.now < self._degraded_until:
            service_ns = int(service_ns * self._degrade_factor)
        # Resource.serve inlined: this runs per control-path op and the
        # extra generator frame of ``yield from serve()`` is measurable.
        resource = self.command_processor
        grant = yield resource.acquire()
        start = self.sim.now
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"rnic@{self.node.gid}", "rnic.command"
            )
        try:
            yield int(service_ns)
        finally:
            resource.release(grant)
            if _check.CHECKER is not None:
                _check.CHECKER.rnic_busy(
                    self, "command", resource, start, self.sim.now
                )
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"rnic@{self.node.gid}", "rnic.command")
        if _metrics.METRICS is not None:
            registry = _metrics.METRICS
            registry.counter("rnic.command_ops").inc()
            registry.counter("rnic.command_busy_ns").inc(int(service_ns))

    def stall(self, duration_ns, engine="command"):
        """Process: wedge one engine for ``duration_ns`` (fault injection).

        Models a firmware/command-engine hiccup: the engine finishes its
        current op, then sits occupied, so queued work (connection setups,
        QP repairs, inbound ops) backs up behind the stall and drains in
        FIFO order afterwards -- no work is lost.
        """
        resource = self.command_processor if engine == "command" else self.inbound_engine
        grant = yield resource.acquire()
        start = self.sim.now
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"rnic@{self.node.gid}", "rnic.stall", engine=engine
            )
        try:
            yield int(duration_ns)
        finally:
            resource.release(grant)
            if _check.CHECKER is not None:
                _check.CHECKER.rnic_busy(
                    self, f"stall:{engine}", resource, start, self.sim.now
                )
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"rnic@{self.node.gid}", "rnic.stall")
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("rnic.stall_ns").inc(int(duration_ns))

    def serve_inbound(self, service_ns):
        """Process: occupy the inbound engine for ``service_ns``.

        Accepts fractional nanoseconds; the remainder is carried so that
        aggregate throughput matches the configured rate exactly.
        """
        if self._degraded_until and self.sim.now < self._degraded_until:
            service_ns = service_ns * self._degrade_factor
        total = service_ns + self._service_carry
        whole = int(total)
        self._service_carry = total - whole
        # Resource.serve inlined: this is the per-op responder hot path.
        resource = self.inbound_engine
        grant = yield resource.acquire()
        start = self.sim.now
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"rnic@{self.node.gid}", "rnic.inbound"
            )
        try:
            yield whole
        finally:
            resource.release(grant)
            if _check.CHECKER is not None:
                _check.CHECKER.rnic_busy(
                    self, "inbound", resource, start, self.sim.now
                )
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"rnic@{self.node.gid}", "rnic.inbound")
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("rnic.inbound_busy_ns").inc(whole)
        self.stats_inbound_ops += 1
