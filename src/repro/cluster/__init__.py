"""Simulated cluster hardware: nodes, CPUs, memory, RNICs, and the fabric.

This package is the substitute for the paper's physical testbed (ten nodes,
2x12-core Xeon E5-2650 v4, ConnectX-4 100 Gbps InfiniBand, SB7890 switch).
Every latency/throughput constant comes from the paper's own measurements and
lives in :mod:`repro.cluster.timing`.
"""

from repro.cluster.fabric import Fabric
from repro.cluster.memory import AccessFlags, MemoryError_, MemoryRegion, PhysicalMemory
from repro.cluster.node import Cluster, Node
from repro.cluster.rnic import Rnic
from repro.cluster import timing

__all__ = [
    "AccessFlags",
    "Cluster",
    "Fabric",
    "MemoryError_",
    "MemoryRegion",
    "Node",
    "PhysicalMemory",
    "Rnic",
    "timing",
]
