"""Nodes and the cluster factory."""

from repro.sim import Resource
from repro.cluster.fabric import Fabric
from repro.cluster.memory import PhysicalMemory
from repro.cluster.rnic import Rnic

#: The paper's testbed: two 12-core Xeons per node.
DEFAULT_CORES = 24

#: Simulated DRAM per node.  Small by default; tests/benches that need more
#: pass ``memory_size`` explicitly.
DEFAULT_MEMORY = 16 << 20


class Node:
    """One server: CPU cores, DRAM, and an RNIC, attached to the fabric."""

    def __init__(self, sim, fabric, gid, cores=DEFAULT_CORES, memory_size=DEFAULT_MEMORY):
        self.sim = sim
        self.fabric = fabric
        self.gid = gid
        self.cores = cores
        self.memory_size = memory_size
        self.cpu = Resource(sim, capacity=cores)
        self.memory = PhysicalMemory(memory_size)
        self.rnic = Rnic(sim, self)
        self.alive = True
        #: Bumped on every restart; distinguishes a rebooted node from its
        #: previous life (fresh DCT keys, stale-metadata detection).
        self.incarnation = 0
        #: Per-node services (connection daemon, kernel modules) hang
        #: themselves here so layers above can find each other.
        self.services = {}
        fabric.attach(self)

    def fail(self):
        """Crash the node: detach from the fabric so no *new* request can
        resolve it, and error out whatever is already in flight -- inbound
        operations observe ``alive`` turning False and complete on the
        requester side with RETRY_EXC_ERR once their retransmission budget
        runs dry; its DCT metadata becomes invalid (§4.2: metadata "only
        invalidated when the host is down")."""
        self.alive = False
        self.fabric.detach(self)

    def restart(self):
        """Reboot a failed node: tear down the old RNIC state (every
        registered QP is wrecked, every DCT target and MR vanishes) and
        come back up with a fresh RNIC, fresh DRAM, and no services.

        The software stack (KRCORE module, connection daemon...) must be
        re-loaded by the operator -- exactly like a real reboot.  The gid
        is re-used, so stale DCT metadata cached elsewhere now names a DCT
        target that no longer exists (§4.2's invalidation scenario).
        """
        if self.alive:
            raise ValueError(f"{self.gid} is not down; call fail() first")
        # Teardown: wreck the old RNIC's QPs so their pending WRs flush.
        for qp in list(self.rnic._qps.values()):
            qp._enter_error()
        self.incarnation += 1
        self.cpu = Resource(self.sim, capacity=self.cores)
        self.memory = PhysicalMemory(self.memory_size)
        self.rnic = Rnic(self.sim, self)
        self.services = {}
        self.alive = True
        self.fabric.attach(self)
        return self

    def __repr__(self):
        return f"Node(gid={self.gid!r}, cores={self.cores})"


class Cluster:
    """A rack-scale cluster like the paper's testbed (ten nodes, one switch)."""

    def __init__(self, sim, num_nodes=10, cores=DEFAULT_CORES, memory_size=DEFAULT_MEMORY):
        self.sim = sim
        self.fabric = Fabric(sim)
        self.nodes = [
            Node(sim, self.fabric, gid=f"node{i}", cores=cores, memory_size=memory_size)
            for i in range(num_nodes)
        ]

    def node(self, index):
        return self.nodes[index]

    def __len__(self):
        return len(self.nodes)
