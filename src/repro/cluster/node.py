"""Nodes and the cluster factory."""

from repro.sim import Resource
from repro.cluster.fabric import Fabric
from repro.cluster.memory import PhysicalMemory
from repro.cluster.rnic import Rnic

#: The paper's testbed: two 12-core Xeons per node.
DEFAULT_CORES = 24

#: Simulated DRAM per node.  Small by default; tests/benches that need more
#: pass ``memory_size`` explicitly.
DEFAULT_MEMORY = 16 << 20


class Node:
    """One server: CPU cores, DRAM, and an RNIC, attached to the fabric."""

    def __init__(self, sim, fabric, gid, cores=DEFAULT_CORES, memory_size=DEFAULT_MEMORY):
        self.sim = sim
        self.fabric = fabric
        self.gid = gid
        self.cores = cores
        self.cpu = Resource(sim, capacity=cores)
        self.memory = PhysicalMemory(memory_size)
        self.rnic = Rnic(sim, self)
        self.alive = True
        #: Per-node services (connection daemon, kernel modules) hang
        #: themselves here so layers above can find each other.
        self.services = {}
        fabric.attach(self)

    def fail(self):
        """Crash the node: detach from the fabric; its DCT metadata becomes
        invalid (§4.2: metadata "only invalidated when the host is down")."""
        self.alive = False
        self.fabric.detach(self)

    def __repr__(self):
        return f"Node(gid={self.gid!r}, cores={self.cores})"


class Cluster:
    """A rack-scale cluster like the paper's testbed (ten nodes, one switch)."""

    def __init__(self, sim, num_nodes=10, cores=DEFAULT_CORES, memory_size=DEFAULT_MEMORY):
        self.sim = sim
        self.fabric = Fabric(sim)
        self.nodes = [
            Node(sim, self.fabric, gid=f"node{i}", cores=cores, memory_size=memory_size)
            for i in range(num_nodes)
        ]

    def node(self, index):
        return self.nodes[index]

    def __len__(self):
        return len(self.nodes)
