"""Per-node physical memory and RDMA memory regions.

Memory content is real (backed by ``bytearray`` pages): one-sided
READ/WRITE move actual bytes so the KVS, zero-copy protocol, and
applications can be tested for byte-exact behaviour, not just timing.

Backing pages are allocated lazily on first touch.  A simulated cluster
creates hundreds of multi-megabyte address spaces per figure and most of
each is never written, so eager ``bytearray(size)`` zero-fill used to
dominate cluster construction (~4s across 180 nodes in fig10 setup
alone).  Never-written addresses still read as zeros, exactly like the
eager bytearray did.
"""

_PAGE_SHIFT = 16  # 64 KiB pages
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1


class MemoryError_(Exception):
    """Invalid memory access: bad key, out-of-bounds, or missing permission."""


class AccessFlags:
    """RDMA access permission bits (subset of ibv_access_flags)."""

    LOCAL_WRITE = 1
    REMOTE_READ = 2
    REMOTE_WRITE = 4
    REMOTE_ATOMIC = 8

    ALL = LOCAL_WRITE | REMOTE_READ | REMOTE_WRITE | REMOTE_ATOMIC


class MemoryRegion:
    """A registered region: address range + lkey/rkey + permissions."""

    __slots__ = ("memory", "addr", "length", "lkey", "rkey", "access", "valid")

    def __init__(self, memory, addr, length, lkey, rkey, access):
        self.memory = memory
        self.addr = addr
        self.length = length
        self.lkey = lkey
        self.rkey = rkey
        self.access = access
        self.valid = True

    def contains(self, addr, length):
        return self.addr <= addr and addr + length <= self.addr + self.length

    def __repr__(self):
        return (
            f"MemoryRegion(addr={self.addr:#x}, length={self.length}, "
            f"lkey={self.lkey}, rkey={self.rkey})"
        )


class PhysicalMemory:
    """A node's DRAM plus its table of registered regions."""

    def __init__(self, size=16 << 20):
        self.size = size
        self._pages = {}  # page index -> bytearray(_PAGE_SIZE), on first touch
        self._next_key = 1
        self._regions_by_lkey = {}
        self._regions_by_rkey = {}
        self._alloc_cursor = 0

    # -- allocation (bump allocator; regions are long-lived in our workloads)

    def alloc(self, nbytes, align=64):
        """Reserve ``nbytes`` and return its start address."""
        start = -(-self._alloc_cursor // align) * align
        if start + nbytes > self.size:
            raise MemoryError_(
                f"out of simulated memory: need {nbytes} at {start}, size {self.size}"
            )
        self._alloc_cursor = start + nbytes
        return start

    # -- registration ---------------------------------------------------------

    def register(self, addr, length, access=AccessFlags.ALL):
        """Register ``[addr, addr+length)`` and return the MemoryRegion."""
        if addr < 0 or length <= 0 or addr + length > self.size:
            raise MemoryError_(f"cannot register [{addr}, {addr + length}) of {self.size}")
        lkey = self._next_key
        rkey = self._next_key + 1
        self._next_key += 2
        region = MemoryRegion(self, addr, length, lkey, rkey, access)
        self._regions_by_lkey[lkey] = region
        self._regions_by_rkey[rkey] = region
        return region

    def deregister(self, region):
        region.valid = False
        self._regions_by_lkey.pop(region.lkey, None)
        self._regions_by_rkey.pop(region.rkey, None)

    def region_by_rkey(self, rkey):
        return self._regions_by_rkey.get(rkey)

    def region_by_lkey(self, lkey):
        return self._regions_by_lkey.get(lkey)

    # -- checked access (what the RNIC does using its cached MR state) --------

    def check_remote(self, rkey, addr, length, write):
        """Validate a remote access; raise MemoryError_ on any violation."""
        region = self._regions_by_rkey.get(rkey)
        if region is None or not region.valid:
            raise MemoryError_(f"unknown rkey {rkey}")
        if not region.contains(addr, length):
            raise MemoryError_(
                f"access [{addr}, {addr + length}) outside region "
                f"[{region.addr}, {region.addr + region.length})"
            )
        needed = AccessFlags.REMOTE_WRITE if write else AccessFlags.REMOTE_READ
        if not region.access & needed:
            raise MemoryError_(f"rkey {rkey} lacks {'write' if write else 'read'} permission")
        return region

    def check_local(self, lkey, addr, length):
        """Validate a local SGE; raise MemoryError_ on any violation."""
        region = self._regions_by_lkey.get(lkey)
        if region is None or not region.valid:
            raise MemoryError_(f"unknown lkey {lkey}")
        if not region.contains(addr, length):
            raise MemoryError_(
                f"sge [{addr}, {addr + length}) outside region "
                f"[{region.addr}, {region.addr + region.length})"
            )
        return region

    # -- raw data movement -----------------------------------------------------

    def read(self, addr, length):
        if addr < 0 or addr + length > self.size:
            raise MemoryError_(f"raw read [{addr}, {addr + length}) out of bounds")
        if length <= 0:
            return b""
        first = addr >> _PAGE_SHIFT
        last = (addr + length - 1) >> _PAGE_SHIFT
        if first == last:
            page = self._pages.get(first)
            if page is None:
                return bytes(length)
            offset = addr & _PAGE_MASK
            return bytes(page[offset : offset + length])
        parts = []
        cursor = addr
        remaining = length
        while remaining:
            offset = cursor & _PAGE_MASK
            chunk = min(_PAGE_SIZE - offset, remaining)
            page = self._pages.get(cursor >> _PAGE_SHIFT)
            if page is None:
                parts.append(b"\x00" * chunk)
            else:
                parts.append(bytes(page[offset : offset + chunk]))
            cursor += chunk
            remaining -= chunk
        return b"".join(parts)

    def write(self, addr, payload):
        length = len(payload)
        if addr < 0 or addr + length > self.size:
            raise MemoryError_(f"raw write [{addr}, {addr + length}) out of bounds")
        if length == 0:
            return
        pages = self._pages
        first = addr >> _PAGE_SHIFT
        last = (addr + length - 1) >> _PAGE_SHIFT
        if first == last:
            page = pages.get(first)
            if page is None:
                page = pages[first] = bytearray(_PAGE_SIZE)
            offset = addr & _PAGE_MASK
            page[offset : offset + length] = payload
            return
        view = memoryview(payload)
        cursor = addr
        consumed = 0
        while consumed < length:
            index = cursor >> _PAGE_SHIFT
            offset = cursor & _PAGE_MASK
            chunk = min(_PAGE_SIZE - offset, length - consumed)
            page = pages.get(index)
            if page is None:
                page = pages[index] = bytearray(_PAGE_SIZE)
            page[offset : offset + chunk] = view[consumed : consumed + chunk]
            cursor += chunk
            consumed += chunk

    @property
    def resident_bytes(self):
        """Bytes of backing store actually materialized (page-granular)."""
        return len(self._pages) * _PAGE_SIZE
