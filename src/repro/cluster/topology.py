"""Rack-aware cluster topology and partition placement.

The partitioned engine (:mod:`repro.sim.partition`) splits a simulated
cluster into engine partitions along *rack* boundaries: every node of a
rack lands in the same partition, because intra-rack interactions use the
single-switch latency (:data:`repro.cluster.timing.WIRE_ONE_WAY_NS`),
which is below the conservative lookahead bound.  Only inter-rack
traffic — which pays at least one spine traversal
(:data:`repro.cluster.timing.INTER_RACK_ONE_WAY_NS`) — may cross a
partition boundary, and that spine latency is exactly the lookahead the
synchronization protocol relies on.

:class:`RackTopology` names nodes by dense integer id and knows their
rack; :func:`plan_partitions` maps racks onto partitions in contiguous,
deterministic blocks.  Both are pure data: the same ``(racks,
nodes_per_rack, partitions)`` triple always yields the same placement,
which is what makes fault plans and workload schedules partition-stable
(a fault targeting node 37 hits the same simulated entity at every
partition count).
"""


class RackTopology:
    """A cluster of ``racks`` racks with ``nodes_per_rack`` nodes each.

    Nodes are numbered ``0 .. racks*nodes_per_rack - 1`` rack-major, so
    rack membership is a division and placement needs no lookup tables.
    """

    __slots__ = ("racks", "nodes_per_rack")

    def __init__(self, racks, nodes_per_rack):
        if racks < 1 or nodes_per_rack < 1:
            raise ValueError("topology needs >= 1 rack and >= 1 node per rack")
        self.racks = int(racks)
        self.nodes_per_rack = int(nodes_per_rack)

    @property
    def num_nodes(self):
        return self.racks * self.nodes_per_rack

    def rack_of(self, node):
        """The rack hosting ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside topology of {self.num_nodes}")
        return node // self.nodes_per_rack

    def nodes_in_rack(self, rack):
        """The node ids of one rack, ascending."""
        if not 0 <= rack < self.racks:
            raise ValueError(f"rack {rack} outside topology of {self.racks}")
        base = rack * self.nodes_per_rack
        return range(base, base + self.nodes_per_rack)

    def gid(self, node):
        """The RDMA-address-style name of ``node`` (stable across runs)."""
        return f"rack{self.rack_of(node)}-n{node}"

    def same_rack(self, a, b):
        return self.rack_of(a) == self.rack_of(b)

    def __repr__(self):
        return f"RackTopology(racks={self.racks}, nodes_per_rack={self.nodes_per_rack})"


class PartitionAssignment:
    """Which partition owns each rack (and therefore each node)."""

    __slots__ = ("topology", "partitions", "_rack_part")

    def __init__(self, topology, partitions, rack_part):
        self.topology = topology
        self.partitions = partitions
        self._rack_part = rack_part

    def partition_of_rack(self, rack):
        return self._rack_part[rack]

    def partition_of_node(self, node):
        return self._rack_part[self.topology.rack_of(node)]

    def racks_of_partition(self, part):
        return [r for r, p in enumerate(self._rack_part) if p == part]

    def nodes_of_partition(self, part):
        nodes = []
        for rack in self.racks_of_partition(part):
            nodes.extend(self.topology.nodes_in_rack(rack))
        return nodes

    def __repr__(self):
        return (
            f"PartitionAssignment(partitions={self.partitions}, "
            f"rack_part={self._rack_part})"
        )


def plan_partitions(topology, partitions):
    """Place ``topology``'s racks onto ``partitions`` engine partitions.

    Racks are never split (intra-rack latency is below the lookahead
    bound) and the placement is contiguous and deterministic: rack ``r``
    goes to partition ``r * partitions // racks``, which balances rack
    counts within one and keeps neighbouring racks together.
    """
    partitions = int(partitions)
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if partitions > topology.racks:
        raise ValueError(
            f"cannot split {topology.racks} racks over {partitions} partitions "
            "(a rack is never split across partitions)"
        )
    rack_part = [r * partitions // topology.racks for r in range(topology.racks)]
    return PartitionAssignment(topology, partitions, rack_part)
