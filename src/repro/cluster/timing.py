"""Calibration constants for the simulated hardware, in nanoseconds.

Every number here is taken from (or derived to be consistent with) the
paper's own measurements on its testbed: ConnectX-4 MCX455A 100 Gbps
InfiniBand RNICs, Mellanox SB7890 switch, 2x12-core Xeon E5-2650 v4.

The figures the constants must reproduce:

* Fig 3  -- verbs control path 15.7 ms vs data path 2.15 us (8B READ);
            create_qp 413 us of which 87% is the RNIC building hardware
            queues; Handshake is 2.4% of the total control path.
* Fig 8  -- KRCORE qconnect 5.4 us uncached / 0.9 us cached; 22M conn/s at
            240 clients; verbs/LITE server-side limit of 712 QP/s.
* Fig 10 -- async inbound peaks: READ 138M/s (RC) vs 118M/s (DC);
            WRITE 145M/s (RC) vs 132M/s (DC).
* Fig 11 -- two-sided echo: verbs 7.9 us, KRCORE(RC) 9.6 us; async peaks
            42.3M/s (verbs) vs 33.7M/s (KRCORE).
* Fig 12 -- factor analysis: +1 us syscall, +4.5 us MR-validation miss,
            <0.5 us for DCQP use and for Algorithm-2 checks.
* Fig 15 -- per-RCQP memory >= 159 KB (292 sq entries x 448 B, 257 cq
            entries x 64 B, rounded to hardware granularity).
"""

from repro.sim import MS, US

# ---------------------------------------------------------------------------
# Wire / fabric (100 Gbps InfiniBand through one switch)
# ---------------------------------------------------------------------------

#: One-way propagation through NIC serdes + switch, small frame.
WIRE_ONE_WAY_NS = 600

#: Per-byte serialization at 100 Gbps (= 12.5 GB/s): 0.08 ns/B.
WIRE_NS_PER_BYTE = 0.08

#: Extra per-byte cost for one-sided WRITE payloads (client-side DMA fetch +
#: store-and-forward).  Calibrated so the Fig 13 WRITE slowdown crossover
#: lands near the paper's 8 KB while READ's stays near 256 KB.
WRITE_EXTRA_NS_PER_BYTE = 1.2

# ---------------------------------------------------------------------------
# Data path: one-sided (Fig 3a / Fig 10).  Fixed parts sum to 2150 ns, the
# paper's 8B READ latency with one client.
# ---------------------------------------------------------------------------

#: CPU cost of writing a WQE + ringing the doorbell (per request).
POST_SEND_CPU_NS = 150

#: Client NIC processing a WQE and emitting the packet.
NIC_TX_NS = 200

#: Responder-side fixed pipeline latency for a one-sided op.
NIC_RESPONDER_PIPELINE_NS = 150

#: Client NIC receiving the response and generating the CQE.
NIC_RX_COMPLETION_NS = 250

#: CPU cost of a (successful) poll_cq.
POLL_CQ_CPU_NS = 200

# ---------------------------------------------------------------------------
# Data-plane throughput modes: doorbell batching and CQ polling models
# (ROADMAP item 4; ATR's rdma_transport_design playbook).
# ---------------------------------------------------------------------------

#: CPU cost of writing one additional WQE into a doorbell-batched chain.
#: The first WR of a chain pays the full POST_SEND_CPU_NS (WQE write +
#: doorbell ring); each linked successor only adds a WQE write -- the
#: doorbell is rung once for the whole chain.
DOORBELL_WQE_CPU_NS = 40

#: Client NIC issue cost for a *chained* WQE: the doorbell's first WQE
#: pays NIC_TX_NS (doorbell decode + WQE fetch + packet emit); successors
#: ride the same chain fetch and only pay per-WQE processing.
NIC_TX_CHAINED_NS = 60

#: Receiver-side cost of landing a WRITE_WITH_IMM completion: the payload
#: already DMA-ed straight to the target address, so only the recv WQE is
#: consumed and a CQE carrying the immediate is generated (no payload
#: copy, cheaper than SEND_DELIVERY_HEADER_NS's host notification path).
WRITE_IMM_DELIVERY_NS = 500

#: Adaptive CQ polling: how long the caller spins before arming the CQ
#: event (ibv_req_notify_cq) and sleeping.
CQ_ADAPTIVE_SPIN_NS = 1_000

#: CPU cost of arming the CQ notification (ibv_req_notify_cq + the
#: read-another-poll race check the verbs man page mandates).
CQ_NOTIFY_REARM_NS = 100

#: Latency of waking out of the armed-event sleep (interrupt + scheduler
#: wakeup) before the woken thread re-polls.
CQ_EVENT_WAKE_NS = 300


def doorbell_batch_cpu_ns(num_wrs):
    """CPU cost of posting ``num_wrs`` WRs as one doorbell-batched chain.

    One full post (WQE + doorbell) plus a WQE write per linked successor.
    """
    if num_wrs <= 1:
        return POST_SEND_CPU_NS
    return POST_SEND_CPU_NS + (num_wrs - 1) * DOORBELL_WQE_CPU_NS

#: Responder occupancy per inbound 8B READ: 1 / 138 M/s.
READ_RESPONDER_SERVICE_NS = 7.25

#: Responder occupancy per inbound 8B WRITE: 1 / 145 M/s.
WRITE_RESPONDER_SERVICE_NS = 6.90

#: Extra responder occupancy for DCT transport (READ: 138M -> 118M/s).
DC_READ_SERVICE_EXTRA_NS = 1.22

#: Extra responder occupancy for DCT transport (WRITE: 145M -> 132M/s).
DC_WRITE_SERVICE_EXTRA_NS = 0.68

#: Payload-dependent responder occupancy (DMA engine time), tiered:
#: the first RESPONDER_SERVICE_FREE_BYTES ride along free (8B ops hit the
#: Fig 10 peaks); the next RESPONDER_SMALL_TIER_BYTES pay a random-access
#: IOPS penalty (which caps KV-sized 64B lookups near the 22M conn/s
#: ceiling of Fig 8a); bytes beyond that stream at wire bandwidth.
RESPONDER_SERVICE_NS_PER_BYTE = 0.45
RESPONDER_SERVICE_FREE_BYTES = 16
RESPONDER_SMALL_TIER_BYTES = 240
RESPONDER_BULK_NS_PER_BYTE = WIRE_NS_PER_BYTE


_payload_service_cache = {}


def responder_payload_service_ns(nbytes):
    """Extra responder occupancy for a payload of ``nbytes``.

    Memoized: called once per WR, and a figure sweep uses a handful of
    distinct payload sizes.
    """
    cached = _payload_service_cache.get(nbytes)
    if cached is not None:
        return cached
    extra = max(0, nbytes - RESPONDER_SERVICE_FREE_BYTES)
    small = min(extra, RESPONDER_SMALL_TIER_BYTES) * RESPONDER_SERVICE_NS_PER_BYTE
    bulk = max(0, extra - RESPONDER_SMALL_TIER_BYTES) * RESPONDER_BULK_NS_PER_BYTE
    _payload_service_cache[nbytes] = result = small + bulk
    return result

#: RDMA request header bytes on the wire (simplified BTH+RETH).
REQUEST_HEADER_BYTES = 30

# ---------------------------------------------------------------------------
# Multi-rack topology (repro.cluster.topology / repro.sim.partition).  The
# single-switch fabric above models one rack; the partitioned engine
# simulates many racks joined by a spine.  Inter-rack wire latency is the
# *lookahead bound* of the conservative synchronization protocol: no
# cross-rack (hence cross-partition) interaction can take effect sooner
# than one spine traversal, so every partition may safely advance
# ``INTER_RACK_ONE_WAY_NS`` past the global minimum next-event time.
# ---------------------------------------------------------------------------

#: One-way latency between nodes in *different* racks: NIC serdes + ToR +
#: spine hop + ToR (vs WIRE_ONE_WAY_NS for the single in-rack switch).
INTER_RACK_ONE_WAY_NS = 2_000

#: Control-plane service occupancy for one uncached qconnect at the target
#: (Fig 8: 5.4 us end-to-end uncached; minus two wire traversals and
#: client-side issue cost, the target-side share is ~4 us of meta lookup +
#: DCT attach work).
QCONNECT_UNCACHED_SERVICE_NS = 4_000

#: Target-side occupancy when the connecting client's metadata is already
#: cached (Fig 8: 0.9 us cached end-to-end; the target only validates the
#: lease and hands out the DCT key).
QCONNECT_CACHED_SERVICE_NS = 550

# ---------------------------------------------------------------------------
# Vectored (multi-SGE) gather READ: one request that names several remote
# segments and scatters them back into one contiguous local buffer.  The
# request carries one descriptor per remote SGE; the responder pays a DMA
# setup per *extra* discontiguous segment on top of the usual READ service
# (the payload-size cost is charged once, on the summed length).
# ---------------------------------------------------------------------------

#: Wire bytes per remote-SGE descriptor (8B addr + 4B rkey + 4B length).
VECTORED_SGE_WIRE_BYTES = 16

#: Responder DMA-setup occupancy per gather segment after the first.
VECTORED_SGE_SERVICE_NS = 1.6

#: Max remote SGEs one vectored READ may carry (ibv max_sge-like cap).
MAX_VECTORED_SGES = 16

# ---------------------------------------------------------------------------
# Reliability: retransmission timers and retry budgets (§3.1 C#3; the
# transport-level retries that make lease-based MR caching safe).  Scaled
# for the simulated rack (a real IB local-ACK timeout is 4.096us * 2^n).
# ---------------------------------------------------------------------------

#: Requester-side retransmission timer: how long a reliable QP waits for a
#: response before retrying the request.
QP_TIMEOUT_NS = 16 * US

#: How many times a reliable QP retransmits before completing with
#: RETRY_EXC_ERR.  (Retries only trigger on lost packets or unreachable
#: responders, so the fault-free figure paths never pay this.)
QP_RETRY_CNT = 3

#: RNR retry budget: 0 reproduces the classic immediate RNR_ERR wreck;
#: a positive budget waits QP_RNR_TIMER_NS per retry and completes with
#: RNR_RETRY_EXC_ERR on exhaustion.
QP_RNR_RETRY = 0

#: Receiver-not-ready backoff timer between RNR retries.
QP_RNR_TIMER_NS = 20 * US

# ---------------------------------------------------------------------------
# Data path: two-sided (Fig 11)
# ---------------------------------------------------------------------------

#: Responder NIC occupancy for an inbound SEND (before the CPU touches it).
SEND_RESPONDER_SERVICE_NS = 7.0

#: Fixed cost of landing an inbound SEND: consuming the receive WQE,
#: DMA-ing the payload, generating the receive CQE, and host notification.
#: Calibrated so a verbs 8B echo costs 7.9 us end-to-end (Fig 11a).
SEND_DELIVERY_NS = 2_450

#: Landing a header-only message (e.g. a zero-copy descriptor or a kernel
#: control message): no payload DMA or user notification, just the CQE.
SEND_DELIVERY_HEADER_NS = 800

#: Responder occupancy for an 8-byte atomic (CAS / fetch-add): RNICs do
#: atomics at roughly 1/3 the READ rate (~46 M/s on ConnectX-4).
ATOMIC_RESPONDER_SERVICE_NS = 21.7

#: Server CPU cost to receive+handle+reply one message in user space:
#: 24 cores saturate at 42.3 M/s  =>  24 / 42.3M = 567 ns per message.
TWO_SIDED_SERVER_CPU_NS = 567

#: Extra per-message server CPU when the receive path crosses the kernel
#: (KRCORE): 24 / 33.7 M/s = 712 ns per message.
TWO_SIDED_SERVER_CPU_KERNEL_NS = 712

# ---------------------------------------------------------------------------
# DCT (§3, Fig 14)
# ---------------------------------------------------------------------------

#: Hardware-offloaded DCT (re)connection: "less than 1 us" (§3).
DCT_RECONNECT_NS = 600

#: Tail penalty when a reconnect needs an extra network round (connect
#: packet collision/retransmit); DC reaches ~6 us at the 99.9th percentile
#: under fan-out (Fig 14b).
DCT_RECONNECT_TAIL_NS = 2_200

#: One in this many reconnects pays the tail penalty (deterministic, so
#: runs are reproducible; ~0.8% of retargets, which puts the fan-out
#: workload's 99.9th percentile near the paper's 6 us).
DCT_RECONNECT_TAIL_EVERY = 128

#: Extra reconnection cost when retargets arrive back-to-back on one DCQP
#: (the previous connection's teardown has not drained yet).  This is why
#: a 1-DCQP pool serializes badly on multi-target batches (Fig 14a).
DCT_RECONNECT_BUSY_NS = 900
DCT_RECONNECT_BUSY_WINDOW_NS = 1_000

#: DCT metadata size: number + key (§4.2: "12B is sufficient").
DCT_METADATA_BYTES = 12

# ---------------------------------------------------------------------------
# Control path: verbs (Fig 3b).
#
# The simulated connection flow is:
#   client: [driver init once] -> create_cq -> create_qp -> UD handshake
#           (the server creates its QP inside the handshake window and
#           replies with its QPN before configuring itself) -> RTR -> RTS
# Client-observed first-connection latency:
#   13,287 + 187 + 413 + 377 + 413 + 612 + 411 = 15,700 us   (Fig 3a)
# LITE (kernel context + shared CQ already exist):
#   413 + 377 + 413 + 612 + 411 = 2,226 us                   (~2 ms, Fig 3a)
# Server-side command-processor occupancy per accepted connection:
#   361 + 612 + 411 = 1,384 us  =>  ~722 QP/s                (Fig 8a's 712/s)
# ---------------------------------------------------------------------------

#: User-space driver context: open device, alloc PD, register memory.
DRIVER_INIT_NS = 13_287 * US

#: create_qp: total driver-visible latency...
CREATE_QP_NS = 413 * US
#: ...of which 87% (361 us) is the RNIC allocating hardware queues (§2.3.1).
CREATE_QP_HW_NS = 361 * US

#: Creating a completion queue (hardware queue as well).
CREATE_CQ_NS = 187 * US
CREATE_CQ_HW_NS = 163 * US

#: modify_qp to ready-to-receive (RNIC configuration; holds the command
#: processor for the full duration).
MODIFY_RTR_NS = 612 * US

#: modify_qp to ready-to-send.
MODIFY_RTS_NS = 411 * US

#: Fixed overhead of the UD-optimized handshake exchange (daemon scheduling
#: plus protocol processing): 2.4% of the 15.7 ms total (§2.3.1).
HANDSHAKE_NS = 377 * US

#: Expected client-observed first-connection latency for user-space verbs.
VERBS_CONTROL_PATH_NS = (
    DRIVER_INIT_NS
    + CREATE_CQ_NS
    + CREATE_QP_NS
    + HANDSHAKE_NS
    + CREATE_QP_NS  # waiting for the server's create_qp before its reply
    + MODIFY_RTR_NS
    + MODIFY_RTS_NS
)
assert VERBS_CONTROL_PATH_NS == 15_700 * US

#: Expected client-observed per-connection latency for (optimized) LITE.
LITE_CONTROL_PATH_NS = (
    CREATE_QP_NS + HANDSHAKE_NS + CREATE_QP_NS + MODIFY_RTR_NS + MODIFY_RTS_NS
)

#: Serialized RNIC command-processor occupancy per accepted connection
#: (hardware part of create_qp + both modify_qp calls): the server-side
#: ceiling of Fig 8a (paper: 712 QP/s; model: ~722 QP/s).
QP_SETUP_HW_SERVICE_NS = CREATE_QP_HW_NS + MODIFY_RTR_NS + MODIFY_RTS_NS

#: Registering memory is cheap: "registering 4MB only takes 1.4us" (§5.1).
REG_MR_BASE_NS = 400
REG_MR_NS_PER_MB = 250

# ---------------------------------------------------------------------------
# KRCORE (Figs 8, 12)
# ---------------------------------------------------------------------------

#: One user/kernel crossing ("~1 us overhead communicating with the kernel").
SYSCALL_NS = 900

#: One DrTM-KV lookup from the meta server = 2 one-sided READs; qconnect
#: uncached = syscall + lookup = 0.9 + 4.5 = 5.4 us (Fig 8a).
META_KV_READS_PER_LOOKUP = 2
META_KV_READ_RTT_NS = 2_250

#: Responder occupancy at the meta server per KV READ.  Calibrated to the
#: 22M conn/s ceiling at 240 clients (2 READs per connect => 44M READ/s).
META_KV_READ_SERVICE_NS = 22.5

#: Algorithm-2 integrity checks per request ("+Checks ... trivial, <0.5us").
VIRTUALIZATION_CHECK_NS = 120

#: Remote MR validation on an MRStore miss: +4.5 us (Fig 12a).
MR_CHECK_MISS_NS = 4_500

#: MRStore/DCCache lease period: cached MRs flushed every second (§4.2).
MR_LEASE_NS = 1_000 * MS

#: Bounded-retry budget for KRCORE control-plane operations that touch the
#: meta server (qconnect lookups, MR validation): attempts before the
#: caller degrades (stale-entry acceptance or the full RC handshake).
KRCORE_META_RETRIES = 4

#: Exponential-backoff base between those retries (doubles per attempt,
#: capped at KRCORE_BACKOFF_MAX_NS).
KRCORE_BACKOFF_BASE_NS = 10 * US
KRCORE_BACKOFF_MAX_NS = 320 * US

#: Cost of *discovering* a meta-server outage: the pre-connected QP's
#: timed-out READ (one retransmission window's worth of waiting).
META_OUTAGE_PROBE_NS = (QP_RETRY_CNT + 1) * QP_TIMEOUT_NS

#: Backoff jitter span as a fraction of the current backoff step.
KRCORE_BACKOFF_JITTER_FRAC = 0.25


def backoff_jitter_ns(backoff_ns, salt, attempt):
    """Deterministic seed-derived jitter in ``[0, frac * backoff_ns)``.

    Perfectly synchronized retries re-arrive as the same thundering herd
    they backed off from; this desynchronizes them without RNG state, as
    a pure hash of ``(salt, attempt)`` -- one (seed, workload) still
    yields one schedule.  Only fault/overload paths ever back off, so
    fault-free figure CSVs are untouched by construction.
    """
    span = int(backoff_ns * KRCORE_BACKOFF_JITTER_FRAC)
    if span <= 0:
        return 0
    value = 0
    for ch in f"{salt}#{attempt}".encode():
        value = (value * 131 + ch) % 1_000_000_007
    return value % span


# ---------------------------------------------------------------------------
# Overload protection defaults (repro.degrade; all knobs off unless a
# DegradePolicy is installed on the module)
# ---------------------------------------------------------------------------

#: Consecutive meta-lookup failures before a per-shard breaker opens.
DEGRADE_BREAKER_FAILURES = 3

#: How long an open breaker fast-fails before letting one probe through.
DEGRADE_BREAKER_RECOVERY_NS = 200 * US

#: A lookup slower than this counts as a failure for the breaker even if
#: it succeeded -- the "slow but alive" gray-failure signal.  Well above
#: the worst queueing an admission-bounded client self-inflicts
#: (~(burst + pending) lookups), so only genuinely lagging shards trip.
DEGRADE_BREAKER_LATENCY_NS = 150 * US

#: Token-bucket refill for qconnect admission: one meta client's lookup
#: capacity (1 / (2 READs x 2.25 us) ~ 222 K/s).
DEGRADE_ADMISSION_RATE_PER_SEC = 1e9 / (
    META_KV_READS_PER_LOOKUP * META_KV_READ_RTT_NS
)

#: Tokens the admission bucket may accumulate (burst tolerance).
DEGRADE_ADMISSION_BURST = 4

#: Bound on the pending-qconnect queue behind the bucket; beyond this the
#: oldest waiter is shed (LIFO service keeps fresh arrivals fast).
DEGRADE_ADMISSION_MAX_PENDING = 8

#: Kernel memcpy for dispatching two-sided payloads to user buffers
#: (~4 GB/s effective on cold buffers; significant above 16 KB, Fig 9b).
MEMCPY_NS_PER_BYTE = 0.25

#: Default kernel pre-posted receive buffer size (zero-copy kicks in above).
KERNEL_RECV_BUFFER_BYTES = 4_096

# ---------------------------------------------------------------------------
# Elastic applications (Fig 16, §5.3.1)
# ---------------------------------------------------------------------------

#: Spawning one RACE worker process (fork+exec+runtime init), serialized
#: per node's spawner.  26 workers/node x 9.4 ms = ~244 ms: the KRCORE
#: bootstrap time of Fig 16, which is process-creation-bound.
PROCESS_SPAWN_NS = 9_400 * US

# ---------------------------------------------------------------------------
# FaSST-style RPC baseline for metadata queries (Fig 9a)
# ---------------------------------------------------------------------------

#: Per-query CPU at the (single) RPC kernel thread.  22M / 11.8 = ~1.86M/s.
RPC_HANDLER_CPU_NS = 537

#: UD send/recv fixed costs for the RPC round.
UD_SEND_NS = 300
UD_RECV_NS = 300

# ---------------------------------------------------------------------------
# Memory accounting (Fig 15a)
# ---------------------------------------------------------------------------

SQ_ENTRY_BYTES = 448
SQ_DEPTH_DEFAULT = 292
CQ_ENTRY_BYTES = 64
CQ_DEPTH_DEFAULT = 257

#: KRCORE's DCQPs use a shallower CQ (they are multiplexed in the kernel).
DC_CQ_DEPTH = 101

#: Minimum hardware queue allocation (one page).
HW_QUEUE_GRANULARITY = 4_096


def round_to_hw(nbytes):
    """Round a queue buffer up to the hardware allocation granularity.

    The driver rounds queue buffers to the next power of two (at least one
    page) -- the "round queues to fit the hardware granularity" behaviour of
    the paper's footnote 3, which turns 292x448B + 257x64B into ~160 KB.
    """
    size = HW_QUEUE_GRANULARITY
    while size < nbytes:
        size *= 2
    return size


def rc_qp_memory_bytes(sq_depth=SQ_DEPTH_DEFAULT, cq_depth=CQ_DEPTH_DEFAULT):
    """Driver memory for one RCQP: paper footnote 3 => >= 159 KB."""
    return round_to_hw(sq_depth * SQ_ENTRY_BYTES) + round_to_hw(cq_depth * CQ_ENTRY_BYTES)


def dc_qp_memory_bytes(sq_depth=SQ_DEPTH_DEFAULT, cq_depth=DC_CQ_DEPTH):
    """Driver memory for one kernel DCQP (shallower CQ)."""
    return round_to_hw(sq_depth * SQ_ENTRY_BYTES) + round_to_hw(cq_depth * CQ_ENTRY_BYTES)


def reg_mr_ns(nbytes):
    """Latency of registering ``nbytes`` of memory."""
    return int(REG_MR_BASE_NS + REG_MR_NS_PER_MB * (nbytes / (1 << 20)))


def wire_transfer_ns(nbytes):
    """Serialization time for ``nbytes`` on the 100 Gbps wire."""
    return int(nbytes * WIRE_NS_PER_BYTE)
