"""The switched InfiniBand fabric connecting the cluster's nodes."""

from repro.cluster import timing
from repro.obs import metrics as _metrics


class LinkFault:
    """Degradation of one directed link (src gid -> dst gid).

    Packet-level decisions (drop, duplicate) are drawn from a private LCG
    seeded from the fault's identity, so a run is reproducible from the
    fault plan's seed alone.  Probabilities are fixed-point fractions of
    2**32 to keep the draw integer-only.
    """

    __slots__ = ("drop_per_2_32", "dup_per_2_32", "extra_ns", "latency_mult", "_lcg")

    SCALE = 1 << 32

    def __init__(self, drop_prob=0.0, dup_prob=0.0, extra_ns=0, seed=1,
                 latency_mult=1.0):
        self.drop_per_2_32 = min(int(drop_prob * self.SCALE), self.SCALE)
        self.dup_per_2_32 = min(int(dup_prob * self.SCALE), self.SCALE)
        self.extra_ns = int(extra_ns)
        #: Gray degradation: wire latency is scaled by this (a congested
        #: or renegotiated-down link -- slow but lossless), on top of any
        #: fixed ``extra_ns``.
        self.latency_mult = float(latency_mult)
        self._lcg = (seed * 2654435761) % (1 << 64) or 1

    def delay_ns(self, base_ns):
        """The degraded traversal time for a healthy latency of ``base_ns``."""
        if self.latency_mult != 1.0:
            base_ns = int(base_ns * self.latency_mult)
        return base_ns + self.extra_ns

    def _draw(self):
        self._lcg = (self._lcg * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        return self._lcg >> 32

    def drops(self):
        """Decide (and consume one draw): is this packet lost?"""
        if not self.drop_per_2_32:
            return False
        return self._draw() < self.drop_per_2_32

    def duplicates(self):
        """Decide (and consume one draw): does this packet arrive twice?"""
        if not self.dup_per_2_32:
            return False
        return self._draw() < self.dup_per_2_32


class Fabric:
    """One 100 Gbps switch; every node is one hop from every other.

    The fabric routes by *gid* (the node's RDMA address).  It is purely a
    name service plus a latency model; packet delivery is performed by the
    RNIC processes themselves.  Fault injection hangs per-directed-link
    :class:`LinkFault` records here; the data path consults them only when
    at least one is installed, so the fault-free hot path is untouched.
    """

    def __init__(self, sim):
        self.sim = sim
        self._nodes = {}
        self._one_way_cache = {}
        #: (src_gid, dst_gid) -> LinkFault.  Empty in fault-free runs; the
        #: QP flight path guards every consultation on this dict's truth.
        self.link_faults = {}

    def attach(self, node):
        if node.gid in self._nodes:
            raise ValueError(f"duplicate gid {node.gid}")
        self._nodes[node.gid] = node

    def detach(self, node):
        """Remove ``node`` from routing.  Idempotent, and safe while
        deliveries are in flight: only the mapping that still points at
        *this* node object is removed, so a replacement node that re-used
        the gid (or a concurrent re-attach) is never knocked out."""
        if self._nodes.get(node.gid) is node:
            del self._nodes[node.gid]

    def node(self, gid):
        """Resolve a gid; raises KeyError for unknown/dead nodes."""
        return self._nodes[gid]

    def has_node(self, gid):
        return gid in self._nodes

    @property
    def nodes(self):
        return list(self._nodes.values())

    # -- fault injection -------------------------------------------------------

    def set_link_fault(self, src_gid, dst_gid, fault):
        """Install a :class:`LinkFault` on the directed link src -> dst."""
        self.link_faults[(src_gid, dst_gid)] = fault

    def clear_link_fault(self, src_gid, dst_gid):
        """Remove the fault on src -> dst (idempotent)."""
        self.link_faults.pop((src_gid, dst_gid), None)

    def link_fault(self, src_gid, dst_gid):
        """The LinkFault on src -> dst, or None (callers pre-check
        ``link_faults`` truthiness so fault-free runs never get here)."""
        return self.link_faults.get((src_gid, dst_gid))

    # -- latency model ---------------------------------------------------------

    def one_way_ns(self, nbytes):
        """Propagation + serialization for ``nbytes`` of payload one way.

        Memoized per size: called for every request and response, over a
        handful of distinct sizes per figure.
        """
        registry = _metrics.METRICS
        if registry is not None:
            registry.counter("fabric.hops").inc()
            registry.counter("fabric.bytes").inc(nbytes)
        cached = self._one_way_cache.get(nbytes)
        if cached is not None:
            return cached
        self._one_way_cache[nbytes] = result = timing.WIRE_ONE_WAY_NS + timing.wire_transfer_ns(nbytes)
        return result
