"""The switched InfiniBand fabric connecting the cluster's nodes."""

from repro.cluster import timing


class Fabric:
    """One 100 Gbps switch; every node is one hop from every other.

    The fabric routes by *gid* (the node's RDMA address).  It is purely a
    name service plus a latency model; packet delivery is performed by the
    RNIC processes themselves.
    """

    def __init__(self, sim):
        self.sim = sim
        self._nodes = {}
        self._one_way_cache = {}

    def attach(self, node):
        if node.gid in self._nodes:
            raise ValueError(f"duplicate gid {node.gid}")
        self._nodes[node.gid] = node

    def detach(self, node):
        self._nodes.pop(node.gid, None)

    def node(self, gid):
        """Resolve a gid; raises KeyError for unknown/dead nodes."""
        return self._nodes[gid]

    def has_node(self, gid):
        return gid in self._nodes

    @property
    def nodes(self):
        return list(self._nodes.values())

    def one_way_ns(self, nbytes):
        """Propagation + serialization for ``nbytes`` of payload one way.

        Memoized per size: called for every request and response, over a
        handful of distinct sizes per figure.
        """
        cached = self._one_way_cache.get(nbytes)
        if cached is not None:
            return cached
        self._one_way_cache[nbytes] = result = timing.WIRE_ONE_WAY_NS + timing.wire_transfer_ns(nbytes)
        return result
