"""The cluster-scale qconnect-storm model: a partitionable workload.

This is the serverless-burst scenario of the paper's §5.3 at rack scale:
hundreds of nodes, thousands of tenants, all ``qconnect``-ing at once.
Each node runs a control-plane *server* that admits connection requests
with the paper's qconnect service costs (Fig 8: uncached vs DCCache-hit);
tenants are open-loop request generators pinned to their home node.

The model is built to be **provably partition-independent**: every op's
completion timestamp is a pure function of the spec, regardless of how
many engine partitions execute it, which engine core runs each
partition, or whether partitions live in one process or many.  The
rules that make that true (and that the equivalence suite enforces):

* Nodes interact **only through messages** — requests and responses with
  deterministic wire latency (in-rack vs spine).  Cross-rack messages
  always go through the partition channel layer, even when both racks
  share a partition, so buffering and injection timing never depend on
  the partition count.
* A node admits the requests arriving at one timestamp **in canonical
  order** ``(src_node, seq)``, not handler-dispatch order: arrivals
  buffer, and a single per-timestamp drain (scheduled behind every
  same-timestamp arrival — both engines dispatch same-timestamp work in
  schedule order) sorts them before serializing service on the node's
  accumulator clock.
* Per-tenant randomness comes from private integer LCG streams seeded
  from ``(spec.seed, node, tenant)``; nothing ever draws from a shared
  stream.
* Results are harvested as records and **sorted by op identity** before
  digesting, so aggregation cannot observe execution interleaving.

Faults (``spec.faults``) are node-local service-time degradations — the
gray ``node_slow`` windows of :mod:`repro.faults.plan` — applied by the
partition that owns the node, which keeps fault injection deterministic
at every partition count.
"""

import hashlib

from repro.cluster import timing
from repro.cluster.topology import RackTopology, plan_partitions
from repro.sim.partition import Partition, run_partitioned

#: Message kinds on the wire.
REQ = "qconnect.req"
RESP = "qconnect.resp"


class ScaleSpec:
    """Everything that determines a cluster-scale run, picklable + JSON-able.

    ``faults`` is a list of ``(node, at_ns, duration_ns, mult)`` tuples:
    node-local service-time multipliers over a window (see
    ``repro.faults.scale`` for deriving them from a ``FaultPlan``).
    """

    __slots__ = ("racks", "nodes_per_rack", "tenants_per_node",
                 "ops_per_tenant", "mean_think_ns", "cross_rack_frac",
                 "cached_frac", "seed", "engine", "faults")

    def __init__(self, racks=4, nodes_per_rack=4, tenants_per_node=2,
                 ops_per_tenant=8, mean_think_ns=20_000,
                 cross_rack_frac=0.35, cached_frac=0.5, seed=1,
                 engine="default", faults=()):
        if racks * nodes_per_rack < 2:
            raise ValueError("the model needs at least two nodes")
        if ops_per_tenant < 1 or tenants_per_node < 1:
            raise ValueError("need at least one tenant issuing one op")
        if mean_think_ns < 1:
            raise ValueError("mean_think_ns must be >= 1")
        self.racks = int(racks)
        self.nodes_per_rack = int(nodes_per_rack)
        self.tenants_per_node = int(tenants_per_node)
        self.ops_per_tenant = int(ops_per_tenant)
        self.mean_think_ns = int(mean_think_ns)
        self.cross_rack_frac = float(cross_rack_frac)
        self.cached_frac = float(cached_frac)
        self.seed = int(seed)
        self.engine = engine
        self.faults = tuple(tuple(f) for f in faults)

    def topology(self):
        return RackTopology(self.racks, self.nodes_per_rack)

    def to_dict(self):
        return {
            "racks": self.racks,
            "nodes_per_rack": self.nodes_per_rack,
            "tenants_per_node": self.tenants_per_node,
            "ops_per_tenant": self.ops_per_tenant,
            "mean_think_ns": self.mean_think_ns,
            "cross_rack_frac": self.cross_rack_frac,
            "cached_frac": self.cached_frac,
            "seed": self.seed,
            "engine": self.engine,
            "faults": [list(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["faults"] = [tuple(f) for f in data.pop("faults", [])]
        return cls(**data)

    def __repr__(self):
        return f"ScaleSpec({self.to_dict()!r})"


def digest_records(records):
    """SHA-256 over canonically ordered completion records.

    The equivalence suite's currency: identical digests mean every op
    completed at the same simulated time with the same outcome.
    """
    h = hashlib.sha256()
    for record in sorted(records):
        h.update(repr(record).encode())
        h.update(b"\n")
    return h.hexdigest()


_FIXED = 1 << 32


class _Lcg:
    """A private 64-bit LCG stream (same constants as LinkFault's)."""

    __slots__ = ("state",)

    def __init__(self, seed):
        # splitmix-style scramble so nearby seeds diverge immediately.
        state = (seed + 0x9E3779B97F4A7C15) % (1 << 64)
        state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) % (1 << 64)
        self.state = state or 1

    def draw32(self):
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        return self.state >> 32

    def below(self, bound):
        return self.draw32() % bound

    def chance(self, frac_fixed):
        return self.draw32() < frac_fixed


class _NodeState:
    """One node's control-plane server, partition-local."""

    __slots__ = ("node", "busy_until_ns", "arrivals", "drain_scheduled",
                 "slow_windows", "served")

    def __init__(self, node, slow_windows):
        self.node = node
        self.busy_until_ns = 0
        self.arrivals = []
        self.drain_scheduled = False
        #: Sorted (start_ns, end_ns, mult) windows; consulted at service start.
        self.slow_windows = slow_windows
        self.served = 0

    def slow_mult(self, at_ns):
        for start, end, mult in self.slow_windows:
            if start <= at_ns < end:
                return mult
            if start > at_ns:
                break
        return 1.0


class _ScaleState:
    """Partition-local model state, hung off the Partition object."""

    __slots__ = ("spec", "topology", "assignment", "nodes", "records", "issued")

    def __init__(self, spec, topology, assignment):
        self.spec = spec
        self.topology = topology
        self.assignment = assignment
        self.nodes = {}
        self.records = []
        self.issued = 0


def _wire_ns(topology, src, dst):
    """One-way request/response latency between two nodes."""
    if topology.same_rack(src, dst):
        return timing.WIRE_ONE_WAY_NS
    return timing.INTER_RACK_ONE_WAY_NS


def _deliver(partition, state, src, dst, kind, payload, deliver_ns):
    """Route a message: channel for cross-rack, direct for rack-mates."""
    if state.topology.same_rack(src, dst):
        partition.send_direct(kind, payload, src, deliver_ns)
    else:
        dst_part = state.assignment.partition_of_node(dst)
        partition.send(dst_part, kind, payload, src, deliver_ns)


class _TenantIssue:
    """One tenant's next scheduled op (self-rescheduling callback)."""

    __slots__ = ("partition", "state", "node", "tenant", "op_index", "lcg")

    def __init__(self, partition, state, node, tenant, op_index, lcg):
        self.partition = partition
        self.state = state
        self.node = node
        self.tenant = tenant
        self.op_index = op_index
        self.lcg = lcg

    def __call__(self):
        state = self.state
        spec = state.spec
        sim = self.partition.sim
        topology = state.topology
        now = sim.now

        cross = self.lcg.chance(int(spec.cross_rack_frac * _FIXED))
        my_rack = topology.rack_of(self.node)
        if cross and topology.racks > 1:
            # Uniform over nodes outside my rack, by skipping my block.
            total = topology.num_nodes - topology.nodes_per_rack
            pick = self.lcg.below(total)
            base = my_rack * topology.nodes_per_rack
            target = pick if pick < base else pick + topology.nodes_per_rack
        elif topology.nodes_per_rack > 1:
            pick = self.lcg.below(topology.nodes_per_rack - 1)
            base = my_rack * topology.nodes_per_rack
            target = base + pick + (1 if base + pick >= self.node else 0)
        else:
            # Single-node racks cannot connect in-rack; force cross-rack.
            pick = self.lcg.below(topology.num_nodes - 1)
            target = pick + (1 if pick >= self.node else 0)
        cached = 1 if self.lcg.chance(int(spec.cached_frac * _FIXED)) else 0

        payload = (target, self.node, self.tenant, self.op_index, now, cached)
        state.issued += 1
        _deliver(self.partition, state, self.node, target, REQ, payload,
                 now + _wire_ns(topology, self.node, target))

        next_index = self.op_index + 1
        if next_index < spec.ops_per_tenant:
            self.op_index = next_index
            sim.schedule(1 + self.lcg.below(2 * spec.mean_think_ns), self)


class _Drain:
    """Per-(node, timestamp) canonical admission of buffered arrivals."""

    __slots__ = ("partition", "state", "node_state")

    def __init__(self, partition, state, node_state):
        self.partition = partition
        self.state = state
        self.node_state = node_state

    def __call__(self):
        ns = self.node_state
        ns.drain_scheduled = False
        arrivals, ns.arrivals = ns.arrivals, []
        # Canonical admission order: (src_node, seq) — handler dispatch
        # order (which may legally vary around the partition boundary)
        # never reaches the service accumulator.
        arrivals.sort(key=lambda pair: pair[0])
        state = self.state
        topology = state.topology
        now = self.partition.sim.now
        busy = ns.busy_until_ns
        if busy < now:
            busy = now
        for _key, payload in arrivals:
            _target, src, tenant, op_index, issue_ns, cached = payload
            base = (timing.QCONNECT_CACHED_SERVICE_NS if cached
                    else timing.QCONNECT_UNCACHED_SERVICE_NS)
            busy += int(base * ns.slow_mult(busy))
            ns.served += 1
            resp = (src, tenant, op_index, issue_ns, cached, ns.node)
            _deliver(self.partition, state, ns.node, src, RESP, resp,
                     busy + _wire_ns(topology, ns.node, src))
        ns.busy_until_ns = busy


def _on_request(partition, msg):
    state = partition.scale_state
    ns = state.nodes[msg.payload[0]]
    ns.arrivals.append(((msg.src_node, msg.seq), msg.payload))
    if not ns.drain_scheduled:
        ns.drain_scheduled = True
        # Runs at this same timestamp, after every arrival handler already
        # scheduled for it (both engines dispatch same-ts work in schedule
        # order, and all arrivals at t were scheduled strictly before t).
        partition.sim.schedule(0, _Drain(partition, state, ns))


def _on_response(partition, msg):
    state = partition.scale_state
    src, tenant, op_index, issue_ns, cached, server = msg.payload
    state.records.append(
        (src, tenant, op_index, server, issue_ns, partition.sim.now, cached)
    )


class _Harvest:
    """Picklable harvest callable (mp workers ship it back verbatim)."""

    __slots__ = ("partition",)

    def __init__(self, partition):
        self.partition = partition

    def __call__(self):
        state = self.partition.scale_state
        return {
            "records": state.records,
            "issued": state.issued,
            "served": {node: ns.served for node, ns in state.nodes.items()
                       if ns.served},
            "events_dispatched": self.partition.sim.events_dispatched,
            "messages_sent": self.partition.messages_sent,
        }


def build_scale_partition(args, index):
    """Build one partition of the qconnect-storm model.

    ``args`` is ``(spec, num_partitions)``; module-level so the ``mp``
    mode can import it by reference into worker processes.
    """
    spec, num_partitions = args
    topology = spec.topology()
    assignment = plan_partitions(topology, num_partitions)
    partition = Partition(index, num_partitions,
                          timing.INTER_RACK_ONE_WAY_NS, engine=spec.engine)
    state = _ScaleState(spec, topology, assignment)
    partition.scale_state = state
    partition.register(REQ, _on_request)
    partition.register(RESP, _on_response)

    slow_by_node = {}
    for node, at_ns, duration_ns, mult in spec.faults:
        slow_by_node.setdefault(node, []).append(
            (int(at_ns), int(at_ns) + int(duration_ns), float(mult))
        )

    for node in assignment.nodes_of_partition(index):
        state.nodes[node] = _NodeState(node, sorted(slow_by_node.get(node, ())))
        for tenant in range(spec.tenants_per_node):
            lcg = _Lcg((spec.seed * 1_000_003 + node) * 1_000_003 + tenant)
            issue = _TenantIssue(partition, state, node, tenant, 0, lcg)
            # First op after one think-time draw, so tenants don't all
            # fire at t=0.
            partition.sim.schedule(1 + lcg.below(2 * spec.mean_think_ns), issue)
    partition.harvest = _Harvest(partition)
    return partition


class ScaleResult:
    """Merged, canonically ordered outcome of one cluster-scale run."""

    __slots__ = ("spec", "partitions", "mode", "records", "issued", "served",
                 "windows", "cross_messages", "events_dispatched", "wall_s",
                 "partition_compute_s", "coordinator_s")

    def __init__(self, spec, partitions, mode, records, issued, served,
                 windows, cross_messages, events_dispatched,
                 partition_compute_s=(), coordinator_s=0.0):
        self.spec = spec
        self.partitions = partitions
        self.mode = mode
        self.records = records
        self.issued = issued
        self.served = served
        self.windows = windows
        self.cross_messages = cross_messages
        self.events_dispatched = events_dispatched
        self.wall_s = None
        self.partition_compute_s = list(partition_compute_s)
        self.coordinator_s = coordinator_s

    @property
    def completed(self):
        return len(self.records)

    @property
    def horizon_ns(self):
        return max((r[5] for r in self.records), default=0)

    def throughput_per_sec(self):
        """Simulated qconnect completions per simulated second."""
        horizon = self.horizon_ns
        if horizon <= 0:
            return 0.0
        return self.completed * 1e9 / horizon

    def digest(self):
        """See :func:`digest_records` (records are already sorted here)."""
        return digest_records(self.records)

    def mean_latency_ns(self):
        if not self.records:
            return 0.0
        return sum(r[5] - r[4] for r in self.records) / len(self.records)

    @property
    def critical_path_s(self):
        """Wall seconds the run would take given one core per partition.

        The slowest partition's own compute plus the coordinator's serial
        overhead — the honest speedup measure when the host has fewer
        cores than partitions (partitions then timeshare one core and raw
        wall time cannot show the split).
        """
        peak = max(self.partition_compute_s) if self.partition_compute_s else 0.0
        return peak + self.coordinator_s

    def qconnects_per_wall_sec(self, seconds=None):
        """Completed qconnects per wall-clock second of engine compute."""
        seconds = self.critical_path_s if seconds is None else seconds
        if not seconds or seconds <= 0:
            return 0.0
        return self.completed / seconds


def run_scale(spec, partitions=1, mode="inline", mp_context=None):
    """Run the qconnect-storm model over ``partitions`` engine partitions."""
    result = run_partitioned(
        build_scale_partition, (spec, partitions), partitions,
        timing.INTER_RACK_ONE_WAY_NS, mode=mode, mp_context=mp_context,
    )
    records = []
    issued = 0
    served = {}
    for harvest in result.harvests:
        records.extend(harvest["records"])
        issued += harvest["issued"]
        served.update(harvest["served"])
    records.sort()
    return ScaleResult(
        spec=spec,
        partitions=partitions,
        mode=result.mode,
        records=records,
        issued=issued,
        served=served,
        windows=result.windows,
        cross_messages=result.cross_messages,
        events_dispatched=result.events_dispatched,
        partition_compute_s=result.partition_compute_s,
        coordinator_s=result.coordinator_s,
    )
