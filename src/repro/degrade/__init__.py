"""Overload protection and graceful degradation for the control plane.

KRCORE's headline claim is a control plane that stays microsecond-scale
under elastic bursts, but burst traffic has a failure mode binary fault
injection never exercises: *overload* and *gray failure*, where every
component is technically alive but slow, queues grow without bound, and
goodput collapses even though nothing ever "failed".  This package is
the defense layer:

- :class:`Deadline` -- an absolute time budget a qconnect/one-sided op
  carries across meta RPC hops.  Retry loops check it before sleeping,
  shard probes check it before failing over, and the meta client checks
  it after queueing for its mutex, so work a caller no longer has time
  for stops consuming capacity and surfaces a typed
  :class:`~repro.verbs.errors.DeadlineExceededError`.
- :class:`CircuitBreaker` -- the classic closed/open/half-open machine,
  one per (module, meta shard), driven by observed failures *and*
  latency so a lagging-but-alive shard is probed, not hammered.
- :class:`TokenBucket` / :class:`AdmissionGate` -- admission control on
  the shared DCT-lookup capacity: a deterministic token bucket with a
  bounded pending queue served LIFO (fresh arrivals ride the next token;
  the oldest waiter -- the one most likely already past its deadline --
  is shed first), rejecting early with a typed
  :class:`~repro.verbs.errors.OverloadRejectedError` instead of letting
  a storm collapse everyone's latency.
- :class:`DegradePolicy` -- the knob bundle.  Everything defaults off:
  a module built without a policy (``KrcoreModule(degrade=None)``, the
  default) takes exactly the same code paths as before, which is what
  keeps every committed figure CSV byte-identical.

All timing is simulated-clock based and fully deterministic; breaker
transitions and admission lifecycle events report to ``repro.check``
hooks and ``repro.obs`` metrics behind the usual single falsy checks.
"""

import math

from repro.check import hooks as _check
from repro.cluster import timing
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.verbs.errors import DeadlineExceededError, OverloadRejectedError

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "DegradePolicy",
    "OverloadRejectedError",
    "TokenBucket",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: The legal breaker transitions; repro.check flags anything else.
BREAKER_TRANSITIONS = frozenset(
    [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        (BREAKER_HALF_OPEN, BREAKER_OPEN),
    ]
)


class Deadline:
    """An absolute expiry on the simulated clock.

    The budget is "decremented" across hops for free: each checkpoint
    compares the advancing clock against the fixed expiry, so whatever
    one hop spends is exactly what the next hop no longer has.
    """

    __slots__ = ("expires_at_ns",)

    def __init__(self, expires_at_ns):
        self.expires_at_ns = int(expires_at_ns)

    @classmethod
    def after(cls, sim, budget_ns):
        """A deadline ``budget_ns`` from the simulation's current time."""
        return cls(sim.now + int(budget_ns))

    def remaining_ns(self, now):
        return self.expires_at_ns - now

    def expired(self, now):
        return now >= self.expires_at_ns

    def check(self, now, what):
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if now >= self.expires_at_ns:
            raise DeadlineExceededError(
                f"deadline passed {now - self.expires_at_ns} ns ago: {what}"
            )

    def __repr__(self):
        return f"Deadline(expires_at_ns={self.expires_at_ns})"


class CircuitBreaker:
    """Closed/open/half-open breaker over one downstream dependency.

    CLOSED passes everything and counts *consecutive* failures; at
    ``failure_threshold`` it opens.  OPEN fast-fails (``allow`` returns
    False at zero cost -- no :data:`timing.META_OUTAGE_PROBE_NS` burned)
    until ``recovery_ns`` elapses, then admits exactly one probe in
    HALF_OPEN.  The probe's outcome decides: success closes, failure
    re-opens.  A success slower than ``latency_threshold_ns`` counts as
    a failure -- that is the gray-failure signal: a shard that answers
    in 250 us is, for a microsecond-scale control plane, down.
    """

    def __init__(self, sim, name="", failure_threshold=None, recovery_ns=None,
                 latency_threshold_ns=None):
        self.sim = sim
        self.name = name
        self.failure_threshold = (
            timing.DEGRADE_BREAKER_FAILURES
            if failure_threshold is None else int(failure_threshold)
        )
        self.recovery_ns = (
            timing.DEGRADE_BREAKER_RECOVERY_NS
            if recovery_ns is None else int(recovery_ns)
        )
        self.latency_threshold_ns = (
            timing.DEGRADE_BREAKER_LATENCY_NS
            if latency_threshold_ns is None else int(latency_threshold_ns)
        )
        self.state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0
        self._probe_inflight = False
        self.stats_opens = 0
        self.stats_fast_fails = 0
        self.stats_probes = 0

    def _transition(self, new_state):
        old_state = self.state
        self.state = new_state
        if _check.CHECKER is not None:
            _check.CHECKER.breaker_transition(self, old_state, new_state, self.sim.now)
        if _trace.TRACER is not None:
            _trace.TRACER.instant(
                self.sim.now, f"degrade/{self.name}", f"breaker.{new_state}",
                prev=old_state,
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter(f"degrade.breaker_to_{new_state}").inc()

    def allow(self):
        """May a request go downstream right now?  False = fast-fail."""
        if self.state is BREAKER_CLOSED:
            return True
        if self.state is BREAKER_OPEN:
            if self.sim.now - self._opened_at >= self.recovery_ns:
                self._transition(BREAKER_HALF_OPEN)
                self._probe_inflight = True
                self.stats_probes += 1
                return True
            self.stats_fast_fails += 1
            return False
        # HALF_OPEN: exactly one probe at a time.
        if self._probe_inflight:
            self.stats_fast_fails += 1
            return False
        self._probe_inflight = True
        self.stats_probes += 1
        return True

    def record_success(self, latency_ns=None):
        """A downstream answer arrived; slow answers still count against."""
        if latency_ns is not None and latency_ns > self.latency_threshold_ns:
            self.record_failure()
            return
        self._failures = 0
        if self.state is BREAKER_HALF_OPEN:
            self._probe_inflight = False
            self._transition(BREAKER_CLOSED)

    def record_failure(self):
        if self.state is BREAKER_HALF_OPEN:
            self._probe_inflight = False
            self._opened_at = self.sim.now
            self.stats_opens += 1
            self._transition(BREAKER_OPEN)
            return
        self._failures += 1
        if self.state is BREAKER_CLOSED and self._failures >= self.failure_threshold:
            self._opened_at = self.sim.now
            self.stats_opens += 1
            self._transition(BREAKER_OPEN)

    def __repr__(self):
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"


class TokenBucket:
    """A deterministic token bucket on the simulated clock.

    Refill is computed lazily from elapsed simulated time (IEEE floats,
    so identical call sequences yield identical token balances -- no
    wall clock, no RNG).
    """

    __slots__ = ("sim", "rate_per_sec", "burst", "_tokens", "_stamp")

    def __init__(self, sim, rate_per_sec, burst):
        if rate_per_sec <= 0:
            raise ValueError("token bucket needs a positive rate")
        self.sim = sim
        self.rate_per_sec = float(rate_per_sec)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = sim.now

    def _refill(self, now):
        if now > self._stamp:
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._stamp) * self.rate_per_sec / 1e9,
            )
            self._stamp = now

    def take(self, now):
        """Consume one token if available; False means come back later."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def ns_until_token(self, now):
        """Simulated ns until one whole token will have accumulated."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0
        return int(math.ceil((1.0 - self._tokens) * 1e9 / self.rate_per_sec))


class AdmissionGate:
    """Token-bucket admission with a bounded, LIFO-served pending queue.

    ``admit()`` is a simulation process.  With a token in hand the
    caller passes straight through; otherwise it parks on the pending
    stack.  A single drain pump wakes per accumulated token and admits
    the *newest* waiter -- LIFO, because under overload the oldest
    waiter is the one whose caller has already burned most of its
    deadline; serving fresh arrivals first is what keeps a well-behaved
    tenant's p99 flat while a storm rages.  When the stack is full the
    *oldest* waiter is shed with :class:`OverloadRejectedError` to make
    room (``max_pending=0`` degenerates to immediate reject).

    Every request's lifecycle (admitted / queued / shed / rejected) is
    reported to the installed :mod:`repro.check` checker, which enforces
    shed-count accounting and that no admitted request is ever dropped.
    """

    _ADMITTED = "admitted"
    _SHED = "shed"

    def __init__(self, sim, rate_per_sec, burst, max_pending, name=""):
        self.sim = sim
        self.name = name
        self.bucket = TokenBucket(sim, rate_per_sec, burst)
        self.max_pending = int(max_pending)
        self._waiters = []  # stack of [event, op_id]; top = newest
        self._draining = False
        self._next_op_id = 0
        self.stats_arrivals = 0
        self.stats_admitted = 0
        self.stats_queued = 0
        self.stats_shed = 0
        self.stats_rejected = 0

    @property
    def pending(self):
        return len(self._waiters)

    def _report(self, op_id, event):
        if _check.CHECKER is not None:
            _check.CHECKER.admission_event(self, op_id, event, self.sim.now)
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter(f"degrade.admission_{event}").inc()

    def admit(self, deadline=None):
        """Process: return once admitted, raise OverloadRejectedError if
        shed/rejected, DeadlineExceededError if the budget died queueing."""
        self.stats_arrivals += 1
        op_id = self._next_op_id
        self._next_op_id += 1
        now = self.sim.now
        if not self._waiters and self.bucket.take(now):
            self.stats_admitted += 1
            self._report(op_id, "admitted")
            return
        if self.max_pending <= 0:
            self.stats_rejected += 1
            self._report(op_id, "rejected")
            raise OverloadRejectedError(
                f"admission gate {self.name or id(self)}: no token and no queue"
            )
        if len(self._waiters) >= self.max_pending:
            victim_event, victim_op = self._waiters.pop(0)  # oldest
            self.stats_shed += 1
            self._report(victim_op, "shed")
            victim_event.trigger(self._SHED)
        waiter = self.sim.event()
        self._waiters.append([waiter, op_id])
        self.stats_queued += 1
        self._report(op_id, "queued")
        if not self._draining:
            self._draining = True
            self.sim.process(self._drain(), name=f"admission-drain:{self.name}")
        verdict = yield waiter
        if verdict is self._SHED:
            raise OverloadRejectedError(
                f"admission gate {self.name or id(self)}: shed after queueing "
                f"({self.max_pending} pending bound)"
            )
        if deadline is not None:
            deadline.check(self.sim.now, "queued at the admission gate")

    def _drain(self):
        """Pump process: one token, one (newest) waiter, repeat."""
        try:
            while self._waiters:
                wait_ns = self.bucket.ns_until_token(self.sim.now)
                if wait_ns > 0:
                    yield wait_ns
                if not self._waiters:
                    break
                if not self.bucket.take(self.sim.now):
                    continue
                event, op_id = self._waiters.pop()  # newest
                self.stats_admitted += 1
                self._report(op_id, "admitted")
                event.trigger(self._ADMITTED)
        finally:
            self._draining = False


class DegradePolicy:
    """The overload-protection knob bundle for one :class:`KrcoreModule`.

    Everything defaults *off*; a policy object is pure configuration
    (shareable across modules -- breaker and gate state live on the
    module/pool).  ``DegradePolicy.protected()`` is the
    everything-sensible-on preset used by the overload figure and the
    gray chaos harness.
    """

    def __init__(
        self,
        deadline_ns=None,
        breaker_enabled=False,
        breaker_failure_threshold=None,
        breaker_recovery_ns=None,
        breaker_latency_ns=None,
        admission_enabled=False,
        admission_rate_per_sec=None,
        admission_burst=None,
        admission_max_pending=None,
        rnic_command_queue_limit=None,
    ):
        self.deadline_ns = deadline_ns
        self.breaker_enabled = bool(breaker_enabled)
        self.breaker_failure_threshold = (
            timing.DEGRADE_BREAKER_FAILURES
            if breaker_failure_threshold is None else int(breaker_failure_threshold)
        )
        self.breaker_recovery_ns = (
            timing.DEGRADE_BREAKER_RECOVERY_NS
            if breaker_recovery_ns is None else int(breaker_recovery_ns)
        )
        self.breaker_latency_ns = (
            timing.DEGRADE_BREAKER_LATENCY_NS
            if breaker_latency_ns is None else int(breaker_latency_ns)
        )
        self.admission_enabled = bool(admission_enabled)
        self.admission_rate_per_sec = (
            timing.DEGRADE_ADMISSION_RATE_PER_SEC
            if admission_rate_per_sec is None else float(admission_rate_per_sec)
        )
        self.admission_burst = (
            timing.DEGRADE_ADMISSION_BURST
            if admission_burst is None else int(admission_burst)
        )
        self.admission_max_pending = (
            timing.DEGRADE_ADMISSION_MAX_PENDING
            if admission_max_pending is None else int(admission_max_pending)
        )
        self.rnic_command_queue_limit = rnic_command_queue_limit

    @classmethod
    def protected(cls, **overrides):
        """Deadlines + breakers + admission on, with the timing defaults."""
        config = dict(
            deadline_ns=None,
            breaker_enabled=True,
            admission_enabled=True,
        )
        config.update(overrides)
        return cls(**config)
