"""Run figure reproductions from the command line.

    python -m repro.bench            # every figure, fast mode
    python -m repro.bench fig10      # one figure
    python -m repro.bench --full     # paper-scale
"""

import argparse
import importlib
import sys
import time

ALL_FIGURES = [
    "fig01", "fig03", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "ablations",
    "discussion",
]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "figures", nargs="*", default=ALL_FIGURES,
        help=f"which figures to run (default: all of {', '.join(ALL_FIGURES)})",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run at the paper's scale (240 clients, 180 workers)",
    )
    args = parser.parse_args(argv)
    for name in args.figures:
        if name not in ALL_FIGURES:
            parser.error(f"unknown figure {name!r}; choose from {ALL_FIGURES}")
        module = importlib.import_module(f"repro.bench.{name}")
        started = time.time()
        result = module.run(fast=not args.full)
        result.show()
        print(f"[{name} regenerated in {time.time() - started:.1f}s wall time]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
