"""Run figure reproductions from the command line.

    python -m repro.bench                     # every figure, fast mode
    python -m repro.bench fig10               # one figure
    python -m repro.bench --full              # paper-scale
    python -m repro.bench --jobs 4            # fan figures out over processes
    python -m repro.bench --save-dir out/     # export every table as CSV
    python -m repro.bench --perf-json benchmarks/BENCH_2026-08-07.json
    python -m repro.bench fig03 --trace /tmp/fig03.json --metrics -
    python -m repro.bench fig10 --profile benchmarks/profiles/fig10.pstats.txt

Figures are independent simulations, so ``--jobs N`` runs them across a
``ProcessPoolExecutor``; results are printed in submission order and the
tables/CSVs are identical to a serial run.  ``--save-dir DIR`` writes each
table as ``<figure>-<n>.csv`` under DIR.  ``--perf-json PATH`` appends one
record per figure -- wall seconds, events dispatched, simulated ns, and the
derived events/sec and simulated-ns/sec -- to a ``BENCH_<date>.json``
trajectory file (see ``repro.bench.perf``), building a perf history of the
engine PR over PR.  ``--trace PATH`` / ``--metrics PATH`` install the
``repro.obs`` observability layer for each figure and export a
Perfetto-loadable Chrome trace / a flat metrics snapshot (``-`` prints to
stdout; multiple figures write ``<stem>-<figure><suffix>`` each).
"""

import argparse
import sys
import time

from repro.bench.perf import (
    append_trajectory,
    figure_output_path,
    load_trajectory,
    run_figure,
)

ALL_FIGURES = [
    "fig01", "fig03", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "ablations",
    "discussion", "meta_scale", "overload", "dataplane", "microview",
    "cluster_scale",
]

#: Figures whose ``run()`` takes a ``partitions`` argument.  With
#: ``--partitions > 1`` these may fork one OS process per partition
#: (``mp`` mode in full runs), so ``--jobs`` must not also ship them to
#: a pool worker: partitions take precedence, the figure runs in the
#: parent, and only partition-unaware figures use the pool.  This is the
#: no-double-fork/no-oversubscription rule (see ``--partitions`` help).
PARTITION_AWARE = ["cluster_scale"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "figures", nargs="*", default=ALL_FIGURES,
        help=f"which figures to run (default: all of {', '.join(ALL_FIGURES)})",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run at the paper's scale (240 clients, 180 workers)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run figures in N worker processes (figures are independent; "
             "output is identical to a serial run)",
    )
    parser.add_argument(
        "--partitions", type=int, default=None, metavar="P",
        help="run partition-aware figures (cluster_scale) over P engine "
             "partitions plus the P=1 baseline.  Precedence over --jobs: "
             "with P > 1 those figures run in the parent process — never "
             "inside a --jobs pool worker — so partition workers are the "
             "only forks and the host is not oversubscribed; the "
             "remaining figures still use the pool",
    )
    parser.add_argument(
        "--save-dir", metavar="DIR",
        help="write each figure's tables as <figure>-<n>.csv under DIR",
    )
    parser.add_argument(
        "--perf-json", metavar="PATH",
        help="append per-figure perf records (wall s, events/s, sim-ns/s) "
             "to this BENCH_<date>.json trajectory file",
    )
    parser.add_argument(
        "--perf-label", metavar="TEXT",
        help="label stored with the run in the perf trajectory file",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record a structured trace of each figure's simulation and "
             "export Chrome trace-event JSON (Perfetto-loadable) to PATH; "
             "with several figures, each writes <stem>-<figure><suffix>",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="export each figure's metrics snapshot (counters/histograms) "
             "as JSON to PATH ('-' for stdout); with several figures, each "
             "writes <stem>-<figure><suffix>",
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help="run each figure under cProfile and write a pstats text "
             "report (top functions by cumulative and internal time) to "
             "PATH ('-' for stdout); with several figures, each writes "
             "<stem>-<figure><suffix>.  Wall/rate numbers recorded for "
             "profiled runs carry profiling overhead and are tagged "
             "\"profiled\" in the perf trajectory",
    )
    args = parser.parse_args(argv)
    for name in args.figures:
        if name not in ALL_FIGURES:
            parser.error(f"unknown figure {name!r}; choose from {ALL_FIGURES}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.partitions is not None and args.partitions < 1:
        parser.error("--partitions must be >= 1")
    if args.perf_json:
        try:  # fail fast, before the (possibly long) figure runs
            load_trajectory(args.perf_json)
        except ValueError as err:
            parser.error(str(err))

    multiple = len(args.figures) > 1
    per_figure = [
        (
            name,
            figure_output_path(args.trace, name, multiple),
            figure_output_path(args.metrics, name, multiple),
            figure_output_path(args.profile, name, multiple),
        )
        for name in args.figures
    ]
    perf_records = []
    started = time.perf_counter()
    pool = None
    if args.jobs == 1 or len(args.figures) == 1:
        outcomes = (
            run_figure(name, full=args.full, trace_path=tp, metrics_path=mp,
                       profile_path=pp, partitions=args.partitions)
            for name, tp, mp, pp in per_figure
        )
    else:
        from concurrent.futures import ProcessPoolExecutor

        # Partition precedence: with --partitions > 1 a partition-aware
        # figure may fork its own per-partition workers, so it must not
        # ALSO run inside a pool worker (double fork, oversubscription).
        # Those figures run in the parent; the rest use the pool.
        in_parent = (
            set(PARTITION_AWARE)
            if args.partitions is not None and args.partitions > 1
            else set()
        )
        pooled = [entry for entry in per_figure if entry[0] not in in_parent]
        if pooled:
            pool = ProcessPoolExecutor(max_workers=min(args.jobs, len(pooled)))
        futures = {
            entry[0]: pool.submit(run_figure, entry[0], args.full, entry[1],
                                  entry[2], entry[3], args.partitions)
            for entry in pooled
        }
        outcomes = (
            futures[name].result() if name in futures
            else run_figure(name, full=args.full, trace_path=tp,
                            metrics_path=mp, profile_path=pp,
                            partitions=args.partitions)
            for name, tp, mp, pp in per_figure
        )
    for name, (result, perf) in zip(args.figures, outcomes):
        result.show()
        print(f"[{name} regenerated in {perf['wall_s']:.1f}s wall time]")
        perf_records.append(perf)
        if args.save_dir:
            result.save_csv(args.save_dir, name)
    if pool is not None:
        pool.shutdown()
    if args.jobs > 1 and len(args.figures) > 1:
        print(f"[{len(args.figures)} figures with --jobs {args.jobs}: "
              f"{time.perf_counter() - started:.1f}s wall time total]")
    if args.perf_json:
        path = append_trajectory(args.perf_json, perf_records, label=args.perf_label)
        print(f"[perf trajectory appended to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
