"""Ablations of KRCORE's design choices (beyond the paper's figures).

* **DCCache** (§4.2): with the cache, a repeat qconnect is one syscall
  (~0.9 us); without it, every connect pays the meta-server lookup
  (~5.4 us).
* **Per-CPU pools** (§4.2): sharing one global pool across all threads
  funnels every request through a couple of DCQPs; per-CPU pools keep
  the data path parallel.
* **Zero-copy threshold** (§4.5): sweeping the switch-over point for a
  32 KB echo shows copy costs above and descriptor+READ costs below.
"""

from repro.bench.echo import run_echo
from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.bench.setups import krcore_cluster
from repro.krcore import KrcoreLib
from repro.sim import US


def run(fast=True):
    result = FigureResult("Ablations", "KRCORE design-choice ablations")

    # -- DCCache ---------------------------------------------------------------
    cached_us, uncached_us = _dccache_ablation()
    table = result.table(
        "DCCache: repeat qconnect latency", ["configuration", "latency (us)"]
    )
    table.add_row("DCCache on (hit)", cached_us)
    table.add_row("DCCache off (always query meta)", uncached_us)
    result.metrics["dccache"] = (cached_us, uncached_us)

    # -- per-CPU pools -----------------------------------------------------------
    measure = (150 if fast else 400) * US
    threads = 12 if fast else 24
    per_cpu = run_onesided(
        "krcore_dc", "async", num_clients=threads, batch=16,
        single_node=True, measure_ns=measure,
    ).throughput_mps
    shared = _shared_pool_throughput(threads, measure)
    pools = result.table(
        f"pool division ({threads} threads, async 8B READ)",
        ["configuration", "throughput (M/s)"],
    )
    pools.add_row("per-CPU pools (default)", per_cpu)
    pools.add_row("one global pool", shared)
    result.metrics["pools"] = (per_cpu, shared)

    # -- zero-copy threshold ------------------------------------------------------
    payload = 32 * 1024
    thresholds = [4096, 16384, payload + 1]
    zc_table = result.table(
        "zero-copy threshold (32 KB echo)", ["threshold", "latency (us)"]
    )
    zc = {}
    for threshold in thresholds:
        label = "off (copy)" if threshold > payload else f"{threshold} B"
        latency = run_echo(
            "krcore", "sync", payload=payload,
            kernel_buf_bytes=128 * 1024, zero_copy=True,
            zero_copy_threshold=threshold,
        ).avg_latency_us
        zc_table.add_row(label, latency)
        zc[threshold] = latency
    result.metrics["zc"] = zc
    return result


def _dccache_ablation():
    """Repeat-qconnect latency with and without the DCCache."""

    def connect_latency(clear_cache):
        sim, cluster, meta, modules = krcore_cluster(background_rc=False)
        lib = KrcoreLib(cluster.node(1))
        target = cluster.node(2).gid
        module = modules[1]

        def proc():
            # Warm everything once.
            vqp = yield from lib.create_vqp()
            yield from lib.qconnect(vqp, target)
            samples = []
            for _ in range(20):
                if clear_cache:
                    module.dc_cache.pop(target, None)
                vqp = yield from lib.create_vqp()
                start = sim.now
                yield from lib.qconnect(vqp, target)
                samples.append(sim.now - start)
            return sum(samples) / len(samples) / 1000.0

        return sim.run_process(proc())

    return connect_latency(False), connect_latency(True)


def _shared_pool_throughput(threads, measure_ns):
    """Throughput when every CPU shares one global pool (ablating §4.2's
    per-CPU division)."""
    import repro.bench.onesided as onesided

    original = onesided.krcore_cluster

    def patched(*args, **kwargs):
        sim, cluster, meta, modules = original(*args, **kwargs)
        for module in modules:
            shared = module.pool(0)
            module._pools = [shared] * len(module._pools)
        return sim, cluster, meta, modules

    onesided.krcore_cluster = patched
    try:
        result = run_onesided(
            "krcore_dc", "async", num_clients=threads, batch=16,
            single_node=True, measure_ns=measure_ns,
        )
        return result.throughput_mps
    finally:
        onesided.krcore_cluster = original
