"""Fig 10: one-sided READ/WRITE data-path performance.

Sync latency and async inbound peak throughput for verbs vs KRCORE
backed by RC and DC.  Paper peaks: READ 138 / 138 / 118 M/s; WRITE
145 / 145 / 132 M/s; sync KRCORE is 25-46% slower (the syscall).
"""

from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.sim import US

SYSTEMS = ("verbs", "krcore_rc", "krcore_dc")


def run(fast=True):
    result = FigureResult("Fig 10", "one-sided RDMA performance")
    sync_clients = [1, 16] if fast else [1, 16, 60, 120]
    async_clients = [240]
    measure = (150 if fast else 500) * US

    metrics = {}
    for opcode in ("read", "write"):
        sync_table = result.table(
            f"({'a' if opcode == 'read' else 'c'}) sync {opcode.upper()} latency",
            ["system", "clients", "avg latency (us)"],
        )
        for system in SYSTEMS:
            for clients in sync_clients:
                r = run_onesided(system, "sync", opcode=opcode, num_clients=clients,
                                 measure_ns=measure)
                sync_table.add_row(system, clients, r.avg_latency_us)
                metrics[(opcode, "sync", system, clients)] = r.avg_latency_us
        async_table = result.table(
            f"({'b' if opcode == 'read' else 'd'}) async {opcode.upper()} peak throughput",
            ["system", "clients", "throughput (M/s)"],
        )
        for system in SYSTEMS:
            for clients in async_clients:
                r = run_onesided(system, "async", opcode=opcode, num_clients=clients,
                                 batch=16, measure_ns=measure)
                async_table.add_row(system, clients, r.throughput_mps)
                metrics[(opcode, "async", system, clients)] = r.throughput_mps
    result.metrics = metrics
    return result
