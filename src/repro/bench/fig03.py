"""Fig 3: the RDMA control-path / data-path gap and its breakdown.

(a) connecting + communicating with one node: verbs control ~15.7 ms vs
    a 2.15 us 8B READ (a ~7,300x gap);
(b) the control path is dominated by hardware setup, not the handshake
    (2.4%): driver init, create_qp (87% RNIC), configure RTR/RTS.
"""

from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.bench.setups import verbs_cluster
from repro.cluster import timing
from repro.verbs import DriverContext
from repro.verbs.connection import rc_connect


def run(fast=True):
    result = FigureResult("Fig 3", "verbs control path vs data path")
    data_us = run_onesided("verbs", "sync", num_clients=1).avg_latency_us

    sim, cluster = verbs_cluster(num_nodes=2)
    marks = {}

    def connect_once():
        ctx = DriverContext(cluster.node(0))
        yield from ctx.ensure_init()
        marks["init"] = sim.now
        cq = yield from ctx.create_cq()
        marks["create_cq"] = sim.now
        yield from rc_connect(ctx, cq, cluster.node(1).gid)
        marks["connected"] = sim.now

    sim.run_process(connect_once())
    control_us = marks["connected"] / 1000.0

    gap = control_us / data_us
    table = result.table(
        "(a) control vs data path (one client, 8B READ)",
        ["path", "latency (us)", "paper (us)"],
    )
    table.add_row("verbs control", control_us, 15_700)
    table.add_row("verbs data", data_us, 2.15)
    table.add_row("gap (x)", gap, "7,300x")

    init_us = marks["init"] / 1000.0
    create_us = (marks["create_cq"] - marks["init"]) / 1000.0 + timing.CREATE_QP_NS / 1000.0
    configure_us = (timing.MODIFY_RTR_NS + timing.MODIFY_RTS_NS) / 1000.0
    handshake_us = control_us - init_us - create_us - configure_us
    breakdown = result.table(
        "(b) control path breakdown",
        ["component", "time (us)", "share (%)"],
    )
    for name, value in (
        ("Init (driver context)", init_us),
        ("Create (cq + qp)", create_us),
        ("Handshake (incl. server create)", handshake_us),
        ("Configure (RTR + RTS)", configure_us),
    ):
        breakdown.add_row(name, value, 100.0 * value / control_us)
    hw = result.table(
        "create_qp detail", ["part", "time (us)", "share (%)"]
    )
    hw.add_row("waiting for RNIC hardware queues", timing.CREATE_QP_HW_NS / 1000.0,
               100.0 * timing.CREATE_QP_HW_NS / timing.CREATE_QP_NS)
    hw.add_row("driver software", (timing.CREATE_QP_NS - timing.CREATE_QP_HW_NS) / 1000.0,
               100.0 * (1 - timing.CREATE_QP_HW_NS / timing.CREATE_QP_NS))

    result.metrics.update(
        control_us=control_us,
        data_us=data_us,
        gap=gap,
        init_share=init_us / control_us,
        handshake_share=handshake_us / control_us,
    )
    return result
