"""Perf-budget gate: fail CI when engine throughput regresses.

``benchmarks/perf_floor.json`` commits the aggregate fast-suite
``events_per_sec`` the flat engine sustained when the floor was last
recorded.  This module reads a ``BENCH_<date>.json`` trajectory (as
written by ``python -m repro.bench --perf-json``), aggregates the most
recent run's fast-mode figure records, and exits non-zero when the
measured rate falls more than ``--slack`` (default 20%) below the floor.

    python -m repro.bench.budget benchmarks/BENCH_2026-08-09.json
    python -m repro.bench.budget BENCH.json --floor benchmarks/perf_floor.json
    python -m repro.bench.budget BENCH.json --label bench-fast --slack 0.2

Aggregate rate = sum(events_dispatched) / sum(wall_s) over the run's
fast-mode records, so long figures weigh in proportionally instead of
each figure voting once.  Records tagged ``"profiled"`` carry cProfile
overhead and are excluded.  To re-baseline after an intentional change,
rerun the fast suite on a quiet machine and update the floor file with
the new aggregate (``--write-floor`` does this).
"""

import argparse
import json
import pathlib
import sys
import time

from repro.bench.perf import load_trajectory

DEFAULT_FLOOR = "benchmarks/perf_floor.json"
DEFAULT_SLACK = 0.2


def aggregate_rate(run):
    """Sum-of-events over sum-of-wall for a run's clean fast records.

    Returns ``(rate, n_records)``; ``(None, 0)`` when the run holds no
    usable fast-mode records (all full-mode, profiled, or zero wall).
    """
    events = 0
    wall = 0.0
    used = 0
    for record in run.get("figures", []):
        if record.get("mode") != "fast" or record.get("profiled"):
            continue
        if not record.get("wall_s") or record.get("events_dispatched") is None:
            continue
        events += record["events_dispatched"]
        wall += record["wall_s"]
        used += 1
    if not used or wall <= 0:
        return None, 0
    return events / wall, used


def select_run(data, label=None):
    """The most recent run in the trajectory, optionally filtered by label."""
    runs = data.get("runs", [])
    if label is not None:
        runs = [run for run in runs if run.get("label") == label]
    return runs[-1] if runs else None


def load_floor(path):
    data = json.loads(pathlib.Path(path).read_text())
    if "fast_suite_events_per_sec" not in data:
        raise ValueError(f"{path} is not a perf floor file")
    return data


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.budget",
        description="Gate on fast-suite engine throughput vs the committed floor.",
    )
    parser.add_argument("trajectory", help="BENCH_<date>.json trajectory file")
    parser.add_argument(
        "--floor", default=DEFAULT_FLOOR, metavar="PATH",
        help=f"committed floor file (default: {DEFAULT_FLOOR})",
    )
    parser.add_argument(
        "--label", metavar="TEXT",
        help="gate on the latest run with this label (default: latest run)",
    )
    parser.add_argument(
        "--slack", type=float, default=DEFAULT_SLACK, metavar="FRAC",
        help="tolerated fractional regression below the floor "
             f"(default: {DEFAULT_SLACK:g} = {DEFAULT_SLACK:.0%})",
    )
    parser.add_argument(
        "--write-floor", action="store_true",
        help="re-baseline: write the measured aggregate to the floor file "
             "instead of gating",
    )
    args = parser.parse_args(argv)

    data = load_trajectory(args.trajectory)
    run = select_run(data, args.label)
    if run is None:
        print(f"perf-budget: no matching run in {args.trajectory}", file=sys.stderr)
        return 2
    rate, used = aggregate_rate(run)
    if rate is None:
        print(f"perf-budget: run has no clean fast-mode records", file=sys.stderr)
        return 2

    if args.write_floor:
        floor_doc = {
            "schema": 1,
            "fast_suite_events_per_sec": round(rate),
            "records_aggregated": used,
            "recorded": time.strftime("%Y-%m-%d"),
            "source": str(args.trajectory),
            "note": "aggregate events/s over the fast figure suite; "
                    "gate fails below (1 - slack) * floor, slack 0.2",
        }
        pathlib.Path(args.floor).write_text(json.dumps(floor_doc, indent=2) + "\n")
        print(f"perf-budget: floor re-baselined to {round(rate):,} events/s "
              f"({used} records) in {args.floor}")
        return 0

    floor = load_floor(args.floor)["fast_suite_events_per_sec"]
    cutoff = floor * (1.0 - args.slack)
    verdict = "OK" if rate >= cutoff else "FAIL"
    print(
        f"perf-budget: {rate:,.0f} events/s over {used} fast records "
        f"(floor {floor:,} - {args.slack:.0%} slack = cutoff {cutoff:,.0f}) "
        f"{verdict}"
    )
    if rate < cutoff:
        print(
            "perf-budget: fast-suite throughput regressed past the budget; "
            "investigate before merging (or re-baseline the floor with "
            "--write-floor if the regression is intended and justified)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
