"""Fig 12: (a) data-path factor analysis; (b) serverless data transfer.

(a) where KRCORE's sync 8B READ overhead comes from: the DC transport is
    nearly free, the syscall adds ~1 us, the Algorithm-2 checks <0.5 us,
    and an MRStore miss adds ~4.5 us (one ValidMR lookup).
(b) ServerlessBench TestCase5: the message-passing time between two
    functions, verbs vs KRCORE (a ~99% reduction).
"""

from repro.apps.serverless import run_transfer_testcase
from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.bench.setups import krcore_cluster, verbs_cluster
from repro.krcore import KrcoreLib
from repro.sim import US


def run(fast=True):
    result = FigureResult("Fig 12", "factor analysis and serverless transfer")
    table = result.table(
        "(a) sync 8B READ factor analysis",
        ["configuration", "latency (us)", "delta (us)"],
    )
    factors = _factor_analysis(fast)
    previous = None
    for name, value in factors:
        table.add_row(name, value, 0.0 if previous is None else value - previous)
        previous = value
    result.metrics["factors"] = dict(factors)

    payloads = [1024, 4096, 9216] if fast else [1024, 2048, 4096, 6144, 8192, 9216]
    transfer_table = result.table(
        "(b) serverless data transfer (TestCase5)",
        ["payload (B)", "verbs (ms)", "KRCORE (ms)", "reduction (%)"],
    )
    transfers = {}
    for payload in payloads:
        verbs_ms = _transfer("verbs", payload)
        krcore_ms = _transfer("krcore", payload)
        reduction = 100.0 * (1 - krcore_ms / verbs_ms)
        transfer_table.add_row(payload, verbs_ms, krcore_ms, reduction)
        transfers[payload] = (verbs_ms, krcore_ms, reduction)
    result.metrics["transfers"] = transfers
    return result


def _factor_analysis(fast):
    measure = (100 if fast else 300) * US
    base = run_onesided("verbs", "sync", num_clients=1, measure_ns=measure).avg_latency_us
    rows = [("verbs (base)", base)]
    # +DCQP: KRCORE over DC with neither the syscall nor the checks charged.
    rows.append(("+DCQP", _krcore_point(measure, syscall=False, checks=False)))
    # +System call.
    rows.append(("+System call", _krcore_point(measure, syscall=True, checks=False)))
    # +Checks: the full warm KRCORE path.
    rows.append(("+Checks", _krcore_point(measure, syscall=True, checks=True)))
    # +MR miss: one cold op (first touch of the remote MR).
    rows.append(("+MR miss", _mr_miss_point()))
    return rows


def _krcore_point(measure, syscall, checks):
    result = _patched_onesided(measure, syscall, checks)
    return result.avg_latency_us


def _patched_onesided(measure, syscall, checks):
    """run_onesided('krcore_dc', sync) with the ablation knobs applied."""
    import repro.bench.onesided as onesided
    from repro.krcore import KrcoreLib as RealLib

    original_init = RealLib.__init__

    def patched_init(self, node, cpu_id=0, charge_syscall=True):
        original_init(self, node, cpu_id=cpu_id, charge_syscall=syscall)
        self.module.charge_checks = checks

    RealLib.__init__ = patched_init
    try:
        return onesided.run_onesided(
            "krcore_dc", "sync", num_clients=1, measure_ns=measure
        )
    finally:
        RealLib.__init__ = original_init


def _mr_miss_point():
    """Latency of a single READ whose remote MR is not yet in MRStore."""
    sim, cluster, meta, modules = krcore_cluster(background_rc=False)
    server = cluster.nodes[1]
    addr = server.memory.alloc(4096)
    region = server.memory.register(addr, 4096)
    modules[1].valid_mr.record(region)
    meta.publish_mr(server.gid, region.rkey, addr, 4096)
    node = cluster.nodes[2]
    laddr = node.memory.alloc(4096)
    lmr = node.memory.register(laddr, 4096)
    modules[2].valid_mr.record(lmr)
    lib = KrcoreLib(node)

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, server.gid)
        start = sim.now
        yield from lib.read_sync(vqp, laddr, lmr.lkey, addr, region.rkey, 8)
        return (sim.now - start) / 1000.0

    return sim.run_process(proc())


def _transfer(backend, payload):
    if backend == "verbs":
        sim, cluster = verbs_cluster(num_nodes=3)
        sender, receiver = cluster.node(0), cluster.node(1)
    else:
        sim, cluster, meta, modules = krcore_cluster(num_nodes=3)
        sender, receiver = cluster.node(1), cluster.node(2)

    def proc():
        result = yield from run_transfer_testcase(sim, sender, receiver, payload, backend)
        return result

    outcome = sim.run_process(proc())
    return outcome.transfer_ns / 1e6
