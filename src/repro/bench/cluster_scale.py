"""Cluster scale-out: qconnect throughput vs node count × partition count.

The serverless-burst scenario of the paper's §5.3 at rack scale, run on
the partitioned engine (:mod:`repro.sim.partition`): every node serves
``qconnect`` requests at the paper's Fig 8 service costs while tenants
storm the control plane, and the run is split across engine partitions
along rack boundaries with the inter-rack spine latency as conservative
lookahead.

Fast mode is the *equivalence* face of the figure: per (topology,
partition count) it reports the workload digest alongside the window /
cross-message counts, all byte-deterministic — the committed CSVs prove
``partitions=1`` and ``partitions∈{2,4}`` compute the same run.  Full
mode is the *throughput* face: a 256-node topology under the ``mp``
execution mode, reporting raw wall time and the critical path (slowest
partition compute + coordinator — i.e. the wall time on a host with one
core per partition, which is the honest speedup measure when the bench
host has fewer cores than partitions; see DESIGN.md §15).

``partitions=N`` (the bench ``--partitions`` flag) narrows the sweep to
``{1, N}``; counts above a topology's rack count are skipped (racks are
never split across partitions).
"""

import time

from repro.bench.harness import FigureResult
from repro.cluster.scale import ScaleSpec, run_scale

#: Fast-mode topologies: (racks, nodes_per_rack).
FAST_TOPOLOGIES = [(4, 4), (8, 4)]
#: Full-mode topology: 16 racks x 16 nodes = 256 nodes.
FULL_TOPOLOGY = (16, 16)
DEFAULT_COUNTS = [1, 2, 4]


def _partition_counts(partitions):
    if partitions is None:
        return list(DEFAULT_COUNTS)
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    return sorted({1, int(partitions)})


def run(fast=True, partitions=None):
    result = FigureResult(
        "Cluster scale",
        "qconnect storm over the partitioned engine: equivalence + speedup",
    )
    counts = _partition_counts(partitions)
    if fast:
        _fast_tables(result, counts)
    else:
        _full_table(result, counts)
    return result


def _fast_tables(result, counts):
    table = result.table(
        "(a) cross-partition equivalence (inline, deterministic)",
        ["racks", "nodes", "partitions", "qconnects", "windows",
         "cross msgs", "sim throughput (K/s)", "mean latency (us)", "digest"],
    )
    points = {}
    for racks, nodes_per_rack in FAST_TOPOLOGIES:
        digests = set()
        for count in counts:
            if count > racks:
                continue
            spec = ScaleSpec(
                racks=racks, nodes_per_rack=nodes_per_rack,
                tenants_per_node=3, ops_per_tenant=60,
                mean_think_ns=8_000, seed=29,
            )
            res = run_scale(spec, partitions=count)
            digest = res.digest()
            digests.add(digest)
            table.add_row(
                racks, racks * nodes_per_rack, count, res.completed,
                res.windows, res.cross_messages,
                round(res.throughput_per_sec() / 1e3, 1),
                round(res.mean_latency_ns() / 1e3, 2),
                digest[:16],
            )
            points[(racks * nodes_per_rack, count)] = (
                res.completed, digest[:16],
            )
        if len(digests) > 1:
            raise AssertionError(
                f"partition counts diverged on {racks}x{nodes_per_rack}: "
                f"{sorted(digests)}"
            )
    result.metrics["equivalence"] = points


def _full_table(result, counts):
    table = result.table(
        "(a) qconnect/s vs partitions (mp, 256 nodes)",
        ["nodes", "partitions", "qconnects", "wall (s)",
         "max partition compute (s)", "coordinator (s)", "critical path (s)",
         "qconnect/s (critical path)", "speedup vs P=1"],
    )
    racks, nodes_per_rack = FULL_TOPOLOGY
    spec = ScaleSpec(
        racks=racks, nodes_per_rack=nodes_per_rack,
        tenants_per_node=4, ops_per_tenant=120,
        mean_think_ns=9_000, cross_rack_frac=0.35, seed=42,
    )
    base_critical = None
    digests = set()
    points = {}
    for count in counts:
        if count > racks:
            continue
        started = time.perf_counter()
        res = run_scale(spec, partitions=count, mode="mp")
        res.wall_s = time.perf_counter() - started
        digests.add(res.digest())
        critical = res.critical_path_s
        if base_critical is None:
            base_critical = critical
        speedup = base_critical / critical if critical > 0 else 0.0
        table.add_row(
            racks * nodes_per_rack, count, res.completed,
            round(res.wall_s, 2),
            round(max(res.partition_compute_s), 2),
            round(res.coordinator_s, 2),
            round(critical, 2),
            round(res.qconnects_per_wall_sec()),
            round(speedup, 2),
        )
        points[count] = (round(res.qconnects_per_wall_sec()), round(speedup, 2))
    if len(digests) > 1:
        raise AssertionError(f"partition counts diverged: {sorted(digests)}")
    result.metrics["speedup"] = points
    result.metrics["digest"] = digests.pop()[:16]
