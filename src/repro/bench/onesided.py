"""Shared driver for one-sided microbenchmarks (Figs 10, 13, 14b, 15b).

Clients spread over up to nine nodes issue 8B (or larger) READ/WRITE to
one or more server nodes, in **sync** (run-to-completion) or **async**
(pipelined batches) mode, over one of four stacks: user-space verbs,
KRCORE backed by RC or DC, or LITE.
"""

import random

from repro.bench.setups import (
    krcore_cluster,
    lite_cluster,
    plant_rc,
    spread_clients,
    verbs_cluster,
)
from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.sim import LatencyRecorder, US
from repro.verbs import CompletionQueue, DriverContext, QpType, WorkRequest

#: Default measurement windows (ns).
WARMUP_NS = 30 * US
MEASURE_NS = 150 * US


class OneSidedResult:
    """Throughput + latency of one configuration.

    Throughput is the sum of per-client steady-state rates, each measured
    between that client's first and last post-warmup completion -- immune
    to the in-flight-at-warmup bias of naive window counting.
    """

    def __init__(self, recorder, client_windows, measure_ns, served=None):
        self.recorder = recorder
        self.client_windows = client_windows
        self.measure_ns = measure_ns
        #: Ops served by the server RNICs inside the window (unbiased).
        self.served = served

    @property
    def throughput_mps(self):
        if self.served is not None:
            return self.served / (self.measure_ns / 1e9) / 1e6
        total = 0.0
        for start, count, last in self.client_windows.values():
            if count and last > start:
                total += count / ((last - start) / 1e9)
        return total / 1e6

    @property
    def avg_latency_us(self):
        return self.recorder.mean() / 1000.0

    def p(self, fraction):
        return self.recorder.p(fraction) / 1000.0


def run_onesided(
    system,
    mode,
    opcode="read",
    num_clients=1,
    payload=8,
    servers=1,
    target="fixed",
    batch=32,
    warmup_ns=WARMUP_NS,
    measure_ns=MEASURE_NS,
    seed=1234,
    memory_size=16 << 20,
    single_node=False,
):
    """Run one configuration and return a :class:`OneSidedResult`.

    ``system``: "verbs" | "krcore_rc" | "krcore_dc" | "lite".
    ``mode``:   "sync" | "async".
    ``target``: "fixed" (all clients hit server 0) or "random" (a random
    server per request -- the Fig 14b fan-out).
    ``single_node``: place every client (thread) on one machine, like the
    Fig 15b "one node to others" setup.
    """
    env = _Environment(system, servers, memory_size)
    rng = random.Random(seed)
    stop_at = warmup_ns + measure_ns
    recorder = LatencyRecorder()
    client_windows = {}
    if single_node:
        node = env.client_nodes[0]
        placements = [(node, index % node.cores) for index in range(num_clients)]
    else:
        placements = spread_clients(num_clients, env.client_nodes)
    for index, (node, cpu_id) in enumerate(placements):
        issue = env.make_issuer(node, cpu_id, opcode, payload)
        if mode == "sync":
            proc = _client_loop(
                env, issue, target, rng, 1, client_windows, index,
                warmup_ns, stop_at, recorder,
            )
        elif mode == "async":
            proc = _client_loop(
                env, issue, target, rng, batch, client_windows, index,
                warmup_ns, stop_at, None,
            )
        else:
            raise ValueError(f"unknown mode {mode!r}")
        env.sim.process(proc, name=f"client{index}")
    # Snapshot the server RNIC counters exactly at the warmup boundary so
    # throughput is counted where it is served (no in-flight bias).
    baseline = {}

    def snapshot():
        for server in env.server_nodes:
            baseline[server.gid] = server.rnic.stats_inbound_ops

    env.sim.schedule(warmup_ns, snapshot)
    env.sim.run(until=stop_at)
    served = sum(
        server.rnic.stats_inbound_ops - baseline.get(server.gid, 0)
        for server in env.server_nodes
    )
    return OneSidedResult(recorder, client_windows, measure_ns, served=served)


def _client_loop(env, issue, target, rng, batch, windows, index, warmup_ns, stop_at, recorder):
    sync = recorder is not None
    while env.sim.now < stop_at:
        server_index = 0 if target == "fixed" else rng.randrange(env.num_servers)
        start = env.sim.now
        yield from issue(server_index, sync=sync, batch=batch)
        now = env.sim.now
        if start <= warmup_ns:
            continue  # ops *begun* during warmup (incl. setup) don't count
        if recorder is not None:
            recorder.record(now - start)
        entry = windows.get(index)
        if entry is None:
            # First post-warmup completion: the per-client time origin.
            windows[index] = (now, 0, now)
        else:
            origin, count, _ = entry
            windows[index] = (origin, count + batch, now)


class _Environment:
    """Builds the right cluster + per-client issue closures per system."""

    def __init__(self, system, num_servers, memory_size):
        self.system = system
        self.num_servers = num_servers
        if system == "verbs":
            self.sim, cluster = verbs_cluster(memory_size=memory_size)
            self.server_nodes = cluster.nodes[:num_servers]
            self.client_nodes = cluster.nodes[num_servers:]
            self.modules = None
        elif system in ("krcore_rc", "krcore_dc"):
            # The pool composition is part of the experiment: no background
            # RC creation racing the measurement window.
            self.sim, cluster, meta, modules = krcore_cluster(
                memory_size=memory_size, background_rc=False
            )
            self.server_nodes = cluster.nodes[1 : 1 + num_servers]
            self.client_nodes = cluster.nodes[1 + num_servers :]
            self.modules = {node.gid: module for node, module in zip(cluster.nodes, modules)}
        elif system == "lite":
            self.sim, cluster, modules = lite_cluster(memory_size=memory_size)
            self.server_nodes = cluster.nodes[:num_servers]
            self.client_nodes = cluster.nodes[num_servers:]
            self.modules = {node.gid: module for node, module in zip(cluster.nodes, modules)}
        else:
            raise ValueError(f"unknown system {system!r}")
        self.remote_regions = []
        for server in self.server_nodes:
            size = max(1 << 20, memory_size // 4)
            addr = server.memory.alloc(size)
            if system in ("krcore_rc", "krcore_dc"):
                module = self.modules[server.gid]
                region = server.memory.register(addr, size)
                module.valid_mr.record(region)
                module.meta_server.publish_mr(server.gid, region.rkey, addr, size)
            else:
                region = server.memory.register(addr, size)
            self.remote_regions.append((addr, region))

    def make_issuer(self, node, cpu_id, opcode, payload):
        """Returns issue(server_index, sync, batch=...) -- a process."""
        local_size = max(64 * 1024, payload * 2)
        laddr = node.memory.alloc(local_size)
        if self.system == "verbs":
            region = node.memory.register(laddr, local_size)
            cq = CompletionQueue(self.sim)
            context = DriverContext(node, kernel=True)
            qps = []
            for server in self.server_nodes:
                qp = context.create_qp_fast(QpType.RC, cq, recv_cq=cq)
                peer = DriverContext(server, kernel=True).create_qp_fast(
                    QpType.RC, CompletionQueue(self.sim)
                )
                qp.to_init()
                qp.to_rtr((server.gid, peer.qpn))
                qp.to_rts()
                peer.to_init()
                peer.to_rtr((node.gid, qp.qpn))
                peer.to_rts()
                qps.append(qp)
            return self._verbs_issuer(qps, laddr, region.lkey, opcode, payload)
        if self.system == "lite":
            region = node.memory.register(laddr, local_size)
            module = self.modules[node.gid]
            for server in self.server_nodes:
                module.prewarm(self.modules[server.gid])
            return self._lite_issuer(module, laddr, region.lkey, opcode, payload)
        # KRCORE
        module = self.modules[node.gid]
        region = node.memory.register(laddr, local_size)
        module.valid_mr.record(region)
        module.meta_server.publish_mr(node.gid, region.rkey, laddr, local_size)
        if self.system == "krcore_rc":
            for server in self.server_nodes:
                if not module.pool(cpu_id).has_rc(server.gid):
                    plant_rc(module, self.modules[server.gid], cpu_id=cpu_id)
        lib = KrcoreLib(node, cpu_id=cpu_id)
        # Connection happens lazily inside the client's own process (first
        # issue) so client setups never serialize against each other.
        return self._krcore_issuer(lib, [], laddr, region.lkey, opcode, payload)

    # -- per-system issuers ------------------------------------------------------

    def _wr(self, opcode, laddr, lkey, server_index, payload, signaled=True):
        raddr, region = self.remote_regions[server_index]
        factory = WorkRequest.read if opcode == "read" else WorkRequest.write
        return factory(laddr, payload, lkey, raddr, region.rkey, signaled=signaled)

    def _verbs_issuer(self, qps, laddr, lkey, opcode, payload):
        def issue(server_index, sync, batch=1):
            qp = qps[server_index]
            if sync:
                yield timing.POST_SEND_CPU_NS
                qp.post_send(self._wr(opcode, laddr, lkey, server_index, payload))
                yield from qp.send_cq.wait_poll()
                yield timing.POLL_CQ_CPU_NS
                return
            wrs = [
                self._wr(opcode, laddr, lkey, server_index, payload, signaled=(i == batch - 1))
                for i in range(batch)
            ]
            yield timing.POST_SEND_CPU_NS
            qp.post_send(wrs)
            while True:
                completions = yield from qp.send_cq.wait_poll(batch)
                if completions:
                    break
            yield timing.POLL_CQ_CPU_NS

        return issue

    def _lite_issuer(self, module, laddr, lkey, opcode, payload):
        def issue(server_index, sync, batch=1):
            raddr, region = self.remote_regions[server_index]
            gid = self.server_nodes[server_index].gid
            op = module.read if opcode == "read" else module.write
            if sync:
                yield from op(gid, laddr, lkey, raddr, region.rkey, payload)
                return
            # LITE async: forward a window straight to the shared QP.
            yield timing.SYSCALL_NS
            wrs = [
                self._wr(opcode, laddr, lkey, server_index, payload, signaled=(i == batch - 1))
                for i in range(batch)
            ]
            qp = module.post_async(gid, wrs)
            while True:
                completions = yield from qp.send_cq.wait_poll(batch)
                if completions:
                    break

        return issue

    def _krcore_issuer(self, lib, vqps, laddr, lkey, opcode, payload):
        def issue(server_index, sync, batch=1):
            if not vqps:
                for index, server in enumerate(self.server_nodes):
                    vqp = yield from lib.create_vqp()
                    yield from lib.qconnect(vqp, server.gid)
                    vqps.append(vqp)
                    # Warm the MRStore for this server (setup, like the
                    # paper's measured windows with caches warm).
                    raddr, region = self.remote_regions[index]
                    yield from lib.read_sync(vqp, laddr, lkey, raddr, region.rkey, 8)
            vqp = vqps[server_index]
            if sync:
                if opcode == "read":
                    raddr, region = self.remote_regions[server_index]
                    yield from lib.read_sync(vqp, laddr, lkey, raddr, region.rkey, payload)
                else:
                    raddr, region = self.remote_regions[server_index]
                    yield from lib.write_sync(vqp, laddr, lkey, raddr, region.rkey, payload)
                return
            wrs = [
                self._wr(opcode, laddr, lkey, server_index, payload, signaled=(i == batch - 1))
                for i in range(batch)
            ]
            yield from lib.post_send_and_wait(vqp, wrs)

        return issue
