"""Table formatting and result containers for the benchmark drivers."""

import os


def full_mode():
    """True when REPRO_BENCH_FULL=1: run at the paper's scale."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


class Table:
    """A printable table of benchmark rows."""

    def __init__(self, title, headers):
        self.title = title
        self.headers = list(headers)
        self.rows = []

    def add_row(self, *values):
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values for {len(self.headers)} headers"
            )
        self.rows.append([_fmt(value) for value in values])

    def render(self):
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self):
        """The table as CSV text (for plotting outside this repo)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


class FigureResult:
    """Everything one figure reproduction produced."""

    def __init__(self, name, description):
        self.name = name
        self.description = description
        self.tables = []
        self.metrics = {}

    def table(self, title, headers):
        table = Table(title, headers)
        self.tables.append(table)
        return table

    def render(self):
        parts = [f"== {self.name}: {self.description} =="]
        for table in self.tables:
            parts.append(table.render())
        return "\n\n".join(parts)

    def show(self):
        print("\n" + self.render() + "\n")

    def save_csv(self, directory, stem):
        """Write each table as ``<stem>-<n>.csv`` under ``directory``."""
        import pathlib

        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for index, table in enumerate(self.tables):
            path = directory / f"{stem}-{index}.csv"
            path.write_text(table.to_csv())
            paths.append(path)
        return paths
