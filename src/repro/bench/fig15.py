"""Fig 15: comparison to LITE.

(a) memory for connection caching: LITE holds one full RCQP per remote
    node (~160 KB each, 780 MB at 5,000), KRCORE a constant 48 DCQPs plus
    12 B of DCT metadata per connection (~6.3 MB at 5,000).
(b) data path, one node to others (64B READs): sync KRCORE(DC) is up to
    ~20% slower than LITE; async LITE wrecks its shared QPs beyond 6
    posting threads while KRCORE's pre-checks let it scale (~3x peak).
"""

from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.cluster import timing
from repro.lite import LiteModule
from repro.sim import US
from repro.verbs.errors import QpOverflowError

#: Fig 15a's KRCORE pool: 48 DCQPs (2 per core x 24 cores).
KRCORE_DC_QPS = 48


def run(fast=True):
    result = FigureResult("Fig 15", "comparison to LITE")
    table = result.table(
        "(a) connection-cache memory",
        ["connections", "LITE (MB)", "KRCORE (MB)", "ratio (x)"],
    )
    memory = {}
    for connections in (100, 1_000, 5_000, 10_000):
        lite_mb = LiteModule.cache_bytes_for(connections) / 1e6
        krcore_mb = (
            KRCORE_DC_QPS * timing.dc_qp_memory_bytes()
            + connections * timing.DCT_METADATA_BYTES
        ) / 1e6
        table.add_row(connections, lite_mb, krcore_mb, lite_mb / krcore_mb)
        memory[connections] = (lite_mb, krcore_mb)
    result.metrics["memory"] = memory

    measure = (150 if fast else 500) * US
    sync_table = result.table(
        "(b) sync 64B READ latency, one node to others",
        ["system", "avg latency (us)"],
    )
    sync = {}
    for system in ("lite", "krcore_dc"):
        r = run_onesided(
            system, "sync", payload=64, num_clients=1, servers=5,
            target="random", single_node=True, measure_ns=measure,
        )
        sync_table.add_row(system, r.avg_latency_us)
        sync[system] = r.avg_latency_us
    result.metrics["sync"] = sync

    threads_list = [2, 6, 7, 12] if fast else [2, 4, 6, 7, 12, 24]
    async_table = result.table(
        "(b) async 64B READ throughput vs posting threads",
        ["system", "threads", "throughput (M/s)"],
    )
    async_points = {}
    for system in ("lite", "krcore_dc"):
        for threads in threads_list:
            try:
                r = run_onesided(
                    system, "async", payload=64, num_clients=threads,
                    batch=48, single_node=True, measure_ns=measure,
                )
                value = r.throughput_mps
                async_table.add_row(system, threads, value)
            except QpOverflowError:
                value = 0.0
                async_table.add_row(system, threads, "QP wrecked (overflow)")
            async_points[(system, threads)] = value
    result.metrics["async"] = async_points
    return result
