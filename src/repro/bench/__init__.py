"""Benchmark drivers: one module per figure of the paper's evaluation.

Each ``figXX`` module exposes ``run(fast=True)`` returning a
:class:`repro.bench.harness.FigureResult` whose tables print the same
rows/series the paper reports, plus a ``metrics`` dict the benchmark
tests assert shapes on (who wins, by roughly what factor, where
crossovers fall).

``fast=True`` (the default, used in CI) shrinks client counts and
measurement windows; set ``REPRO_BENCH_FULL=1`` to run paper-scale.
"""

from repro.bench.harness import FigureResult, Table, full_mode

__all__ = ["FigureResult", "Table", "full_mode"]
