"""Fig 8: control-path performance.

(a) single-connection establishment (throughput-latency vs #clients):
    KRCORE ~5.4 us / up to 22M conn/s; verbs 15.7 ms / 712 conn/s;
    LITE ~2 ms / 712 conn/s.
(b) full-mesh establishment time vs #workers: KRCORE cuts ~99%.
"""

from repro.bench.harness import FigureResult
from repro.bench.setups import krcore_cluster, spread_clients, verbs_cluster
from repro.krcore import KrcoreLib
from repro.sim import MS, US
from repro.verbs import DriverContext
from repro.verbs.connection import rc_connect


def run(fast=True):
    result = FigureResult("Fig 8", "connection establishment performance")
    client_counts = [1, 8, 40] if fast else [1, 8, 40, 120, 240]
    table = result.table(
        "(a) single-connection establishment",
        ["system", "clients", "latency (us)", "throughput (conn/s)"],
    )
    single = {}
    for system in ("krcore", "verbs", "lite"):
        for clients in client_counts:
            latency_us, rate = _single_connection(system, clients, fast)
            table.add_row(system, clients, latency_us, rate)
            single[(system, clients)] = (latency_us, rate)
    result.metrics["single"] = single

    workers_list = [6, 12, 24] if fast else [6, 24, 60, 120, 240]
    mesh_table = result.table(
        "(b) full-mesh establishment",
        ["system", "workers", "total time (ms)"],
    )
    mesh = {}
    for system in ("krcore", "verbs", "lite"):
        for workers in workers_list:
            if system != "krcore" and workers > (24 if fast else 240):
                continue
            total_ms = _full_mesh(system, workers)
            mesh_table.add_row(system, workers, total_ms)
            mesh[(system, workers)] = total_ms
    result.metrics["mesh"] = mesh
    return result


# ---------------------------------------------------------------------------
# (a) single connection
# ---------------------------------------------------------------------------


def _single_connection(system, num_clients, fast):
    """Average connect latency (us) + aggregate rate (conn/s)."""
    if system == "krcore":
        return _krcore_single(num_clients, fast)
    return _verbs_lite_single(system, num_clients, fast)


def _krcore_single(num_clients, fast):
    # Pool and DCCache cleared before evaluation (§5.1): every qconnect
    # takes the uncached path (syscall + 2 meta-server READs).
    sim, cluster, meta, modules = krcore_cluster(background_rc=False)
    server = cluster.nodes[1]
    placements = spread_clients(num_clients, cluster.nodes[2:])
    window_ns = (150 if fast else 400) * US
    warmup_ns = 30 * US
    samples = []
    windows = {}

    def client(index, node, cpu_id):
        module = node.services["krcore"]
        lib = KrcoreLib(node, cpu_id=cpu_id)
        while sim.now < warmup_ns + window_ns:
            module.dc_cache.pop(server.gid, None)  # stay uncached
            vqp = yield from lib.create_vqp()
            start = sim.now  # the paper times qconnect itself (5.4 us)
            yield from lib.qconnect(vqp, server.gid)
            now = sim.now
            if now <= warmup_ns:
                continue
            samples.append(now - start)
            entry = windows.get(index)
            windows[index] = (now, 0, now) if entry is None else (entry[0], entry[1] + 1, now)

    for index, (node, cpu_id) in enumerate(placements):
        sim.process(client(index, node, cpu_id))
    sim.run(until=warmup_ns + window_ns)
    return _summarize(samples, windows)


def _verbs_lite_single(system, num_clients, fast):
    sim, cluster = verbs_cluster()
    server = cluster.nodes[0]
    placements = spread_clients(num_clients, cluster.nodes[1:])
    # Connection setup is ms-scale: size the window for a few rounds.
    window_ns = (60 if fast else 300) * MS
    samples = []

    def client(index, node):
        while sim.now < window_ns:
            # Fresh context per connection for verbs (each elastic worker
            # is a new process); LITE shares the kernel context.
            ctx = DriverContext(node, kernel=(system == "lite"))
            start = sim.now
            yield from ctx.ensure_init()
            cq = yield from ctx.create_cq()
            yield from rc_connect(ctx, cq, server.gid)
            samples.append(sim.now - start)

    for index, (node, _cpu) in enumerate(placements):
        sim.process(client(index, node))
    sim.run(until=window_ns)
    latency_us = sum(samples) / len(samples) / 1000.0
    # Connections are ms-scale: a simple completions-per-window rate is
    # unbiased enough here.
    rate = len(samples) * 1e9 / window_ns
    return latency_us, rate


def _summarize(samples, windows):
    latency_us = sum(samples) / len(samples) / 1000.0
    rate = 0.0
    for start, count, last in windows.values():
        if count and last > start:
            rate += count / ((last - start) / 1e9)
    if rate == 0.0:
        # Too few completions for steady-state windows: fall back to 1/latency.
        rate = len(windows) * 1e9 / (sum(samples) / len(samples))
    return latency_us, rate


# ---------------------------------------------------------------------------
# (b) full mesh
# ---------------------------------------------------------------------------

_MESH_BASE_PORT = 100


def _full_mesh(system, workers):
    """Wall time (ms) for every worker to connect to every other."""
    if system == "krcore":
        sim, cluster, meta, modules = krcore_cluster(background_rc=False)
        nodes = cluster.nodes[1:]
    else:
        sim, cluster = verbs_cluster()
        nodes = cluster.nodes
    placements = spread_clients(workers, nodes)
    finished = []

    def krcore_worker(index, node, cpu_id):
        lib = KrcoreLib(node, cpu_id=cpu_id)
        for peer in range(workers):
            if peer == index:
                continue
            peer_node, _ = placements[peer]
            vqp = yield from lib.create_vqp()
            yield from lib.qconnect(vqp, peer_node.gid, _MESH_BASE_PORT + peer)
        finished.append(sim.now)

    def verbs_worker(index, node):
        ctx = DriverContext(node, kernel=(system == "lite"))
        yield from ctx.ensure_init()
        cq = yield from ctx.create_cq()
        for peer in range(workers):
            if peer == index:
                continue
            peer_node, _ = placements[peer]
            yield from rc_connect(ctx, cq, peer_node.gid)
        finished.append(sim.now)

    for index, (node, cpu_id) in enumerate(placements):
        if system == "krcore":
            sim.process(krcore_worker(index, node, cpu_id))
        else:
            sim.process(verbs_worker(index, node))
    sim.run()
    assert len(finished) == workers
    return max(finished) / 1e6
