"""Fig 11: two-sided (echo) performance.

Paper: sync echo 7.9 us (verbs) vs 9.6 us (KRCORE, +2 kernel crossings);
async inbound peak 42.3 M/s (verbs, 24 server cores) vs 33.7 M/s (KRCORE,
extra kernel work per message).
"""

from repro.bench.echo import run_echo
from repro.bench.harness import FigureResult
from repro.sim import US


def run(fast=True):
    result = FigureResult("Fig 11", "two-sided RDMA performance")
    sync_clients = [1, 8] if fast else [1, 8, 40, 120]
    measure = (200 if fast else 600) * US

    sync_table = result.table(
        "(a) sync echo latency", ["system", "clients", "avg latency (us)"]
    )
    metrics = {}
    for system in ("verbs", "krcore"):
        for clients in sync_clients:
            kwargs = {"kernel_buf_bytes": 512} if system == "krcore" else {}
            r = run_echo(system, "sync", num_clients=clients, measure_ns=measure, **kwargs)
            sync_table.add_row(system, clients, r.avg_latency_us)
            metrics[("sync", system, clients)] = r.avg_latency_us

    async_table = result.table(
        "(b) async echo peak throughput", ["system", "clients", "throughput (M/s)"]
    )
    for system in ("verbs", "krcore"):
        kwargs = {"kernel_buf_bytes": 512} if system == "krcore" else {}
        r = run_echo(system, "async", num_clients=240, window=8, measure_ns=measure, **kwargs)
        async_table.add_row(system, 240, r.throughput_mps)
        metrics[("async", system, 240)] = r.throughput_mps
    result.metrics = metrics
    return result
