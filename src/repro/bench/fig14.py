"""Fig 14: (a) DCQP pool size; (b) fan-out tail latency.

(a) a batch of 64 one-sided READs to random targets across 10 machines:
    with one DCQP every target switch serializes behind a reconnection,
    so DC loses to RC; from pool size >= 2 the reconnections overlap and
    DC wins (fewer QPs to post/poll).
(b) 50 clients fanning sync READs out to 5 servers: DC's reconnections
    push its 99.9th-percentile latency (~6 us) above RC (~3.8 us) and
    verbs (~2.8 us).
"""

import random

from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.bench.setups import krcore_cluster, plant_rc
from repro.krcore import KrcoreLib
from repro.sim import US
from repro.verbs import WorkRequest

BATCH = 64


def run(fast=True):
    result = FigureResult("Fig 14", "DCQP pool size and tail latency")
    pool_sizes = [1, 2, 4, 8] if fast else [1, 2, 4, 8, 16]
    table = result.table(
        "(a) batched READs to 10 random targets",
        ["configuration", "batch latency (us)"],
    )
    pool_points = {}
    rc_latency = _batch_to_many("rc", None, fast)
    table.add_row("KRCORE (RC)", rc_latency)
    for size in pool_sizes:
        latency = _batch_to_many("dc", size, fast)
        table.add_row(f"KRCORE (DC, pool={size})", latency)
        pool_points[size] = latency
    result.metrics["pool"] = pool_points
    result.metrics["rc_batch"] = rc_latency

    measure = (400 if fast else 2_000) * US
    tail_table = result.table(
        "(b) fan-out tail latency (50 clients -> 5 servers)",
        ["system", "p50 (us)", "p99 (us)", "p99.9 (us)"],
    )
    tails = {}
    for system in ("verbs", "krcore_rc", "krcore_dc"):
        r = run_onesided(
            system, "sync", num_clients=50, servers=5, target="random",
            measure_ns=measure,
        )
        p50, p99, p999 = r.p(0.50), r.p(0.99), r.p(0.999)
        tail_table.add_row(system, p50, p99, p999)
        tails[system] = (p50, p99, p999)
    result.metrics["tails"] = tails
    return result


def _batch_to_many(kind, pool_size, fast, repeats=None):
    """Average latency (us) of one 64-READ batch to random targets.

    The RC configuration mirrors the paper's: "RC needs 64 different
    connections to send these requests, and it has to do 63 additional
    polls" -- one (RC-backed) VQP per request, each polled individually.
    The DC configuration uses one VQP per *target*; requests are posted
    in arrival order through one batched ioctl, so consecutive requests
    to different targets force DCT reconnections on the shared DCQPs.
    """
    if repeats is None:
        repeats = 20 if fast else 100
    kwargs = {"background_rc": False}
    if kind == "dc":
        kwargs["dc_per_cpu"] = pool_size
    sim, cluster, meta, modules = krcore_cluster(num_nodes=12, **kwargs)
    client_node = cluster.nodes[1]
    client_module = modules[1]
    targets = cluster.nodes[2:12]
    regions = []
    for node in targets:
        addr = node.memory.alloc(4096)
        region = node.memory.register(addr, 4096)
        node.services["krcore"].valid_mr.record(region)
        meta.publish_mr(node.gid, region.rkey, addr, 4096)
        regions.append((addr, region))
    laddr = client_node.memory.alloc(64 * 1024)
    lmr = client_node.memory.register(laddr, 64 * 1024)
    client_module.valid_mr.record(lmr)
    if kind == "rc":
        for node in targets:
            plant_rc(client_module, node.services["krcore"], cpu_id=0)
    lib = KrcoreLib(client_node)
    rng = random.Random(99)
    samples = []

    def wr_for(slot, target_index):
        raddr, region = regions[target_index]
        return WorkRequest.read(
            laddr + slot * 64, 8, lmr.lkey, raddr, region.rkey, signaled=True
        )

    def proc():
        from repro.cluster import timing

        # Per-target VQPs (DC) or per-request VQPs (RC, 64 connections).
        target_vqps = []
        for node in targets:
            vqp = yield from lib.create_vqp()
            yield from lib.qconnect(vqp, node.gid)
            target_vqps.append(vqp)
        # Warm the MRStore.
        for index in range(len(targets)):
            raddr, region = regions[index]
            yield from lib.read_sync(
                target_vqps[index], laddr, lmr.lkey, raddr, region.rkey, 8
            )
        if kind == "rc":
            request_vqps = []
            for slot in range(BATCH):
                vqp = yield from lib.create_vqp()
                yield from lib.qconnect(vqp, targets[slot % len(targets)].gid)
                request_vqps.append(vqp)
        for _ in range(repeats):
            choices = [rng.randrange(len(targets)) for _ in range(BATCH)]
            start = sim.now
            if kind == "rc":
                # 64 individual connections (each request rides its own
                # RC-backed VQP, spread over the 10 targets): one batched
                # post ioctl...
                posts = [
                    (request_vqps[slot], [wr_for(slot, slot % len(targets))])
                    for slot in range(BATCH)
                ]
                yield from lib.post_send_multi(posts)
                # ...but one poll per connection ("63 additional polls").
                for slot in range(BATCH):
                    yield timing.SYSCALL_NS
                    entry = yield from request_vqps[slot].wait_send_completion()
                    assert entry.ok
            else:
                # Arrival-order multi-post through one ioctl; collection
                # needs one poll ioctl per target VQP.
                posts = [
                    (target_vqps[t], [wr_for(slot, t)]) for slot, t in enumerate(choices)
                ]
                yield from lib.post_send_multi(posts)
                counts = {}
                for t in choices:
                    counts[t] = counts.get(t, 0) + 1
                for t, count in counts.items():
                    yield timing.SYSCALL_NS
                    for _ in range(count):
                        entry = yield from target_vqps[t].wait_send_completion()
                        assert entry.ok
            samples.append(sim.now - start)

    sim.run_process(proc())
    return sum(samples) / len(samples) / 1000.0
