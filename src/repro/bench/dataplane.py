"""Data-plane throughput modes: doorbell batching x CQ polling model.

The low-level data-plane playbook KRCORE keeps and kernel-mediated
designs like LITE lose (§4.3): chain N work requests behind one doorbell
-- the first WQE pays the full issue cost, every successor a cheap
chained fetch -- and pick how the CPU discovers completions (busy spin
vs adaptive spin-then-arm-event).

Panel (a) sweeps the WR chain length under each polling mode for 8-byte
READs over one RC pair: throughput rises with the batch size (the
doorbell CPU cost and the NIC issue cost are both amortized across the
chain), and busy polling beats adaptive at small messages -- the ~2 us
READ round trip outlives the 1 us adaptive spin budget, so every
adaptive wait tacks on the ``ibv_req_notify_cq`` rearm plus the event
wake latency.  Panel (b) shows the bill for that speed: the CPU burned
spinning, per completed op, accounted on the RNIC's node
(``rnic.stats_cq_poll_busy_ns``) -- busy mode's dedicated core burns the
whole wait; adaptive caps the burn at its spin budget; the legacy event
mode burns nothing (and is the default everywhere else).
"""

from repro.bench.harness import FigureResult
from repro.cluster import Cluster, timing
from repro.sim import Simulator, US
from repro.verbs import CompletionQueue, DriverContext, QpType, WorkRequest

#: 8-byte payloads: the small-message regime where polling mode dominates.
MSG_BYTES = 8

BATCH_SIZES = [1, 2, 4, 8, 16, 32]
POLL_MODES = ["event", "busy", "adaptive"]


def run(fast=True):
    result = FigureResult(
        "Data-plane modes",
        "doorbell-batch throughput and CQ-polling CPU cost (8B READ, one RC pair)",
    )
    tput = result.table(
        "(a) throughput vs batch size x poll mode",
        ["mode", "batch", "ops", "throughput (Mops/s)", "latency/op (ns)"],
    )
    cost = result.table(
        "(b) polling CPU cost",
        ["mode", "batch", "spin ns/op", "rearms", "wakes", "rnic cq busy (us)"],
    )
    points = {}
    for mode in POLL_MODES:
        for batch in BATCH_SIZES:
            ops, mops, ns_per_op, spin_per_op, rearms, wakes, busy_us = _sweep(
                mode, batch, fast
            )
            tput.add_row(mode, batch, ops, mops, ns_per_op)
            cost.add_row(mode, batch, spin_per_op, rearms, wakes, busy_us)
            points[f"{mode}/{batch}"] = {"mops": mops, "spin_ns_per_op": spin_per_op}
    result.metrics["dataplane"] = points
    return result


def _sweep(mode, batch, fast):
    """One (poll mode, batch size) point; returns the row values."""
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=2, cores=4)
    node_a, node_b = cluster.node(0), cluster.node(1)
    cq = CompletionQueue(sim, poll_mode=mode, rnic=node_a.rnic)
    ctx_a = DriverContext(node_a, kernel=True)
    ctx_b = DriverContext(node_b, kernel=True)
    qp_a = ctx_a.create_qp_fast(QpType.RC, cq, sq_depth=max(64, 2 * batch))
    qp_b = ctx_b.create_qp_fast(QpType.RC, CompletionQueue(sim))
    qp_a.to_init()
    qp_a.to_rtr((node_b.gid, qp_b.qpn))
    qp_a.to_rts()
    qp_b.to_init()
    qp_b.to_rtr((node_a.gid, qp_a.qpn))
    qp_b.to_rts()
    scratch = node_a.memory.alloc(MSG_BYTES)
    remote = node_b.memory.alloc(MSG_BYTES)
    lregion = node_a.memory.register(scratch, MSG_BYTES)
    rregion = node_b.memory.register(remote, MSG_BYTES)
    window_ns = (150 if fast else 1000) * US
    done = {"ops": 0}

    def client():
        while sim.now < window_ns:
            # Build the chain (first WQE full cost, successors chained),
            # signal only the tail: polling its completion reclaims the
            # whole chain's slots (Algorithm 2's covers accounting).
            wrs = [
                WorkRequest.read(
                    scratch, MSG_BYTES, lregion.lkey, remote, rregion.rkey,
                    signaled=(index == batch - 1),
                )
                for index in range(batch)
            ]
            yield timing.doorbell_batch_cpu_ns(batch)
            qp_a.post_send_batch(wrs)
            covered = 0
            while covered < batch:
                completions = yield from cq.wait_poll(batch)
                yield timing.POLL_CQ_CPU_NS
                for wc in completions:
                    covered += wc.covers
            done["ops"] += batch

    sim.process(client(), name=f"dataplane-{mode}-{batch}")
    sim.run(until=window_ns)
    ops = done["ops"]
    seconds = window_ns / 1e9
    mops = ops / seconds / 1e6
    ns_per_op = window_ns / ops if ops else 0.0
    spin_per_op = cq.stats_spin_ns / ops if ops else 0.0
    busy_us = node_a.rnic.stats_cq_poll_busy_ns / 1000.0
    return ops, mops, ns_per_op, spin_per_op, cq.stats_rearms, cq.stats_wakes, busy_us
