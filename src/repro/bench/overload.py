"""Overload figure: offered qconnect load vs goodput, with/without protection.

The control plane's shared resource is uncached-lookup capacity: one
meta client per (CPU, shard) serializes lookups behind a mutex at about
``1 / (META_KV_READS_PER_LOOKUP * META_KV_READ_RTT_NS)`` ops/s.  An
open-loop arrival process offers multiples of that capacity (0.5x to
4x); each arrival is a fresh uncached qconnect (its target's DCCache
entry evicted first) against a round-robin set of targets.

* **unprotected** (the default stack): every arrival queues at the
  mutex.  Past 1x the queue grows for the whole window, latency climbs
  linearly, and *goodput* -- completions within the SLO of their
  arrival -- collapses toward zero even though raw throughput stays at
  capacity.  The classic overload cliff.
* **protected** (:meth:`repro.degrade.DegradePolicy.protected` plus a
  per-op deadline): the admission gate's token bucket matches the
  capacity, its bounded LIFO queue sheds the oldest waiters early with
  a typed ``OverloadRejectedError`` (cheap, immediate), and the
  deadline kills admitted work whose budget died queueing *before* it
  burns two READs.  Goodput stays near capacity at 4x offered load.

The acceptance bar (asserted in tests off the committed CSV): protected
goodput at 4x offered load is at least 70% of the protected peak across
the sweep, while unprotected goodput at 4x falls below half of its own
peak.
"""

from repro.bench.harness import FigureResult
from repro.bench.setups import krcore_cluster
from repro.cluster import timing
from repro.degrade import DegradePolicy
from repro.krcore import KrcoreLib
from repro.sim import LatencyRecorder, US
from repro.verbs.errors import DeadlineExceededError, KrcoreError

#: Per-qconnect SLO: generous against the ~6 us healthy uncached path,
#: tight against a queue that has gone quadratic.
SLO_NS = 60 * timing.US

#: One uncached lookup's serialized cost -- the capacity unit.
LOOKUP_NS = timing.META_KV_READS_PER_LOOKUP * timing.META_KV_READ_RTT_NS

#: Offered load as multiples of lookup capacity.
MULTIPLES = [0.5, 1.0, 2.0, 4.0]

#: Round-robin target width (keeps concurrent arrivals off each other's
#: DCCache entries).
NUM_TARGETS = 64


def run(fast=True):
    result = FigureResult(
        "Overload",
        "offered qconnect load vs goodput/p99, with and without protection",
    )
    load_table = result.table(
        "(a) offered load vs goodput",
        [
            "load multiple", "mode", "offered (K/s)", "arrivals",
            "goodput (K/s)", "good fraction", "p99 (us)",
        ],
    )
    acct_table = result.table(
        "(b) protection accounting (protected mode)",
        [
            "load multiple", "admitted", "queued", "shed", "rejected",
            "deadline failures",
        ],
    )
    points = {}
    for multiple in MULTIPLES:
        for protected in (False, True):
            stats = _storm(multiple, protected, fast)
            mode = "protected" if protected else "unprotected"
            load_table.add_row(
                multiple,
                mode,
                round(1e6 / stats["interarrival_ns"], 1),
                stats["arrivals"],
                stats["goodput_k"],
                stats["good_fraction"],
                stats["p99_us"],
            )
            if protected:
                acct_table.add_row(
                    multiple,
                    stats["admitted"],
                    stats["queued"],
                    stats["shed"],
                    stats["rejected"],
                    stats["deadline_fails"],
                )
            points[(multiple, mode)] = stats
    result.metrics["overload"] = {
        f"{multiple}x {mode}": stats["goodput_k"]
        for (multiple, mode), stats in sorted(points.items())
    }
    return result


def _storm(multiple, protected, fast):
    """One open-loop run at ``multiple`` times lookup capacity."""
    policy = DegradePolicy.protected() if protected else None
    sim, cluster, meta, modules = krcore_cluster(
        num_nodes=NUM_TARGETS + 2,
        cores=1,
        background_rc=False,
        degrade=policy,
    )
    client_node = cluster.nodes[-1]
    client_module = modules[-1]
    targets = [cluster.nodes[1 + i].gid for i in range(NUM_TARGETS)]

    window_ns = (1500 if fast else 6000) * US
    interarrival_ns = max(int(LOOKUP_NS / multiple), 1)
    lib = KrcoreLib(client_node, cpu_id=0)
    recorder = LatencyRecorder()
    stats = {
        "interarrival_ns": interarrival_ns,
        "arrivals": 0,
        "good": 0,
        "deadline_fails": 0,
        "overload_fails": 0,
    }

    def one_op(target_gid):
        client_module.dc_cache.pop(target_gid, None)
        started = sim.now
        vqp = yield from lib.create_vqp()
        try:
            yield from lib.qconnect(
                vqp, target_gid, deadline_ns=SLO_NS if protected else None
            )
        except DeadlineExceededError:
            stats["deadline_fails"] += 1
            return
        except KrcoreError:
            stats["overload_fails"] += 1
            return
        latency = sim.now - started
        recorder.record(latency)
        if latency <= SLO_NS:
            stats["good"] += 1

    def arrivals():
        index = 0
        while sim.now < window_ns:
            target_gid = targets[index % NUM_TARGETS]
            sim.process(one_op(target_gid), name=f"overload-op-{index}")
            stats["arrivals"] += 1
            index += 1
            yield interarrival_ns

    sim.process(arrivals(), name="overload-arrivals")
    sim.run()

    gate = client_module.pool(0).admission
    stats["admitted"] = gate.stats_admitted if gate is not None else 0
    stats["queued"] = gate.stats_queued if gate is not None else 0
    stats["shed"] = gate.stats_shed if gate is not None else 0
    stats["rejected"] = gate.stats_rejected if gate is not None else 0
    stats["goodput_k"] = round(stats["good"] / (window_ns / 1e9) / 1e3, 1)
    stats["good_fraction"] = round(stats["good"] / max(stats["arrivals"], 1), 3)
    stats["p99_us"] = (
        round(recorder.p(0.99) / 1000.0, 2) if len(recorder) else 0.0
    )
    return stats
