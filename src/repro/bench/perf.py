"""Perf instrumentation for figure runs: counters, timing, trajectory files.

The engine counts every callback it dispatches (`Simulator.events_dispatched`
per instance, `Simulator.total_events_dispatched` / `total_sim_ns`
process-wide).  :func:`run_figure` samples those totals around one figure
reproduction and returns the figure's result together with a perf record:
wall seconds, events dispatched, simulated nanoseconds, and the derived
events/sec and simulated-ns/sec rates.

:func:`append_trajectory` appends a run's records to a ``BENCH_<date>.json``
trajectory file, so the repo accumulates a machine-readable perf history
PR over PR (`python -m repro.bench --perf-json PATH`, and the perf smoke
test in ``benchmarks/perf_smoke.py``).
"""

import gc
import importlib
import json
import pathlib
import time


def partition_aware(module_or_name):
    """Whether a figure's ``run()`` accepts a ``partitions`` argument."""
    import inspect

    module = module_or_name
    if isinstance(module, str):
        module = importlib.import_module(f"repro.bench.{module}")
    return "partitions" in inspect.signature(module.run).parameters


def run_figure(name, full=False, trace_path=None, metrics_path=None,
               profile_path=None, partitions=None):
    """Run one figure module and return ``(FigureResult, perf_record)``.

    ``partitions`` is forwarded to figure modules whose ``run()`` accepts
    it (the partition-aware figures, e.g. ``cluster_scale``); for every
    other figure the value is ignored — partition selection is a figure
    property, not a global engine mode.

    The cyclic GC is paused for the duration of the run: the engine
    allocates millions of short-lived resume records and tuples per
    figure, and generation-0 collections cost ~20% of wall time while
    reclaiming almost nothing that refcounting doesn't already.  It is
    re-enabled (with one full collection) before returning.

    ``trace_path`` / ``metrics_path`` install a fresh tracer / metrics
    registry (``repro.obs``) for the duration of the run and export the
    Chrome trace JSON / metrics snapshot afterwards.  A path of ``"-"``
    prints to stdout instead.  With both None (the default) the figure
    runs uninstrumented and its numbers are bit-identical to a plain run.

    ``profile_path`` runs the figure under :mod:`cProfile` and writes a
    pstats text report (top functions by cumulative and by internal
    time) there.  Profiling adds per-call overhead, so the record's
    wall/rate numbers are *not* comparable to unprofiled runs; the
    record is tagged ``"profiled": true`` to keep trajectories honest.
    """
    from repro.sim import ENGINE, Simulator

    module = importlib.import_module(f"repro.bench.{name}")
    run_kwargs = {}
    if partitions is not None and partition_aware(module):
        run_kwargs["partitions"] = partitions
    events_before = Simulator.total_events_dispatched
    sim_ns_before = Simulator.total_sim_ns
    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    started = time.perf_counter()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            if trace_path is None and metrics_path is None:
                result = module.run(fast=not full, **run_kwargs)
            else:
                from repro import obs

                with obs.observe() as (tracer, registry):
                    result = module.run(fast=not full, **run_kwargs)
                _export(trace_path, tracer.to_json)
                _export(metrics_path, registry.to_json)
        finally:
            if profiler is not None:
                profiler.disable()
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    wall_s = time.perf_counter() - started
    if profiler is not None:
        _export(profile_path, lambda: _profile_report(profiler, name))
    events = Simulator.total_events_dispatched - events_before
    sim_ns = Simulator.total_sim_ns - sim_ns_before
    perf = {
        "figure": name,
        "mode": "full" if full else "fast",
        "engine": ENGINE,
        "wall_s": round(wall_s, 3),
        "events_dispatched": events,
        "sim_ns": sim_ns,
        "events_per_sec": round(events / wall_s) if wall_s > 0 else None,
        "sim_ns_per_sec": round(sim_ns / wall_s) if wall_s > 0 else None,
    }
    if profiler is not None:
        perf["profiled"] = True
    return result, perf


def _profile_report(profiler, name, top=40):
    """Render a cProfile run as a two-section pstats text report."""
    import io
    import pstats

    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs()
    out.write(f"# cProfile of figure {name}\n\n== top {top} by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    out.write(f"\n== top {top} by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def _export(path, to_json):
    """Write ``to_json()`` to ``path`` (``"-"`` = stdout, None = skip)."""
    if path is None:
        return
    text = to_json()
    if path == "-":
        print(text, end="")
        return
    target = pathlib.Path(path)
    if target.parent != pathlib.Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)


def figure_output_path(path, name, multiple):
    """Where one figure's export goes: ``path`` itself for a single
    figure, ``<stem>-<figure><suffix>`` when several share one flag."""
    if path is None or path == "-" or not multiple:
        return path
    p = pathlib.Path(path)
    return str(p.with_name(f"{p.stem}-{name}{p.suffix or '.json'}"))


def default_trajectory_path(directory="benchmarks"):
    """The conventional trajectory file for today: BENCH_<YYYY-MM-DD>.json."""
    stamp = time.strftime("%Y-%m-%d")
    return pathlib.Path(directory) / f"BENCH_{stamp}.json"


def load_trajectory(path):
    """Load ``path`` as a trajectory dict, or a fresh one if absent.

    A corrupt or foreign file is never clobbered -- it raises ValueError
    (call this *before* a long run to fail fast).
    """
    path = pathlib.Path(path)
    if not path.exists():
        return {"schema": 1, "runs": []}
    try:
        data = json.loads(path.read_text())
    except ValueError as err:
        raise ValueError(f"{path} is not a BENCH trajectory file: {err}") from err
    if not isinstance(data, dict) or "runs" not in data:
        raise ValueError(f"{path} is not a BENCH trajectory file")
    return data


def append_trajectory(path, figure_records, label=None):
    """Append one run (a list of per-figure perf records) to ``path``.

    The file holds ``{"schema": 1, "runs": [...]}``; each run carries a
    timestamp, an optional label, and its per-figure records.  A corrupt
    or foreign file is not clobbered -- it raises instead.
    """
    path = pathlib.Path(path)
    data = load_trajectory(path)
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "figures": list(figure_records),
    }
    if label:
        run["label"] = label
    data["runs"].append(run)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path
