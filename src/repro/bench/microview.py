"""MicroView: harvest latency/goodput vs pods x strategy x backend.

The ROADMAP item-5 scenario: a collector node READs N tiny (4 KB)
per-pod metric MRs off the worker nodes every cycle.  Panel (a) is the
fault-free comparison -- serial small READs vs doorbell-batched chains
vs vectored (multi-SGE) gather READs, each atop verbs, LITE, and KRCORE.
LITE's kernel API exposes neither doorbell chains nor gather WRs, so its
"batched"/"vectored" rows degrade to the serial loop -- that flat line
*is* the measurement.  Panel (b) turns on pod churn (seeded
dereg/re-register storms) on the KRCORE deployment: harvest goodput
holds while failed reads and MRStore churn accounting (stale accepts,
invalidations) pick up the cost of pods dying mid-harvest.
"""

from repro.apps.microview import Collector, KrcoreBackend, LiteBackend, PodDirectory, VerbsBackend
from repro.bench.harness import FigureResult
from repro.bench.setups import krcore_cluster, lite_cluster, verbs_cluster
from repro.sim import MS, US

#: Worker nodes hosting pods (the collector is its own node).
WORKERS = 3

BACKENDS = ("verbs", "lite", "krcore")
STRATEGIES = ("serial", "batched", "vectored")


def run(fast=True):
    result = FigureResult(
        "MicroView",
        "per-pod MR harvest: serial vs batched vs vectored x verbs/LITE/KRCORE",
    )
    pods_list = (4, 16) if fast else (4, 16, 64)
    cycles = 4 if fast else 16

    harvest = result.table(
        "(a) harvest latency and goodput vs pods x strategy x backend",
        ["backend", "strategy", "pods", "cycles", "avg harvest (us)", "goodput (MB/s)"],
    )
    points = {}
    for backend_name in BACKENDS:
        for strategy in STRATEGIES:
            for pods_per_worker in pods_list:
                stats = _harvest_run(backend_name, strategy, pods_per_worker, cycles)
                pods_total = pods_per_worker * WORKERS
                harvest.add_row(
                    backend_name, strategy, pods_total, stats.cycles,
                    stats.avg_cycle_us, stats.goodput_mbps,
                )
                points[f"{backend_name}/{strategy}/{pods_total}"] = {
                    "avg_us": stats.avg_cycle_us,
                    "mbps": stats.goodput_mbps,
                }
    result.metrics["harvest"] = points

    churn = result.table(
        "(b) KRCORE harvest under pod churn (seeded dereg/re-register storm)",
        [
            "strategy", "churn interval (us)", "cycles", "avg harvest (us)",
            "harvested (KB)", "failed reads", "churns", "stale accepts",
        ],
    )
    churn_cycles = 6 if fast else 24
    churn_points = {}
    for strategy in STRATEGIES:
        for interval_us in (200, 50) if fast else (400, 200, 50, 20):
            row = _churn_run(strategy, interval_us, churn_cycles)
            churn.add_row(
                strategy, interval_us, row["cycles"], row["avg_us"],
                row["kb"], row["failed"], row["churns"], row["stale_accepts"],
            )
            churn_points[f"{strategy}/{interval_us}"] = row
    result.metrics["churn"] = churn_points
    return result


def _deploy(backend_name):
    """Build the per-backend deployment: (sim, collector node, backend,
    worker (node, module) pairs)."""
    nodes_needed = WORKERS + (2 if backend_name == "krcore" else 1)
    if backend_name == "verbs":
        sim, cluster = verbs_cluster(num_nodes=nodes_needed)
        collector_node = cluster.node(0)
        workers = [(cluster.node(1 + i), None) for i in range(WORKERS)]
        backend = VerbsBackend(collector_node)
    elif backend_name == "lite":
        sim, cluster, _modules = lite_cluster(num_nodes=nodes_needed)
        collector_node = cluster.node(0)
        workers = [(cluster.node(1 + i), None) for i in range(WORKERS)]
        backend = LiteBackend(collector_node)
    else:
        # Node 0 hosts the meta server, node 1 the collector.
        sim, cluster, _meta, modules = krcore_cluster(num_nodes=nodes_needed)
        collector_node = cluster.node(1)
        workers = [(cluster.node(2 + i), modules[2 + i]) for i in range(WORKERS)]
        backend = KrcoreBackend(collector_node)
    return sim, collector_node, backend, workers


def _harvest_run(backend_name, strategy, pods_per_worker, cycles):
    """One fault-free cell: deploy pods, connect, harvest ``cycles``."""
    sim, collector_node, backend, workers = _deploy(backend_name)
    directory = PodDirectory(workers)
    collector = Collector(collector_node, backend, directory)

    def drive():
        yield from directory.deploy(pods_per_worker)
        yield from collector.setup()
        yield from collector.run_cycles(cycles, strategy)

    sim.run_process(drive())
    return collector.stats


def _churn_run(strategy, interval_us, cycles, pods_per_worker=8, seed=7):
    """One churn cell on the KRCORE deployment: the storm and the
    harvest loop share the clock; goodput and MRStore churn accounting
    pick up the cost of pods dying mid-harvest."""
    sim, collector_node, backend, workers = _deploy("krcore")
    directory = PodDirectory(workers)
    collector = Collector(collector_node, backend, directory)
    horizon_ns = 20 * MS

    def drive():
        yield from directory.deploy(pods_per_worker)
        yield from collector.setup()
        sim.process(
            directory.churn_driver(interval_us * US, horizon_ns, seed=seed),
            name="microview-churn",
        )
        yield from collector.run_cycles(cycles, strategy, gap_ns=20 * US)

    sim.run_process(drive())
    stats = collector.stats
    store = backend.lib.module.mr_store
    return {
        "cycles": stats.cycles,
        "avg_us": stats.avg_cycle_us,
        "kb": stats.bytes_ok / 1e3,
        "failed": stats.failed_reads,
        "churns": directory.stats_churns,
        "stale_accepts": store.stats_stale_accepts,
    }
