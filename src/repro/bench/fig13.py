"""Fig 13: KRCORE's slowdown vs verbs across payload sizes.

The (constant, ~1 us) kernel overhead washes out as the transfer time
grows: READ slowdown is negligible (<7%) from ~256 KB; WRITE from ~8 KB
(writes pay higher per-byte costs on this hardware, so they amortize
sooner).
"""

from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.sim import US

READ_PAYLOADS_FAST = [8, 4096, 65536, 262144]
READ_PAYLOADS_FULL = [8, 1024, 4096, 16384, 65536, 262144, 1048576]
WRITE_PAYLOADS_FAST = [8, 1024, 8192, 65536]
WRITE_PAYLOADS_FULL = [8, 256, 1024, 4096, 8192, 32768, 65536]


def run(fast=True):
    result = FigureResult("Fig 13", "slowdown vs verbs across payloads")
    metrics = {}
    for opcode, payloads in (
        ("read", READ_PAYLOADS_FAST if fast else READ_PAYLOADS_FULL),
        ("write", WRITE_PAYLOADS_FAST if fast else WRITE_PAYLOADS_FULL),
    ):
        table = result.table(
            f"sync one-sided {opcode.upper()}",
            ["payload (B)", "verbs (us)", "KRCORE(RC) (us)", "slowdown (%)"],
        )
        for payload in payloads:
            # Size the window so even MB-scale ops collect a few samples.
            op_estimate_ns = 4_000 + int(payload * 1.6)
            measure = max(150 * US, 40 * op_estimate_ns)
            memory = max(16 << 20, payload * 8)
            verbs_us = run_onesided(
                "verbs", "sync", opcode=opcode, payload=payload,
                measure_ns=measure, memory_size=memory,
            ).avg_latency_us
            krcore_us = run_onesided(
                "krcore_rc", "sync", opcode=opcode, payload=payload,
                measure_ns=measure, memory_size=memory,
            ).avg_latency_us
            slowdown = 100.0 * (krcore_us / verbs_us - 1)
            table.add_row(payload, verbs_us, krcore_us, slowdown)
            metrics[(opcode, payload)] = slowdown
    result.metrics = metrics
    return result
