"""Fig 1: the motivation -- elastic apps run in microseconds, the RDMA
control path costs milliseconds.

(a) data-path execution time of typical elastic RDMA applications
    (a RACE YCSB-C request; a serverless function's RDMA transfer);
(b) the control-path costs that gate them (creating an RDMA connection,
    driver init, starting a container).
"""

from repro.apps.race import RaceClient, RaceStorage, VerbsBackend
from repro.apps.serverless import WARM_START_NS
from repro.bench.harness import FigureResult
from repro.bench.echo import run_echo
from repro.bench.setups import verbs_cluster
from repro.cluster import timing
from repro.workloads import YcsbWorkload


def run(fast=True):
    result = FigureResult("Fig 1", "execution time vs control-path costs")

    # (a) data-path execution times.
    race_us = _race_get_latency(num_ops=50 if fast else 300)
    txn_us = _transaction_latency(num_txns=30 if fast else 200)
    transfer_us = run_echo("verbs", "sync", payload=1024).avg_latency_us
    data_table = result.table(
        "(a) data execution time of elastic RDMA apps",
        ["application", "per-request time (us)"],
    )
    data_table.add_row("RACE (YCSB-C GET, one-sided)", race_us)
    data_table.add_row("FaRM-v2-style TPC-C transaction", txn_us)
    data_table.add_row("serverless transfer (1KB echo)", transfer_us)

    # (b) control-path costs.
    control_table = result.table(
        "(b) control path costs", ["component", "time (ms)"]
    )
    rows = [
        ("RDMA connection (verbs, first)", timing.VERBS_CONTROL_PATH_NS / 1e6),
        ("RDMA driver init", timing.DRIVER_INIT_NS / 1e6),
        ("RDMA connection (kernel, cached ctx)", timing.LITE_CONTROL_PATH_NS / 1e6),
        ("container warm start", WARM_START_NS / 1e6),
    ]
    for name, value in rows:
        control_table.add_row(name, value)

    result.metrics = {
        "race_us": race_us,
        "txn_us": txn_us,
        "transfer_us": transfer_us,
        "verbs_control_ms": timing.VERBS_CONTROL_PATH_NS / 1e6,
        "gap": timing.VERBS_CONTROL_PATH_NS / (race_us * 1000),
    }
    return result


def _transaction_latency(num_txns):
    """Average latency of FaRM-style TPC-C transactions (New-Order and
    Payment, the Fig 1 'FaRM-v2 / TPC-C' workload)."""
    from repro.apps.txn import TxnClient, TxnStorage
    from repro.workloads.tpcc import TpccLayout, TpccWorkload

    sim, cluster = verbs_cluster(num_nodes=4, memory_size=32 << 20)
    layout = TpccLayout(num_warehouses=1)
    per_node = -(-layout.total_records // 2)
    storages = [
        TxnStorage(cluster.node(i), num_records=per_node, value_bytes=16)
        for i in (1, 2)
    ]
    client = TxnClient(VerbsBackend(cluster.node(0)), [s.catalog() for s in storages])
    workload = TpccWorkload(client, layout, seed=11)
    workload.load(storages)

    def proc():
        yield from client.setup()
        start = sim.now
        for _ in range(num_txns):
            yield from workload.next_transaction()
        return (sim.now - start) / num_txns / 1000.0

    return sim.run_process(proc())


def _race_get_latency(num_ops):
    """Average YCSB-C GET latency over the verbs backend (data path only)."""
    sim, cluster = verbs_cluster(num_nodes=3, memory_size=32 << 20)
    storage = RaceStorage(cluster.node(1), num_buckets=4096, heap_bytes=1 << 20)
    workload = YcsbWorkload(num_keys=500)
    for key in workload.load_keys():
        storage.load(key, b"v" * 64)
    client = RaceClient(VerbsBackend(cluster.node(0)), [storage.catalog()])

    def proc():
        yield from client.setup()
        start = sim.now
        for _ in range(num_ops):
            op, key = workload.next_op()
            value = yield from client.get(key)
            assert value is not None
        return (sim.now - start) / num_ops / 1000.0

    return sim.run_process(proc())
