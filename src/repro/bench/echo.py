"""Shared driver for two-sided echo microbenchmarks (Figs 9b, 11).

Clients send a payload to one server; the server (24 worker threads,
like the testbed's cores) echoes it back.  Over verbs the handler runs in
user space; over KRCORE the receive path crosses the kernel (qpop), which
is the throughput gap of Fig 11b.
"""

from repro.bench.setups import krcore_cluster, spread_clients, verbs_cluster
from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.sim import LatencyRecorder, US
from repro.verbs import (
    CompletionQueue,
    DriverContext,
    QpType,
    RecvBuffer,
    WorkRequest,
)

WARMUP_NS = 40 * US
MEASURE_NS = 200 * US


class EchoResult:
    def __init__(self, recorder, client_windows):
        self.recorder = recorder
        self.client_windows = client_windows

    @property
    def throughput_mps(self):
        total = 0.0
        for start, count, last in self.client_windows.values():
            if count and last > start:
                total += count / ((last - start) / 1e9)
        return total / 1e6

    @property
    def avg_latency_us(self):
        return self.recorder.mean() / 1000.0


def run_echo(
    system,
    mode,
    num_clients=1,
    payload=8,
    window=8,
    warmup_ns=WARMUP_NS,
    measure_ns=MEASURE_NS,
    kernel_buf_bytes=None,
    zero_copy=True,
    zero_copy_threshold=None,
):
    """One echo configuration; system is "verbs" or "krcore".

    ``mode`` "sync": one message in flight per client (latency focus);
    "async": ``window`` messages pipelined per client (throughput focus).
    """
    if system == "verbs":
        env = _VerbsEcho(payload, num_clients)
    elif system == "krcore":
        kwargs = {"zero_copy": zero_copy}
        if kernel_buf_bytes is not None:
            kwargs["kernel_buf_bytes"] = kernel_buf_bytes
            kwargs["kernel_buf_count"] = max(64, (4 << 20) // kernel_buf_bytes)
        if zero_copy_threshold is not None:
            kwargs["zero_copy_threshold"] = zero_copy_threshold
        env = _KrcoreEcho(payload, num_clients, kwargs)
    else:
        raise ValueError(f"unknown system {system!r}")
    stop_at = warmup_ns + measure_ns
    recorder = LatencyRecorder()
    windows = {}
    env.start_server()
    for index in range(num_clients):
        env.sim.process(
            _echo_client(env, index, mode, window, windows, recorder, warmup_ns, stop_at),
            name=f"echo-client{index}",
        )
    env.sim.run(until=stop_at)
    return EchoResult(recorder, windows)


def _echo_client(env, index, mode, window, windows, recorder, warmup_ns, stop_at):
    client = yield from env.make_client(index)
    pipelined = 1 if mode == "sync" else window
    while env.sim.now < stop_at:
        start = env.sim.now
        yield from client.echo(pipelined)
        now = env.sim.now
        if now <= warmup_ns:
            continue
        if mode == "sync":
            recorder.record(now - start)
        entry = windows.get(index)
        if entry is None:
            windows[index] = (now, 0, now)
        else:
            origin, count, _ = entry
            windows[index] = (origin, count + pipelined, now)


# ---------------------------------------------------------------------------
# verbs echo
# ---------------------------------------------------------------------------


class _VerbsEcho:
    def __init__(self, payload, num_clients):
        self.sim, self.cluster = verbs_cluster(
            memory_size=max(32 << 20, payload * (num_clients + 8) * 8)
        )
        self.payload = payload
        self.server = self.cluster.nodes[0]
        self.client_nodes = self.cluster.nodes[1:]
        self.placements = spread_clients(num_clients, self.client_nodes)
        self._pairs = []  # (client_qp, server_qp, client bufs, server bufs)

    def start_server(self):
        # Echo workers are spawned per connection in make_client; the
        # server CPU is the shared 24-core resource of the node.
        pass

    def make_client(self, index):
        node, _cpu = self.placements[index]
        payload = self.payload
        sim = self.sim
        server = self.server
        ctx_c = DriverContext(node, kernel=True)
        ctx_s = DriverContext(server, kernel=True)
        cq_c = CompletionQueue(sim)
        cq_s = CompletionQueue(sim)
        qp_c = ctx_c.create_qp_fast(QpType.RC, cq_c, recv_cq=cq_c)
        qp_s = ctx_s.create_qp_fast(QpType.RC, cq_s, recv_cq=cq_s)
        qp_c.to_init()
        qp_c.to_rtr((server.gid, qp_s.qpn))
        qp_c.to_rts()
        qp_s.to_init()
        qp_s.to_rtr((node.gid, qp_c.qpn))
        qp_s.to_rts()
        caddr = node.memory.alloc(payload * 16)
        cmr = node.memory.register(caddr, payload * 16)
        saddr = server.memory.alloc(payload * 16)
        smr = server.memory.register(saddr, payload * 16)
        for i in range(8):
            qp_s.post_recv(RecvBuffer(saddr + i * payload, payload, smr.lkey, wr_id=i))
            qp_c.post_recv(RecvBuffer(caddr + i * payload, payload, cmr.lkey, wr_id=i))
        sim.process(self._server_worker(qp_s, saddr, smr, payload), name="echo-srv")
        client = _VerbsEchoClient(self, qp_c, caddr, cmr, payload)
        yield 0
        return client

    def _server_worker(self, qp_s, saddr, smr, payload):
        """Per-connection echo loop charging the shared server CPU."""
        cpu = self.server.cpu
        while True:
            completions = yield from qp_s.recv_cq.wait_poll(16)
            recvs = [c for c in completions if c.opcode.name == "RECV"]
            for completion in recvs:
                yield from cpu.serve(timing.TWO_SIDED_SERVER_CPU_NS)
                slot = completion.wr_id
                qp_s.post_send(
                    WorkRequest.send(saddr + slot * payload, payload, smr.lkey)
                )
                qp_s.post_recv(
                    RecvBuffer(saddr + slot * payload, payload, smr.lkey, wr_id=slot)
                )


class _VerbsEchoClient:
    def __init__(self, env, qp, addr, mr, payload):
        self.env = env
        self.qp = qp
        self.addr = addr
        self.mr = mr
        self.payload = payload

    def echo(self, pipelined):
        """Process: send ``pipelined`` messages, collect all the replies."""
        qp = self.qp
        for i in range(min(pipelined, 8)):
            yield timing.POST_SEND_CPU_NS
            # Signaled so the slot is reclaimed when the CQE is polled
            # (both CQE kinds share the QP's one CQ and the recv loop
            # drains them all).
            qp.post_send(
                WorkRequest.send(
                    self.addr + i * self.payload, self.payload, self.mr.lkey
                )
            )
        replies = 0
        wanted = min(pipelined, 8)
        while replies < wanted:
            completions = yield from qp.recv_cq.wait_poll(wanted)
            recvs = [c for c in completions if c.opcode.name == "RECV"]
            for completion in recvs:
                qp.post_recv(
                    RecvBuffer(
                        self.addr + completion.wr_id * self.payload,
                        self.payload,
                        self.mr.lkey,
                        wr_id=completion.wr_id,
                    )
                )
            replies += len(recvs)
        yield timing.POLL_CQ_CPU_NS


# ---------------------------------------------------------------------------
# KRCORE echo
# ---------------------------------------------------------------------------

_ECHO_PORT = 42


class _KrcoreEcho:
    def __init__(self, payload, num_clients, module_kwargs):
        self.sim, self.cluster, self.meta, self.modules = krcore_cluster(
            memory_size=max(32 << 20, payload * (num_clients + 8) * 8),
            **module_kwargs,
        )
        self.payload = payload
        self.server = self.cluster.nodes[1]
        self.server_module = self.modules[1]
        self.client_nodes = self.cluster.nodes[2:]
        self.placements = spread_clients(num_clients, self.client_nodes)
        self.num_clients = num_clients

    def start_server(self):
        self.sim.process(self._server_setup(), name="krcore-echo-srv")

    def _server_setup(self):
        """Bind one VQP and spawn one worker per core, all qpop-ing it --
        "the server utilizes all cores (24 threads)" (§5.2)."""
        lib = KrcoreLib(self.server)
        payload = self.payload
        vqp = yield from lib.create_vqp()
        yield from lib.qbind(vqp, _ECHO_PORT)
        depth = max(64, self.num_clients * 16)
        addr = self.server.memory.alloc(payload * depth)
        mr = yield from lib.reg_mr(addr, payload * depth)
        bufs = {}
        for i in range(depth):
            buf = RecvBuffer(addr + i * payload, payload, mr.lkey, wr_id=i)
            bufs[i] = buf
            vqp.post_recv(buf)
        for worker in range(self.server.cores):
            worker_lib = KrcoreLib(self.server, cpu_id=worker)
            self.sim.process(
                self._server_worker(worker_lib, vqp, bufs), name=f"krcore-echo-w{worker}"
            )

    def _server_worker(self, lib, vqp, bufs):
        """One server thread (pinned to its own CPU + hybrid pool): each
        loop is one blocking ioctl that posts the previous replies and
        pops the next messages."""
        # The calibrated 567 ns/message verbs handler cost includes WQE
        # posting; on KRCORE the kernel charges posting itself (Algorithm 2
        # checks + doorbell), so the user-space handler is what remains.
        handler_ns = (
            timing.TWO_SIDED_SERVER_CPU_NS
            - timing.VIRTUALIZATION_CHECK_NS
            - timing.POST_SEND_CPU_NS
        )
        replies = []
        while True:
            results = yield from lib.post_and_qpop(vqp, replies, max_msgs=32)
            replies = []
            for src_vqp, completion in results:
                yield handler_ns  # this worker's core
                buf = bufs[completion.wr_id]
                replies.append(
                    (
                        src_vqp,
                        [
                            WorkRequest.send(
                                buf.addr, completion.byte_len, buf.lkey, signaled=False
                            )
                        ],
                    )
                )
                vqp.post_recv(buf)

    def make_client(self, index):
        node, cpu_id = self.placements[index]
        payload = self.payload
        lib = KrcoreLib(node, cpu_id=cpu_id)
        addr = node.memory.alloc(payload * 16)
        mr = yield from lib.reg_mr(addr, payload * 16)
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, self.server.gid, _ECHO_PORT)
        for i in range(8):
            vqp.post_recv(RecvBuffer(addr + i * payload, payload, mr.lkey, wr_id=i))
        return _KrcoreEchoClient(self, lib, vqp, addr, mr, payload)


class _KrcoreEchoClient:
    def __init__(self, env, lib, vqp, addr, mr, payload):
        self.env = env
        self.lib = lib
        self.vqp = vqp
        self.addr = addr
        self.mr = mr
        self.payload = payload

    def echo(self, pipelined):
        """Process: one blocking ioctl sends the batch and waits replies."""
        wanted = min(pipelined, 8)
        wrs = [
            WorkRequest.send(
                self.addr + i * self.payload, self.payload, self.mr.lkey, signaled=False
            )
            for i in range(wanted)
        ]
        lib, vqp = self.lib, self.vqp
        yield from lib._enter_kernel()
        yield from vqp.post_send(wrs)
        for _ in range(wanted):
            completion = yield from vqp.wait_recv_completion()
            vqp.post_recv(
                RecvBuffer(
                    self.addr + completion.wr_id * self.payload,
                    self.payload,
                    self.mr.lkey,
                    wr_id=completion.wr_id,
                )
            )
