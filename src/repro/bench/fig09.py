"""Fig 9: (a) meta-server vs RPC metadata queries; (b) zero-copy protocol.

(a) the RDMA-based meta server (2 one-sided READs, CPU-bypassing) vs a
    FaSST-style RPC over UD handled by one kernel thread: the meta server
    wins ~11.8x on throughput and up to 13x on latency under load.
(b) two-sided echo latency vs payload: the copy path hurts above 16 KB;
    the zero-copy protocol (§4.5) removes most of the overhead.
"""

from repro.bench.echo import run_echo
from repro.bench.harness import FigureResult
from repro.bench.setups import krcore_cluster, spread_clients
from repro.cluster import timing
from repro.sim import LatencyRecorder, US
from repro.verbs import CompletionQueue, DriverContext, QpType, RecvBuffer, WorkRequest


def run(fast=True):
    result = FigureResult("Fig 9", "meta-server benefit and zero-copy protocol")
    clients_list = [1, 8, 40] if fast else [1, 8, 40, 120, 240]
    table = result.table(
        "(a) DCT metadata query methods",
        ["method", "clients", "latency (us)", "throughput (M/s)"],
    )
    meta_points = {}
    rpc_points = {}
    for clients in clients_list:
        lat, thpt = _meta_query(clients, fast)
        table.add_row("meta server (1-sided)", clients, lat, thpt)
        meta_points[clients] = (lat, thpt)
    for clients in clients_list:
        lat, thpt = _rpc_query(clients, fast)
        table.add_row("FaSST RPC (1 thread)", clients, lat, thpt)
        rpc_points[clients] = (lat, thpt)
    result.metrics["meta"] = meta_points
    result.metrics["rpc"] = rpc_points

    payloads = [64, 4096, 16384, 65536] if fast else [64, 1024, 4096, 16384, 32768, 65536]
    zc_table = result.table(
        "(b) two-sided echo latency vs payload",
        ["payload (B)", "verbs (us)", "KRCORE copy (us)", "KRCORE+opt zc (us)"],
    )
    zc = {}
    for payload in payloads:
        verbs_us = run_echo("verbs", "sync", payload=payload).avg_latency_us
        copy_us = run_echo(
            "krcore", "sync", payload=payload,
            kernel_buf_bytes=128 * 1024, zero_copy=False,
        ).avg_latency_us
        opt_us = run_echo(
            "krcore", "sync", payload=payload,
            kernel_buf_bytes=128 * 1024, zero_copy=True, zero_copy_threshold=16 * 1024 - 1,
        ).avg_latency_us
        zc_table.add_row(payload, verbs_us, copy_us, opt_us)
        zc[payload] = (verbs_us, copy_us, opt_us)
    result.metrics["zerocopy"] = zc
    return result


# ---------------------------------------------------------------------------
# (a) metadata query paths
# ---------------------------------------------------------------------------


def _meta_query(num_clients, fast):
    """DrTM-KV lookups against the meta server from many clients."""
    sim, cluster, meta, modules = krcore_cluster(background_rc=False)
    target_gid = cluster.nodes[1].gid
    placements = spread_clients(num_clients, cluster.nodes[2:])
    window_ns = (150 if fast else 500) * US
    warmup_ns = 30 * US
    recorder = LatencyRecorder()
    windows = {}

    def client(index, node, cpu_id):
        module = node.services["krcore"]
        # One pre-connected meta client per CPU (the per-CPU RCQPs of
        # §4.2); cpu_id is the worker's local ordinal on its node.
        client_handle = module.meta_client(cpu_id)
        while sim.now < warmup_ns + window_ns:
            start = sim.now
            meta_value = yield from client_handle.lookup_dct(target_gid)
            assert meta_value is not None
            now = sim.now
            if now <= warmup_ns:
                continue
            recorder.record(now - start)
            entry = windows.get(index)
            windows[index] = (now, 0, now) if entry is None else (entry[0], entry[1] + 1, now)

    for index, (node, cpu_id) in enumerate(placements):
        sim.process(client(index, node, cpu_id))
    sim.run(until=warmup_ns + window_ns)
    return recorder.mean() / 1000.0, _steady_rate(windows) / 1e6


def _rpc_query(num_clients, fast):
    """A FaSST-style UD RPC metadata service with one kernel thread."""
    sim, cluster, meta, modules = krcore_cluster(background_rc=False)
    server_node = cluster.nodes[0]
    placements = spread_clients(num_clients, cluster.nodes[2:])
    window_ns = (150 if fast else 500) * US
    warmup_ns = 30 * US
    recorder = LatencyRecorder()
    windows = {}

    # Server: one UD QP + one handler thread.
    server_ctx = DriverContext(server_node, kernel=True)
    server_cq = CompletionQueue(sim)
    server_qp = server_ctx.create_qp_fast(QpType.UD, server_cq, recv_cq=server_cq)
    server_qp.to_init()
    server_qp.to_rtr()
    server_qp.to_rts()
    server_buf = server_node.memory.alloc(64 * 1024)
    server_mr = server_node.memory.register(server_buf, 64 * 1024)
    for i in range(max(64, num_clients * 4)):
        server_qp.post_recv(RecvBuffer(server_buf + (i % 512) * 64, 64, server_mr.lkey))

    def server_thread():
        while True:
            completions = yield from server_qp.recv_cq.wait_poll(16)
            for completion in completions:
                if completion.opcode.name != "RECV":
                    continue
                yield timing.RPC_HANDLER_CPU_NS  # the single kernel thread
                reply_to = completion.header["reply"]
                server_qp.post_send(
                    WorkRequest.send(
                        server_buf, 12, server_mr.lkey,
                        dct_gid=reply_to[0], dct_number=reply_to[1],
                        header={"rpc": "reply"}, signaled=True,
                    )
                )
                server_qp.post_recv(
                    RecvBuffer(server_buf + completion.wr_id % 512 * 64, 64, server_mr.lkey)
                )

    sim.process(server_thread(), name="rpc-server")

    def client(index, node):
        ctx = DriverContext(node, kernel=True)
        cq = CompletionQueue(sim)
        qp = ctx.create_qp_fast(QpType.UD, cq, recv_cq=cq)
        qp.to_init()
        qp.to_rtr()
        qp.to_rts()
        buf = node.memory.alloc(4096)
        mr = node.memory.register(buf, 4096)
        while sim.now < warmup_ns + window_ns:
            qp.post_recv(RecvBuffer(buf, 64, mr.lkey))
            start = sim.now
            yield timing.UD_SEND_NS
            qp.post_send(
                WorkRequest.send(
                    buf, 16, mr.lkey,
                    dct_gid=server_node.gid, dct_number=server_qp.qpn,
                    header={"rpc": "query", "reply": (node.gid, qp.qpn)},
                )
            )
            while True:
                completions = yield from qp.recv_cq.wait_poll(4)
                if any(c.opcode.name == "RECV" for c in completions):
                    break
            yield timing.UD_RECV_NS
            now = sim.now
            if now <= warmup_ns:
                continue
            recorder.record(now - start)
            entry = windows.get(index)
            windows[index] = (now, 0, now) if entry is None else (entry[0], entry[1] + 1, now)

    for index, (node, _cpu) in enumerate(placements):
        sim.process(client(index, node))
    sim.run(until=warmup_ns + window_ns)
    return recorder.mean() / 1000.0, _steady_rate(windows) / 1e6


def _steady_rate(windows):
    rate = 0.0
    for start, count, last in windows.values():
        if count and last > start:
            rate += count / ((last - start) / 1e9)
    return rate
