"""§6 "Discussion": the two quantitative claims, reproduced.

* **Other RNICs** -- "the cost is unlikely to reduce due to hardware
  upgrades ... on ConnectX-6 the user-space driver still takes 17ms for
  creating and connecting QP".  We re-run the control path under a
  ConnectX-6-like hardware profile (every NIC-configuration cost scaled to
  the paper's CX6 measurement) and show KRCORE's qconnect is unaffected.

* **Trade-offs of a kernel-space solution** -- KRCORE trades ~1 us per
  data-path op for a ~15.7 ms control-path saving, so it wins until a
  worker issues ~15,000 requests per connection; "the functions in
  ServerlessBench and SeBS only issue one request ... on average".
"""

import contextlib

from repro.bench.harness import FigureResult
from repro.bench.onesided import run_onesided
from repro.bench.setups import krcore_cluster, verbs_cluster
from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.sim import US
from repro.verbs import DriverContext
from repro.verbs.connection import rc_connect

#: ConnectX-6 profile: the paper measured ~17 ms (vs 15.7 ms on CX4) for
#: creating+connecting a QP; scale every NIC-configuration cost by that
#: ratio (the breakdown stays hardware-setup-dominated).
_CX6_SCALE = 17.0 / 15.7
CONNECTX6 = {
    "DRIVER_INIT_NS": int(timing.DRIVER_INIT_NS * _CX6_SCALE),
    "CREATE_QP_NS": int(timing.CREATE_QP_NS * _CX6_SCALE),
    "CREATE_QP_HW_NS": int(timing.CREATE_QP_HW_NS * _CX6_SCALE),
    "CREATE_CQ_NS": int(timing.CREATE_CQ_NS * _CX6_SCALE),
    "CREATE_CQ_HW_NS": int(timing.CREATE_CQ_HW_NS * _CX6_SCALE),
    "MODIFY_RTR_NS": int(timing.MODIFY_RTR_NS * _CX6_SCALE),
    "MODIFY_RTS_NS": int(timing.MODIFY_RTS_NS * _CX6_SCALE),
    "HANDSHAKE_NS": int(timing.HANDSHAKE_NS * _CX6_SCALE),
}


@contextlib.contextmanager
def hardware_profile(**overrides):
    """Temporarily override timing constants (they are read at run time,
    so simulations inside the block see the new hardware)."""
    saved = {name: getattr(timing, name) for name in overrides}
    for name, value in overrides.items():
        setattr(timing, name, value)
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(timing, name, value)


def run(fast=True):
    result = FigureResult("§6", "discussion claims: other RNICs; kernel-space trade-off")

    table = result.table(
        "control path across RNIC generations",
        ["RNIC", "verbs first connection (ms)", "KRCORE qconnect (us)"],
    )
    cx4 = _control_paths()
    with hardware_profile(**CONNECTX6):
        cx6 = _control_paths()
    table.add_row("ConnectX-4 (testbed)", cx4[0], cx4[1])
    table.add_row("ConnectX-6 profile", cx6[0], cx6[1])
    result.metrics["cx4"] = cx4
    result.metrics["cx6"] = cx6

    # Break-even: requests per connection before KRCORE's slower data
    # path eats its control-path saving.
    verbs_conn_us = cx4[0] * 1000
    krcore_conn_us = cx4[1]
    verbs_op_us = run_onesided("verbs", "sync", num_clients=1).avg_latency_us
    krcore_op_us = run_onesided("krcore_dc", "sync", num_clients=1).avg_latency_us
    crossover = (verbs_conn_us - krcore_conn_us) / (krcore_op_us - verbs_op_us)
    tradeoff = result.table(
        "end-to-end worker time: connect + k x 8B READ",
        ["requests k", "verbs (us)", "KRCORE (us)", "KRCORE wins"],
    )
    for k in (1, 10, 100, 1_000, 10_000, int(crossover), 100_000):
        verbs_total = verbs_conn_us + k * verbs_op_us
        krcore_total = krcore_conn_us + k * krcore_op_us
        tradeoff.add_row(k, verbs_total, krcore_total, str(krcore_total < verbs_total))
    result.metrics["crossover_requests"] = crossover
    result.metrics["ops"] = (verbs_op_us, krcore_op_us)
    return result


def _control_paths():
    """(verbs first-connection ms, KRCORE uncached qconnect us), measured."""
    sim, cluster = verbs_cluster(num_nodes=2)

    def verbs_proc():
        ctx = DriverContext(cluster.node(0))
        yield from ctx.ensure_init()
        cq = yield from ctx.create_cq()
        yield from rc_connect(ctx, cq, cluster.node(1).gid)
        return sim.now

    verbs_ms = sim.run_process(verbs_proc()) / 1e6

    sim_k, cluster_k, meta, modules = krcore_cluster(num_nodes=3, background_rc=False)
    lib = KrcoreLib(cluster_k.node(1))

    def krcore_proc():
        vqp = yield from lib.create_vqp()
        start = sim_k.now
        yield from lib.qconnect(vqp, cluster_k.node(2).gid)
        return sim_k.now - start

    krcore_us = sim_k.run_process(krcore_proc()) / 1e3
    return verbs_ms, krcore_us
