"""Meta-plane scale-out: qconnect-storm throughput vs shard count.

A ServerlessBench-style burst: a pack of freshly-started workers on one
client node all qconnect to distinct targets at once, every connect
missing the DCCache and paying the meta-plane lookup (two one-sided
READs).  With a single meta deployment the per-CPU meta client serializes
every lookup behind one mutex -- exactly the centralized-control-plane
wall Swift/RDMAvisor describe.  Sharding the plane gives the CPU one
pre-connected client *per shard*, so lookups to different shards proceed
in parallel and storm throughput scales with the shard count, while each
individual lookup still costs the same ~4.5 us.

Each worker owns a private target and evicts its DCCache entry before
every connect, so every iteration is an uncached qconnect routed to the
target's primary shard.
"""

from repro.bench.harness import FigureResult
from repro.bench.setups import krcore_cluster
from repro.krcore import KrcoreLib
from repro.sim import LatencyRecorder, US

#: Storm width: one worker per target, all on one client CPU.
NUM_TARGETS = 16


def run(fast=True):
    result = FigureResult(
        "Meta scale",
        "qconnect-storm throughput vs meta-plane shard count",
    )
    shard_counts = [1, 2, 4]
    table = result.table(
        "(a) qconnect storm vs shards",
        ["shards", "workers", "qconnects", "throughput (K/s)", "mean latency (us)"],
    )
    dist_table = result.table(
        "(b) per-shard lookups served",
        ["shards", "shard", "lookups"],
    )
    points = {}
    for shards in shard_counts:
        completed, rate_k, mean_us, served = _storm(shards, fast)
        table.add_row(shards, NUM_TARGETS, completed, rate_k, mean_us)
        for shard, lookups in enumerate(served):
            dist_table.add_row(shards, shard, lookups)
        points[shards] = (completed, rate_k, mean_us)
    result.metrics["storm"] = points
    return result


def _storm(shards, fast):
    """One storm run; returns (qconnects, K/s, mean us, per-shard lookups)."""
    sim, cluster, meta, modules = krcore_cluster(
        num_nodes=shards + NUM_TARGETS + 1,
        meta_shards=shards,
        cores=4,
        background_rc=False,
    )
    client_node = cluster.nodes[-1]
    client_module = modules[-1]
    targets = [cluster.nodes[shards + i].gid for i in range(NUM_TARGETS)]
    warmup_ns = 30 * US
    window_ns = (300 if fast else 1000) * US
    recorder = LatencyRecorder()
    counts = [0]

    def worker(target_gid):
        lib = KrcoreLib(client_node, cpu_id=0)
        while sim.now < warmup_ns + window_ns:
            # A fresh serverless instance has no cached metadata: evict
            # the target's entry so every connect is an uncached lookup.
            client_module.dc_cache.pop(target_gid, None)
            start = sim.now
            vqp = yield from lib.create_vqp()
            yield from lib.qconnect(vqp, target_gid)
            now = sim.now
            if now <= warmup_ns:
                continue
            recorder.record(now - start)
            counts[0] += 1

    for target_gid in targets:
        sim.process(worker(target_gid), name=f"storm-{target_gid}")
    sim.run(until=warmup_ns + window_ns)

    served = [0] * shards
    for (_cpu, shard), handle in sorted(client_module._meta_clients.items()):
        served[shard] += handle.kv.stats_reads // 2  # 2 READs per lookup
    rate_k = counts[0] / (window_ns / 1e9) / 1e3
    mean_us = recorder.mean() / 1000.0
    return counts[0], rate_k, mean_us, served
