"""Fig 16: scaling RACE hashing under a load spike.

At t=0 a spike hits and RACE forks 180 computing workers (spread over 7
compute nodes; 2 storage nodes; 1 meta node).  Worker bootstrap runs
through the *real* control-plane machinery of each backend:

* verbs -- per-process driver init + per-QP create/configure, gated by the
  storage nodes' ~712 QP/s command processors: ~1.4 s;
* LITE  -- no driver init but still per-process QP creation: ~1 s;
* KRCORE -- qconnect is microseconds, so startup is bound by the OS
  forking workers: ~244 ms.

Data-path throughput uses a calibrated fluid model (simulating 26M
req/s per-op is infeasible in Python): each ready worker contributes its
backend's per-worker YCSB-C rate; KRCORE workers start on DC and switch
to RC when the background creator promotes their connections, which is
driven through the real note_traffic/transfer machinery.
"""

from repro.bench.harness import FigureResult
from repro.bench.setups import krcore_cluster, lite_cluster, verbs_cluster
from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.sim import MS, SEC
from repro.verbs import DriverContext
from repro.verbs.connection import rc_connect

#: Deployment shape (10-node testbed): 1 meta + 2 storage + 7 compute.
NUM_STORAGE = 2
NUM_COMPUTE = 7

#: QPs each worker creates per storage node.  verbs workers keep an extra
#: per-thread QP (dedicated metadata/handshake channel alongside the
#: doorbell-batched data QPs); LITE's kernel multiplexes that away.
#: Calibrated so the storage nodes' ~712 QP/s accept ceiling yields the
#: paper's startup times at 180 workers: verbs ~1.4 s, LITE ~1.0 s.
QPS_PER_STORAGE = {"verbs": 4, "lite": 3}

#: Calibrated per-worker YCSB-C throughput (ops/s): Fig 16's plateaus are
#: 26M (verbs), 15M (LITE), 18M -> 26M (KRCORE DC -> RC) at 180 workers.
WORKER_RATE = {
    "verbs": 26_000_000 / 180,
    "lite": 15_000_000 / 180,
    "krcore_dc": 18_000_000 / 180,
    "krcore_rc": 26_000_000 / 180,
}

#: Data-path latency floor for the p99 model (us).
BASE_P99_US = {"verbs": 6.0, "lite": 8.0, "krcore_dc": 8.5, "krcore_rc": 7.0}

WINDOW_NS = 100 * MS
HORIZON_NS = 6 * SEC


def run(fast=True, workers=None):
    result = FigureResult("Fig 16", "RACE hashing under a load spike")
    if workers is None:
        workers = 60 if fast else 180
    table = result.table(
        "startup and throughput timeline",
        ["backend", "all workers ready (ms)", "peak throughput (M/s)", "p99 @ 0-3s (us)"],
    )
    metrics = {}
    timelines = {}
    for backend in ("krcore", "verbs", "lite"):
        ready_times, phase_fn = _bootstrap(backend, workers)
        timeline = _fluid_timeline(backend, ready_times, phase_fn, workers)
        ready_ms = max(ready_times) / 1e6
        peak = max(point["mps"] for point in timeline)
        early = [point["p99_us"] for point in timeline if point["t_ms"] <= 3000]
        p99_early = sum(early) / len(early)
        table.add_row(backend, ready_ms, peak, p99_early)
        metrics[backend] = {"ready_ms": ready_ms, "peak_mps": peak, "p99_us": p99_early}
        timelines[backend] = timeline
    result.metrics = metrics
    result.metrics["timelines"] = timelines
    curve = result.table(
        "throughput timeline (M req/s per 500 ms)",
        ["t (ms)"] + ["krcore", "verbs", "lite"],
    )
    for t_ms in range(0, 3001, 500):
        row = [t_ms]
        for backend in ("krcore", "verbs", "lite"):
            points = [p for p in timelines[backend] if p["t_ms"] <= t_ms]
            row.append(points[-1]["mps"] if points else 0.0)
        curve.add_row(*row)
    return result


# ---------------------------------------------------------------------------
# bootstrap (discrete, through the real control planes)
# ---------------------------------------------------------------------------


def _bootstrap(backend, workers):
    """Simulate the spike's worker fork+connect phase.

    Returns (ready_times_ns, krcore_phase(t_ns) -> 'dc'|'rc').
    """
    if backend == "verbs":
        sim, cluster = verbs_cluster()
        storage = cluster.nodes[:NUM_STORAGE]
        compute = cluster.nodes[NUM_STORAGE : NUM_STORAGE + NUM_COMPUTE]
        modules = None
    elif backend == "lite":
        sim, cluster, _modules = lite_cluster()
        storage = cluster.nodes[:NUM_STORAGE]
        compute = cluster.nodes[NUM_STORAGE : NUM_STORAGE + NUM_COMPUTE]
        modules = None
    else:
        sim, cluster, meta, modules = krcore_cluster(rc_traffic_threshold=256)
        storage = cluster.nodes[1 : 1 + NUM_STORAGE]
        compute = cluster.nodes[1 + NUM_STORAGE : 1 + NUM_STORAGE + NUM_COMPUTE]
    ready_times = []

    def worker(node, cpu_id):
        if backend == "krcore":
            lib = KrcoreLib(node, cpu_id=cpu_id)
            for target in storage:
                vqp = yield from lib.create_vqp()
                yield from lib.qconnect(vqp, target.gid)
        else:
            # Each forked process builds its own QPs; LITE skips the
            # user-space driver init but not the QP hardware setup (the
            # per-process connections RACE's workers hold).
            ctx = DriverContext(node, kernel=(backend == "lite"))
            yield from ctx.ensure_init()
            cq = yield from ctx.create_cq()
            for target in storage:
                for _ in range(QPS_PER_STORAGE[backend]):
                    yield from rc_connect(ctx, cq, target.gid)
        ready_times.append(sim.now)

    def spawner(node, count, base_cpu):
        # The node's process spawner forks workers serially.
        for index in range(count):
            yield timing.PROCESS_SPAWN_NS
            sim.process(worker(node, (base_cpu + index) % node.cores))

    per_node = [workers // NUM_COMPUTE] * NUM_COMPUTE
    for index in range(workers % NUM_COMPUTE):
        per_node[index] += 1
    for node, count in zip(compute, per_node):
        sim.process(spawner(node, count, 0))
    sim.run()
    assert len(ready_times) == workers

    phase_fn = None
    if backend == "krcore":
        # Drive the background RC creator with sampled traffic (the fluid
        # model's ops don't run through note_traffic themselves).
        switch_done = []

        def drive_sampling():
            start = sim.now
            while not switch_done:
                yield 50 * MS
                for node in compute:
                    module = node.services["krcore"]
                    for cpu in range(node.cores):
                        for target in storage:
                            module.note_traffic(target.gid, cpu, 200)
                # Wait until every compute node has RC to every storage.
                if all(
                    any(node.services["krcore"].pool(cpu).has_rc(target.gid)
                        for cpu in range(node.cores))
                    for node in compute
                    for target in storage
                ):
                    switch_done.append(sim.now)

        sim.process(drive_sampling())
        sim.run(until=sim.now + 3 * SEC)
        switch_ns = switch_done[0] if switch_done else 2_200 * MS
        # The paper notes a detection lag before the switch (Fig 16's
        # ~2.2 s): the creator must first observe sustained traffic.
        switch_ns = max(switch_ns, max(ready_times) + 1_800 * MS)

        def phase(t_ns):
            return "rc" if t_ns >= switch_ns else "dc"

        phase_fn = phase
    return ready_times, phase_fn


# ---------------------------------------------------------------------------
# throughput + p99 (fluid)
# ---------------------------------------------------------------------------


def _fluid_timeline(backend, ready_times, phase_fn, workers):
    """Integrate per-worker rates over 100 ms windows; model p99 from the
    offered-vs-capacity backlog during the ramp.

    The reported throughput is the fleet's serving capacity (what the
    paper's timeline plots).  For the p99 model the spike is sized at 50%
    of the full verbs-backed fleet -- below KRCORE's DC-phase capacity, so
    its queue drains as soon as the workers are up, while verbs/LITE stay
    saturated through their slow bootstrap; queueing delay is capped at
    the window length (older requests would time out).
    """
    offered_rate = 0.5 * workers * WORKER_RATE["verbs"]
    window_s = WINDOW_NS / 1e9
    cap_us = WINDOW_NS / 1e3
    timeline = []
    backlog = 0.0
    ready_sorted = sorted(ready_times)
    for start in range(0, HORIZON_NS, WINDOW_NS):
        mid = start + WINDOW_NS // 2
        ready = sum(1 for t in ready_sorted if t <= mid)
        if backend == "krcore":
            rate_key = "krcore_" + phase_fn(mid)
        else:
            rate_key = backend
        capacity = ready * WORKER_RATE[rate_key]
        backlog = max(0.0, backlog + (offered_rate - capacity) * window_s)
        base = BASE_P99_US[rate_key]
        if capacity > 0:
            queue_delay_us = min(backlog / capacity * 1e6, cap_us)
            utilization = min(offered_rate / capacity, 0.99)
            steady_us = base / (1.0 - utilization) - base
        else:
            queue_delay_us = cap_us
            steady_us = 0.0
        timeline.append(
            {
                "t_ms": start / 1e6,
                "mps": capacity / 1e6,
                "p99_us": base + steady_us + queue_delay_us,
                "ready": ready,
            }
        )
    return timeline
