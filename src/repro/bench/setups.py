"""Cluster builders shared by the benchmark drivers."""

from repro.cluster import Cluster
from repro.krcore import KrcoreModule, MetaPlane, MetaServer
from repro.lite import LiteModule
from repro.sim import Simulator
from repro.verbs import ConnectionManager, DriverContext


def verbs_cluster(num_nodes=10, memory_size=16 << 20, cores=24):
    """A cluster where every node runs a connection-manager daemon."""
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=num_nodes, cores=cores, memory_size=memory_size)
    for node in cluster.nodes:
        ConnectionManager(node, DriverContext(node, kernel=True))
    return sim, cluster


def lite_cluster(num_nodes=10, memory_size=16 << 20, cores=24):
    """A cluster with a LITE kernel module per node."""
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=num_nodes, cores=cores, memory_size=memory_size)
    modules = [LiteModule(node) for node in cluster.nodes]
    return sim, cluster, modules


def krcore_cluster(
    num_nodes=10, meta_index=0, memory_size=16 << 20, cores=24, meta_shards=1, **kwargs
):
    """A cluster with a meta plane and a KRCORE module per node.

    With ``meta_shards=1`` (the default) this is the paper's deployment:
    one :class:`MetaServer` on ``cluster.node(meta_index)``, returned
    bare, with construction order identical to the pre-sharding builder.
    With ``meta_shards=N`` the shards live on nodes ``meta_index ..
    meta_index+N-1`` and a :class:`MetaPlane` is returned.  Shard hosts'
    modules boot first (the boot-time broadcast).
    """
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=num_nodes, cores=cores, memory_size=memory_size)
    if meta_shards == 1:
        meta = MetaServer(cluster.node(meta_index))
        meta_indexes = [meta_index]
    else:
        shards = [
            MetaServer(cluster.node(meta_index + offset))
            for offset in range(meta_shards)
        ]
        meta = MetaPlane(shards)
        meta_indexes = list(range(meta_index, meta_index + meta_shards))
    order = meta_indexes + [i for i in range(num_nodes) if i not in meta_indexes]
    by_index = {}
    for index in order:
        by_index[index] = KrcoreModule(cluster.node(index), meta, **kwargs)
    modules = [by_index[i] for i in range(num_nodes)]
    return sim, cluster, meta, modules


def plant_rc(module, remote_module, cpu_id=0):
    """Wire a ready kernel RCQP pair into two modules' pools (boot-time,
    no cost): the state the background creator would eventually reach."""
    from repro.verbs import CompletionQueue, QpType

    sim = module.sim
    cq_a = CompletionQueue(sim)
    cq_b = CompletionQueue(sim)
    qp_a = module.context.create_qp_fast(QpType.RC, cq_a, recv_cq=None)
    qp_b = remote_module.context.create_qp_fast(QpType.RC, cq_b, recv_cq=None)
    qp_a.to_init()
    qp_a.to_rtr((remote_module.node.gid, qp_b.qpn))
    qp_a.to_rts()
    qp_b.to_init()
    qp_b.to_rtr((module.node.gid, qp_a.qpn))
    qp_b.to_rts()
    # Stock receive sides so two-sided traffic works over the pair.
    qp_a.recv_cq = CompletionQueue(sim)
    qp_b.recv_cq = CompletionQueue(sim)
    for _ in range(8):
        module._post_kernel_buffer(qp_a.post_recv)
        remote_module._post_kernel_buffer(qp_b.post_recv)
    sim.process(module._recv_dispatcher(qp_a.recv_cq, qp_a.post_recv))
    sim.process(remote_module._recv_dispatcher(qp_b.recv_cq, qp_b.post_recv))
    module.pool(cpu_id).insert_rc(remote_module.node.gid, qp_a)
    remote_module.pool(cpu_id).insert_rc(module.node.gid, qp_b)
    return qp_a, qp_b


def spread_clients(num_clients, client_nodes):
    """Assign ``num_clients`` worker indexes to nodes round-robin.

    Returns a list of (node, cpu_id) the way the paper's inbound
    benchmarks spread clients over the other nine machines.
    """
    placements = []
    for index in range(num_clients):
        node = client_nodes[index % len(client_nodes)]
        cpu_id = (index // len(client_nodes)) % node.cores
        placements.append((node, cpu_id))
    return placements
