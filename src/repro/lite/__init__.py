"""LITE: the kernel-space RDMA baseline (Tsai & Zhang, SOSP'17).

The paper compares against an *optimized* LITE (§5, "Comparing targets"):
the original centralized cluster manager is replaced by the decentralized
UD handshake, reaching the hardware limit of ~712 QP/s.  We model that
optimized version, and reproduce the three issues §2.3.2 identifies:

* **Issue #1** -- connecting to an uncached node still pays the full QP
  create/configure cost (~2 ms);
* **Issue #2** -- the connection cache holds one full RCQP (>= 159 KB) per
  remote node, so memory grows linearly with the cluster;
* **Issue #3** -- the high-level API hides the QP, and the kernel forwards
  requests to shared QPs *without capacity pre-checks*: enough concurrent
  posters overflow a QP and wreck it (LITE "fails to run with more than 6
  threads", Fig 15b).
"""

from repro.lite.module import LiteError, LiteModule

__all__ = ["LiteError", "LiteModule"]
