"""The LITE kernel module: connection pool + high-level API."""

from repro.cluster import timing
from repro.verbs import (
    CompletionQueue,
    ConnectionManager,
    DriverContext,
    QpType,
    RecvBuffer,
    WorkRequest,
)
from repro.verbs.connection import rc_connect
from repro.verbs.errors import VerbsError

#: The well-known port LITE modules accept each other's connections on.
LITE_PORT = 9


class LiteError(VerbsError):
    """A LITE operation failed (remote error, wrecked QP, ...)."""


class LiteModule:
    """Per-node LITE kernel module.

    One RCQP per remote node, shared by every local thread -- LITE's
    actual design, and the root of its overflow flaw (Issue #3).
    """

    SERVICE = "lite"

    def __init__(self, node, rpc_buffers=64, rpc_buf_bytes=4096):
        self.node = node
        self.sim = node.sim
        self.context = DriverContext(node, kernel=True)
        #: gid -> the (single, shared) RCQP to that node.
        self.pool = {}
        #: gid -> in-progress connection event, to dedupe concurrent misses.
        self._connecting = {}
        self.stats_cache_misses = 0
        #: Registered RPC handler: fn(request_bytes) -> response_bytes.
        self._rpc_handler = None
        self._rpc_buf_bytes = rpc_buf_bytes
        base = node.memory.alloc(rpc_buffers * rpc_buf_bytes)
        self._rpc_region = node.memory.register(base, rpc_buffers * rpc_buf_bytes)
        self._rpc_free = list(range(rpc_buffers))
        self._rpc_base = base
        self._reply_events = {}
        self._next_rpc_id = 1
        node.services[self.SERVICE] = self
        manager = node.services.get(ConnectionManager.SERVICE)
        if manager is None:
            manager = ConnectionManager(node, self.context)
        manager.listen(LITE_PORT, self._on_accept)

    # ------------------------------------------------------------- connections

    def _on_accept(self, qp, client_gid):
        # Own the send CQ (the daemon's accept CQ is shared across
        # services), then keep the QP so traffic back to the client
        # reuses it.
        qp.send_cq = CompletionQueue(self.sim)
        qp.recv_cq = CompletionQueue(self.sim)
        self._arm_rpc(qp)
        self.pool.setdefault(client_gid, qp)

    # --------------------------------------------------------------- LITE RPC

    def rpc_register(self, handler):
        """Register the node's RPC handler: fn(request_bytes) -> bytes."""
        self._rpc_handler = handler

    def _arm_rpc(self, qp):
        """Stock a QP's receive side and start its message dispatcher."""
        for _ in range(16):
            self._post_rpc_buffer(qp)
        self.sim.process(self._rpc_dispatcher(qp), name=f"lite-rpc@{self.node.gid}")

    def _post_rpc_buffer(self, qp):
        if not self._rpc_free:
            return
        slot = self._rpc_free.pop()
        qp.post_recv(
            RecvBuffer(
                self._rpc_base + slot * self._rpc_buf_bytes,
                self._rpc_buf_bytes,
                self._rpc_region.lkey,
                wr_id=slot,
            )
        )

    def _rpc_dispatcher(self, qp):
        from repro.verbs import Opcode

        while True:
            completions = yield from qp.recv_cq.wait_poll(8)
            for completion in completions:
                if completion.opcode is not Opcode.RECV:
                    continue
                self.sim.process(self._handle_rpc_message(qp, completion))

    def _handle_rpc_message(self, qp, completion):
        header = completion.header or {}
        slot = completion.wr_id
        payload = self.node.memory.read(
            self._rpc_base + slot * self._rpc_buf_bytes, completion.byte_len
        )
        self._rpc_free.append(slot)
        self._post_rpc_buffer(qp)
        kind = header.get("lite")
        if kind == "reply":
            event = self._reply_events.pop(header["rpc_id"], None)
            if event is not None and not event.triggered:
                event.trigger(payload)
            yield 0
            return
        if kind != "request":
            yield 0
            return
        if self._rpc_handler is None:
            raise LiteError(f"{self.node.gid}: RPC request but no handler registered")
        yield timing.TWO_SIDED_SERVER_CPU_NS  # handler thread cost
        response = self._rpc_handler(payload)
        yield from self._send_message(
            qp, response, {"lite": "reply", "rpc_id": header["rpc_id"]}
        )

    def _send_message(self, qp, payload, header):
        if len(payload) > self._rpc_buf_bytes:
            raise LiteError(
                f"LITE RPC message of {len(payload)}B exceeds the "
                f"{self._rpc_buf_bytes}B buffers"
            )
        if not self._rpc_free:
            raise LiteError("out of LITE RPC buffers")
        slot = self._rpc_free.pop()
        addr = self._rpc_base + slot * self._rpc_buf_bytes
        self.node.memory.write(addr, payload)
        yield timing.POST_SEND_CPU_NS
        qp.post_send(
            WorkRequest.send(addr, len(payload), self._rpc_region.lkey, header=header)
        )
        completions = yield from qp.send_cq.wait_poll()
        if not completions[0].ok:
            raise LiteError(
                f"RPC send failed: {completions[0].status}",
                code=completions[0].status,
            )
        self._rpc_free.append(slot)

    def rpc_call(self, gid, request):
        """Process: LITE's synchronous RPC -- send ``request`` bytes to the
        remote node's registered handler, return its response bytes."""
        yield timing.SYSCALL_NS
        qp = yield from self.ensure_qp(gid)
        rpc_id = (self.node.gid, self._next_rpc_id)
        self._next_rpc_id += 1
        event = self.sim.event()
        self._reply_events[rpc_id] = event
        yield from self._send_message(qp, request, {"lite": "request", "rpc_id": rpc_id})
        response = yield event
        yield timing.POLL_CQ_CPU_NS
        return response

    def ensure_qp(self, gid):
        """Process: return the cached QP for ``gid``, connecting on a miss.

        A miss costs the full Create+Configure control path (~2 ms,
        Issue #1); concurrent misses for the same gid share one handshake.
        """
        qp = self.pool.get(gid)
        if qp is not None:
            return qp
        pending = self._connecting.get(gid)
        if pending is not None:
            yield pending
            return self.pool[gid]
        event = self.sim.event()
        self._connecting[gid] = event
        self.stats_cache_misses += 1
        try:
            cq = CompletionQueue(self.sim)
            qp = yield from rc_connect(self.context, cq, gid, port=LITE_PORT)
            # Separate receive CQ + dispatcher so RPC replies can land.
            qp.recv_cq = CompletionQueue(self.sim)
            self._arm_rpc(qp)
            self.pool[gid] = qp
        finally:
            del self._connecting[gid]
            event.trigger(None)
        return qp

    def prewarm(self, remote_module):
        """Wire a ready QP pair to ``remote_module`` without charging time.

        Boot-time helper for data-path experiments whose caches start warm.
        """
        local_cq = CompletionQueue(self.sim)
        remote_cq = CompletionQueue(remote_module.sim)
        local_qp = self.context.create_qp_fast(
            QpType.RC, local_cq, recv_cq=CompletionQueue(self.sim)
        )
        remote_qp = remote_module.context.create_qp_fast(
            QpType.RC, remote_cq, recv_cq=CompletionQueue(remote_module.sim)
        )
        local_qp.to_init()
        local_qp.to_rtr((remote_module.node.gid, remote_qp.qpn))
        local_qp.to_rts()
        remote_qp.to_init()
        remote_qp.to_rtr((self.node.gid, local_qp.qpn))
        remote_qp.to_rts()
        self._arm_rpc(local_qp)
        remote_module._arm_rpc(remote_qp)
        self.pool[remote_module.node.gid] = local_qp
        remote_module.pool[self.node.gid] = remote_qp

    # ------------------------------------------------------------ high-level API

    def read(self, gid, laddr, lkey, raddr, rkey, length):
        """Process: synchronous remote memory read (LITE's lt_read)."""
        yield from self._sync_one_sided(
            gid, WorkRequest.read(laddr, length, lkey, raddr, rkey)
        )

    def write(self, gid, laddr, lkey, raddr, rkey, length):
        """Process: synchronous remote memory write (LITE's lt_write)."""
        yield from self._sync_one_sided(
            gid, WorkRequest.write(laddr, length, lkey, raddr, rkey)
        )

    def cas(self, gid, laddr, lkey, raddr, rkey, compare, swap):
        """Process: synchronous remote compare-and-swap; the old value
        lands in the local buffer."""
        yield from self._sync_one_sided(
            gid, WorkRequest.cas(laddr, lkey, raddr, rkey, compare, swap)
        )

    def fetch_add(self, gid, laddr, lkey, raddr, rkey, delta):
        """Process: synchronous remote fetch-and-add; the old value lands
        in the local buffer."""
        from repro.verbs import Opcode

        wr = WorkRequest(
            Opcode.FETCH_ADD,
            laddr=laddr,
            length=8,
            lkey=lkey,
            raddr=raddr,
            rkey=rkey,
            compare=delta,
        )
        yield from self._sync_one_sided(gid, wr)

    def _sync_one_sided(self, gid, wr):
        yield timing.SYSCALL_NS
        qp = yield from self.ensure_qp(gid)
        yield timing.POST_SEND_CPU_NS
        qp.post_send(wr)
        completions = yield from qp.send_cq.wait_poll()
        yield timing.POLL_CQ_CPU_NS
        completion = completions[0]
        if not completion.ok:
            raise LiteError(f"remote op failed: {completion.status}", code=completion.status)

    # ------------------------------------------------------- async (flawed) path

    def post_async(self, gid, wrs):
        """Forward a batch straight to the shared QP -- LITE performs *no*
        capacity pre-check, so concurrent posters can overflow the QP and
        wreck it (Issue #3, Fig 15b).  The QP must already be cached.

        Raises QpOverflowError / QpError exactly when the hardware would.
        """
        qp = self.pool.get(gid)
        if qp is None:
            raise LiteError(f"no cached QP for {gid}; connect first")
        qp.post_send(wrs)
        return qp

    def poll_async(self, gid, num_entries=1):
        qp = self.pool.get(gid)
        if qp is None:
            raise LiteError(f"no cached QP for {gid}")
        return qp.send_cq.poll(num_entries)

    # ------------------------------------------------------------------- memory

    def connection_cache_bytes(self, num_connections=None):
        """Driver memory held by the RCQP cache (Fig 15a / Issue #2)."""
        count = len(self.pool) if num_connections is None else num_connections
        return count * timing.rc_qp_memory_bytes()

    @staticmethod
    def cache_bytes_for(num_connections):
        """Memory LITE needs to cache ``num_connections`` RCQPs."""
        return num_connections * timing.rc_qp_memory_bytes()
