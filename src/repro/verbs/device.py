"""Driver contexts and protection domains.

A :class:`DriverContext` is the per-process user-space driver state whose
initialization (open device, alloc PD, register memory) costs ~13.3 ms and
dominates the verbs control path (Fig 3b).  Kernel-space solutions (LITE,
KRCORE) share one pre-initialized context per node, which is why they skip
this cost (§2.3.2).
"""

from repro.cluster import timing
from repro.obs import trace as _trace
from repro.verbs.cq import CompletionQueue
from repro.verbs.errors import VerbsError
from repro.verbs.qp import QueuePair


class ProtectionDomain:
    """Scopes memory registrations to a context (ibv_pd)."""

    def __init__(self, context):
        self.context = context
        self.node = context.node
        self.regions = []

    def reg_mr(self, addr, length, access=None):
        """Process: register memory (cheap: ~1.4 us for 4 MB, §5.1)."""
        from repro.cluster.memory import AccessFlags

        yield timing.reg_mr_ns(length)
        region = self.node.memory.register(
            addr, length, AccessFlags.ALL if access is None else access
        )
        self.regions.append(region)
        return region

    def dereg_mr(self, region):
        self.node.memory.deregister(region)
        if region in self.regions:
            self.regions.remove(region)


class DriverContext:
    """Per-process RDMA driver context (ibv_context + its setup costs)."""

    def __init__(self, node, kernel=False):
        self.node = node
        self.sim = node.sim
        #: Kernel contexts are initialized at module-load time, off the
        #: critical path; user contexts pay DRIVER_INIT_NS on first use.
        self._initialized = kernel
        self.kernel = kernel

    @property
    def initialized(self):
        return self._initialized

    def ensure_init(self):
        """Process: pay the one-time driver initialization if needed."""
        if not self._initialized:
            if _trace.TRACER is not None:
                _trace.TRACER.begin(
                    self.sim.now, f"verbs@{self.node.gid}", "driver_init"
                )
            yield timing.DRIVER_INIT_NS
            self._initialized = True
            if _trace.TRACER is not None:
                _trace.TRACER.end(
                    self.sim.now, f"verbs@{self.node.gid}", "driver_init"
                )

    def alloc_pd(self):
        if not self._initialized:
            raise VerbsError("driver context not initialized")
        return ProtectionDomain(self)

    def create_cq(self, depth=timing.CQ_DEPTH_DEFAULT, poll_mode="event"):
        """Process: create a completion queue (hardware queue allocation)."""
        if not self._initialized:
            raise VerbsError("driver context not initialized")
        if _trace.TRACER is not None:
            _trace.TRACER.begin(self.sim.now, f"verbs@{self.node.gid}", "create_cq")
        yield from self.node.rnic.command(timing.CREATE_CQ_HW_NS)
        yield timing.CREATE_CQ_NS - timing.CREATE_CQ_HW_NS
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"verbs@{self.node.gid}", "create_cq")
        return CompletionQueue(
            self.sim, depth=depth, poll_mode=poll_mode, rnic=self.node.rnic
        )

    def create_qp(self, qp_type, send_cq, recv_cq=None, sq_depth=timing.SQ_DEPTH_DEFAULT):
        """Process: create a QP; 87% of the time is the RNIC building the
        hardware queues (§2.3.1)."""
        if not self._initialized:
            raise VerbsError("driver context not initialized")
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"verbs@{self.node.gid}", "create_qp",
                qp_type=qp_type.value,
            )
        yield from self.node.rnic.command(timing.CREATE_QP_HW_NS)
        yield timing.CREATE_QP_NS - timing.CREATE_QP_HW_NS
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"verbs@{self.node.gid}", "create_qp")
        return QueuePair(self.node, qp_type, send_cq, recv_cq=recv_cq, sq_depth=sq_depth)

    def create_qp_fast(self, qp_type, send_cq, recv_cq=None, sq_depth=timing.SQ_DEPTH_DEFAULT):
        """Create a QP object without charging setup time.

        Only for boot-time construction (costs paid before the measured
        window) -- never on a simulated critical path.
        """
        return QueuePair(self.node, qp_type, send_cq, recv_cq=recv_cq, sq_depth=sq_depth)

    def modify_to_ready(self, qp, remote=None):
        """Process: INIT -> RTR -> RTS, charging the RNIC command processor."""
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"verbs@{self.node.gid}", "configure", qpn=qp.qpn
            )
        yield from self.node.rnic.command(timing.MODIFY_RTR_NS)
        qp.to_init()
        qp.to_rtr(remote)
        yield from self.node.rnic.command(timing.MODIFY_RTS_NS)
        qp.to_rts()
        if _trace.TRACER is not None:
            _trace.TRACER.end(self.sim.now, f"verbs@{self.node.gid}", "configure")
