"""Completion queues and their polling-mode models.

Real drivers discover completions three ways, and each has a distinct
CPU/latency trade (ATR's transport design; RDMAbox):

* ``event``    -- sleep on the CQ channel, wake when a CQE lands.  The
  legacy model: zero CPU accounted, wake latency folded into the
  completion path.  This is the default and is byte-identical to the
  pre-polling-mode behaviour.
* ``busy``     -- a dedicated core spins on the CQ.  The spin discovers
  the CQE the instant it is pushed (no wake latency), but every
  nanosecond spent waiting is CPU burned: the elapsed wait is accounted
  as ``cq_poll`` busy-ns on the owning RNIC's node (and in the
  ``verbs.cq_spin_ns`` metric).
* ``adaptive`` -- spin for ``timing.CQ_ADAPTIVE_SPIN_NS``; if nothing
  completes, arm the CQ event (``ibv_req_notify_cq``, costing
  ``CQ_NOTIFY_REARM_NS`` of CPU *and* latency) and sleep.  Waking out of
  the sleep pays ``CQ_EVENT_WAKE_NS`` before the re-poll.  Only the spin
  and rearm are accounted as CPU; the sleep is free.
"""

from collections import deque

from repro.cluster import timing
from repro.obs import metrics as _metrics
from repro.sim import AnyOf
from repro.verbs.types import WcStatus

#: Recognized CQ polling modes.
POLL_MODES = ("event", "busy", "adaptive")


class Completion:
    """A work completion (ibv_wc)."""

    __slots__ = (
        "wr_id", "status", "opcode", "byte_len", "src", "header", "qp", "covers", "imm"
    )

    def __init__(
        self, wr_id, status, opcode, byte_len=0, src=None, header=None, qp=None,
        covers=0, imm=None,
    ):
        self.wr_id = wr_id
        self.status = status
        self.opcode = opcode
        self.byte_len = byte_len
        self.src = src  # (gid, qpn) of the sender, for recv completions
        self.header = header  # piggybacked message header, for recv completions
        self.qp = qp  # the QP this completion belongs to
        #: How many send-queue slots polling this completion releases: the
        #: signaled request itself plus any preceding unsignaled ones.  The
        #: driver only learns that ring slots are reusable by polling -- the
        #: accounting KRCORE's Algorithm 2 replicates in software.
        self.covers = covers
        #: The 32-bit immediate, for RECV_IMM completions (WRITE_WITH_IMM).
        self.imm = imm

    @property
    def ok(self):
        return self.status is WcStatus.SUCCESS

    def __repr__(self):
        return f"Completion(wr_id={self.wr_id}, status={self.status.value}, op={self.opcode.value})"


class CompletionQueue:
    """A polled queue of completions with optional event-driven waiting."""

    def __init__(self, sim, depth=257, poll_mode="event", rnic=None):
        self.sim = sim
        self.depth = depth
        if poll_mode not in POLL_MODES:
            raise ValueError(f"unknown CQ poll mode {poll_mode!r} (known: {POLL_MODES})")
        #: Polling-mode model used by :meth:`wait_notify` / :meth:`wait_poll`.
        self.poll_mode = poll_mode
        #: The RNIC whose node's CPU burns the busy-poll cycles; optional --
        #: without one, spin time is still tracked on ``stats_spin_ns`` and
        #: the ``verbs.cq_spin_ns`` metric.
        self.rnic = rnic
        self._entries = deque()
        self._waiters = deque()
        #: Nanoseconds of CPU burned spinning on this CQ (busy + the
        #: adaptive spin window) plus rearm cost; satellite-1's accounting.
        self.stats_spin_ns = 0
        #: How often adaptive mode exhausted its spin budget and armed the
        #: CQ event (ibv_req_notify_cq), and how often it woke from it.
        self.stats_rearms = 0
        self.stats_wakes = 0

    def __len__(self):
        return len(self._entries)

    def set_poll_mode(self, mode, rnic=None):
        """Switch the polling-mode model (and optionally attach the RNIC
        that accounts the CPU burn)."""
        if mode not in POLL_MODES:
            raise ValueError(f"unknown CQ poll mode {mode!r} (known: {POLL_MODES})")
        self.poll_mode = mode
        if rnic is not None:
            self.rnic = rnic
        return self

    def push(self, completion):
        self._entries.append(completion)
        while self._waiters and self._entries:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.trigger(None)

    def poll(self, num_entries=1):
        """Pop up to ``num_entries`` completions (non-blocking, like ibv_poll_cq).

        Polling releases the send-queue slots the completion covers, exactly
        as the real driver reclaims ring entries on poll.
        """
        if not self._entries:
            return []
        polled = []
        while self._entries and len(polled) < num_entries:
            completion = self._entries.popleft()
            if completion.qp is not None and completion.covers:
                completion.qp._reclaim(completion.covers)
            polled.append(completion)
        return polled

    def wait(self):
        """Event that fires when the CQ is (or becomes) non-empty.

        The event does not consume entries; callers must still poll().
        """
        event = self.sim.event()
        if self._entries:
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def _account_spin(self, spent_ns):
        """Charge ``spent_ns`` of CPU burned waiting on this CQ."""
        if spent_ns <= 0:
            return
        self.stats_spin_ns += spent_ns
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("verbs.cq_spin_ns").inc(spent_ns)
        if self.rnic is not None:
            self.rnic.account_cq_poll(spent_ns)

    def wait_notify(self):
        """Process helper: block until the CQ signals, per the poll mode.

        * ``event``: wait on the CQ event; no cost accounted (legacy).
        * ``busy``: the spinning core discovers the CQE the instant it is
          pushed, so simulated latency matches ``event`` -- but the whole
          elapsed wait is accounted as CPU spin.
        * ``adaptive``: spin up to ``CQ_ADAPTIVE_SPIN_NS`` (accounted);
          on budget exhaustion pay ``CQ_NOTIFY_REARM_NS`` (CPU + time) to
          arm the event, sleep free, then pay ``CQ_EVENT_WAKE_NS`` of
          wake latency.
        """
        mode = self.poll_mode
        if mode == "busy":
            start = self.sim.now
            yield self.wait()
            self._account_spin(self.sim.now - start)
            return
        if mode == "adaptive":
            start = self.sim.now
            event = self.wait()
            if event.triggered:
                return  # entries already pending: first poll wins, no spin
            yield AnyOf([event, self.sim.timeout(timing.CQ_ADAPTIVE_SPIN_NS)])
            if event.triggered:
                # The CQE landed inside the spin window: busy-poll catch.
                self._account_spin(self.sim.now - start)
                return
            # Spin budget exhausted: arm the notification and sleep.
            self.stats_rearms += 1
            self._account_spin(timing.CQ_ADAPTIVE_SPIN_NS + timing.CQ_NOTIFY_REARM_NS)
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("verbs.cq_rearms").inc()
            yield timing.CQ_NOTIFY_REARM_NS
            # Re-check after the rearm gap (the mandatory post-arm poll):
            # a CQE that landed while rearming still fires the notify.
            yield self.wait()
            self.stats_wakes += 1
            yield timing.CQ_EVENT_WAKE_NS
            return
        yield self.wait()

    def wait_poll(self, num_entries=1):
        """Process helper: block until at least one completion, then poll.

        Waiting follows the CQ's polling mode (see :meth:`wait_notify`):
        under ``busy``/``adaptive`` the time spent here is accounted as
        CPU burn on the attached RNIC's node rather than modelled as a
        free sleep.
        """
        while True:
            polled = self.poll(num_entries)
            if polled:
                return polled
            yield from self.wait_notify()
