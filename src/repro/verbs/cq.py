"""Completion queues."""

from collections import deque

from repro.verbs.types import WcStatus


class Completion:
    """A work completion (ibv_wc)."""

    __slots__ = ("wr_id", "status", "opcode", "byte_len", "src", "header", "qp", "covers")

    def __init__(
        self, wr_id, status, opcode, byte_len=0, src=None, header=None, qp=None, covers=0
    ):
        self.wr_id = wr_id
        self.status = status
        self.opcode = opcode
        self.byte_len = byte_len
        self.src = src  # (gid, qpn) of the sender, for recv completions
        self.header = header  # piggybacked message header, for recv completions
        self.qp = qp  # the QP this completion belongs to
        #: How many send-queue slots polling this completion releases: the
        #: signaled request itself plus any preceding unsignaled ones.  The
        #: driver only learns that ring slots are reusable by polling -- the
        #: accounting KRCORE's Algorithm 2 replicates in software.
        self.covers = covers

    @property
    def ok(self):
        return self.status is WcStatus.SUCCESS

    def __repr__(self):
        return f"Completion(wr_id={self.wr_id}, status={self.status.value}, op={self.opcode.value})"


class CompletionQueue:
    """A polled queue of completions with optional event-driven waiting."""

    def __init__(self, sim, depth=257):
        self.sim = sim
        self.depth = depth
        self._entries = deque()
        self._waiters = deque()

    def __len__(self):
        return len(self._entries)

    def push(self, completion):
        self._entries.append(completion)
        while self._waiters and self._entries:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.trigger(None)

    def poll(self, num_entries=1):
        """Pop up to ``num_entries`` completions (non-blocking, like ibv_poll_cq).

        Polling releases the send-queue slots the completion covers, exactly
        as the real driver reclaims ring entries on poll.
        """
        if not self._entries:
            return []
        polled = []
        while self._entries and len(polled) < num_entries:
            completion = self._entries.popleft()
            if completion.qp is not None and completion.covers:
                completion.qp._reclaim(completion.covers)
            polled.append(completion)
        return polled

    def wait(self):
        """Event that fires when the CQ is (or becomes) non-empty.

        The event does not consume entries; callers must still poll().
        """
        event = self.sim.event()
        if self._entries:
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def wait_poll(self, num_entries=1):
        """Process helper: block until at least one completion, then poll."""
        while True:
            polled = self.poll(num_entries)
            if polled:
                return polled
            yield self.wait()
