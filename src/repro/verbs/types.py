"""Enumerations mirroring the verbs API's constants."""

import enum


class QpType(enum.Enum):
    RC = "RC"  # reliable connected
    UD = "UD"  # unreliable datagram
    DC = "DC"  # dynamically connected (initiator side)


class QpState(enum.Enum):
    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  # ready to receive
    RTS = "RTS"  # ready to send
    ERR = "ERR"


class Opcode(enum.Enum):
    READ = "READ"
    READ_V = "READ_V"  # vectored gather READ: one WR, many remote SGEs
    WRITE = "WRITE"
    WRITE_IMM = "WRITE_IMM"  # RDMA write with immediate (receiver CQE)
    SEND = "SEND"
    CAS = "CAS"  # compare-and-swap, 8 bytes
    FETCH_ADD = "FETCH_ADD"  # fetch-and-add, 8 bytes
    RECV = "RECV"  # appears only in completions
    RECV_IMM = "RECV_IMM"  # receiver side of WRITE_IMM (completion-only)


class WcStatus(enum.Enum):
    SUCCESS = "SUCCESS"
    LOC_PROT_ERR = "LOC_PROT_ERR"  # bad local key / bounds
    REM_ACCESS_ERR = "REM_ACCESS_ERR"  # bad rkey / bounds / permission
    BAD_OPCODE_ERR = "BAD_OPCODE_ERR"  # malformed operation code
    FLUSH_ERR = "FLUSH_ERR"  # flushed after the QP entered ERR
    RNR_ERR = "RNR_ERR"  # receiver not ready (no recv buffer)
    RNR_RETRY_EXC_ERR = "RNR_RETRY_EXC_ERR"  # receiver not ready, retries exhausted
    RETRY_EXC_ERR = "RETRY_EXC_ERR"  # remote unreachable (dead/dropped, retries exhausted)


#: Opcodes a requester may post (RECV/RECV_IMM are completion-only).
POSTABLE_OPCODES = frozenset(
    {
        Opcode.READ,
        Opcode.READ_V,
        Opcode.WRITE,
        Opcode.WRITE_IMM,
        Opcode.SEND,
        Opcode.CAS,
        Opcode.FETCH_ADD,
    }
)
