"""Work requests and receive buffers."""

from repro.verbs.types import Opcode


class WorkRequest:
    """One entry for the send queue (ibv_send_wr, flattened to one SGE).

    For READ/WRITE/atomics, ``laddr``/``lkey`` name the local buffer and
    ``raddr``/``rkey`` the remote one.  For SEND, the payload is the local
    buffer; ``header`` carries KRCORE's piggybacked metadata (sender address,
    DCT metadata, zero-copy descriptors).

    When posted on a DC QP, ``dct_gid``/``dct_number``/``dct_key`` select the
    remote DCT target per request (§3: "the host only needs to specify the
    target node's RDMA address and its DCT metadata in each request").
    """

    __slots__ = (
        "opcode",
        "wr_id",
        "signaled",
        "laddr",
        "length",
        "lkey",
        "raddr",
        "rkey",
        "compare",
        "swap",
        "header",
        "dct_gid",
        "dct_number",
        "dct_key",
        "imm",
        "sges",
        "chained",
        "trace_id",
    )

    def __init__(
        self,
        opcode,
        wr_id=0,
        signaled=True,
        laddr=0,
        length=0,
        lkey=0,
        raddr=0,
        rkey=0,
        compare=0,
        swap=0,
        header=None,
        dct_gid=None,
        dct_number=None,
        dct_key=None,
        imm=None,
        sges=None,
    ):
        self.opcode = opcode
        self.wr_id = wr_id
        self.signaled = signaled
        self.laddr = laddr
        self.length = length
        self.lkey = lkey
        self.raddr = raddr
        self.rkey = rkey
        self.compare = compare
        self.swap = swap
        self.header = header
        self.dct_gid = dct_gid
        self.dct_number = dct_number
        self.dct_key = dct_key
        #: 32-bit immediate delivered in the receiver's CQE (WRITE_IMM).
        self.imm = imm
        #: Remote gather list for READ_V: ``[(raddr, rkey, length), ...]``.
        #: Segments land back-to-back at ``laddr``; ``length`` is the sum.
        self.sges = sges
        #: True for every WR after the first in a doorbell-batched chain
        #: (set by ``QueuePair.post_send_batch``): the NIC fetches the
        #: whole chain on one doorbell, so chained WQEs issue cheaper.
        self.chained = False
        #: Async-span id assigned by post_send when a tracer is installed;
        #: never cloned (each posted WR is its own span).
        self.trace_id = None

    @classmethod
    def read(cls, laddr, length, lkey, raddr, rkey, wr_id=0, signaled=True, **kwargs):
        return cls(
            Opcode.READ,
            wr_id=wr_id,
            signaled=signaled,
            laddr=laddr,
            length=length,
            lkey=lkey,
            raddr=raddr,
            rkey=rkey,
            **kwargs,
        )

    @classmethod
    def write(cls, laddr, length, lkey, raddr, rkey, wr_id=0, signaled=True, **kwargs):
        return cls(
            Opcode.WRITE,
            wr_id=wr_id,
            signaled=signaled,
            laddr=laddr,
            length=length,
            lkey=lkey,
            raddr=raddr,
            rkey=rkey,
            **kwargs,
        )

    @classmethod
    def read_vectored(cls, laddr, lkey, sges, wr_id=0, signaled=True, **kwargs):
        """A vectored gather READ: one WR naming several remote segments.

        ``sges`` is a list of ``(raddr, rkey, length)`` tuples; the
        segments are read in order and scattered back-to-back into the
        local buffer at ``laddr``, whose registered span must cover the
        summed length.
        """
        sges = [tuple(sge) for sge in sges]
        return cls(
            Opcode.READ_V,
            wr_id=wr_id,
            signaled=signaled,
            laddr=laddr,
            length=sum(sge[2] for sge in sges),
            lkey=lkey,
            sges=sges,
            **kwargs,
        )

    @classmethod
    def write_imm(
        cls, laddr, length, lkey, raddr, rkey, imm, wr_id=0, signaled=True, **kwargs
    ):
        return cls(
            Opcode.WRITE_IMM,
            wr_id=wr_id,
            signaled=signaled,
            laddr=laddr,
            length=length,
            lkey=lkey,
            raddr=raddr,
            rkey=rkey,
            imm=imm,
            **kwargs,
        )

    @classmethod
    def send(cls, laddr, length, lkey, wr_id=0, signaled=True, header=None, **kwargs):
        return cls(
            Opcode.SEND,
            wr_id=wr_id,
            signaled=signaled,
            laddr=laddr,
            length=length,
            lkey=lkey,
            header=header,
            **kwargs,
        )

    @classmethod
    def cas(cls, laddr, lkey, raddr, rkey, compare, swap, wr_id=0, signaled=True, **kwargs):
        return cls(
            Opcode.CAS,
            wr_id=wr_id,
            signaled=signaled,
            laddr=laddr,
            length=8,
            lkey=lkey,
            raddr=raddr,
            rkey=rkey,
            compare=compare,
            swap=swap,
            **kwargs,
        )

    def clone(self):
        clone = WorkRequest(
            self.opcode,
            wr_id=self.wr_id,
            signaled=self.signaled,
            laddr=self.laddr,
            length=self.length,
            lkey=self.lkey,
            raddr=self.raddr,
            rkey=self.rkey,
            compare=self.compare,
            swap=self.swap,
            header=self.header,
            dct_gid=self.dct_gid,
            dct_number=self.dct_number,
            dct_key=self.dct_key,
            imm=self.imm,
            sges=self.sges,
        )
        clone.chained = self.chained
        return clone

    def __repr__(self):
        return f"WorkRequest({self.opcode.value}, wr_id={self.wr_id}, signaled={self.signaled})"


class RecvBuffer:
    """One entry for the receive queue (ibv_recv_wr)."""

    __slots__ = ("addr", "length", "lkey", "wr_id")

    def __init__(self, addr, length, lkey, wr_id=0):
        self.addr = addr
        self.length = length
        self.lkey = lkey
        self.wr_id = wr_id
