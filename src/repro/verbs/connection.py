"""RC connection establishment with the UD-optimized handshake.

The paper (§2.3.1) carefully optimizes the handshake with RDMA's
connectionless datagram and finds it contributes only 2.4% of the control
path; the dominant cost is the RNIC hardware setup.  We model the exchange
as a fixed protocol overhead (HANDSHAKE_NS) plus wire time, while the QP
creation/configuration on both sides charges the respective RNIC command
processors -- which is what produces the ~712 connections/second server-side
ceiling of Fig 8a.

To overlap work like the optimized implementations do, the accepting daemon
replies with its QPN right after ``create_qp`` and performs its own
RTR/RTS configuration concurrently with the client's.
"""

from repro.obs import trace as _trace
from repro.sim import Store
from repro.verbs.errors import VerbsError
from repro.verbs.types import QpType


class ConnectError(VerbsError):
    """The remote node is unreachable or refused the connection."""


#: Size of a handshake datagram on the wire (QP info + addresses).
_HANDSHAKE_BYTES = 64


class ConnectionManager:
    """Per-node daemon accepting RC connection requests.

    Applications register listeners by port; when a connection to that port
    completes, the listener callback receives ``(qp, client_gid)``.
    """

    SERVICE = "connmgr"

    def __init__(self, node, context):
        self.node = node
        self.sim = node.sim
        self.context = context
        self._inbox = Store(self.sim)
        self._listeners = {}
        self._accept_cq = None
        node.services[self.SERVICE] = self
        self.sim.process(self._daemon(), name=f"connmgr@{node.gid}")

    def listen(self, port, on_accept):
        """Register ``on_accept(qp, client_gid)`` for connections to ``port``."""
        if port in self._listeners:
            raise VerbsError(f"port {port} already bound on {self.node.gid}")
        self._listeners[port] = on_accept

    def unlisten(self, port):
        self._listeners.pop(port, None)

    def accept_cq(self):
        """The shared CQ used for daemon-accepted QPs (created lazily,
        boot-time cost not charged)."""
        if self._accept_cq is None:
            from repro.verbs.cq import CompletionQueue

            self._accept_cq = CompletionQueue(self.sim)
        return self._accept_cq

    def _daemon(self):
        while True:
            request, reply_event = yield self._inbox.get()
            port = request.get("port", 0)
            if port and port not in self._listeners:
                reply_event.fail(ConnectError(f"nothing bound to port {port}"))
                continue
            qp = yield from self.context.create_qp(QpType.RC, self.accept_cq())
            reply_event.trigger({"qpn": qp.qpn})
            self.sim.process(
                self._finish_accept(qp, request), name=f"accept@{self.node.gid}"
            )

    def _finish_accept(self, qp, request):
        remote = (request["gid"], request["qpn"])
        yield from self.context.modify_to_ready(qp, remote=remote)
        listener = self._listeners.get(request.get("port", 0))
        if listener is not None:
            listener(qp, request["gid"])

    def submit(self, request):
        """Enqueue a handshake request; returns the reply event."""
        reply_event = self.sim.event()
        self._inbox.put((request, reply_event))
        return reply_event


def rc_connect(context, send_cq, server_gid, port=0, sq_depth=None):
    """Process: establish an RC connection from ``context``'s node.

    Creates the local QP, runs the UD-optimized handshake against the
    remote :class:`ConnectionManager`, configures RTR/RTS, and returns the
    ready-to-send QP.  The caller is responsible for having initialized the
    driver context (``ensure_init``) and created ``send_cq``.
    """
    from repro.cluster import timing

    node = context.node
    if _trace.TRACER is not None:
        _trace.TRACER.begin(
            node.sim.now, f"verbs@{node.gid}", "rc_connect", server=server_gid
        )
    kwargs = {} if sq_depth is None else {"sq_depth": sq_depth}
    qp = yield from context.create_qp(QpType.RC, send_cq, recv_cq=send_cq, **kwargs)
    if not node.fabric.has_node(server_gid):
        raise ConnectError(f"no route to {server_gid}")
    server = node.fabric.node(server_gid)
    manager = server.services.get(ConnectionManager.SERVICE)
    if manager is None:
        raise ConnectError(f"{server_gid} runs no connection manager")
    # Fixed protocol overhead of the UD handshake (both directions).
    if _trace.TRACER is not None:
        _trace.TRACER.begin(node.sim.now, f"verbs@{node.gid}", "handshake")
    yield timing.HANDSHAKE_NS
    yield node.fabric.one_way_ns(_HANDSHAKE_BYTES)
    reply = yield manager.submit({"gid": node.gid, "qpn": qp.qpn, "port": port})
    yield node.fabric.one_way_ns(_HANDSHAKE_BYTES)
    if _trace.TRACER is not None:
        _trace.TRACER.end(node.sim.now, f"verbs@{node.gid}", "handshake")
    yield from context.modify_to_ready(qp, remote=(server_gid, reply["qpn"]))
    if _trace.TRACER is not None:
        _trace.TRACER.end(
            node.sim.now, f"verbs@{node.gid}", "rc_connect", qpn=qp.qpn
        )
    return qp
