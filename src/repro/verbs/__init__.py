"""A verbs-like RDMA API over the simulated RNIC.

This package models the de-facto standard interface the paper builds on
(§2.2): driver contexts, protection domains, memory regions, completion
queues, and queue pairs in their three transports:

* **RC** -- reliable connected: one-to-one, supports one-sided READ/WRITE,
  atomics, and two-sided SEND/RECV; completions delivered in FIFO order.
* **UD** -- unreliable datagram: connectionless two-sided only; used for the
  optimized connection handshake and the FaSST-style RPC baseline.
* **DC** -- dynamically connected transport: RC semantics, but the initiator
  can target any node's *DCT target* per request; the NIC (re)connects in
  hardware in <1 us (§3).

Data content is real: one-sided ops move actual bytes between the nodes'
simulated physical memories.
"""

from repro.verbs.cq import POLL_MODES, Completion, CompletionQueue
from repro.verbs.device import DriverContext, ProtectionDomain
from repro.verbs.errors import (
    KrcoreError,
    MetaUnavailableError,
    QpError,
    QpOverflowError,
    RdmaError,
    VerbsError,
)
from repro.verbs.qp import DctTarget, QueuePair
from repro.verbs.types import Opcode, QpState, QpType, WcStatus
from repro.verbs.wr import RecvBuffer, WorkRequest
from repro.verbs.connection import ConnectionManager, rc_connect

__all__ = [
    "POLL_MODES",
    "Completion",
    "CompletionQueue",
    "ConnectionManager",
    "DctTarget",
    "DriverContext",
    "KrcoreError",
    "MetaUnavailableError",
    "Opcode",
    "ProtectionDomain",
    "QpError",
    "RdmaError",
    "QpOverflowError",
    "QpState",
    "QpType",
    "QueuePair",
    "RecvBuffer",
    "VerbsError",
    "WcStatus",
    "WorkRequest",
    "rc_connect",
]
