"""Queue pairs: the RC/UD/DC transports over the simulated RNIC.

The QP models both the software-visible verbs behaviour (state machine,
post/poll semantics, error states) and the hardware timing (per-WR issue
cost, wire time, responder occupancy, in-order completion delivery).

Failure semantics reproduce what KRCORE must defend against (§3.1):

* a malformed work request (bad opcode, invalid local/remote key, out of
  bounds) generates an error completion and moves the QP to ERR;
* posting beyond the send-queue capacity (slots are only reclaimed when
  completions are *polled*) moves the QP to ERR;
* an ERR QP refuses all traffic until fully reconfigured, which costs a
  trip through the RNIC command processor.

Reliable transports (RC/DC) carry real retransmission state: ``timeout_ns``
/ ``retry_cnt`` drive the requester's retry timer when a request or
response is lost (link fault) or the responder is unreachable (node dead),
completing with RETRY_EXC_ERR only once the budget is exhausted;
``rnr_retry`` / ``rnr_timer_ns`` do the same for receiver-not-ready NAKs
(RNR_RETRY_EXC_ERR).  Retransmission after a lost *response* never
re-executes remote side effects -- the responder recognizes the duplicate
PSN and resends -- so atomics and SENDs stay exactly-once.
"""

from collections import deque

from repro.check import hooks as _check
from repro.cluster import timing
from repro.cluster.memory import MemoryError_
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Store
from repro.verbs.cq import Completion
from repro.verbs.errors import QpError, QpOverflowError, VerbsError
from repro.verbs.types import POSTABLE_OPCODES, Opcode, QpState, QpType, WcStatus


class DctTarget:
    """A responder-side DCT context (identified by number + key, §3.1 C#1).

    Creating one is cheap -- no per-connection hardware queues.  Inbound
    one-sided ops validate the key; inbound SENDs consume buffers from the
    target's shared receive queue and complete into ``recv_cq``.
    """

    __slots__ = ("node", "number", "key", "srq", "recv_cq")

    def __init__(self, node, number, key):
        self.node = node
        self.number = number
        self.key = key
        self.srq = deque()
        self.recv_cq = None

    @property
    def metadata(self):
        """The 12-byte DCT metadata tuple stored at the meta server (§4.2)."""
        return (self.number, self.key)

    def post_srq(self, recv_buffer):
        self.srq.append(recv_buffer)


class QueuePair:
    """One queue pair (send queue + completion queues + state machine)."""

    def __init__(
        self,
        node,
        qp_type,
        send_cq,
        recv_cq=None,
        sq_depth=timing.SQ_DEPTH_DEFAULT,
        timeout_ns=timing.QP_TIMEOUT_NS,
        retry_cnt=timing.QP_RETRY_CNT,
        rnr_retry=timing.QP_RNR_RETRY,
        rnr_timer_ns=timing.QP_RNR_TIMER_NS,
    ):
        self.node = node
        self.sim = node.sim
        self.qp_type = qp_type
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.sq_depth = sq_depth
        # Retransmission attributes (the ibv_qp_attr timeout/retry knobs).
        self.timeout_ns = timeout_ns
        self.retry_cnt = retry_cnt
        self.rnr_retry = rnr_retry
        self.rnr_timer_ns = rnr_timer_ns
        # RC request-channel clock: latest request arrival time at the
        # responder.  RC processes requests in PSN order, so a later
        # (smaller, faster-flying) request must not overtake an earlier
        # one on the wire; arrivals are clamped to this watermark.
        self._req_arrival_clock = 0
        self.qpn = node.rnic.register_qp(self)
        self.state = QpState.RESET
        self.remote = None  # (gid, qpn) once RC-connected
        self._sq = Store(self.sim)
        self._posted = 0
        self._reclaimed = 0
        self._pending_unsignaled = 0
        self._recv_buffers = deque()
        self._last_done = None  # tail of the in-order completion chain
        self._dc_current = None  # (gid, dct_number) the DC QP is wired to
        self._dc_retargets = 0
        self._dc_last_retarget_ns = -(10 ** 12)
        self._dc_lcg = self.qpn * 2654435761 % (1 << 64) or 1
        self.stats_reconnects = 0
        self._flight_name = f"qp{self.qpn}-flight"
        self.sim.process(self._sender_loop(), name=f"qp{self.qpn}-sender")

    # ------------------------------------------------------------------ state

    def _trace_state(self):
        if _trace.TRACER is not None:
            _trace.TRACER.instant(
                self.sim.now, f"verbs@{self.node.gid}", "qp.state",
                qpn=self.qpn, state=self.state.name,
            )

    def to_init(self):
        self._require_state(QpState.RESET)
        self.state = QpState.INIT
        self._trace_state()

    def to_rtr(self, remote=None):
        self._require_state(QpState.INIT)
        if self.qp_type is QpType.RC:
            if remote is None:
                raise VerbsError("RC RTR requires the remote (gid, qpn)")
            self.remote = remote
        self.state = QpState.RTR
        self._trace_state()

    def to_rts(self):
        self._require_state(QpState.RTR)
        self.state = QpState.RTS
        self._trace_state()

    def _require_state(self, expected):
        if self.state is not expected:
            raise VerbsError(f"QP {self.qpn}: expected {expected}, is {self.state}")

    def reset(self):
        """Drop back to RESET (software part of error recovery)."""
        self.state = QpState.RESET
        self._trace_state()
        self.remote = None
        self._dc_current = None
        while True:
            stale = self._sq.try_get()
            if stale is None:
                break
        self._posted = self._reclaimed = 0
        self._pending_unsignaled = 0

    def reconfigure(self, remote=None):
        """Process: full recovery from ERR -- reset + RTR + RTS through the
        RNIC command processor.  This is the cost KRCORE avoids by never
        letting a shared QP enter ERR (§3.1 C#3)."""
        if remote is None:
            remote = self.remote
        self.reset()
        yield from self.node.rnic.command(timing.MODIFY_RTR_NS + timing.MODIFY_RTS_NS)
        self.to_init()
        self.to_rtr(remote if self.qp_type is QpType.RC else None)
        self.to_rts()

    @property
    def outstanding(self):
        """Send-queue slots held: posted but not yet reclaimed by polling."""
        return self._posted - self._reclaimed

    @property
    def free_slots(self):
        return self.sq_depth - self.outstanding

    def _reclaim(self, covers):
        self._reclaimed += covers
        if self._reclaimed > self._posted:
            raise VerbsError(f"QP {self.qpn}: reclaimed more slots than posted")

    # ------------------------------------------------------------------ post

    def post_send(self, wr_list):
        """Post WRs (non-blocking, like ibv_post_send).

        Raises :class:`QpOverflowError` (and wrecks the QP) if the list does
        not fit in the free send-queue slots -- the overflow hazard of
        sharing a QP without KRCORE's pre-checks.
        """
        if isinstance(wr_list, (list, tuple)):
            wrs = list(wr_list)
        else:
            wrs = [wr_list]
        if not wrs:
            return
        if self.state is QpState.ERR:
            raise QpError(f"QP {self.qpn} is in ERR", code=WcStatus.FLUSH_ERR)
        if self.state is not QpState.RTS:
            raise VerbsError(f"QP {self.qpn}: post_send in state {self.state}")
        if len(wrs) > self.free_slots:
            self._enter_error()
            raise QpOverflowError(
                f"QP {self.qpn}: posting {len(wrs)} WRs with {self.free_slots} free slots",
                code=WcStatus.FLUSH_ERR,
            )
        self._posted += len(wrs)
        tracer = _trace.TRACER
        if tracer is not None:
            track = f"qp{self.qpn}@{self.node.gid}"
            now = self.sim.now
            for wr in wrs:
                wr.trace_id = tracer.next_async_id()
                tracer.async_begin(
                    now, track, f"wr.{wr.opcode.value}", wr.trace_id,
                    wr_id=wr.wr_id, length=wr.length,
                )
        registry = _metrics.METRICS
        if registry is not None:
            registry.counter("verbs.wr_posted").inc(len(wrs))
        for wr in wrs:
            self._sq.put(wr)

    def post_send_batch(self, wr_list):
        """Post a WR chain with one doorbell (KRCORE §4.3 doorbell batching).

        The WRs are linked into a chain and handed to the NIC as a single
        command: the first WR pays the full doorbell + DMA-fetch cost, every
        successor is fetched off the chain for ``NIC_TX_CHAINED_NS`` instead
        of ``NIC_TX_NS``.  Callers model the CPU side of building the chain
        with :func:`repro.cluster.timing.doorbell_batch_cpu_ns`.

        Completion semantics are identical to posting the WRs one at a time
        (same ordering, same signaling, same error flush behaviour) -- the
        equivalence the batching test harness pins down.
        """
        if isinstance(wr_list, (list, tuple)):
            wrs = list(wr_list)
        else:
            wrs = [wr_list]
        if len(wrs) >= 2:
            wrs[0].chained = False
            for wr in wrs[1:]:
                wr.chained = True
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("verbs.doorbell_batches").inc()
                _metrics.METRICS.counter("verbs.doorbell_batched_wrs").inc(len(wrs))
            if _check.CHECKER is not None:
                _check.CHECKER.batch_posted(self, wrs)
        self.post_send(wrs)

    def post_recv(self, recv_buffer):
        self._recv_buffers.append(recv_buffer)

    # ------------------------------------------------------------- NIC side

    def _sender_loop(self):
        """The NIC's per-QP work-queue processor: issues WRs in order."""
        while True:
            wr = yield self._sq.get()
            if self.state is QpState.ERR:
                self._complete(wr, WcStatus.FLUSH_ERR)
                continue
            if self.qp_type is QpType.DC:
                yield from self._dc_retarget(wr)
            # A chained WQE rides the doorbell of its chain head: the NIC
            # already has the chain, so issue is a cheap descriptor fetch.
            yield timing.NIC_TX_CHAINED_NS if wr.chained else timing.NIC_TX_NS
            done = self.sim.event()
            prev, self._last_done = self._last_done, done
            self.sim.process(self._flight(wr, prev, done), name=self._flight_name)

    def _dc_retarget(self, wr):
        """Hardware-offloaded DCT (re)connection before issuing ``wr``.

        A small deterministic fraction of reconnections (one in
        DCT_RECONNECT_TAIL_EVERY, drawn from a per-QP LCG so it is
        reproducible yet uniform in time) needs an extra network round --
        the source of DC's 99.9th-percentile tail (Fig 14b).
        """
        target = (wr.dct_gid, wr.dct_number)
        if target == self._dc_current:
            return
        self._dc_current = target
        self._dc_retargets += 1
        self.stats_reconnects += 1
        if _trace.TRACER is not None:
            _trace.TRACER.instant(
                self.sim.now, f"qp{self.qpn}@{self.node.gid}",
                "dc.retarget", gid=wr.dct_gid, dct=wr.dct_number,
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("verbs.dc_retargets").inc()
        delay = timing.DCT_RECONNECT_NS
        if self.sim.now - self._dc_last_retarget_ns < timing.DCT_RECONNECT_BUSY_WINDOW_NS:
            delay += timing.DCT_RECONNECT_BUSY_NS  # teardown not drained yet
        self._dc_last_retarget_ns = self.sim.now
        self._dc_lcg = (self._dc_lcg * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        if (self._dc_lcg >> 33) % timing.DCT_RECONNECT_TAIL_EVERY == 0:
            delay += timing.DCT_RECONNECT_TAIL_NS
        yield delay

    def _flight(self, wr, prev_done, done):
        """One WR's life on the network, ending with in-order completion.

        The READ/WRITE path inlines ``_fetch_local``/``_remote_gid``/
        ``_resolve_remote``/``_execute_remote``/``Rnic.serve_inbound``:
        this generator is resumed for every hop of every WR, and each
        nested ``yield from`` frame is traversed on every resume.  The
        yield sequence and error mapping are identical to the helpers,
        which remain for the other opcodes.

        The attempt loop is the retransmission machinery: a lost packet or
        unreachable responder burns one ``timeout_ns`` wait per retry; an
        RNR NAK burns ``rnr_timer_ns`` per ``rnr_retry``.  The fault-free
        path runs the loop body exactly once with the same yield sequence
        as before, and consults the fabric's fault table only when it is
        non-empty -- fault-free runs are bit-identical.
        """
        status = WcStatus.SUCCESS
        byte_len = 0
        node = self.node
        fabric = node.fabric
        qp_type = self.qp_type
        attempts_left = self.retry_cnt
        rnr_left = self.rnr_retry
        executed = False  # remote side effects applied (exactly-once guard)
        saved_response_bytes = 0
        while True:
            try:
                opcode = wr.opcode
                length = wr.length
                if opcode not in POSTABLE_OPCODES:
                    raise _Malformed(WcStatus.BAD_OPCODE_ERR)
                # -- local SGE validation (_fetch_local) --
                if length == 0 and opcode is Opcode.SEND:
                    payload = b""
                else:
                    try:
                        node.memory.check_local(wr.lkey, wr.laddr, length)
                    except MemoryError_ as err:
                        raise _Malformed(WcStatus.LOC_PROT_ERR) from err
                    if opcode in (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.SEND):
                        payload = node.memory.read(wr.laddr, length)
                    else:
                        payload = None
                # -- remote addressing (_remote_gid) --
                if qp_type is QpType.RC:
                    if self.remote is None:
                        raise _Malformed(WcStatus.RETRY_EXC_ERR)
                    remote_gid = self.remote[0]
                else:
                    remote_gid = wr.dct_gid
                    if remote_gid is None:
                        raise _Malformed(WcStatus.BAD_OPCODE_ERR)
                request_bytes = timing.REQUEST_HEADER_BYTES
                if opcode in (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.SEND):
                    request_bytes += length
                elif opcode is Opcode.READ_V:
                    if not wr.sges:
                        raise _Malformed(WcStatus.BAD_OPCODE_ERR)
                    request_bytes += timing.VECTORED_SGE_WIRE_BYTES * len(wr.sges)
                wire_out = fabric.one_way_ns(request_bytes)
                if opcode is Opcode.WRITE or opcode is Opcode.WRITE_IMM:
                    wire_out += int(length * timing.WRITE_EXTRA_NS_PER_BYTE)
                duplicated = False
                if fabric.link_faults:
                    fault = fabric.link_faults.get((node.gid, remote_gid))
                    if fault is not None:
                        if fault.drops():
                            if qp_type is QpType.UD:
                                raise _UdDrop()
                            raise _Unreachable()
                        duplicated = fault.duplicates()
                        wire_out = fault.delay_ns(wire_out)
                if _metrics.METRICS is not None:
                    _metrics.METRICS.counter(
                        f"fabric.link[{node.gid}->{remote_gid}]"
                    ).inc()
                if qp_type is QpType.RC:
                    # PSN ordering: an RC request never lands before its
                    # predecessor on the same connection.  A no-op for
                    # uniform-size traffic (arrivals already monotone);
                    # it only bites when a small WR chases a large one.
                    arrival = self.sim.now + wire_out
                    if arrival < self._req_arrival_clock:
                        wire_out = self._req_arrival_clock - self.sim.now
                    else:
                        self._req_arrival_clock = arrival
                yield wire_out
                # -- remote lookup (_resolve_remote) --
                if not fabric.has_node(remote_gid):
                    if qp_type is QpType.UD:
                        raise _UdDrop()
                    raise _Unreachable()
                remote_node = fabric.node(remote_gid)
                if qp_type is QpType.DC:
                    target = remote_node.rnic.dct_target(wr.dct_number)
                    if target is None or target.key != wr.dct_key:
                        raise _Malformed(WcStatus.REM_ACCESS_ERR)
                # -- responder processing --
                if opcode is Opcode.READ or opcode is Opcode.WRITE:
                    rnic = remote_node.rnic
                    memory = remote_node.memory
                    if opcode is Opcode.READ:
                        service = timing.READ_RESPONDER_SERVICE_NS
                        service += timing.responder_payload_service_ns(length)
                        if qp_type is QpType.DC:
                            service += timing.DC_READ_SERVICE_EXTRA_NS
                    else:
                        service = timing.WRITE_RESPONDER_SERVICE_NS
                        service += timing.responder_payload_service_ns(length)
                        if qp_type is QpType.DC:
                            service += timing.DC_WRITE_SERVICE_EXTRA_NS
                    total = service + rnic._service_carry
                    whole = int(total)
                    rnic._service_carry = total - whole
                    resource = rnic.inbound_engine
                    grant = yield resource.acquire()
                    if _trace.TRACER is not None:
                        _trace.TRACER.begin(
                            self.sim.now, f"rnic@{remote_gid}", "rnic.inbound",
                            opcode=opcode.value,
                        )
                    try:
                        yield whole
                    finally:
                        resource.release(grant)
                    if _trace.TRACER is not None:
                        _trace.TRACER.end(
                            self.sim.now, f"rnic@{remote_gid}", "rnic.inbound"
                        )
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("rnic.inbound_busy_ns").inc(whole)
                    rnic.stats_inbound_ops += 1
                    if duplicated:
                        # The duplicate arrives right behind the original;
                        # the responder burns engine time re-serving it,
                        # then discards it by PSN before any memory op.
                        grant = yield resource.acquire()
                        try:
                            yield whole
                        finally:
                            resource.release(grant)
                        rnic.stats_inbound_ops += 1
                    yield timing.NIC_RESPONDER_PIPELINE_NS
                    if not remote_node.alive:
                        raise _Unreachable()
                    if executed:
                        # Retransmission after a lost response: the
                        # responder resends by PSN without re-executing.
                        response_bytes = saved_response_bytes
                    else:
                        try:
                            if opcode is Opcode.READ:
                                memory.check_remote(wr.rkey, wr.raddr, length, write=False)
                                node.memory.write(wr.laddr, memory.read(wr.raddr, length))
                                if _check.CHECKER is not None:
                                    _check.CHECKER.read_executed(
                                        remote_gid, wr.rkey, self.sim.now
                                    )
                                response_bytes = length
                            else:
                                memory.check_remote(wr.rkey, wr.raddr, length, write=True)
                                memory.write(wr.raddr, payload)
                                response_bytes = 0
                        except MemoryError_ as err:
                            if qp_type is QpType.UD:
                                raise _UdDrop() from err
                            raise _Malformed(WcStatus.REM_ACCESS_ERR) from err
                        executed = True
                        saved_response_bytes = response_bytes
                elif executed:
                    # SEND/atomic retransmission after a lost response:
                    # engine time only, no re-execution (exactly-once).
                    yield from self._serve_duplicate(remote_node, wr)
                    response_bytes = saved_response_bytes
                else:
                    response_bytes = yield from self._execute_remote(remote_node, wr, payload)
                    executed = True
                    saved_response_bytes = response_bytes
                    if duplicated:
                        yield from self._serve_duplicate(remote_node, wr)
                # -- response --
                rfault = None
                if fabric.link_faults:
                    rfault = fabric.link_faults.get((remote_gid, node.gid))
                    if rfault is not None and rfault.drops():
                        if qp_type is QpType.UD:
                            raise _UdDrop()
                        raise _Unreachable()
                if _metrics.METRICS is not None:
                    _metrics.METRICS.counter(
                        f"fabric.link[{remote_gid}->{node.gid}]"
                    ).inc()
                wire_back = fabric.one_way_ns(response_bytes)
                if rfault is not None:
                    wire_back = rfault.delay_ns(wire_back)
                yield wire_back
                yield timing.NIC_RX_COMPLETION_NS
                byte_len = length
                break
            except _UdDrop:
                # Unreliable datagram: the packet vanished; the sender still
                # completes successfully and never learns.
                yield timing.NIC_RX_COMPLETION_NS
                break
            except _Unreachable:
                # No response arrived: wait out the retransmission timer,
                # then try again; RETRY_EXC_ERR only when the budget dies.
                if attempts_left > 0:
                    attempts_left -= 1
                    if _trace.TRACER is not None:
                        _trace.TRACER.instant(
                            self.sim.now, f"qp{self.qpn}@{node.gid}",
                            "qp.retransmit", wr_id=wr.wr_id, cause="timeout",
                        )
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("verbs.retransmits").inc()
                    yield self.timeout_ns
                    continue
                status = WcStatus.RETRY_EXC_ERR
                yield fabric.one_way_ns(0)
                yield timing.NIC_RX_COMPLETION_NS
                break
            except _RnrNak:
                # Receiver not ready: honor the RNR retry budget.
                if rnr_left > 0:
                    rnr_left -= 1
                    if _trace.TRACER is not None:
                        _trace.TRACER.instant(
                            self.sim.now, f"qp{self.qpn}@{node.gid}",
                            "qp.retransmit", wr_id=wr.wr_id, cause="rnr",
                        )
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("verbs.retransmits").inc()
                    yield self.rnr_timer_ns
                    continue
                status = (
                    WcStatus.RNR_ERR if self.rnr_retry == 0 else WcStatus.RNR_RETRY_EXC_ERR
                )
                yield fabric.one_way_ns(0)
                yield timing.NIC_RX_COMPLETION_NS
                break
            except _Malformed as malformed:
                status = malformed.status
                # The NAK still travels back before the requester learns of it.
                yield fabric.one_way_ns(0)
                yield timing.NIC_RX_COMPLETION_NS
                break
        # Deliver completions in posting order (RC FIFO, §4.6).
        if prev_done is not None and not prev_done.triggered:
            yield prev_done
        if self.state is QpState.ERR and status is WcStatus.SUCCESS:
            # A preceding request wrecked the QP: this one's remote effects
            # stand, but it completes flushed, like outstanding WRs on a
            # real NIC after an error.
            self._complete(wr, WcStatus.FLUSH_ERR)
        elif status is WcStatus.SUCCESS:
            self._complete(wr, status, byte_len)
        else:
            self._complete(wr, status)
            self._enter_error()
        done.trigger(None)

    def _fetch_local(self, wr):
        """Validate the local SGE; return outbound payload bytes if any."""
        if wr.length == 0 and wr.opcode is Opcode.SEND:
            return b""
        try:
            self.node.memory.check_local(wr.lkey, wr.laddr, wr.length)
        except MemoryError_ as err:
            raise _Malformed(WcStatus.LOC_PROT_ERR) from err
        if wr.opcode in (Opcode.WRITE, Opcode.WRITE_IMM, Opcode.SEND):
            return self.node.memory.read(wr.laddr, wr.length)
        return None

    def _remote_gid(self, wr):
        if self.qp_type is QpType.RC:
            if self.remote is None:
                raise _Malformed(WcStatus.RETRY_EXC_ERR)
            return self.remote[0]
        # UD and DC address per work request.
        if wr.dct_gid is None:
            raise _Malformed(WcStatus.BAD_OPCODE_ERR)
        return wr.dct_gid

    def _resolve_remote(self, gid, wr):
        if not self.node.fabric.has_node(gid):
            if self.qp_type is QpType.UD:
                raise _UdDrop()
            raise _Malformed(WcStatus.RETRY_EXC_ERR)
        node = self.node.fabric.node(gid)
        if self.qp_type is QpType.DC:
            target = node.rnic.dct_target(wr.dct_number)
            if target is None or target.key != wr.dct_key:
                raise _Malformed(WcStatus.REM_ACCESS_ERR)
        return node

    def _execute_remote(self, remote_node, wr, payload):
        """Responder-side processing.  Returns the response payload size."""
        rnic = remote_node.rnic
        memory = remote_node.memory
        try:
            if wr.opcode is Opcode.READ:
                service = timing.READ_RESPONDER_SERVICE_NS
                service += timing.responder_payload_service_ns(wr.length)
                if self.qp_type is QpType.DC:
                    service += timing.DC_READ_SERVICE_EXTRA_NS
                yield from rnic.serve_inbound(service)
                yield timing.NIC_RESPONDER_PIPELINE_NS
                if not remote_node.alive:
                    raise _Unreachable()
                memory.check_remote(wr.rkey, wr.raddr, wr.length, write=False)
                data = memory.read(wr.raddr, wr.length)
                self.node.memory.write(wr.laddr, data)
                if _check.CHECKER is not None:
                    _check.CHECKER.read_executed(remote_node.gid, wr.rkey, self.sim.now)
                return wr.length
            if wr.opcode is Opcode.READ_V:
                # Vectored gather: one request, one responder occupancy.
                # The payload-size cost is charged once on the summed
                # length; each discontiguous segment after the first adds
                # a DMA-setup charge.  Segments are validated and gathered
                # in order, scattering back-to-back into the local buffer.
                service = timing.READ_RESPONDER_SERVICE_NS
                service += timing.responder_payload_service_ns(wr.length)
                service += timing.VECTORED_SGE_SERVICE_NS * (len(wr.sges) - 1)
                if self.qp_type is QpType.DC:
                    service += timing.DC_READ_SERVICE_EXTRA_NS
                yield from rnic.serve_inbound(service)
                yield timing.NIC_RESPONDER_PIPELINE_NS
                if not remote_node.alive:
                    raise _Unreachable()
                offset = 0
                for raddr, rkey, seg_len in wr.sges:
                    memory.check_remote(rkey, raddr, seg_len, write=False)
                    self.node.memory.write(
                        wr.laddr + offset, memory.read(raddr, seg_len)
                    )
                    if _check.CHECKER is not None:
                        _check.CHECKER.read_executed(
                            remote_node.gid, rkey, self.sim.now
                        )
                    offset += seg_len
                return wr.length
            if wr.opcode is Opcode.WRITE or wr.opcode is Opcode.WRITE_IMM:
                service = timing.WRITE_RESPONDER_SERVICE_NS
                service += timing.responder_payload_service_ns(wr.length)
                if self.qp_type is QpType.DC:
                    service += timing.DC_WRITE_SERVICE_EXTRA_NS
                yield from rnic.serve_inbound(service)
                yield timing.NIC_RESPONDER_PIPELINE_NS
                if not remote_node.alive:
                    raise _Unreachable()
                memory.check_remote(wr.rkey, wr.raddr, wr.length, write=True)
                memory.write(wr.raddr, payload)
                if wr.opcode is Opcode.WRITE_IMM:
                    # The immediate rides the last write packet and raises a
                    # receiver-side CQE, consuming a posted recv buffer --
                    # RNR semantics apply just like a SEND.
                    yield from self._deliver_imm(remote_node, wr)
                return 0
            if wr.opcode in (Opcode.CAS, Opcode.FETCH_ADD):
                yield from rnic.serve_inbound(timing.ATOMIC_RESPONDER_SERVICE_NS)
                yield timing.NIC_RESPONDER_PIPELINE_NS
                if not remote_node.alive:
                    raise _Unreachable()
                memory.check_remote(wr.rkey, wr.raddr, 8, write=True)
                old = int.from_bytes(memory.read(wr.raddr, 8), "big")
                if wr.opcode is Opcode.CAS:
                    if old == wr.compare:
                        memory.write(wr.raddr, wr.swap.to_bytes(8, "big"))
                else:
                    memory.write(wr.raddr, ((old + wr.compare) % (1 << 64)).to_bytes(8, "big"))
                self.node.memory.write(wr.laddr, old.to_bytes(8, "big"))
                return 8
            # SEND
            yield from rnic.serve_inbound(timing.SEND_RESPONDER_SERVICE_NS)
            yield timing.NIC_RESPONDER_PIPELINE_NS
            if not remote_node.alive:
                if self.qp_type is QpType.UD:
                    raise _UdDrop()
                raise _Unreachable()
            yield from self._deliver_send(remote_node, wr, payload)
            return 0
        except MemoryError_ as err:
            if self.qp_type is QpType.UD:
                raise _UdDrop() from err
            raise _Malformed(WcStatus.REM_ACCESS_ERR) from err

    def _serve_duplicate(self, remote_node, wr):
        """Charge the responder for a packet it will discard by PSN.

        Used for duplicated requests and for retransmissions of an op whose
        effects already applied (``executed``): the engine re-serves the
        request, but no memory op or delivery happens (exactly-once).
        """
        rnic = remote_node.rnic
        if wr.opcode in (Opcode.CAS, Opcode.FETCH_ADD):
            service = timing.ATOMIC_RESPONDER_SERVICE_NS
        elif wr.opcode is Opcode.WRITE_IMM:
            service = timing.WRITE_RESPONDER_SERVICE_NS
            service += timing.responder_payload_service_ns(wr.length)
        elif wr.opcode is Opcode.READ_V:
            service = timing.READ_RESPONDER_SERVICE_NS
            service += timing.responder_payload_service_ns(wr.length)
            service += timing.VECTORED_SGE_SERVICE_NS * (len(wr.sges) - 1)
        else:
            service = timing.SEND_RESPONDER_SERVICE_NS
        yield from rnic.serve_inbound(service)
        yield timing.NIC_RESPONDER_PIPELINE_NS

    def _deliver_send(self, remote_node, wr, payload):
        """Land an inbound SEND in the receiver's queue (or SRQ for DCT)."""
        if self.qp_type is QpType.DC:
            target = remote_node.rnic.dct_target(wr.dct_number)
            buffers, cq, receiver_qp = target.srq, target.recv_cq, None
        else:
            receiver_qp = remote_node.rnic.qp(self._receiver_qpn(wr))
            if receiver_qp is None:
                raise _Malformed(WcStatus.RETRY_EXC_ERR)
            buffers, cq = receiver_qp._recv_buffers, receiver_qp.recv_cq
        if not buffers or cq is None:
            if self.qp_type is QpType.UD:
                raise _UdDrop()
            raise _RnrNak()
        recv_buffer = buffers[0]
        if len(payload) > recv_buffer.length:
            if self.qp_type is QpType.UD:
                raise _UdDrop()
            raise _RnrNak()
        buffers.popleft()
        if payload:
            yield timing.SEND_DELIVERY_NS
        else:
            yield timing.SEND_DELIVERY_HEADER_NS
        remote_node.memory.write(recv_buffer.addr, payload)
        cq.push(
            Completion(
                recv_buffer.wr_id,
                WcStatus.SUCCESS,
                Opcode.RECV,
                byte_len=len(payload),
                src=(self.node.gid, self.qpn),
                header=wr.header,
                qp=receiver_qp,
            )
        )

    def _deliver_imm(self, remote_node, wr):
        """Raise the receiver-side CQE for a WRITE_WITH_IMM.

        The payload already landed at ``raddr`` via the write half; the
        immediate consumes a recv buffer (or SRQ slot for DCT) purely to
        carry the CQE, without touching the buffer's memory.
        """
        if self.qp_type is QpType.DC:
            target = remote_node.rnic.dct_target(wr.dct_number)
            buffers, cq, receiver_qp = target.srq, target.recv_cq, None
        else:
            receiver_qp = remote_node.rnic.qp(self._receiver_qpn(wr))
            if receiver_qp is None:
                raise _Malformed(WcStatus.RETRY_EXC_ERR)
            buffers, cq = receiver_qp._recv_buffers, receiver_qp.recv_cq
        if not buffers or cq is None:
            raise _RnrNak()
        recv_buffer = buffers.popleft()
        yield timing.WRITE_IMM_DELIVERY_NS
        cq.push(
            Completion(
                recv_buffer.wr_id,
                WcStatus.SUCCESS,
                Opcode.RECV_IMM,
                byte_len=wr.length,
                src=(self.node.gid, self.qpn),
                header=wr.header,
                qp=receiver_qp,
                imm=wr.imm,
            )
        )

    def _receiver_qpn(self, wr):
        if self.qp_type is QpType.RC:
            return self.remote[1]
        return wr.dct_number  # UD: dct_number doubles as the target QPN

    # ------------------------------------------------------------ completion

    def _complete(self, wr, status, byte_len=0):
        """Generate (or account) the completion for a finished WR."""
        if wr.trace_id is not None and _trace.TRACER is not None:
            _trace.TRACER.async_end(
                self.sim.now, f"qp{self.qpn}@{self.node.gid}",
                f"wr.{wr.opcode.value}", wr.trace_id, status=status.name,
            )
        if _check.CHECKER is not None:
            _check.CHECKER.wr_completed(self, wr, status)
        if status is WcStatus.SUCCESS and not wr.signaled:
            self._pending_unsignaled += 1
            return
        covers = self._pending_unsignaled + 1
        self._pending_unsignaled = 0
        self.send_cq.push(
            Completion(wr.wr_id, status, wr.opcode, byte_len=byte_len, qp=self, covers=covers)
        )

    def _enter_error(self):
        if self.state is QpState.ERR:
            return
        self.state = QpState.ERR
        self._trace_state()
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("verbs.qp_errors").inc()
        # Flush everything still queued in the send queue.
        while True:
            stale = self._sq.try_get()
            if stale is None:
                break
            self._complete(stale, WcStatus.FLUSH_ERR)


class _Malformed(Exception):
    """Internal: a WR failed validation; carries the completion status."""

    def __init__(self, status):
        super().__init__(status)
        self.status = status


class _UdDrop(Exception):
    """Internal: a UD packet was silently dropped (unreliable transport)."""


class _Unreachable(Exception):
    """Internal: no response will arrive (lost packet or dead responder).

    Retryable: the requester waits out its retransmission timer and tries
    again until ``retry_cnt`` is exhausted, then completes RETRY_EXC_ERR.
    """


class _RnrNak(Exception):
    """Internal: the responder NAKed receiver-not-ready.

    Retryable against the ``rnr_retry`` budget with ``rnr_timer_ns`` waits;
    exhaustion completes RNR_ERR (budget 0, the classic immediate error) or
    RNR_RETRY_EXC_ERR (a non-zero budget ran dry).
    """
