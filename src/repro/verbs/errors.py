"""Error types for the verbs layer."""


class VerbsError(Exception):
    """Generic misuse of the verbs API (wrong state, wrong transport...)."""


class QpError(VerbsError):
    """The QP is (or just entered) the ERR state."""


class QpOverflowError(QpError):
    """Posting exceeded the physical send-queue capacity.

    Overflowing a shared QP is exactly the corruption KRCORE's Algorithm 2
    guards against (§3.1 C#3): the QP transitions to ERR and must be fully
    reconfigured before it can carry traffic again.
    """
