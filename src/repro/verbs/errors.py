"""Error taxonomy for the simulated RDMA stack.

Every layer's errors derive from :class:`RdmaError`, which carries an
optional ``code`` -- a :class:`repro.verbs.types.WcStatus` member naming
the transport-level condition behind the failure.  Callers branch on
``err.code`` (e.g. ``err.code is WcStatus.RETRY_EXC_ERR``) instead of
string-matching messages; the message stays free-form for humans.
"""


class RdmaError(Exception):
    """Base class for all stack errors; ``code`` is a WcStatus or None."""

    def __init__(self, message="", code=None):
        super().__init__(message)
        self.code = code


class VerbsError(RdmaError):
    """Generic misuse of the verbs API (wrong state, wrong transport...)."""


class QpError(VerbsError):
    """The QP is (or just entered) the ERR state."""


class QpOverflowError(QpError):
    """Posting exceeded the physical send-queue capacity.

    Overflowing a shared QP is exactly the corruption KRCORE's Algorithm 2
    guards against (§3.1 C#3): the QP transitions to ERR and must be fully
    reconfigured before it can carry traffic again.
    """


class KrcoreError(RdmaError):
    """A KRCORE operation was rejected or failed (invalid request, unknown
    node, unreachable peer...).

    Crucially this surfaces *to the caller* -- the shared physical QP is
    never corrupted by a bad request (§3.1, C#3).  When the failure maps to
    a transport condition, ``code`` carries the matching WcStatus.
    """


class MetaUnavailableError(KrcoreError):
    """The meta server could not be reached (outage window, dead meta node,
    or a wrecked pre-connected QP).  Callers retry with backoff and fall
    back to the full RC handshake when the budget is exhausted."""


class DeadlineExceededError(KrcoreError):
    """The operation's deadline budget ran out before it completed.

    Deliberately *not* a :class:`MetaUnavailableError`: the meta plane may
    be perfectly healthy -- the caller simply no longer has time for the
    answer.  Retry loops and RC-handshake fallbacks must not fire on it;
    the typed error surfaces straight to the caller (repro.degrade)."""


class OverloadRejectedError(KrcoreError):
    """Admission control shed this request before it consumed capacity
    (token bucket empty and the bounded pending queue full, or an RNIC
    command queue over its limit).  The EAGAIN of this stack: callers
    back off -- with jitter -- and try again later (repro.degrade)."""
