"""``repro.obs``: the observability layer (structured tracing + metrics).

The control plane's argument is *where the time goes* (Fig 3's 413 us
``create_qp`` vs sub-microsecond DCT reconnection); this package makes
that visible inside the reproduction.  A :class:`Tracer` records
span/instant events stamped with simulated nanoseconds and exports
Chrome trace-event JSON (Perfetto / ``about://tracing``); a
:class:`MetricsRegistry` holds counters/gauges/histograms and exports a
flat snapshot.

Both are *globally installed* and consulted by instrumented call sites
throughout the simulator (engine, verbs, KRCORE, cluster, faults) behind
a single falsy check, so with nothing installed the hot path cost is one
module-attribute load::

    with obs.observe() as (tracer, metrics):
        sim.run_process(...)
    tracer.export_chrome("trace.json")

Because the simulation is deterministic, a fixed seed produces a
byte-identical trace export -- see ``tests/test_obs_golden.py``.
"""

from contextlib import contextmanager

from repro.obs import metrics as _metrics_mod
from repro.obs import trace as _trace_mod
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "current_metrics",
    "current_tracer",
    "install",
    "observe",
    "uninstall",
]


def install(tracer=None, metrics=None):
    """Install the process-wide tracer and/or metrics registry.

    Passing ``None`` for either leaves that side untouched, so the two
    can be installed independently.  Returns ``(tracer, metrics)`` as
    currently installed.
    """
    if tracer is not None:
        _trace_mod.TRACER = tracer
    if metrics is not None:
        _metrics_mod.METRICS = metrics
    return _trace_mod.TRACER, _metrics_mod.METRICS


def uninstall():
    """Remove both the tracer and the metrics registry (idempotent)."""
    _trace_mod.TRACER = None
    _metrics_mod.METRICS = None


def current_tracer():
    return _trace_mod.TRACER


def current_metrics():
    return _metrics_mod.METRICS


@contextmanager
def observe(tracer=None, metrics=None):
    """Context manager: install fresh (or given) observers, then restore.

    Yields ``(tracer, metrics)``.  The previous observers are restored on
    exit, so nested/observing tests never leak global state.
    """
    if tracer is None:
        tracer = Tracer()
    if metrics is None:
        metrics = MetricsRegistry()
    previous = (_trace_mod.TRACER, _metrics_mod.METRICS)
    _trace_mod.TRACER = tracer
    _metrics_mod.METRICS = metrics
    try:
        yield tracer, metrics
    finally:
        _trace_mod.TRACER, _metrics_mod.METRICS = previous
