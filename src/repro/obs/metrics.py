"""Zero-dependency metrics: counters, gauges, histograms in a registry.

The module-level global :data:`METRICS` mirrors ``repro.obs.trace.TRACER``:
``None`` unless installed, and every instrumented site guards with one
falsy check.  Metrics record *simulation* facts (operations, cache hits,
engine busy-nanoseconds), never wall-clock time, so a snapshot is as
deterministic as the run that produced it.
"""

import json

#: The process-wide registry consulted by instrumented call sites, or
#: ``None`` (disabled).  Install via :func:`repro.obs.install`.
METRICS = None


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n
        return self.value

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can move both ways (queue depth, pool occupancy)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return value

    def add(self, delta):
        self.value += delta
        return self.value

    def snapshot(self):
        return self.value


class Histogram:
    """A sample distribution summarized by count/sum/min/max/percentiles.

    Percentiles delegate to :func:`repro.sim.stats.percentile` so every
    layer of the repo agrees on interpolation.
    """

    __slots__ = ("name", "samples")

    kind = "histogram"

    #: Fractions reported by :meth:`snapshot`.
    PERCENTILES = (0.5, 0.9, 0.99)

    def __init__(self, name):
        self.name = name
        self.samples = []

    def record(self, value):
        self.samples.append(value)

    @property
    def count(self):
        return len(self.samples)

    def percentile(self, fraction):
        from repro.sim.stats import percentile

        return percentile(self.samples, fraction)

    def snapshot(self):
        if not self.samples:
            return {"count": 0}
        summary = {
            "count": len(self.samples),
            "sum": sum(self.samples),
            "min": min(self.samples),
            "max": max(self.samples),
        }
        for fraction in self.PERCENTILES:
            summary[f"p{int(fraction * 100)}"] = self.percentile(fraction)
        return summary


class MetricsRegistry:
    """Named metrics, created on first use; snapshot is name-sorted."""

    def __init__(self):
        self._metrics = {}

    def _get(self, name, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif metric.__class__ is not cls:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name):
        return self._get(name, Histogram)

    def __len__(self):
        return len(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def get(self, name):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name, default=0):
        """Shortcut: the snapshot value of ``name`` (0 if never touched)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.snapshot()

    def snapshot(self):
        """A flat, name-sorted dict of every metric's value."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def to_json(self):
        """Canonical JSON text of :meth:`snapshot` (sorted, trailing \\n)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=1) + "\n"

    def export_json(self, path):
        """Write the snapshot to ``path``; returns the text."""
        text = self.to_json()
        with open(path, "w") as handle:
            handle.write(text)
        return text
