"""Structured tracing stamped with *simulated* nanoseconds.

A :class:`Tracer` records span (begin/end), async-span, and instant
events; every event carries the simulated timestamp its call site reads
off its own ``Simulator`` (``sim.now``), so a trace is a faithful,
deterministic picture of where simulated time went -- the per-stage
breakdown the paper's Figure 3 measures with CPU timestamping.

Pay-for-what-you-use contract
-----------------------------

The module-level global :data:`TRACER` is ``None`` unless somebody
installed a tracer (``repro.obs.install``).  Every instrumented hot path
guards with exactly one falsy check::

    if _trace.TRACER is not None:
        _trace.TRACER.instant(sim.now, "krcore@node0", "dc_cache.miss")

so the disabled cost is a module-attribute load and an identity
comparison -- no allocation, no call.  Instrumentation never yields and
never reads wall-clock time, so an installed tracer observes the
simulation without perturbing it: the event stream is a pure function of
the (seeded, deterministic) run, and the exported JSON is byte-identical
across runs of the same scenario.

Export is Chrome trace-event JSON (the ``traceEvents`` array format),
loadable in Perfetto / ``about://tracing``.  Timestamps are exported in
microseconds (the format's unit) as exact ``ns / 1000`` values.  Tracks
are interned to integer ``tid``s in first-use order and named through
``thread_name`` metadata events; if the same tracer outlives several
``Simulator`` instances (simulated time restarts from zero), a track
whose clock would run backwards is forked into a fresh ``tid``
(``"name#2"``), keeping ``ts`` monotonic per tid -- a property the test
suite validates.
"""

import hashlib
import json

#: The process-wide tracer consulted by every instrumented call site.
#: ``None`` (the default) disables tracing at the cost of one falsy
#: check.  Install via :func:`repro.obs.install`.
TRACER = None

#: Fixed pid for all exported events (one simulated "process").
_PID = 1


class Tracer:
    """Collects structured trace events; export with :meth:`export_chrome`.

    All record methods take the simulated timestamp explicitly (call
    sites pass their own ``sim.now``), so one tracer can observe any
    number of components without holding a clock reference.
    """

    def __init__(self):
        self.events = []
        self._tracks = {}  # current track name -> (tid, last_ts)
        self._next_tid = 0
        self._next_async_id = 0

    # ------------------------------------------------------------- recording

    def _tid(self, track, ts):
        """Intern ``track`` to an integer tid, forking a new tid if the
        clock ran backwards (a fresh Simulator under the same tracer)."""
        entry = self._tracks.get(track)
        if entry is None:
            entry = self._new_track(track, track, 1)
        elif ts < entry[1]:
            epoch = entry[2] + 1
            entry = self._new_track(track, f"{track}#{epoch}", epoch)
        entry[1] = ts
        return entry[0]

    def _new_track(self, key, label, epoch):
        tid = self._next_tid
        self._next_tid += 1
        self.events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
        entry = [tid, -1, epoch]
        self._tracks[key] = entry
        return entry

    def _event(self, ph, ts, track, name, args, extra=None):
        event = {
            "ph": ph,
            "ts": int(ts),
            "pid": _PID,
            "tid": self._tid(track, ts),
            "name": name,
        }
        if args:
            event["args"] = args
        if extra:
            event.update(extra)
        self.events.append(event)

    def begin(self, ts, track, name, **args):
        """Open a synchronous span on ``track`` (Chrome ``B``)."""
        self._event("B", ts, track, name, args)

    def end(self, ts, track, name, **args):
        """Close the innermost open span of ``name`` (Chrome ``E``)."""
        self._event("E", ts, track, name, args)

    def instant(self, ts, track, name, **args):
        """A zero-duration marker (Chrome ``i``, thread scope)."""
        self._event("i", ts, track, name, args, extra={"s": "t"})

    def next_async_id(self):
        """A fresh id for an async span (post -> completion)."""
        self._next_async_id += 1
        return self._next_async_id

    def async_begin(self, ts, track, name, async_id, **args):
        """Open an async span (Chrome ``b``); pair with :meth:`async_end`."""
        self._event("b", ts, track, name, args,
                    extra={"cat": "async", "id": async_id})

    def async_end(self, ts, track, name, async_id, **args):
        self._event("e", ts, track, name, args,
                    extra={"cat": "async", "id": async_id})

    # -------------------------------------------------------------- queries

    def __len__(self):
        return len(self.events)

    def spans(self, name=None):
        """Matched (begin, end) pairs of synchronous spans, in begin order.

        Pairs B/E events per (tid, name) as a stack; unmatched begins are
        omitted.  Handy for tests and for deriving stage breakdowns.
        """
        open_stack = {}
        pairs = []
        order = []
        for event in self.events:
            key = (event["tid"], event["name"])
            if event["ph"] == "B":
                open_stack.setdefault(key, []).append(event)
                order.append(event)
            elif event["ph"] == "E":
                stack = open_stack.get(key)
                if stack:
                    pairs.append((stack.pop(), event))
        begin_index = {id(b): i for i, b in enumerate(order)}
        pairs.sort(key=lambda pair: begin_index[id(pair[0])])
        if name is None:
            return pairs
        return [p for p in pairs if p[0]["name"] == name]

    # ------------------------------------------------------------- exporting

    def to_chrome(self):
        """The trace as a Chrome trace-event dict (``ts`` in microseconds)."""
        out = []
        for event in self.events:
            copy = dict(event)
            copy["ts"] = event["ts"] / 1000.0
            out.append(copy)
        return {"displayTimeUnit": "ns", "traceEvents": out}

    def to_json(self):
        """Canonical JSON text: sorted keys, stable layout, trailing \\n.

        The same simulation always produces byte-identical text -- the
        determinism contract the golden-trace tests pin down.
        """
        return json.dumps(self.to_chrome(), sort_keys=True, indent=1) + "\n"

    def export_chrome(self, path):
        """Write the Perfetto-loadable JSON to ``path``; returns the text."""
        text = self.to_json()
        with open(path, "w") as handle:
            handle.write(text)
        return text

    def digest(self):
        """SHA-256 of the canonical JSON export (fixed seed => fixed digest)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()
