"""The user-space shim: KRCORE's programming interface (§4.1, Fig 7).

The real system exposes the kernel via ioctl plus a ~100-line C shim; here
:class:`KrcoreLib` plays that role.  Every entry into the kernel charges
one syscall (~0.9 us); synchronous helpers use a single *blocking* ioctl
that posts and waits, which is why a sync 8B READ costs baseline + ~1 us
(Fig 12a) rather than two crossings.
"""

from repro.cluster import timing
from repro.krcore.vqp import KrcoreError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.verbs import WorkRequest


class KrcoreLib:
    """A per-application (per-thread) handle to the node's KRCORE module.

    ``cpu_id`` pins the handle to one CPU's hybrid QP pool (§4.2: pools
    are per-CPU; each QP is typically used by one thread).
    """

    def __init__(self, node, cpu_id=0, charge_syscall=True):
        module = node.services.get("krcore")
        if module is None:
            raise KrcoreError(f"{node.gid} has no KRCORE module loaded")
        self.module = module
        self.node = node
        self.sim = node.sim
        self.cpu_id = cpu_id
        self.charge_syscall = charge_syscall

    def _enter_kernel(self):
        if self.charge_syscall:
            if _trace.TRACER is not None:
                track = f"krcore@{self.node.gid}"
                _trace.TRACER.begin(self.sim.now, track, "syscall")
                yield timing.SYSCALL_NS
                _trace.TRACER.end(self.sim.now, track, "syscall")
            else:
                yield timing.SYSCALL_NS
        else:
            yield 0

    # -------------------------------------------------------------- control

    def create_vqp(self):
        """Process: ibv_create_qp with qp_type = KRCORE_VQP."""
        yield from self._enter_kernel()
        return self.module.create_vqp(cpu_id=self.cpu_id)

    def qconnect(self, vqp, gid, port=0, deadline_ns=None):
        """Process: connect the VQP to a remote host (Fig 7's qconnect).

        Cached: ~0.9 us (just the syscall).  Uncached: ~5.4 us (syscall +
        two one-sided READs to the meta server) -- Fig 8a.

        ``deadline_ns`` (or the module's DegradePolicy default) starts a
        time budget at the syscall boundary that every meta RPC hop below
        decrements and checks; a spent budget surfaces as a typed
        :class:`~repro.verbs.errors.DeadlineExceededError` instead of
        piling more retries onto an overloaded plane.
        """
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.begin(
                self.sim.now, f"krcore@{self.node.gid}", "qconnect",
                gid=gid, vqp=vqp.id,
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.qconnects").inc()
        deadline = self.module.op_deadline(deadline_ns)
        try:
            yield from self._enter_kernel()
            yield from vqp.connect(gid, port, deadline)
        finally:
            if tracer is not None:
                tracer.end(self.sim.now, f"krcore@{self.node.gid}", "qconnect")
        return vqp

    def qbind(self, vqp, port):
        """Process: bind the VQP to a port for incoming connections."""
        yield from self._enter_kernel()
        self.module.bind(port, vqp)
        return vqp

    def reg_mr(self, addr, length):
        """Process: register memory; recorded in ValidMR and published to
        the meta server for remote validation."""
        yield from self._enter_kernel()
        region = yield from self.module.reg_mr(addr, length)
        return region

    def dereg_mr(self, region):
        """Process: deregister; actually freed after one lease (§4.2)."""
        yield from self._enter_kernel()
        yield from self.module.dereg_mr(region)

    # ----------------------------------------------------------- data path

    def post_send(self, vqp, wr_list, deadline_ns=None):
        """Process: ibv_post_send on a VQP (one syscall per batch)."""
        deadline = self.module.op_deadline(deadline_ns)
        yield from self._enter_kernel()
        yield from vqp.post_send(wr_list, deadline)

    def post_send_batch(self, vqp, wr_list, deadline_ns=None):
        """Process: doorbell-batched ibv_post_send on a VQP.

        One syscall, one virtualization pass, one doorbell: the WR chain
        crosses the user/kernel boundary and reaches the shared physical
        QP as a single command (§4.3) while keeping per-WR completion
        semantics.
        """
        deadline = self.module.op_deadline(deadline_ns)
        yield from self._enter_kernel()
        yield from vqp.post_send_batch(wr_list, deadline)

    def post_send_multi(self, posts):
        """Process: post to several VQPs in one ioctl (``posts`` is a list
        of (vqp, wr_list) handled in order) -- the batched shim call that
        lets one syscall fan a request batch out to many targets."""
        yield from self._enter_kernel()
        for vqp, wr_list in posts:
            yield from vqp.post_send(wr_list)

    def poll_cq(self, vqp):
        """Process: ibv_poll_cq -- non-blocking; returns an entry or None."""
        yield from self._enter_kernel()
        return vqp.poll_cq()

    def post_send_and_wait(self, vqp, wr_list, deadline_ns=None):
        """Process: post + wait in one blocking ioctl (the sync fast path).

        Returns the completion entry for the *last* signaled request.
        """
        deadline = self.module.op_deadline(deadline_ns)
        yield from self._enter_kernel()
        yield from vqp.post_send(wr_list, deadline)
        wanted = sum(
            1 for wr in (wr_list if isinstance(wr_list, (list, tuple)) else [wr_list]) if wr.signaled
        )
        entry = None
        for _ in range(max(wanted, 0)):
            entry = yield from vqp.wait_send_completion()
        yield timing.POLL_CQ_CPU_NS
        return entry

    def read_sync(self, vqp, laddr, lkey, raddr, rkey, length):
        """Process: one synchronous one-sided READ; returns the entry."""
        wr = WorkRequest.read(laddr, length, lkey, raddr, rkey)
        entry = yield from self.post_send_and_wait(vqp, wr)
        if not entry.ok:
            raise KrcoreError(f"READ failed: {entry.status}", code=entry.status)
        return entry

    def read_vectored_sync(self, vqp, laddr, lkey, sges):
        """Process: one synchronous vectored gather READ (§4.3 TODO in the
        MicroView collector): ``sges`` is a list of ``(raddr, rkey, length)``
        remote segments scattered back-to-back into ``laddr``."""
        wr = WorkRequest.read_vectored(laddr, lkey, sges)
        entry = yield from self.post_send_and_wait(vqp, wr)
        if not entry.ok:
            raise KrcoreError(f"READ_V failed: {entry.status}", code=entry.status)
        return entry

    def write_sync(self, vqp, laddr, lkey, raddr, rkey, length):
        """Process: one synchronous one-sided WRITE; returns the entry."""
        wr = WorkRequest.write(laddr, length, lkey, raddr, rkey)
        entry = yield from self.post_send_and_wait(vqp, wr)
        if not entry.ok:
            raise KrcoreError(f"WRITE failed: {entry.status}", code=entry.status)
        return entry

    def send_sync(self, vqp, laddr, lkey, length):
        """Process: one synchronous two-sided SEND; returns the entry."""
        wr = WorkRequest.send(laddr, length, lkey)
        entry = yield from self.post_send_and_wait(vqp, wr)
        if not entry.ok:
            raise KrcoreError(f"SEND failed: {entry.status}", code=entry.status)
        return entry

    def send_and_recv(self, vqp, send_wr):
        """Process: post a SEND and block for the response message, all in
        one ioctl -- the synchronous request/response fast path.  Returns
        the receive completion."""
        yield from self._enter_kernel()
        yield from vqp.post_send(send_wr)
        completion = yield from vqp.wait_recv_completion()
        return completion

    def post_and_qpop(self, vqp, replies, max_msgs=16):
        """Process: post replies and pop the next incoming messages in one
        ioctl (the server-side steady-state loop: one kernel crossing per
        served message).  ``replies`` is a list of (reply_vqp, wr_list).
        Blocks until at least one new message arrives."""
        yield from self._enter_kernel()
        for reply_vqp, wr_list in replies:
            yield from reply_vqp.post_send(wr_list)
        while True:
            results = yield from self.module.qpop_msgs(vqp, max_msgs, cpu_id=self.cpu_id)
            if results:
                return results
            yield self.module.wait_port_msg(vqp)

    # -------------------------------------------------------------- receive

    def post_recv(self, vqp, recv_buffer):
        """Process: ibv_post_recv into the virtual receive queue."""
        yield from self._enter_kernel()
        vqp.post_recv(recv_buffer)

    def recv_wait(self, vqp):
        """Process: block (one ioctl) until a message lands in this VQP's
        posted buffer; returns the receive completion."""
        yield from self._enter_kernel()
        completion = yield from vqp.wait_recv_completion()
        return completion

    def qpop_msgs(self, vqp, max_msgs=16):
        """Process: Fig 7's qpop_msgs -- non-blocking drain of the bound
        port; returns a list of (src_vqp, completion) pairs."""
        yield from self._enter_kernel()
        results = yield from self.module.qpop_msgs(vqp, max_msgs, cpu_id=self.cpu_id)
        return results

    def qpop_msgs_wait(self, vqp, max_msgs=16):
        """Process: blocking qpop -- waits until at least one message."""
        yield from self._enter_kernel()
        while True:
            results = yield from self.module.qpop_msgs(vqp, max_msgs, cpu_id=self.cpu_id)
            if results:
                return results
            yield self.module.wait_port_msg(vqp)
