"""MR validation bookkeeping: ValidMR and MRStore (§4.2).

The RNIC normally validates memory keys from its own cache; once KRCORE
multiplexes a shared QP it must do those checks in software *before*
posting, or a bad key would wreck the shared QP (§3.1, C#3).

* **ValidMR** records every locally registered MR (and publishes it to the
  meta servers so remote nodes can validate against it).
* **MRStore** caches validated *remote* MRs with a lease: the cache is
  flushed at every lease boundary, and a deregistered MR is only freed
  after one full lease has elapsed, so no cached entry can outlive the
  registration.  (The periodic flush is implemented lazily -- an entry
  written in epoch k is invisible from epoch k+1 on -- which is
  behaviourally identical to the paper's periodic flush without keeping a
  timer alive.)
"""

from repro.check import hooks as _check
from repro.cluster import timing
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.verbs.errors import DeadlineExceededError, MetaUnavailableError


class ValidMr:
    """The local registry of valid memory regions on one node."""

    def __init__(self, node):
        self.node = node
        self._by_rkey = {}
        self._by_lkey = {}

    def record(self, region):
        self._by_rkey[region.rkey] = region
        self._by_lkey[region.lkey] = region

    def forget(self, region):
        self._by_rkey.pop(region.rkey, None)
        self._by_lkey.pop(region.lkey, None)

    def check_local(self, lkey, addr, length):
        """True iff [addr, addr+length) lies in a valid local region."""
        region = self._by_lkey.get(lkey)
        return region is not None and region.valid and region.contains(addr, length)

    def lookup_rkey(self, rkey):
        region = self._by_rkey.get(rkey)
        if region is None or not region.valid:
            return None
        return (region.addr, region.length)

    def lookup_region_by_lkey(self, lkey):
        region = self._by_lkey.get(lkey)
        if region is None or not region.valid:
            return None
        return region


class MrStore:
    """Per-node cache of checked remote MRs, with lease-based flushing."""

    def __init__(self, module, lease_ns=timing.MR_LEASE_NS):
        self.module = module
        self.sim = module.sim
        self.lease_ns = lease_ns
        self._cache = {}  # (gid, rkey) -> (epoch, (addr, length))
        self.stats_hits = 0
        self.stats_misses = 0
        #: Lease-expired entries accepted because the meta server was
        #: unreachable (degraded mode).
        self.stats_stale_accepts = 0

    def _epoch(self):
        return self.sim.now // self.lease_ns

    def cached(self, gid, rkey):
        """The cached (addr, length) if present and within its lease."""
        entry = self._cache.get((gid, rkey))
        if entry is None or entry[0] != self._epoch():
            return None
        return entry[1]

    def check_cached(self, gid, rkey, addr, length):
        """Non-blocking :meth:`check` against the cache only.

        Returns the boolean verdict on a hit, or ``None`` on a miss (the
        caller must then run :meth:`check`, which may block on a
        meta-server lookup).  Lets the per-WR hot path skip a generator
        when the MR is already cached -- the overwhelmingly common case.
        """
        entry = self._cache.get((gid, rkey))
        if entry is None or entry[0] != self.sim.now // self.lease_ns:
            return None
        self.stats_hits += 1
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.mrstore_hits").inc()
        base, span = entry[1]
        return base <= addr and addr + length <= base + span

    def check(self, gid, rkey, addr, length, cpu_id=0, deadline=None):
        """Process: validate a remote access, querying ValidMR on a miss.

        Returns True iff the access falls inside a known-valid remote MR.
        A miss costs one meta-server lookup (+4.5 us, Fig 12a) through the
        calling CPU's pre-connected meta client; the lookup retries with
        exponential backoff.  If the meta server stays unreachable and a
        lease-expired entry for this MR is still cached, accept it (the
        remote frees a deregistered MR only one full lease after
        retraction, and the responder re-validates every access, so a
        wrong stale verdict surfaces as REM_ACCESS -- never as a read of
        freed memory).  With no cached entry at all, the error propagates.
        """
        record = self.cached(gid, rkey)
        if record is None:
            self.stats_misses += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.mrstore_misses").inc()
            if _trace.TRACER is not None:
                _trace.TRACER.begin(
                    self.sim.now, f"krcore@{self.module.node.gid}",
                    "mrstore.check", gid=gid, rkey=rkey,
                )
            accepted_stale = False
            try:
                record = yield from self._lookup_robust(gid, rkey, cpu_id, deadline)
                epoch = self._epoch()
            except MetaUnavailableError:
                stale = self._cache.get((gid, rkey))
                if stale is None:
                    raise
                self.stats_stale_accepts += 1
                if _metrics.METRICS is not None:
                    _metrics.METRICS.counter("krcore.mrstore_stale_accepts").inc()
                # Keep the *original* epoch: a stale accept is a degraded-
                # mode verdict, not a revalidation.  Re-stamping it with
                # the current epoch would promote the entry to fully valid
                # and suppress the real lookup after the meta plane
                # recovers -- breaking the one-lease window dereg_mr's
                # deferred free relies on.
                epoch, record = stale
                accepted_stale = True
            finally:
                if _trace.TRACER is not None:
                    _trace.TRACER.end(
                        self.sim.now, f"krcore@{self.module.node.gid}",
                        "mrstore.check",
                    )
            if record is None:
                return False
            if _check.CHECKER is not None:
                _check.CHECKER.mr_accept(
                    self, gid, rkey, epoch, self._epoch(), accepted_stale
                )
            self._cache[(gid, rkey)] = (epoch, record)
        else:
            self.stats_hits += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.mrstore_hits").inc()
        base, span = record
        return base <= addr and addr + length <= base + span

    def _lookup_robust(self, gid, rkey, cpu_id, deadline=None):
        """Process: MR lookup with bounded retry + exponential backoff
        (jittered, like :meth:`KrcoreModule.lookup_dct_robust`), each
        attempt failing over across the record's owner shards.  A spent
        deadline raises instead of sleeping on borrowed time."""
        backoff = timing.KRCORE_BACKOFF_BASE_NS
        attempt = 0
        while True:
            try:
                return (
                    yield from self.module.plane_lookup_mr(
                        cpu_id, gid, rkey, deadline
                    )
                )
            except MetaUnavailableError as err:
                attempt += 1
                if attempt > timing.KRCORE_META_RETRIES:
                    raise
                pause = backoff + timing.backoff_jitter_ns(
                    backoff, f"{self.module.node.gid}:{gid}:{rkey}", attempt
                )
                if deadline is not None and deadline.remaining_ns(self.sim.now) <= pause:
                    raise DeadlineExceededError(
                        f"deadline cannot cover retry {attempt} backoff "
                        f"({pause} ns) for MR ({gid}, {rkey})",
                    ) from err
                yield pause
                backoff = min(backoff * 2, timing.KRCORE_BACKOFF_MAX_NS)

    def invalidate(self, gid, rkey=None):
        if rkey is not None:
            self._cache.pop((gid, rkey), None)
            return
        for key in [k for k in self._cache if k[0] == gid]:
            del self._cache[key]
