"""MR validation bookkeeping: ValidMR and MRStore (§4.2).

The RNIC normally validates memory keys from its own cache; once KRCORE
multiplexes a shared QP it must do those checks in software *before*
posting, or a bad key would wreck the shared QP (§3.1, C#3).

* **ValidMR** records every locally registered MR (and publishes it to the
  meta servers so remote nodes can validate against it).
* **MRStore** caches validated *remote* MRs with a lease: the cache is
  flushed at every lease boundary, and a deregistered MR is only freed
  after one full lease has elapsed, so no cached entry can outlive the
  registration.  (The periodic flush is implemented lazily -- an entry
  written in epoch k is invisible from epoch k+1 on -- which is
  behaviourally identical to the paper's periodic flush without keeping a
  timer alive.)
"""

from repro.check import hooks as _check
from repro.cluster import timing
from repro.krcore.meta import mr_key
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.verbs.errors import DeadlineExceededError, MetaUnavailableError


class ValidMr:
    """The local registry of valid memory regions on one node."""

    def __init__(self, node):
        self.node = node
        self._by_rkey = {}
        self._by_lkey = {}
        #: forget() calls that found a *different* region under the key --
        #: the recycled-key churn race the identity check below defends.
        self.stats_forget_mismatches = 0

    def record(self, region):
        self._by_rkey[region.rkey] = region
        self._by_lkey[region.lkey] = region

    def forget(self, region):
        # Pop by identity, not by key: under churn a retracted region's
        # recycled rkey/lkey may already name a *new* registration, and
        # dropping that one would fail every remote validation against
        # the live MR.
        mismatch = False
        if self._by_rkey.get(region.rkey) is region:
            del self._by_rkey[region.rkey]
        elif region.rkey in self._by_rkey:
            mismatch = True
        if self._by_lkey.get(region.lkey) is region:
            del self._by_lkey[region.lkey]
        elif region.lkey in self._by_lkey:
            mismatch = True
        if mismatch:
            self.stats_forget_mismatches += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.validmr_forget_mismatches").inc()

    def check_local(self, lkey, addr, length):
        """True iff [addr, addr+length) lies in a valid local region."""
        region = self._by_lkey.get(lkey)
        return region is not None and region.valid and region.contains(addr, length)

    def lookup_rkey(self, rkey):
        region = self._by_rkey.get(rkey)
        if region is None or not region.valid:
            return None
        return (region.addr, region.length)

    def lookup_region_by_lkey(self, lkey):
        region = self._by_lkey.get(lkey)
        if region is None or not region.valid:
            return None
        return region


class MrStore:
    """Per-node cache of checked remote MRs, with lease-based flushing."""

    def __init__(self, module, lease_ns=timing.MR_LEASE_NS):
        self.module = module
        self.sim = module.sim
        self.lease_ns = lease_ns
        self._cache = {}  # (gid, rkey) -> (epoch, (addr, length))
        #: (gid, rkey) entries accepted past their lease during a meta
        #: outage.  While every owner shard of the record stays dark, the
        #: marker lets cached()/check_cached() keep honoring the entry on
        #: its *original* epoch (one degraded verdict, not one slow-path
        #: lookup per WR); the first probe that finds an owner serving
        #: again drops the marker, so the next access runs a real lookup.
        self._stale_accepted = set()
        #: gid -> set(rkey) over cache keys, so invalidate(gid) during a
        #: churn storm is O(entries for that gid), not O(whole cache).
        self._by_gid = {}
        self.stats_hits = 0
        self.stats_misses = 0
        #: Lease-expired entries accepted because the meta server was
        #: unreachable (degraded mode).
        self.stats_stale_accepts = 0
        #: Fast-path hits served off a stale-accept marker (meta down).
        self.stats_stale_hits = 0
        #: Cache entries dropped by invalidate() (churn accounting).
        self.stats_invalidated = 0

    def _epoch(self):
        return self.sim.now // self.lease_ns

    def _stale_hit(self, gid, rkey):
        """True iff a lease-expired entry may still be honored: it was
        stale-accepted during an outage and every owner shard of its meta
        record is *still* dark.  Clears the marker on recovery, so a
        stale accept never outlives meta recovery past the next access."""
        if (gid, rkey) not in self._stale_accepted:
            return False
        owners = self.module.meta_plane.owners(mr_key(gid, rkey))
        if any(shard.available for shard in owners):
            self._stale_accepted.discard((gid, rkey))
            return False
        return True

    def cached(self, gid, rkey):
        """The cached (addr, length) if present and within its lease (or
        stale-accepted while its meta record's owners are all dark)."""
        entry = self._cache.get((gid, rkey))
        if entry is None:
            return None
        if entry[0] != self._epoch() and not self._stale_hit(gid, rkey):
            return None
        return entry[1]

    def check_cached(self, gid, rkey, addr, length):
        """Non-blocking :meth:`check` against the cache only.

        Returns the boolean verdict on a hit, or ``None`` on a miss (the
        caller must then run :meth:`check`, which may block on a
        meta-server lookup).  Lets the per-WR hot path skip a generator
        when the MR is already cached -- the overwhelmingly common case.
        A stale-accepted entry counts as a hit while meta stays down:
        degraded mode already delivered its verdict, so re-running the
        slow path per WR would just burn the retry budget again.
        """
        entry = self._cache.get((gid, rkey))
        if entry is None:
            return None
        if entry[0] != self.sim.now // self.lease_ns:
            if not self._stale_hit(gid, rkey):
                return None
            self.stats_stale_hits += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.mrstore_stale_hits").inc()
        self.stats_hits += 1
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.mrstore_hits").inc()
        base, span = entry[1]
        return base <= addr and addr + length <= base + span

    def check(self, gid, rkey, addr, length, cpu_id=0, deadline=None):
        """Process: validate a remote access, querying ValidMR on a miss.

        Returns True iff the access falls inside a known-valid remote MR.
        A miss costs one meta-server lookup (+4.5 us, Fig 12a) through the
        calling CPU's pre-connected meta client; the lookup retries with
        exponential backoff.  If the meta server stays unreachable and a
        lease-expired entry for this MR is still cached, accept it (the
        remote frees a deregistered MR only one full lease after
        retraction, and the responder re-validates every access, so a
        wrong stale verdict surfaces as REM_ACCESS -- never as a read of
        freed memory).  With no cached entry at all, the error propagates.
        """
        record = self.cached(gid, rkey)
        if record is None:
            self.stats_misses += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.mrstore_misses").inc()
            if _trace.TRACER is not None:
                _trace.TRACER.begin(
                    self.sim.now, f"krcore@{self.module.node.gid}",
                    "mrstore.check", gid=gid, rkey=rkey,
                )
            accepted_stale = False
            try:
                record = yield from self._lookup_robust(gid, rkey, cpu_id, deadline)
                epoch = self._epoch()
                self._stale_accepted.discard((gid, rkey))
            except MetaUnavailableError:
                stale = self._cache.get((gid, rkey))
                if stale is None:
                    raise
                self.stats_stale_accepts += 1
                if _metrics.METRICS is not None:
                    _metrics.METRICS.counter("krcore.mrstore_stale_accepts").inc()
                # Keep the *original* epoch: a stale accept is a degraded-
                # mode verdict, not a revalidation.  Re-stamping it with
                # the current epoch would promote the entry to fully valid
                # and suppress the real lookup after the meta plane
                # recovers -- breaking the one-lease window dereg_mr's
                # deferred free relies on.
                epoch, record = stale
                accepted_stale = True
                if record is not None:
                    self._stale_accepted.add((gid, rkey))
            finally:
                if _trace.TRACER is not None:
                    _trace.TRACER.end(
                        self.sim.now, f"krcore@{self.module.node.gid}",
                        "mrstore.check",
                    )
            if record is None:
                return False
            if _check.CHECKER is not None:
                _check.CHECKER.mr_accept(
                    self, gid, rkey, epoch, self._epoch(), accepted_stale
                )
            self._cache[(gid, rkey)] = (epoch, record)
            self._by_gid.setdefault(gid, set()).add(rkey)
        else:
            self.stats_hits += 1
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.mrstore_hits").inc()
        base, span = record
        return base <= addr and addr + length <= base + span

    def _lookup_robust(self, gid, rkey, cpu_id, deadline=None):
        """Process: MR lookup with bounded retry + exponential backoff
        (jittered, like :meth:`KrcoreModule.lookup_dct_robust`), each
        attempt failing over across the record's owner shards.  A spent
        deadline raises instead of sleeping on borrowed time."""
        backoff = timing.KRCORE_BACKOFF_BASE_NS
        attempt = 0
        while True:
            try:
                return (
                    yield from self.module.plane_lookup_mr(
                        cpu_id, gid, rkey, deadline
                    )
                )
            except MetaUnavailableError as err:
                attempt += 1
                if attempt > timing.KRCORE_META_RETRIES:
                    raise
                pause = backoff + timing.backoff_jitter_ns(
                    backoff, f"{self.module.node.gid}:{gid}:{rkey}", attempt
                )
                if deadline is not None and deadline.remaining_ns(self.sim.now) <= pause:
                    raise DeadlineExceededError(
                        f"deadline cannot cover retry {attempt} backoff "
                        f"({pause} ns) for MR ({gid}, {rkey})",
                    ) from err
                yield pause
                backoff = min(backoff * 2, timing.KRCORE_BACKOFF_MAX_NS)

    def invalidate(self, gid, rkey=None):
        if rkey is not None:
            if self._cache.pop((gid, rkey), None) is not None:
                self.stats_invalidated += 1
            self._stale_accepted.discard((gid, rkey))
            rkeys = self._by_gid.get(gid)
            if rkeys is not None:
                rkeys.discard(rkey)
                if not rkeys:
                    del self._by_gid[gid]
            return
        # The index covers every entry inserted through check(); fall back
        # to a scan only when the gid was never indexed (entries seeded
        # directly into _cache, as some tests do).
        rkeys = self._by_gid.pop(gid, None)
        if rkeys is None:
            rkeys = {k[1] for k in self._cache if k[0] == gid}
        for rk in rkeys:
            if self._cache.pop((gid, rk), None) is not None:
                self.stats_invalidated += 1
            self._stale_accepted.discard((gid, rk))
