"""KRCORE: a microsecond-scale RDMA control plane (the paper's contribution).

The package mirrors the paper's §4 design:

* :mod:`repro.krcore.meta`       -- DCT metadata + ValidMR meta servers
  backed by DrTM-KV, queried with one-sided READs (§4.2, C#1), plus the
  consistent-hash :class:`MetaPlane` sharding them for elastic scale-out;
* :mod:`repro.krcore.pool`       -- the per-CPU hybrid RC/DC QP pool (§4.2);
* :mod:`repro.krcore.mrstore`    -- MR validation bookkeeping with
  lease-based cache invalidation (§4.2);
* :mod:`repro.krcore.vqp`        -- virtual QPs: Algorithm 1 (creation and
  connection) and Algorithm 2 (post_send / poll_cq virtualization, §4.3-4.4),
  the zero-copy protocol (§4.5), and the QP transfer protocol (§4.6);
* :mod:`repro.krcore.module`     -- the per-node "loadable kernel module"
  wiring it together: receive dispatch, kernel messaging, background RCQP
  creation with LRU reclaim (§4.3), and boot-time broadcast;
* :mod:`repro.krcore.api`        -- the user-space shim: qconnect / qbind /
  qpop_msgs plus the verbs data-path calls (§4.1, Fig 7).
"""

from repro.krcore.api import KrcoreError, KrcoreLib
from repro.krcore.meta import MetaPlane, MetaServer
from repro.krcore.module import KrcoreModule

__all__ = ["KrcoreError", "KrcoreLib", "KrcoreModule", "MetaPlane", "MetaServer"]
