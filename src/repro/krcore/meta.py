"""Meta servers: DCT metadata and MR records in DrTM-KV (§4.2, C#1).

Each node broadcasts its DCT metadata (12 bytes: DCT number + key) to the
meta servers at boot; every node pre-connects an RCQP per CPU to a nearby
meta server, so a metadata query is two one-sided READs (~4.5 us) that
never touch the meta server's CPU.

Beyond the paper's single deployment, :class:`MetaPlane` shards the meta
service horizontally: ``dct:``/``mr:`` keys are routed over N
:class:`MetaServer` shards by consistent hashing, every record is
replicated to the next distinct shard on the ring, and a reader whose
primary shard is dark fails over to the replica (and, when *every* owner
is unreachable, degrades to the RC-handshake fallback the single-server
code already had).  A one-shard plane is behaviourally identical to a
bare :class:`MetaServer`.
"""

import bisect
import hashlib
import struct

from repro.check import hooks as _check
from repro.cluster import timing
from repro.kvs import DrtmKvClient, DrtmKvServer
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Resource
from repro.verbs import CompletionQueue, DriverContext, QpType, WcStatus
from repro.verbs.errors import MetaUnavailableError, VerbsError

_DCT_VALUE = struct.Struct(">IQ")  # DCT number (4B) + DCT key (8B) = 12 B
_MR_VALUE = struct.Struct(">QQ")  # addr (8B) + length (8B)


def dct_key(gid):
    """The meta-plane key for a node's DCT metadata record."""
    return b"dct:" + gid.encode()


def mr_key(gid, rkey):
    """The meta-plane key for one published MR record."""
    return b"mr:%s:%d" % (gid.encode(), rkey)


def _ring_hash(data):
    """A deterministic, well-mixed 64-bit hash for ring placement.

    Python's ``hash()`` is salted per process, and a simple polynomial
    hash maps the near-identical strings used here ("meta-shard-i#v",
    "dct:nodeN") to contiguous runs -- which degenerates the ring into
    one arc per shard.  sha256 mixes properly and is seed-free."""
    if isinstance(data, str):
        data = data.encode()
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class MetaServer:
    """A meta-server deployment on one node.

    Holds two logical tables in one DrTM-KV store: ``dct:<gid>`` -> DCT
    metadata, and ``mr:<gid>:<rkey>`` -> (addr, length) for ValidMR.
    """

    SERVICE = "krcore-meta"

    def __init__(self, node, bucket_count=4096, heap_bytes=1 << 20):
        self.node = node
        self.sim = node.sim
        self.store = DrtmKvServer(node, bucket_count=bucket_count, heap_bytes=heap_bytes)
        #: Simulated timestamp until which the service is in an outage
        #: window (fault injection); 0 means never.
        self._outage_until = 0
        #: Gray-failure window: until this timestamp every lookup pays
        #: ``_lag_extra_ns`` extra (alive but slow); 0 means never.
        self._lag_until = 0
        self._lag_extra_ns = 0
        node.services[self.SERVICE] = self

    @property
    def catalog(self):
        return self.store.catalog

    # -- fault injection -------------------------------------------------------

    def set_outage(self, duration_ns, shard=None):
        """Take the meta service down for ``duration_ns`` from now.

        Models a hung/partitioned meta deployment: clients' lookups fail
        until the window passes, exercising their backoff and the RC
        fallback path.  Overlapping windows extend, never shorten.  A
        single deployment *is* shard 0, so ``shard`` may only be None
        or 0 here (the sharded plane routes other indices)."""
        if shard not in (None, 0):
            raise ValueError(f"single meta deployment has no shard {shard}")
        self._outage_until = max(self._outage_until, self.sim.now + int(duration_ns))

    def set_lag(self, duration_ns, extra_ns, shard=None):
        """Gray failure: the service stays up but every lookup served in
        the next ``duration_ns`` takes ``extra_ns`` longer.

        Unlike :meth:`set_outage` nothing ever *fails* -- which is
        exactly what makes lag the harder case: only latency-aware
        defenses (circuit breakers, deadlines) notice.  Overlapping
        windows extend; the latest ``extra_ns`` wins."""
        if shard not in (None, 0):
            raise ValueError(f"single meta deployment has no shard {shard}")
        self._lag_until = max(self._lag_until, self.sim.now + int(duration_ns))
        self._lag_extra_ns = int(extra_ns)

    @property
    def current_lag_ns(self):
        """Extra per-lookup latency right now (0 outside lag windows)."""
        if self._lag_until and self.sim.now < self._lag_until:
            return self._lag_extra_ns
        return 0

    @property
    def available(self):
        return self.node.alive and self.sim.now >= self._outage_until

    # -- boot-time broadcast targets -------------------------------------------

    def publish_dct(self, gid, dct_number, dct_key_value):
        value = _DCT_VALUE.pack(dct_number, dct_key_value)
        if _check.CHECKER is not None:
            _check.CHECKER.meta_write(self, dct_key(gid), value)
        self.store.put(dct_key(gid), value)

    def publish_mr(self, gid, rkey, addr, length):
        value = _MR_VALUE.pack(addr, length)
        if _check.CHECKER is not None:
            _check.CHECKER.meta_write(self, mr_key(gid, rkey), value)
        self.store.put(mr_key(gid, rkey), value)

    def retract_mr(self, gid, rkey):
        if _check.CHECKER is not None:
            _check.CHECKER.meta_write(self, mr_key(gid, rkey), None)
        self.store.delete(mr_key(gid, rkey))

    def retract_node(self, gid):
        """Drop a dead node's DCT metadata (§4.2: metadata is invalidated
        only when the host is down)."""
        if _check.CHECKER is not None:
            _check.CHECKER.meta_write(self, dct_key(gid), None)
        self.store.delete(dct_key(gid))


class MetaPlane:
    """A sharded meta plane: N :class:`MetaServer` shards on a hash ring.

    Keys are routed by consistent hashing over ``VNODES`` virtual points
    per shard; each key is owned by its primary shard plus the next
    ``replication - 1`` distinct shards clockwise on the ring.  Writes go
    to every owner, reads start at the primary and fail over down the
    owner list, so one dark shard costs one probe, not an outage.

    A one-shard plane routes every key to shard 0 with no replica, which
    keeps the single-deployment control path (and its timing) identical.
    """

    #: Virtual ring points per shard; enough for a reasonable key balance
    #: at the shard counts we care about (1-16).
    VNODES = 128

    def __init__(self, shards, replication=2):
        shards = list(shards)
        if not shards:
            raise ValueError("a meta plane needs at least one shard")
        self.shards = shards
        self.replication = max(1, min(int(replication), len(shards)))
        self._ring = []
        for index in range(len(shards)):
            for vnode in range(self.VNODES):
                self._ring.append((_ring_hash(f"meta-shard-{index}#{vnode}"), index))
        self._ring.sort()
        self._points = [point for point, _ in self._ring]
        self._owner_cache = {}

    @classmethod
    def ensure(cls, meta):
        """Wrap a bare :class:`MetaServer` into a one-shard plane."""
        if isinstance(meta, MetaPlane):
            return meta
        return cls([meta], replication=1)

    def __len__(self):
        return len(self.shards)

    # -- routing ---------------------------------------------------------------

    def owner_indices(self, key):
        """Shard indices owning ``key``: primary first, then replicas."""
        owners = self._owner_cache.get(key)
        if owners is not None:
            return owners
        start = bisect.bisect_right(self._points, _ring_hash(key))
        owners = []
        for step in range(len(self._ring)):
            index = self._ring[(start + step) % len(self._ring)][1]
            if index not in owners:
                owners.append(index)
                if len(owners) == self.replication:
                    break
        self._owner_cache[key] = owners
        return owners

    def primary_index(self, key):
        return self.owner_indices(key)[0]

    def owners(self, key):
        """The owning :class:`MetaServer` shards of ``key``, primary first."""
        return [self.shards[index] for index in self.owner_indices(key)]

    def owner_gids(self, key):
        """Distinct gids of the nodes hosting ``key``, primary first."""
        gids = []
        for shard in self.owners(key):
            if shard.node.gid not in gids:
                gids.append(shard.node.gid)
        return gids

    # -- write paths (boot broadcast, publication, failure detection) ----------

    def publish_dct(self, gid, dct_number, dct_key_value):
        for shard in self.owners(dct_key(gid)):
            shard.publish_dct(gid, dct_number, dct_key_value)

    def publish_mr(self, gid, rkey, addr, length):
        for shard in self.owners(mr_key(gid, rkey)):
            shard.publish_mr(gid, rkey, addr, length)

    def retract_mr(self, gid, rkey):
        for shard in self.owners(mr_key(gid, rkey)):
            shard.retract_mr(gid, rkey)

    def retract_node(self, gid):
        # Broadcast: a retraction is idempotent, and deleting everywhere
        # stays correct if the owner set ever changes between runs.
        for shard in self.shards:
            shard.retract_node(gid)

    # -- fault injection -------------------------------------------------------

    def set_outage(self, duration_ns, shard=None):
        """Dark one shard (``shard=index``) or the whole plane (None)."""
        if shard is None:
            for entry in self.shards:
                entry.set_outage(duration_ns)
        else:
            self.shards[shard].set_outage(duration_ns)

    def set_lag(self, duration_ns, extra_ns, shard=None):
        """Lag one shard (``shard=index``) or the whole plane (None)."""
        if shard is None:
            for entry in self.shards:
                entry.set_lag(duration_ns, extra_ns)
        else:
            self.shards[shard].set_lag(duration_ns, extra_ns)

    @property
    def available(self):
        """True iff every shard is serving (all owners reachable)."""
        return all(shard.available for shard in self.shards)


class MetaClient:
    """A node's per-CPU handle for querying one meta shard with RDMA READs.

    One RCQP (pre-connected at boot) plus a scratch buffer, guarded by a
    mutex because the DrTM-KV client supports one lookup at a time.
    """

    def __init__(self, node, meta_server, scratch_bytes=4096, shard_index=0):
        self.node = node
        self.sim = node.sim
        self.meta_server = meta_server
        self.meta_node = meta_server.node
        self.shard_index = shard_index
        context = DriverContext(node, kernel=True)
        remote_context = DriverContext(self.meta_node, kernel=True)
        cq = CompletionQueue(self.sim)
        remote_cq = CompletionQueue(self.sim)
        # Boot-time pre-connection (§4.2): costs are paid before any
        # measured window, so wire the pair directly.
        self.qp = context.create_qp_fast(QpType.RC, cq, recv_cq=cq)
        peer = remote_context.create_qp_fast(QpType.RC, remote_cq, recv_cq=remote_cq)
        self.qp.to_init()
        self.qp.to_rtr((self.meta_node.gid, peer.qpn))
        self.qp.to_rts()
        peer.to_init()
        peer.to_rtr((node.gid, self.qp.qpn))
        peer.to_rts()
        scratch_addr = node.memory.alloc(scratch_bytes)
        scratch_region = node.memory.register(scratch_addr, scratch_bytes)
        self.kv = DrtmKvClient(
            meta_server.catalog, self.qp, scratch_addr, scratch_bytes, scratch_region.lkey
        )
        self._mutex = Resource(self.sim, capacity=1)

    def lookup_dct(self, gid, deadline=None):
        """Process: fetch (dct_number, dct_key) for ``gid``, or None."""
        value = yield from self._lookup(dct_key(gid), deadline)
        if value is None:
            return None
        number, key = _DCT_VALUE.unpack(value)
        return (number, key)

    def lookup_mr(self, gid, rkey, deadline=None):
        """Process: fetch (addr, length) for a remote MR, or None."""
        value = yield from self._lookup(mr_key(gid, rkey), deadline)
        if value is None:
            return None
        addr, length = _MR_VALUE.unpack(value)
        return (addr, length)

    def _lookup(self, key, deadline=None):
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"meta@{self.node.gid}", "meta.rpc",
                key=key.decode("latin-1"), shard=self.shard_index,
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.meta_rpcs").inc()
            _metrics.METRICS.counter(
                f"krcore.meta.shard{self.shard_index}.rpcs"
            ).inc()
        value = None
        # The span must close on *every* exit -- a MetaUnavailableError
        # escaping with the begin un-ended would corrupt the nesting of
        # every later span on this track.
        try:
            grant = yield self._mutex.acquire()
            try:
                if deadline is not None:
                    # Checked *after* the mutex wait: a request whose
                    # budget died queueing must not burn two READs of
                    # shared lookup capacity on an answer nobody wants.
                    deadline.check(
                        self.sim.now,
                        f"queued for the meta client to {self.meta_node.gid}",
                    )
                if not self.meta_server.available:
                    # The service is in an outage window (or its host is
                    # down): the READ can only time out, so charge the full
                    # retransmission budget before reporting unavailability.
                    yield timing.META_OUTAGE_PROBE_NS
                    raise MetaUnavailableError(
                        f"meta server on {self.meta_node.gid} is unavailable",
                        code=WcStatus.RETRY_EXC_ERR,
                    )
                lag = self.meta_server.current_lag_ns
                if lag:
                    # Gray failure: the shard answers, just slowly.
                    yield lag
                try:
                    value = yield from self.kv.lookup(key)
                except VerbsError as err:
                    # The host died mid-lookup: surface it as unavailability
                    # so callers can back off / degrade instead of crashing.
                    raise MetaUnavailableError(
                        f"meta lookup via {self.meta_node.gid} failed: {err}",
                        code=getattr(err, "code", None),
                    ) from err
            finally:
                self._mutex.release(grant)
        finally:
            if _trace.TRACER is not None:
                _trace.TRACER.end(
                    self.sim.now, f"meta@{self.node.gid}", "meta.rpc",
                    found=value is not None,
                )
        return value
