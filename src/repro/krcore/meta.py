"""Meta servers: DCT metadata and MR records in DrTM-KV (§4.2, C#1).

Each node broadcasts its DCT metadata (12 bytes: DCT number + key) to the
meta servers at boot; every node pre-connects an RCQP per CPU to a nearby
meta server, so a metadata query is two one-sided READs (~4.5 us) that
never touch the meta server's CPU.
"""

import struct

from repro.cluster import timing
from repro.kvs import DrtmKvClient, DrtmKvServer
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Resource
from repro.verbs import CompletionQueue, DriverContext, QpType, WcStatus
from repro.verbs.errors import MetaUnavailableError, VerbsError

_DCT_VALUE = struct.Struct(">IQ")  # DCT number (4B) + DCT key (8B) = 12 B
_MR_VALUE = struct.Struct(">QQ")  # addr (8B) + length (8B)


def _dct_key(gid):
    return b"dct:" + gid.encode()


def _mr_key(gid, rkey):
    return b"mr:%s:%d" % (gid.encode(), rkey)


class MetaServer:
    """A meta-server deployment on one node.

    Holds two logical tables in one DrTM-KV store: ``dct:<gid>`` -> DCT
    metadata, and ``mr:<gid>:<rkey>`` -> (addr, length) for ValidMR.
    """

    SERVICE = "krcore-meta"

    def __init__(self, node, bucket_count=4096, heap_bytes=1 << 20):
        self.node = node
        self.sim = node.sim
        self.store = DrtmKvServer(node, bucket_count=bucket_count, heap_bytes=heap_bytes)
        #: Simulated timestamp until which the service is in an outage
        #: window (fault injection); 0 means never.
        self._outage_until = 0
        node.services[self.SERVICE] = self

    @property
    def catalog(self):
        return self.store.catalog

    # -- fault injection -------------------------------------------------------

    def set_outage(self, duration_ns):
        """Take the meta service down for ``duration_ns`` from now.

        Models a hung/partitioned meta deployment: clients' lookups fail
        until the window passes, exercising their backoff and the RC
        fallback path.  Overlapping windows extend, never shorten."""
        self._outage_until = max(self._outage_until, self.sim.now + int(duration_ns))

    @property
    def available(self):
        return self.node.alive and self.sim.now >= self._outage_until

    # -- boot-time broadcast targets -------------------------------------------

    def publish_dct(self, gid, dct_number, dct_key):
        self.store.put(_dct_key(gid), _DCT_VALUE.pack(dct_number, dct_key))

    def publish_mr(self, gid, rkey, addr, length):
        self.store.put(_mr_key(gid, rkey), _MR_VALUE.pack(addr, length))

    def retract_mr(self, gid, rkey):
        self.store.delete(_mr_key(gid, rkey))

    def retract_node(self, gid):
        """Drop a dead node's DCT metadata (§4.2: metadata is invalidated
        only when the host is down)."""
        self.store.delete(_dct_key(gid))


class MetaClient:
    """A node's per-CPU handle for querying a meta server with RDMA READs.

    One RCQP (pre-connected at boot) plus a scratch buffer, guarded by a
    mutex because the DrTM-KV client supports one lookup at a time.
    """

    def __init__(self, node, meta_server, scratch_bytes=4096):
        self.node = node
        self.sim = node.sim
        self.meta_server = meta_server
        self.meta_node = meta_server.node
        context = DriverContext(node, kernel=True)
        remote_context = DriverContext(self.meta_node, kernel=True)
        cq = CompletionQueue(self.sim)
        remote_cq = CompletionQueue(self.sim)
        # Boot-time pre-connection (§4.2): costs are paid before any
        # measured window, so wire the pair directly.
        self.qp = context.create_qp_fast(QpType.RC, cq, recv_cq=cq)
        peer = remote_context.create_qp_fast(QpType.RC, remote_cq, recv_cq=remote_cq)
        self.qp.to_init()
        self.qp.to_rtr((self.meta_node.gid, peer.qpn))
        self.qp.to_rts()
        peer.to_init()
        peer.to_rtr((node.gid, self.qp.qpn))
        peer.to_rts()
        scratch_addr = node.memory.alloc(scratch_bytes)
        scratch_region = node.memory.register(scratch_addr, scratch_bytes)
        self.kv = DrtmKvClient(
            meta_server.catalog, self.qp, scratch_addr, scratch_bytes, scratch_region.lkey
        )
        self._mutex = Resource(self.sim, capacity=1)

    def lookup_dct(self, gid):
        """Process: fetch (dct_number, dct_key) for ``gid``, or None."""
        value = yield from self._lookup(_dct_key(gid))
        if value is None:
            return None
        number, key = _DCT_VALUE.unpack(value)
        return (number, key)

    def lookup_mr(self, gid, rkey):
        """Process: fetch (addr, length) for a remote MR, or None."""
        value = yield from self._lookup(_mr_key(gid, rkey))
        if value is None:
            return None
        addr, length = _MR_VALUE.unpack(value)
        return (addr, length)

    def _lookup(self, key):
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"meta@{self.node.gid}", "meta.rpc",
                key=key.decode("latin-1"),
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.meta_rpcs").inc()
        grant = yield self._mutex.acquire()
        try:
            if not self.meta_server.available:
                # The service is in an outage window (or its host is
                # down): the READ can only time out, so charge the full
                # retransmission budget before reporting unavailability.
                yield timing.META_OUTAGE_PROBE_NS
                raise MetaUnavailableError(
                    f"meta server on {self.meta_node.gid} is unavailable",
                    code=WcStatus.RETRY_EXC_ERR,
                )
            try:
                value = yield from self.kv.lookup(key)
            except VerbsError as err:
                # The host died mid-lookup: surface it as unavailability
                # so callers can back off / degrade instead of crashing.
                raise MetaUnavailableError(
                    f"meta lookup via {self.meta_node.gid} failed: {err}",
                    code=getattr(err, "code", None),
                ) from err
        finally:
            self._mutex.release(grant)
        if _trace.TRACER is not None:
            _trace.TRACER.end(
                self.sim.now, f"meta@{self.node.gid}", "meta.rpc",
                found=value is not None,
            )
        return value
