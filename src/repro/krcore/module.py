"""The per-node KRCORE kernel module (§3.2 architecture).

Owns the per-CPU hybrid QP pools, the DCCache, ValidMR/MRStore, the
kernel receive machinery (buffer pool, dispatchers, port queues), the
wr_id token table that Algorithm 2's dispatch relies on, and the kernel
control channel used by the QP transfer protocol and MR publication.
"""

from collections import deque

from repro.check import hooks as _check
from repro.cluster import timing
from repro.degrade import CircuitBreaker, Deadline
from repro.krcore.meta import MetaClient, MetaPlane, MetaServer, dct_key, mr_key
from repro.krcore.mrstore import MrStore, ValidMr
from repro.krcore.pool import HybridQpPool
from repro.krcore.vqp import KrcoreError, Vqp
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.verbs.errors import DeadlineExceededError, MetaUnavailableError
from repro.verbs import (
    CompletionQueue,
    ConnectionManager,
    DriverContext,
    QpType,
    RecvBuffer,
    WcStatus,
    WorkRequest,
)
from repro.verbs.connection import rc_connect
from repro.verbs.types import QpState

#: Reserved port for kernel-to-kernel control messages.
KERNEL_PORT = 0

#: Port the background RC creator connects to on the remote node.
KRCORE_RC_PORT = 17


class _MsgQueue:
    """A deque of routed messages with event-based waiting."""

    def __init__(self, sim):
        self.sim = sim
        self.items = deque()
        self._waiters = []

    def __len__(self):
        return len(self.items)

    def append(self, item):
        self.items.append(item)
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.trigger(None)

    def popleft(self):
        return self.items.popleft()

    def wait(self):
        event = self.sim.event()
        if self.items:
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event


class _Token:
    """Decoded wr_id payload: the dispatch info Algorithm 2 encodes."""

    __slots__ = ("vqp", "covers", "entry", "event")

    def __init__(self, vqp, covers, entry, event):
        self.vqp = vqp
        self.covers = covers
        self.entry = entry
        self.event = event


class KrcoreModule:
    """One node's loadable KRCORE kernel module."""

    SERVICE = "krcore"

    def __init__(
        self,
        node,
        meta_server,
        dc_per_cpu=2,
        max_rc_per_cpu=32,
        kernel_buf_bytes=timing.KERNEL_RECV_BUFFER_BYTES,
        kernel_buf_count=256,
        zero_copy=True,
        zero_copy_threshold=None,
        background_rc=True,
        rc_traffic_threshold=64,
        mr_lease_ns=timing.MR_LEASE_NS,
        charge_checks=True,
        degrade=None,
    ):
        self.node = node
        self.sim = node.sim
        #: Overload-protection policy (repro.degrade.DegradePolicy) or
        #: None -- the default, in which case every guard below is a
        #: single falsy check and the control path is unchanged.
        self.degrade = degrade
        self._meta_breakers = {}  # shard index -> CircuitBreaker
        if degrade is not None and degrade.rnic_command_queue_limit is not None:
            node.rnic.command_queue_limit = degrade.rnic_command_queue_limit
        #: The meta plane this module talks to.  A bare MetaServer is
        #: wrapped into a one-shard plane, so ``meta_server`` accepts both
        #: and the single-deployment control path is unchanged.
        self.meta_plane = MetaPlane.ensure(meta_server)
        #: The meta shard hosted on *this* node, if any (publication kernel
        #: messages are only legal on shard hosts).
        self._local_shard = node.services.get(MetaServer.SERVICE)
        self.context = DriverContext(node, kernel=True)
        self.zero_copy = zero_copy
        self.kernel_buf_bytes = kernel_buf_bytes
        self.zero_copy_threshold = (
            kernel_buf_bytes if zero_copy_threshold is None else zero_copy_threshold
        )
        self.background_rc = background_rc
        self.rc_traffic_threshold = rc_traffic_threshold
        #: Ablation hook (Fig 12a): charge Algorithm 2's integrity checks?
        self.charge_checks = charge_checks

        self.valid_mr = ValidMr(node)
        self.mr_store = MrStore(self, lease_ns=mr_lease_ns)
        self.dc_cache = {}  # gid -> (dct_number, dct_key)

        # --- boot: DCT target + its shared receive machinery (§4.2) ---
        # A reloaded module (post-restart) derives a *different* DCT key,
        # so stale metadata cached remotely fails REM_ACCESS and forces a
        # revalidation instead of silently hitting the new incarnation.
        if node.incarnation:
            dc_key = _stable_key(f"{node.gid}#{node.incarnation}")
        else:
            dc_key = _stable_key(node.gid)
        self.dct_target = node.rnic.create_dct_target(dc_key=dc_key)
        self.dct_target.recv_cq = CompletionQueue(self.sim)
        if _check.CHECKER is not None:
            _check.CHECKER.dct_published(
                node.gid,
                node.incarnation,
                (self.dct_target.number, self.dct_target.key),
            )

        # --- kernel receive buffer pool ---
        base = node.memory.alloc(kernel_buf_bytes * kernel_buf_count)
        self._buf_base = base
        self._buf_region = node.memory.register(base, kernel_buf_bytes * kernel_buf_count)
        self._free_slots = deque(range(kernel_buf_count))
        # Stock the SRQ deep (keeping a small reserve for kernel RCQPs):
        # §4.4 assumes "the pre-posted buffers can always hold the
        # incoming message", so deployments size kernel_buf_count for
        # their expected in-flight message burst.
        reserve = min(64, kernel_buf_count // 4)
        for _ in range(kernel_buf_count - reserve):
            self._post_kernel_buffer(self.dct_target.post_srq)
        self.sim.process(
            self._recv_dispatcher(self.dct_target.recv_cq, self.dct_target.post_srq),
            name=f"krcore-dispatch-dct@{node.gid}",
        )

        # --- per-CPU hybrid pools (§4.2), DCQPs built at module load ---
        self._pools = []
        for cpu in range(node.cores):
            dc_qps = []
            for _ in range(dc_per_cpu):
                cq = CompletionQueue(self.sim)
                qp = self.context.create_qp_fast(QpType.DC, cq, recv_cq=None)
                qp.to_init()
                qp.to_rtr()
                qp.to_rts()
                dc_qps.append(qp)
            self._pools.append(HybridQpPool(self.sim, cpu, dc_qps, max_rc=max_rc_per_cpu))

        # --- meta plane wiring (boot-time broadcast + pre-connect) ---
        self._meta_clients = {}
        self.meta_plane.publish_dct(
            node.gid, self.dct_target.number, self.dct_target.key
        )
        self.meta_plane.publish_mr(
            node.gid, self._buf_region.rkey, self._buf_region.addr, self._buf_region.length
        )
        self.valid_mr.record(self._buf_region)
        # Prime the DCCache with every shard host so kernel messaging to
        # the meta plane never needs a bootstrap lookup.
        for shard in self.meta_plane.shards:
            meta_module = shard.node.services.get(self.SERVICE)
            if meta_module is not None:
                self.dc_cache.setdefault(shard.node.gid, meta_module.own_dct_meta)

        # --- kernel messaging, transfers, ports ---
        self._port_queues = {}
        self._vqps_by_id = {}
        self._bound = {}  # port -> Vqp
        self._next_vqp_id = 1
        self._reply_vqps = {}  # (port, src_gid, src_vqp) -> Vqp
        self._transfer_acks = {}  # (gid, vqp_id) -> event
        self._connected_vqps = {}  # gid -> list of Vqps (for transfers)
        self.sim.process(self._kernel_daemon(), name=f"krcore-kerneld@{node.gid}")

        # --- background RC machinery ---
        self._traffic = {}  # gid -> send count since RC decision
        self._rc_creating = set()
        manager = node.services.get(ConnectionManager.SERVICE)
        if manager is None:
            manager = ConnectionManager(node, self.context)
        manager.listen(KRCORE_RC_PORT, self._on_rc_accept)

        self.stats_transfers = 0
        self.stats_meta_lookups = 0
        self.stats_meta_failovers = 0
        self.stats_rc_fallbacks = 0
        # Lease-churn accounting (MicroView pod churn): registrations and
        # retractions since boot; sampled per harvest cycle by the app.
        self.stats_mrs_registered = 0
        self.stats_mrs_retracted = 0
        self._wrid_tokens = {}
        self._next_token = 1
        self._repairing = set()
        node.services[self.SERVICE] = self

    # ------------------------------------------------------------------ basics

    @property
    def own_dct_meta(self):
        return (self.dct_target.number, self.dct_target.key)

    @property
    def meta_server(self):
        """The meta plane (kept under the old name for existing callers;
        a one-shard plane behaves exactly like the bare server did)."""
        return self.meta_plane

    def pool(self, cpu_id):
        return self._pools[cpu_id % len(self._pools)]

    def meta_client(self, cpu_id, shard=0):
        """Per-(CPU, shard) pre-connected RCQP + DrTM-KV client."""
        key = (cpu_id % len(self._pools), shard)
        client = self._meta_clients.get(key)
        if client is None:
            client = MetaClient(
                self.node, self.meta_plane.shards[shard], shard_index=shard
            )
            self._meta_clients[key] = client
        return client

    def create_vqp(self, cpu_id=0):
        """vqp_create (Algorithm 1): software queues only, physical QP
        assignment deferred to qconnect."""
        vqp = Vqp(self, cpu_id, self._next_vqp_id)
        self._next_vqp_id += 1
        self._vqps_by_id[vqp.id] = vqp
        return vqp

    def register_connected_vqp(self, vqp):
        self._connected_vqps.setdefault(vqp.remote_gid, [])
        if vqp not in self._connected_vqps[vqp.remote_gid]:
            self._connected_vqps[vqp.remote_gid].append(vqp)

    def bind(self, port, vqp):
        """qbind: accept two-sided connections on ``port``."""
        if port == KERNEL_PORT:
            raise KrcoreError("port 0 is reserved for the kernel")
        if port in self._bound:
            raise KrcoreError(f"port {port} already bound")
        self._bound[port] = vqp
        vqp.bound_port = port

    def unbind(self, port):
        """Release a bound port (the VQP keeps working for sends)."""
        vqp = self._bound.pop(port, None)
        if vqp is not None:
            vqp.bound_port = None

    # ------------------------------------------------------------- MR handling

    def reg_mr(self, addr, length):
        """Process: register memory, record it in ValidMR, and publish the
        record to the meta server so remote nodes can validate against it."""
        yield timing.reg_mr_ns(length)
        region = self.node.memory.register(addr, length)
        self.valid_mr.record(region)
        self.stats_mrs_registered += 1
        if _check.CHECKER is not None:
            _check.CHECKER.mr_registered(self.node.gid, region.rkey, self.sim.now)
        self.sim.process(
            self._publish_mr(region), name=f"krcore-publish-mr@{self.node.gid}"
        )
        return region

    def _publish_mr(self, region):
        # One kernel message per owning shard host (replication): each
        # host applies the record to its local shard.
        for gid in self.meta_plane.owner_gids(mr_key(self.node.gid, region.rkey)):
            yield from self.send_kernel_msg(
                gid,
                {
                    "type": "publish_mr",
                    "gid": self.node.gid,
                    "rkey": region.rkey,
                    "addr": region.addr,
                    "len": region.length,
                },
            )

    def dereg_mr(self, region):
        """Process: deregister -- but only free the MR after one lease
        period, so stale MRStore entries elsewhere can never hit freed
        memory (§4.2)."""
        self.valid_mr.forget(region)
        self.stats_mrs_retracted += 1
        if _check.CHECKER is not None:
            _check.CHECKER.mr_retracted(
                self.node.gid, region.rkey, self.sim.now, self.mr_store.lease_ns
            )
        for gid in self.meta_plane.owner_gids(mr_key(self.node.gid, region.rkey)):
            yield from self.send_kernel_msg(
                gid,
                {"type": "retract_mr", "gid": self.node.gid, "rkey": region.rkey},
            )
        self.sim.schedule(
            self.mr_store.lease_ns, lambda: self.node.memory.deregister(region)
        )

    # ---------------------------------------------------------- wr_id tokens

    def encode_wr_id(self, vqp, covers, entry=None, event=None):
        """Encode (VQP pointer, covered slot count) into a wr_id token
        (Algorithm 2 line 10/17)."""
        token = self._next_token
        self._next_token += 1
        self._wrid_tokens[token] = _Token(vqp, covers, entry, event)
        return token

    def decode_wr_id(self, token):
        return self._wrid_tokens.pop(token, None)

    # ------------------------------------------------------------- poll_inner

    def poll_inner(self, qp):
        """Algorithm 2 lines 19-25: poll the physical CQ and dispatch.

        Returns the number of physical completions processed.  Slot
        reclamation (uncomp_cnt) happens inside CompletionQueue.poll, and
        the encoded ``covers`` is cross-checked against the hardware's own
        accounting.

        The pre-checks keep *requests* from corrupting a shared QP, but a
        remote failure (dead node -> retry exceeded) can still wreck it;
        when that happens the error is dispatched to the owning VQP and a
        background repair reconfigures the physical QP.
        """
        completions = qp.send_cq.poll(64)
        if completions and _check.CHECKER is not None:
            for wc in completions:
                if wc.wr_id:
                    _check.CHECKER.wr_dispatch(self, wc.wr_id)
        if completions and _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.completions_dispatched").inc(
                len(completions)
            )
        saw_error = False
        for wc in completions:
            if wc.status is not WcStatus.SUCCESS:
                saw_error = True
            token = self.decode_wr_id(wc.wr_id)
            if token is None:
                continue  # forced-signal of a flushed chunk, or foreign
            if wc.status is WcStatus.SUCCESS and token.covers != wc.covers:
                raise AssertionError(
                    f"covers mismatch: encoded {token.covers}, hardware {wc.covers}"
                )
            if token.entry is not None:
                token.entry.ready = True
                token.entry.status = wc.status
            if token.event is not None and not token.event.triggered:
                token.event.trigger(wc)
        if saw_error and qp.state is QpState.ERR and qp not in self._repairing:
            self._repairing.add(qp)
            self.sim.process(self._repair_qp(qp), name=f"krcore-repair@{self.node.gid}")
        return len(completions)

    def _repair_qp(self, qp):
        """Process: bring a wrecked pool QP back to RTS in the background
        (drain remaining flushes, then the costly reconfiguration).

        Every posted WR must be completed *and polled* before the reset:
        requests already in flight when the QP entered ERR still complete
        (flushed) at their own network-determined times, and resetting the
        slot accounting under them would make their eventual completions
        reclaim slots the fresh QP never posted."""
        try:
            while qp.outstanding:
                if self.poll_inner(qp) == 0:
                    yield qp.send_cq.wait()
            yield from qp.reconfigure()
        finally:
            self._repairing.discard(qp)

    # ----------------------------------------------------- kernel one-sided ops

    def kernel_one_sided(self, cpu_id, gid, dct_meta, wr):
        """Process: issue one signaled kernel-internal one-sided op through
        the hybrid pool and wait for its completion.

        A DC op that fails REM_ACCESS with metadata *we* looked up may be a
        stale-cache casualty (the target restarted with a new DCT key):
        revalidate once against the meta server and, if the metadata did
        change, re-issue.  Piggybacked metadata is never second-guessed."""
        piggybacked = dct_meta is not None
        pool = self.pool(cpu_id)
        if pool.has_rc(gid):
            qp = pool.select_rc(gid)
        else:
            qp = pool.select_dc()
            if dct_meta is None:
                dct_meta = yield from self._dct_meta_for(cpu_id, gid)
            wr.dct_gid = gid
            wr.dct_number, wr.dct_key = dct_meta
        wc = yield from self._issue_signaled(qp, wr)
        if (
            wc.status is WcStatus.REM_ACCESS_ERR
            and qp.qp_type is QpType.DC
            and not piggybacked
        ):
            try:
                fresh = yield from self.revalidate_dct(cpu_id, gid, stale_meta=dct_meta)
            except KrcoreError:
                return wc  # meta also unreachable: report the original error
            if fresh != tuple(dct_meta):
                wr.dct_gid = gid
                wr.dct_number, wr.dct_key = fresh
                yield from self._await_usable(qp)
                wc = yield from self._issue_signaled(qp, wr)
        return wc

    def _await_usable(self, qp):
        """Process: wait for a wrecked pool QP to be back at RTS, spawning
        the background repair if the error's poll didn't already."""
        while qp.state is not QpState.RTS:
            if qp.state is QpState.ERR and qp not in self._repairing:
                self._repairing.add(qp)
                self.sim.process(
                    self._repair_qp(qp), name=f"krcore-repair@{self.node.gid}"
                )
            yield timing.KRCORE_BACKOFF_BASE_NS

    def _issue_signaled(self, qp, wr):
        """Process: post one signaled WR on ``qp`` and wait it out."""
        event = self.sim.event()
        wr.signaled = True
        wr.wr_id = self.encode_wr_id(None, 1, event=event)
        yield timing.POST_SEND_CPU_NS
        while qp.free_slots < 1:
            if self.poll_inner(qp) == 0:
                yield qp.send_cq.wait()
        qp.post_send(wr)
        wc = yield from self._wait_token_event(qp, event)
        return wc

    def _wait_token_event(self, qp, event):
        """Process: poll until the token's completion fires (it may also be
        dispatched by any other VQP polling the same physical CQ)."""
        while not event.triggered:
            if self.poll_inner(qp) == 0:
                yield qp.send_cq.wait()
        return event.value

    def _dct_meta_for(self, cpu_id, gid):
        meta = self.dc_cache.get(gid)
        if meta is None:
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.dc_cache_misses").inc()
            meta = yield from self.lookup_dct_robust(cpu_id, gid)
            if meta is None:
                raise KrcoreError(
                    f"no DCT metadata for {gid}", code=WcStatus.REM_ACCESS_ERR
                )
            if _check.CHECKER is not None:
                _check.CHECKER.dc_cache_insert(self, gid, meta)
            self.dc_cache[gid] = meta
        elif _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.dc_cache_hits").inc()
        return meta

    def op_deadline(self, deadline_ns=None):
        """A :class:`Deadline` for one control-path op (explicit budget,
        else the policy's default), or None when budgets are off."""
        if deadline_ns is not None:
            return Deadline.after(self.sim, deadline_ns)
        if self.degrade is not None and self.degrade.deadline_ns is not None:
            return Deadline.after(self.sim, self.degrade.deadline_ns)
        return None

    def meta_breaker(self, shard):
        """The lazily-built circuit breaker guarding one meta shard."""
        breaker = self._meta_breakers.get(shard)
        if breaker is None:
            policy = self.degrade
            breaker = CircuitBreaker(
                self.sim,
                name=f"meta-shard{shard}@{self.node.gid}",
                failure_threshold=policy.breaker_failure_threshold,
                recovery_ns=policy.breaker_recovery_ns,
                latency_threshold_ns=policy.breaker_latency_ns,
            )
            self._meta_breakers[shard] = breaker
        return breaker

    def admit_qconnect(self, cpu_id, deadline=None):
        """Process: pass the per-CPU qconnect admission gate.  A no-op
        generator when admission control is off (the default)."""
        policy = self.degrade
        if policy is None or not policy.admission_enabled:
            return
        gate = self.pool(cpu_id).admission_gate(self.sim, policy)
        yield from gate.admit(deadline)

    def plane_lookup_dct(self, cpu_id, gid, deadline=None):
        """Process: one DCT lookup via the plane, failing over across the
        key's owner shards (primary first).  Raises
        :class:`MetaUnavailableError` only when *every* owner is dark."""
        return (
            yield from self._plane_lookup(
                cpu_id,
                dct_key(gid),
                lambda client: client.lookup_dct(gid, deadline=deadline),
                deadline,
            )
        )

    def plane_lookup_mr(self, cpu_id, gid, rkey, deadline=None):
        """Process: one MR-record lookup via the plane, with failover."""
        return (
            yield from self._plane_lookup(
                cpu_id,
                mr_key(gid, rkey),
                lambda client: client.lookup_mr(gid, rkey, deadline=deadline),
                deadline,
            )
        )

    def _plane_lookup(self, cpu_id, key, fetch, deadline=None):
        owners = self.meta_plane.owner_indices(key)
        breakers = self.degrade is not None and self.degrade.breaker_enabled
        last_error = None
        for position, shard in enumerate(owners):
            if position:
                # The budget shrinks across shard probes: whatever the
                # primary burned (an outage probe, a lagging reply) is
                # time the replica probe no longer has.
                if deadline is not None and deadline.expired(self.sim.now):
                    raise DeadlineExceededError(
                        f"budget spent after {position} owner probe(s) of "
                        f"{key!r}", code=WcStatus.RETRY_EXC_ERR,
                    )
                if _trace.TRACER is not None:
                    _trace.TRACER.instant(
                        self.sim.now, f"krcore@{self.node.gid}", "meta.failover",
                        shard=shard,
                    )
            breaker = self.meta_breaker(shard) if breakers else None
            if breaker is not None and not breaker.allow():
                # Open breaker: fast-fail this shard without burning a
                # META_OUTAGE_PROBE on a dependency known to be sick.
                last_error = MetaUnavailableError(
                    f"meta shard {shard} breaker is {breaker.state}",
                    code=WcStatus.RETRY_EXC_ERR,
                )
                if position + 1 < len(owners):
                    self.stats_meta_failovers += 1
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("krcore.meta_failovers").inc()
                continue
            started = self.sim.now
            try:
                value = yield from fetch(self.meta_client(cpu_id, shard))
            except DeadlineExceededError:
                # The budget died inside this shard's fetch (queued at the
                # client mutex, or a lagging reply).  No failover -- the
                # caller is out of time either way -- but the breaker
                # learns the shard is slow, so the *next* caller skips it.
                if breaker is not None:
                    breaker.record_failure()
                raise
            except MetaUnavailableError as err:
                if breaker is not None:
                    breaker.record_failure()
                last_error = err
                if position + 1 < len(owners):
                    self.stats_meta_failovers += 1
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("krcore.meta_failovers").inc()
            else:
                if breaker is not None:
                    breaker.record_success(self.sim.now - started)
                return value
        raise last_error

    def lookup_dct_robust(self, cpu_id, gid, deadline=None):
        """Process: DCT metadata lookup with bounded retry + exponential
        backoff (seed-derived jitter desynchronizes concurrent herds),
        each attempt failing over across the key's owner shards.  Raises
        :class:`MetaUnavailableError` once the budget is spent, or
        :class:`DeadlineExceededError` as soon as the caller's remaining
        time cannot cover the next backoff sleep; returns None for a
        *reachable* owner with no record (the node never booted or was
        retracted)."""
        backoff = timing.KRCORE_BACKOFF_BASE_NS
        attempt = 0
        while True:
            self.stats_meta_lookups += 1
            try:
                return (yield from self.plane_lookup_dct(cpu_id, gid, deadline))
            except MetaUnavailableError as err:
                attempt += 1
                if attempt > timing.KRCORE_META_RETRIES:
                    raise
                pause = backoff + timing.backoff_jitter_ns(
                    backoff, f"{self.node.gid}->{gid}", attempt
                )
                if deadline is not None and deadline.remaining_ns(self.sim.now) <= pause:
                    raise DeadlineExceededError(
                        f"deadline cannot cover retry {attempt} backoff "
                        f"({pause} ns) for DCT lookup of {gid}",
                        code=WcStatus.RETRY_EXC_ERR,
                    ) from err
                yield pause
                backoff = min(backoff * 2, timing.KRCORE_BACKOFF_MAX_NS)

    def revalidate_dct(self, cpu_id, gid, stale_meta=None):
        """Process: drop a suspect DCCache entry and re-fetch fresh DCT
        metadata (§4.2: metadata is invalidated when the host is down -- a
        restarted host publishes a new key under the same gid)."""
        if _trace.TRACER is not None:
            _trace.TRACER.instant(
                self.sim.now, f"krcore@{self.node.gid}", "dct.revalidate", gid=gid
            )
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.dct_revalidations").inc()
        cached = self.dc_cache.get(gid)
        if stale_meta is None or cached is None or cached == tuple(stale_meta):
            self.dc_cache.pop(gid, None)
        return (yield from self._dct_meta_for(cpu_id, gid))

    def fence_qp(self, vqp, qp):
        """Process: the §4.6 fence -- a fake signaled request through the
        old physical QP; its completion implies all prior requests on that
        QP are complete (RC FIFO)."""
        peer_module = self._peer_module(vqp.remote_gid)
        fence = WorkRequest.read(
            self._buf_base,
            8,
            self._buf_region.lkey,
            peer_module._buf_base,
            peer_module._buf_region.rkey,
        )
        if qp.qp_type is QpType.DC:
            meta = vqp.dct_meta
            if meta is None:
                meta = yield from self._dct_meta_for(vqp.cpu_id, vqp.remote_gid)
            fence.dct_gid = vqp.remote_gid
            fence.dct_number, fence.dct_key = meta
        event = self.sim.event()
        fence.signaled = True
        fence.wr_id = self.encode_wr_id(None, 1, event=event)
        yield timing.POST_SEND_CPU_NS
        while qp.free_slots < 1:
            if self.poll_inner(qp) == 0:
                yield qp.send_cq.wait()
        qp.post_send(fence)
        wc = yield from self._wait_token_event(qp, event)
        if wc.status is not WcStatus.SUCCESS:
            raise KrcoreError(f"transfer fence failed: {wc.status}", code=wc.status)

    def _peer_module(self, gid):
        if not self.node.fabric.has_node(gid):
            raise KrcoreError(f"{gid} is unreachable", code=WcStatus.RETRY_EXC_ERR)
        peer = self.node.fabric.node(gid).services.get(self.SERVICE)
        if peer is None:
            raise KrcoreError(f"{gid} runs no KRCORE module", code=WcStatus.RETRY_EXC_ERR)
        return peer

    # ------------------------------------------------------------ kernel msgs

    def send_kernel_msg(self, gid, header):
        """Process: a zero-payload two-sided message to ``gid``'s kernel."""
        header = dict(header)
        header.setdefault("dst_port", KERNEL_PORT)
        header.setdefault("src_gid", self.node.gid)
        header.setdefault("src_dct_meta", self.own_dct_meta)
        wr = WorkRequest.send(0, 0, 0, header=header)
        yield from self.kernel_one_sided_send(gid, wr)

    def kernel_one_sided_send(self, gid, wr):
        pool = self.pool(0)
        if pool.has_rc(gid):
            qp = pool.select_rc(gid)
        else:
            qp = pool.select_dc()
            meta = yield from self._dct_meta_for(0, gid)
            wr.dct_gid = gid
            wr.dct_number, wr.dct_key = meta
        event = self.sim.event()
        wr.signaled = True
        wr.wr_id = self.encode_wr_id(None, 1, event=event)
        while qp.free_slots < 1:
            if self.poll_inner(qp) == 0:
                yield qp.send_cq.wait()
        qp.post_send(wr)
        wc = yield from self._wait_token_event(qp, event)
        if wc.status is not WcStatus.SUCCESS:
            raise KrcoreError(
                f"kernel message to {gid} failed: {wc.status}", code=wc.status
            )

    def _kernel_daemon(self):
        queue = self._port_queue(KERNEL_PORT)
        while True:
            yield queue.wait()
            while len(queue):
                msg = queue.popleft()
                self._release_slot(msg)
                self.sim.process(
                    self._handle_kernel_msg(msg["header"]),
                    name=f"krcore-kmsg@{self.node.gid}",
                )

    def _handle_kernel_msg(self, header):
        kind = header.get("type")
        if kind == "publish_mr":
            if self._local_shard is None:
                raise KrcoreError("publish_mr sent to a non-meta node")
            self._local_shard.publish_mr(
                header["gid"], header["rkey"], header["addr"], header["len"]
            )
        elif kind == "retract_mr":
            if self._local_shard is None:
                raise KrcoreError("retract_mr sent to a non-meta node")
            self._local_shard.retract_mr(header["gid"], header["rkey"])
        elif kind == "transfer":
            yield from self._handle_peer_transfer(header)
            return
        elif kind == "transfer_ack":
            event = self._transfer_acks.pop(
                (header["src_gid"], header["to_vqp"]), None
            )
            if event is not None and not event.triggered:
                event.trigger(None)
        yield 0  # all handlers are processes

    #: How long to wait for a transfer acknowledgment before concluding
    #: the peer is gone (no reply can ever arrive from a dead node).
    TRANSFER_ACK_TIMEOUT_NS = 10 * 1_000_000

    def notify_peer_transfer(self, vqp):
        """Process: tell the two-sided peer to re-virtualize its side and
        wait for the acknowledgment (§4.6: "For correctness, we must wait
        for the remote acknowledgments").  A dead peer cannot ack; after a
        timeout the transfer proceeds (its replies can never arrive on the
        old QP either)."""
        from repro.sim import AnyOf

        gid, peer_vqp_id = vqp.peer
        ack = self.sim.event()
        self._transfer_acks[(gid, vqp.id)] = ack
        try:
            yield from self.send_kernel_msg(
                gid,
                {"type": "transfer", "to_vqp": peer_vqp_id, "from_vqp": vqp.id},
            )
        except KrcoreError:
            # The notification itself failed (peer unreachable): give up
            # on the ack and let the caller swap.
            self._transfer_acks.pop((gid, vqp.id), None)
            return
        yield AnyOf([ack, self.sim.timeout(self.TRANSFER_ACK_TIMEOUT_NS)])
        self._transfer_acks.pop((gid, vqp.id), None)

    def _handle_peer_transfer(self, header):
        vqp = self._vqps_by_id.get(header["to_vqp"])
        if vqp is not None and vqp.qp is not None:
            pool = self.pool(vqp.cpu_id)
            if pool.has_rc(vqp.remote_gid):
                new_qp = pool.select_rc(vqp.remote_gid)
            else:
                new_qp = pool.select_dc()
                vqp.dct_meta = yield from self._dct_meta_for(vqp.cpu_id, vqp.remote_gid)
            if new_qp is not vqp.qp:
                yield from self.fence_qp(vqp, vqp.qp)
                vqp.qp = new_qp
                self.stats_transfers += 1
        yield from self.send_kernel_msg(
            header["src_gid"],
            {
                "type": "transfer_ack",
                "to_vqp": header["from_vqp"],
            },
        )

    # --------------------------------------------------------------- receive

    def _post_kernel_buffer(self, replenisher):
        if not self._free_slots:
            return False
        slot = self._free_slots.popleft()
        replenisher(
            RecvBuffer(
                self._buf_base + slot * self.kernel_buf_bytes,
                self.kernel_buf_bytes,
                self._buf_region.lkey,
                wr_id=slot,
            )
        )
        return True

    def _recv_dispatcher(self, cq, replenisher):
        """Drain one physical receive CQ, routing messages to VQPs/ports."""
        while True:
            yield cq.wait()
            for wc in cq.poll(128):
                self._route_message(wc, replenisher)

    def _route_message(self, wc, replenisher):
        from repro.verbs.cq import Completion
        from repro.verbs.types import Opcode

        if wc.opcode is Opcode.RECV_IMM:
            # WRITE_WITH_IMM: the payload already landed at ``raddr`` via
            # the write half; the consumed kernel buffer only carried the
            # CQE, so free its slot right away and restock.  The 32-bit
            # immediate names the destination VQP.
            self._free_slots.append(wc.wr_id)
            self._post_kernel_buffer(replenisher)
            vqp = self._vqps_by_id.get(wc.imm)
            if vqp is None:
                return  # no such VQP: the immediate is dropped
            vqp.recv_completions.append(
                Completion(
                    0,
                    WcStatus.SUCCESS,
                    Opcode.RECV_IMM,
                    byte_len=wc.byte_len,
                    src=wc.src,
                    imm=wc.imm,
                )
            )
            self._vqp_msg_arrived(vqp)
            return
        header = wc.header or {}
        msg = {
            "header": header,
            "slot": wc.wr_id,
            "len": wc.byte_len,
            "replenisher": replenisher,
            "released": False,
        }
        # Keep the receive queue stocked while the slot is in use.
        self._post_kernel_buffer(replenisher)
        dst_vqp = header.get("dst_vqp")
        if dst_vqp is not None:
            vqp = self._vqps_by_id.get(dst_vqp)
            if vqp is None:
                self._release_slot(msg)
                return
            vqp.pending_msgs.append(msg)
            self._vqp_msg_arrived(vqp)
            return
        port = header.get("dst_port")
        if port is None or (port != KERNEL_PORT and port not in self._bound):
            self._release_slot(msg)  # no receiver: drop
            return
        self._port_queue(port).append(msg)

    def _release_slot(self, msg):
        if msg["released"]:
            return
        msg["released"] = True
        self._free_slots.append(msg["slot"])

    def _port_queue(self, port):
        queue = self._port_queues.get(port)
        if queue is None:
            queue = _MsgQueue(self.sim)
            self._port_queues[port] = queue
        return queue

    # -- waiting hooks for VQP-addressed messages --

    def _vqp_msg_arrived(self, vqp):
        waiters = getattr(vqp, "_msg_waiters", None)
        if waiters:
            for event in waiters:
                if not event.triggered:
                    event.trigger(None)
            waiters.clear()

    def vqp_msg_event(self, vqp):
        event = self.sim.event()
        if vqp.pending_msgs:
            event.trigger(None)
        else:
            if not hasattr(vqp, "_msg_waiters"):
                vqp._msg_waiters = []
            vqp._msg_waiters.append(event)
        return event

    def deliver_vqp_msgs(self, vqp):
        """Process: move messages addressed to ``vqp`` into its posted user
        buffers, producing recv completions (copy or zero-copy)."""
        from repro.verbs.cq import Completion
        from repro.verbs.types import Opcode

        while vqp.pending_msgs and vqp.recv_queue:
            msg = vqp.pending_msgs.popleft()
            user_buf = vqp.recv_queue.popleft()
            byte_len = yield from self._land_message(vqp, msg, user_buf)
            header = msg["header"]
            vqp.recv_completions.append(
                Completion(
                    user_buf.wr_id,
                    WcStatus.SUCCESS,
                    Opcode.RECV,
                    byte_len=byte_len,
                    src=(header.get("src_gid"), header.get("src_vqp")),
                    header=header,
                )
            )

    def _land_message(self, vqp, msg, user_buf):
        """Process: copy path or zero-copy READ path (§4.5)."""
        header = msg["header"]
        zc = header.get("zc")
        yield timing.TWO_SIDED_SERVER_CPU_KERNEL_NS - timing.TWO_SIDED_SERVER_CPU_NS
        if zc is not None:
            self._release_slot(msg)  # descriptor slot freed immediately
            if zc["len"] > user_buf.length:
                raise KrcoreError(
                    f"zero-copy payload of {zc['len']}B exceeds the user's "
                    f"{user_buf.length}B receive buffer"
                )
            wr = WorkRequest.read(
                user_buf.addr, zc["len"], user_buf.lkey, zc["addr"], zc["rkey"]
            )
            wc = yield from self.kernel_one_sided(
                vqp.cpu_id, header["src_gid"], header.get("src_dct_meta"), wr
            )
            if wc.status is not WcStatus.SUCCESS:
                raise KrcoreError(f"zero-copy READ failed: {wc.status}", code=wc.status)
            return zc["len"]
        length = min(msg["len"], user_buf.length)
        yield int(length * timing.MEMCPY_NS_PER_BYTE)
        payload = self.node.memory.read(
            self._buf_base + msg["slot"] * self.kernel_buf_bytes, length
        )
        self.node.memory.write(user_buf.addr, payload)
        self._release_slot(msg)
        return length

    def qpop_msgs(self, vqp, max_msgs=16, cpu_id=None):
        """Process: §4.4 qpop_msgs -- drain the bound port's messages into
        the VQP's user buffers and hand back (reply-VQP, completion) pairs.

        The reply VQP is connected with the piggybacked DCT metadata, so no
        additional network request is ever issued.  ``cpu_id`` selects the
        hybrid pool the reply VQPs virtualize from -- the calling thread's
        CPU, like the real per-CPU kernel handler (§4.2).
        """
        if vqp.bound_port is None:
            raise KrcoreError(f"VQP {vqp.id} is not bound; call qbind first")
        if cpu_id is None:
            cpu_id = vqp.cpu_id
        queue = self._port_queue(vqp.bound_port)
        results = []
        while len(queue) and len(results) < max_msgs and vqp.recv_queue:
            msg = queue.popleft()
            user_buf = vqp.recv_queue.popleft()
            byte_len = yield from self._land_message(vqp, msg, user_buf)
            header = msg["header"]
            reply_vqp = yield from self._reply_vqp(vqp, header, cpu_id)
            from repro.verbs.cq import Completion
            from repro.verbs.types import Opcode

            results.append(
                (
                    reply_vqp,
                    Completion(
                        user_buf.wr_id,
                        WcStatus.SUCCESS,
                        Opcode.RECV,
                        byte_len=byte_len,
                        src=(header.get("src_gid"), header.get("src_vqp")),
                        header=header,
                    ),
                )
            )
        return results

    def wait_port_msg(self, vqp):
        """Event that fires when the bound port has (or gets) a message."""
        return self._port_queue(vqp.bound_port).wait()

    def _reply_vqp(self, bound_vqp, header, cpu_id):
        key = (bound_vqp.bound_port, header["src_gid"], header["src_vqp"])
        vqp = self._reply_vqps.get(key)
        if vqp is not None:
            return vqp
        # Piggybacked metadata primes the DCCache: the connect below never
        # queries the meta server.
        meta = header.get("src_dct_meta")
        if meta is not None:
            self.dc_cache.setdefault(header["src_gid"], tuple(meta))
        vqp = self.create_vqp(cpu_id=cpu_id)
        yield from vqp.connect(header["src_gid"])
        vqp.peer = (header["src_gid"], header["src_vqp"])
        self._reply_vqps[key] = vqp
        return vqp

    def migrate_vqp(self, vqp, new_cpu_id):
        """Process: re-virtualize a VQP onto another CPU's pool (§4.2:
        "In case of thread migrations, KRCORE also re-virtualizes QPs in
        the background with a transparent QP transfer protocol")."""
        pool = self.pool(new_cpu_id)
        if vqp.qp is not None:
            if vqp.remote_gid is not None and pool.has_rc(vqp.remote_gid):
                new_qp = pool.select_rc(vqp.remote_gid)
                yield from vqp.transfer_to(new_qp)
            else:
                meta = vqp.dct_meta
                if meta is None and vqp.remote_gid is not None:
                    meta = yield from self._dct_meta_for(new_cpu_id, vqp.remote_gid)
                yield from vqp.transfer_to(pool.select_dc(), new_dct_meta=meta)
        vqp.cpu_id = pool.cpu_id

    # ------------------------------------------------------ background RCQPs

    def note_traffic(self, gid, cpu_id, count=1):
        """Sample outgoing traffic; kick off background RC creation for
        frequently-contacted nodes (§4.3)."""
        if gid is None:
            return
        self._traffic[gid] = self._traffic.get(gid, 0) + count
        if not self.background_rc:
            return
        pool = self.pool(cpu_id)
        if (
            self._traffic[gid] >= self.rc_traffic_threshold
            and not pool.has_rc(gid)
            and (gid, pool.cpu_id) not in self._rc_creating
        ):
            self._rc_creating.add((gid, pool.cpu_id))
            self.sim.process(
                self._create_rc_background(gid, pool),
                name=f"krcore-rc-create@{self.node.gid}",
            )

    def establish_rc(self, gid, pool):
        """Process: full RC handshake to ``gid``'s daemon (the paper's old
        control path), wired for kernel receive and inserted in ``pool``.

        Used both for background RC promotion and as the degraded-mode
        fallback when the meta service is unreachable (a handshake needs no
        DCT metadata).  Returns the RTS queue pair."""
        if _trace.TRACER is not None:
            _trace.TRACER.begin(
                self.sim.now, f"krcore@{self.node.gid}", "krcore.establish_rc",
                gid=gid,
            )
        send_cq = CompletionQueue(self.sim)
        qp = yield from rc_connect(self.context, send_cq, gid, port=KRCORE_RC_PORT)
        # Separate the recv CQ so the dispatcher never steals send
        # completions from poll_inner.
        qp.recv_cq = CompletionQueue(self.sim)
        for _ in range(8):
            self._post_kernel_buffer(qp.post_recv)
        self.sim.process(
            self._recv_dispatcher(qp.recv_cq, qp.post_recv),
            name=f"krcore-dispatch-rc@{self.node.gid}",
        )
        evicted = pool.insert_rc(gid, qp)
        if evicted is not None:
            self._retire_rc(*evicted, pool)
        if _trace.TRACER is not None:
            _trace.TRACER.end(
                self.sim.now, f"krcore@{self.node.gid}", "krcore.establish_rc"
            )
        return qp

    def _create_rc_background(self, gid, pool):
        """Process: create + configure an RCQP to ``gid`` in the background
        (the control-path cost is off the application's critical path), then
        transparently transfer this CPU's VQPs onto it."""
        try:
            qp = yield from self.establish_rc(gid, pool)
            for vqp in list(self._connected_vqps.get(gid, [])):
                if vqp.cpu_id == pool.cpu_id and vqp.qp is not qp:
                    yield from vqp.transfer_to(qp)
        finally:
            self._rc_creating.discard((gid, pool.cpu_id))

    def _retire_rc(self, gid, qp, pool):
        """An LRU-evicted RCQP: move its VQPs back onto DC before dropping."""
        self.sim.process(self._retire_rc_proc(gid, qp, pool))

    def _retire_rc_proc(self, gid, qp, pool):
        for vqp in list(self._connected_vqps.get(gid, [])):
            if vqp.qp is qp:
                meta = yield from self._dct_meta_for(pool.cpu_id, gid)
                yield from vqp.transfer_to(pool.select_dc(), new_dct_meta=meta)
        self.node.rnic.unregister_qp(qp)
        if _check.CHECKER is not None:
            _check.CHECKER.rc_retired(qp)

    def _on_rc_accept(self, qp, client_gid):
        """The remote side of background RC creation: stock the accepted QP
        with kernel buffers and start dispatching its receives."""
        # Own both CQs: the daemon's shared accept CQ must not mix this
        # module's completions with other services' (LITE, apps).
        qp.send_cq = CompletionQueue(self.sim)
        qp.recv_cq = CompletionQueue(self.sim)
        for _ in range(8):
            self._post_kernel_buffer(qp.post_recv)
        self.sim.process(
            self._recv_dispatcher(qp.recv_cq, qp.post_recv),
            name=f"krcore-dispatch-acc@{self.node.gid}",
        )
        # The accepted QP is also useful for our own traffic back.
        pool = self.pool(_stable_key(client_gid) % len(self._pools))
        if not pool.has_rc(client_gid):
            evicted = pool.insert_rc(client_gid, qp)
            if evicted is not None:
                # Same as establish_rc: the LRU victim must migrate its
                # VQPs and leave the RNIC, or it leaks a registered QP.
                self._retire_rc(*evicted, pool)

    # -------------------------------------------------------------- liveness

    def invalidate_node(self, gid):
        """Drop all cached state about a dead node (§4.2: DCT metadata is
        invalidated only when the host is down)."""
        self.dc_cache.pop(gid, None)
        self.mr_store.invalidate(gid)
        for pool in self._pools:
            qp = pool.drop_rc(gid)
            if qp is not None:
                # An RCQP to a dead peer is useless; leaving it registered
                # would leak driver memory exactly like an unretired LRU
                # victim (the pool-qp-accounting invariant).
                self.node.rnic.unregister_qp(qp)
                if _check.CHECKER is not None:
                    _check.CHECKER.rc_retired(qp)
        if self._local_shard is not None:
            self._local_shard.retract_node(gid)

    # ------------------------------------------------------------- accounting

    def connection_cache_bytes(self):
        """Memory for connection caching: the QP pools plus the 12-byte DCT
        metadata entries (Fig 15a)."""
        pools = sum(pool.memory_bytes() for pool in self._pools)
        return pools + len(self.dc_cache) * timing.DCT_METADATA_BYTES


def _stable_key(text):
    """A deterministic small hash (Python's hash() is salted per process)."""
    value = 0
    for ch in text.encode():
        value = (value * 131 + ch) % 1_000_000_007
    return value
