"""The hybrid QP pool: static DCQPs plus on-the-fly RCQPs (§4.2).

The pool is divided per CPU to avoid lock contention; each VQP only
virtualizes QPs from its local CPU's pool.  DCQPs are created at module
load; RCQPs appear in the background for frequently-contacted nodes and
are reclaimed LRU when the pool overflows.
"""

from repro.check import hooks as _check
from repro.cluster import timing
from repro.obs import metrics as _metrics


class HybridQpPool:
    """One CPU's share of the node's QP pool."""

    def __init__(self, sim, cpu_id, dc_qps, max_rc=32):
        self.sim = sim
        self.cpu_id = cpu_id
        self.dc = list(dc_qps)
        self.max_rc = max_rc
        self._dc_next = 0
        self.rc = {}  # gid -> QueuePair
        self._rc_last_use = {}  # gid -> sim time of last selection
        #: Admission gate guarding this CPU's share of the meta-lookup
        #: capacity (repro.degrade); None until a DegradePolicy with
        #: admission enabled asks for it, so the default pool pays
        #: nothing.
        self.admission = None

    def admission_gate(self, sim, policy):
        """The lazily-built qconnect admission gate for this CPU."""
        gate = self.admission
        if gate is None:
            from repro.degrade import AdmissionGate

            gate = AdmissionGate(
                sim,
                rate_per_sec=policy.admission_rate_per_sec,
                burst=policy.admission_burst,
                max_pending=policy.admission_max_pending,
                name=f"qconnect-cpu{self.cpu_id}",
            )
            self.admission = gate
        return gate

    # -- selection (Algorithm 1, lines 8-11) -----------------------------------

    def has_rc(self, gid):
        return gid in self.rc

    def select_rc(self, gid):
        qp = self.rc[gid]
        self._rc_last_use[gid] = self.sim.now
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.pool_rc_grabs").inc()
        return qp

    def select_dc(self):
        """Round-robin over the DC QPs: reconnections to different targets
        can then proceed concurrently (§4.2)."""
        if not self.dc:
            raise LookupError(f"cpu {self.cpu_id}: no DC QPs in the pool")
        qp = self.dc[self._dc_next % len(self.dc)]
        self._dc_next += 1
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.pool_dc_grabs").inc()
        return qp

    # -- RC lifecycle ------------------------------------------------------------

    def insert_rc(self, gid, qp):
        """Add a background-created RCQP; LRU-evict beyond ``max_rc``.

        Returns the evicted (gid, qp) or None.
        """
        evicted = None
        if gid not in self.rc and len(self.rc) >= self.max_rc:
            victim = min(self._rc_last_use, key=self._rc_last_use.get)
            evicted = (victim, self.rc.pop(victim))
            del self._rc_last_use[victim]
        self.rc[gid] = qp
        self._rc_last_use[gid] = self.sim.now
        if _check.CHECKER is not None:
            _check.CHECKER.pool_rc_insert(self, gid, qp, evicted)
        return evicted

    def drop_rc(self, gid):
        self._rc_last_use.pop(gid, None)
        qp = self.rc.pop(gid, None)
        if qp is not None and _check.CHECKER is not None:
            _check.CHECKER.pool_rc_drop(self, gid, qp)
        return qp

    # -- accounting ----------------------------------------------------------------

    def memory_bytes(self):
        """Driver memory held by this CPU's pool (for Fig 15a)."""
        return len(self.dc) * timing.dc_qp_memory_bytes() + len(self.rc) * (
            timing.rc_qp_memory_bytes()
        )
