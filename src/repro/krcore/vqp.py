"""Virtual queue pairs: Algorithms 1 and 2 of the paper (§4.3-4.4).

A VQP gives an application an exclusively-owned QP abstraction while the
kernel multiplexes many VQPs onto one shared physical QP.  Correctness
hinges on three duties the paper spells out (§4.4):

1. *detect malformed requests* before they reach the shared QP (a bad
   opcode or memory key would move it to ERR);
2. *prevent NIC queue overflow* -- software tracks the uncompleted count
   and polls the physical CQ before posting when space is short;
3. *dispatch completion events* -- the VQP identity and the number of
   send-queue slots a signaled request covers are encoded in ``wr_id``.
"""

from collections import deque

from repro.check import hooks as _check
from repro.cluster import timing
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.verbs.errors import KrcoreError, MetaUnavailableError, VerbsError
from repro.verbs.types import POSTABLE_OPCODES, Opcode, QpType, WcStatus

__all__ = ["CompletionEntry", "KrcoreError", "Vqp"]


class CompletionEntry:
    """One slot of a VQP's software completion queue.

    Mirrors Algorithm 2's ``(NotReady, wr_id)`` pairs: created not-ready at
    post time, flipped ready by ``poll_inner`` when the physical completion
    is dispatched.
    """

    __slots__ = ("ready", "wr_id", "status", "opcode")

    def __init__(self, wr_id, opcode):
        self.ready = False
        self.wr_id = wr_id
        self.status = WcStatus.SUCCESS
        self.opcode = opcode

    @property
    def ok(self):
        return self.status is WcStatus.SUCCESS


class Vqp:
    """A kernel-side virtual QP (vqp_create of Algorithm 1)."""

    def __init__(self, module, cpu_id, vqp_id):
        self.module = module
        self.node = module.node
        self.sim = module.sim
        self.id = vqp_id
        self.cpu_id = cpu_id
        # Algorithm 1 lines 3-5: software queues; physical QP bound later.
        self.comp_queue = deque()
        self.recv_queue = deque()  # user-posted RecvBuffers (ibv_post_recv)
        self.recv_completions = deque()  # delivered two-sided completions
        self.pending_msgs = deque()  # messages addressed to this VQP
        self.qp = None
        self.dct_meta = None
        self.remote_gid = None
        self.remote_port = None
        self.bound_port = None
        self.peer = None  # (gid, vqp_id) once a two-sided peering exists
        self.stats_posted = 0

    # ------------------------------------------------------------ Algorithm 1

    def connect(self, gid, port=0, deadline=None):
        """Process: vqp_connect -- bind a pre-initialized physical QP.

        RC from the hybrid pool when available, else a DCQP plus the
        target's DCT metadata (DCCache first, meta server on a miss; the
        lookup retries with exponential backoff).  If the meta service
        stays unreachable, degrade gracefully: fall back to a full RC
        handshake with the target's connection daemon -- the paper's "old
        control path" costs milliseconds but needs no metadata.

        A DCCache miss is the expensive path -- it consumes shared
        meta-lookup capacity -- so that is where the module's admission
        gate sits and where ``deadline`` (the caller's remaining budget)
        is threaded through every meta RPC hop.
        """
        if self.remote_gid is not None and self.remote_gid != gid:
            raise KrcoreError(f"VQP {self.id} already connected to {self.remote_gid}")
        if self.qp is None:
            pool = self.module.pool(self.cpu_id)
            if pool.has_rc(gid):
                self.qp = pool.select_rc(gid)
            else:
                meta = self.module.dc_cache.get(gid)
                track = f"krcore@{self.node.gid}"
                if meta is None:
                    if _trace.TRACER is not None:
                        _trace.TRACER.instant(
                            self.sim.now, track, "dc_cache.miss", gid=gid
                        )
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("krcore.dc_cache_misses").inc()
                    yield from self.module.admit_qconnect(self.cpu_id, deadline)
                    meta = yield from self._fetch_dct_meta(gid, pool, deadline)
                    if deadline is not None:
                        # A gray-slow fetch can *succeed* past the budget
                        # (the lag sits between the client's checkpoints);
                        # fail here rather than report a "success" the
                        # caller had already written off.
                        deadline.check(
                            self.sim.now, f"fetched DCT metadata for {gid}"
                        )
                else:
                    if _trace.TRACER is not None:
                        _trace.TRACER.instant(
                            self.sim.now, track, "dc_cache.hit", gid=gid
                        )
                    if _metrics.METRICS is not None:
                        _metrics.METRICS.counter("krcore.dc_cache_hits").inc()
                if self.qp is None:  # not claimed by the RC fallback
                    self.qp = pool.select_dc()
                    self.dct_meta = meta
        self.remote_gid = gid
        self.remote_port = port
        self.module.register_connected_vqp(self)
        return self

    def _fetch_dct_meta(self, gid, pool, deadline=None):
        """Process: robust DCT metadata fetch for :meth:`connect`.

        On success the metadata is cached and returned.  If the meta
        service is unreachable after the retry budget, fall back to a full
        RC handshake: ``self.qp`` is set to the fresh RCQP and ``None`` is
        returned (no metadata needed on an RC-backed VQP).  A
        :class:`~repro.verbs.errors.DeadlineExceededError` propagates
        untouched -- a spent budget must *not* trigger the
        milliseconds-long RC fallback.
        """
        module = self.module
        track = f"krcore@{self.node.gid}"
        try:
            if _trace.TRACER is not None:
                from repro.krcore.meta import dct_key

                _trace.TRACER.begin(
                    self.sim.now, track, "meta.lookup_dct", gid=gid,
                    shard=module.meta_plane.primary_index(dct_key(gid)),
                )
            try:
                meta = yield from module.lookup_dct_robust(
                    self.cpu_id, gid, deadline
                )
            finally:
                # Close the span on *every* exit (a MetaUnavailableError
                # previously left it open, corrupting later span nesting
                # on this track).
                if _trace.TRACER is not None:
                    _trace.TRACER.end(self.sim.now, track, "meta.lookup_dct")
        except MetaUnavailableError as meta_err:
            module.stats_rc_fallbacks += 1
            if _trace.TRACER is not None:
                _trace.TRACER.begin(self.sim.now, track, "rc_fallback", gid=gid)
            if _metrics.METRICS is not None:
                _metrics.METRICS.counter("krcore.rc_fallbacks").inc()
            try:
                self.qp = yield from module.establish_rc(gid, pool)
            except (VerbsError, KrcoreError) as rc_err:
                raise KrcoreError(
                    f"meta server unreachable and RC fallback to {gid} "
                    f"failed ({rc_err})",
                    code=getattr(rc_err, "code", None),
                ) from meta_err
            if _trace.TRACER is not None:
                _trace.TRACER.end(self.sim.now, track, "rc_fallback")
            return None
        if meta is None:
            raise KrcoreError(
                f"no DCT metadata for {gid}", code=WcStatus.REM_ACCESS_ERR
            )
        if _check.CHECKER is not None:
            _check.CHECKER.dc_cache_insert(module, gid, meta)
        module.dc_cache[gid] = meta
        return meta

    def revalidate(self):
        """Process: refresh this VQP's DCT metadata after a remote-access
        failure (the target may have restarted with a new DCT key)."""
        if self.qp is None or self.qp.qp_type is not QpType.DC:
            return self.dct_meta
        meta = yield from self.module.revalidate_dct(
            self.cpu_id, self.remote_gid, stale_meta=self.dct_meta
        )
        self.dct_meta = meta
        return meta

    @property
    def is_rc_backed(self):
        return self.qp is not None and self.qp.qp_type is QpType.RC

    # ------------------------------------------------ Algorithm 2: post_send

    def post_send(self, wr_list, deadline=None, batched=False):
        """Process: post_send_virtualized.

        Validates every request, encodes dispatch info in wr_id, keeps the
        shared physical queue from overflowing, and posts.  A bad request
        raises :class:`KrcoreError` *before anything is posted*; a spent
        ``deadline`` likewise surfaces before any bookkeeping exists to
        roll back.
        """
        if self.qp is None:
            raise KrcoreError(f"VQP {self.id} is not connected")
        if isinstance(wr_list, (list, tuple)):
            wrs = list(wr_list)
        else:
            wrs = [wr_list]
        # Segment so each posted chunk fits the physical queue (§4.4).
        depth = self.qp.sq_depth
        index = 0
        while index < len(wrs):
            yield from self._post_chunk(wrs[index : index + depth], deadline, batched)
            index += depth

    def post_send_batch(self, wr_list, deadline=None):
        """Process: post a doorbell-batched chain through the shared QP.

        Validation, wr_id encoding, and overflow prevention are identical
        to :meth:`post_send`; the chunk reaches the physical QP via
        :meth:`~repro.verbs.qp.QueuePair.post_send_batch`, so one doorbell
        covers the whole chain -- combined with the single syscall of
        ``KrcoreLib.post_send_batch``, the full chain crosses the
        virtualized-QP boundary at one-command cost (§4.3).
        """
        yield from self.post_send(wr_list, deadline, batched=True)

    def _post_chunk(self, wrs, deadline=None, batched=False):
        qp = self.qp
        module = self.module
        # --- request integrity (lines 5-7), before anything is posted ---
        if module.charge_checks:
            yield timing.VIRTUALIZATION_CHECK_NS * len(wrs)
        for wr in wrs:
            if wr.opcode not in POSTABLE_OPCODES:
                raise KrcoreError(
                    f"invalid opcode {wr.opcode}", code=WcStatus.BAD_OPCODE_ERR
                )
            skip_local = wr.opcode is Opcode.SEND and wr.length == 0
            if not skip_local and not module.valid_mr.check_local(wr.lkey, wr.laddr, wr.length):
                raise KrcoreError(
                    f"invalid local MR (lkey={wr.lkey})", code=WcStatus.LOC_PROT_ERR
                )
            if wr.opcode in (
                Opcode.READ, Opcode.WRITE, Opcode.WRITE_IMM, Opcode.CAS, Opcode.FETCH_ADD
            ):
                span = 8 if wr.opcode in (Opcode.CAS, Opcode.FETCH_ADD) else wr.length
                ok = module.mr_store.check_cached(self.remote_gid, wr.rkey, wr.raddr, span)
                if ok is None:  # cache miss: blocking meta-server path
                    ok = yield from module.mr_store.check(
                        self.remote_gid, wr.rkey, wr.raddr, span,
                        cpu_id=self.cpu_id, deadline=deadline,
                    )
                if not ok:
                    raise KrcoreError(
                        f"invalid remote MR (rkey={wr.rkey})",
                        code=WcStatus.REM_ACCESS_ERR,
                    )
            elif wr.opcode is Opcode.READ_V:
                # Vectored gather: every remote segment must validate
                # before anything is posted (one bad SGE would wreck the
                # shared physical QP mid-gather).
                if not wr.sges or len(wr.sges) > timing.MAX_VECTORED_SGES:
                    raise KrcoreError(
                        f"vectored READ carries {len(wr.sges or ())} SGEs "
                        f"(1..{timing.MAX_VECTORED_SGES} allowed)",
                        code=WcStatus.BAD_OPCODE_ERR,
                    )
                for raddr, rkey, seg_len in wr.sges:
                    ok = module.mr_store.check_cached(
                        self.remote_gid, rkey, raddr, seg_len
                    )
                    if ok is None:  # cache miss: blocking meta-server path
                        ok = yield from module.mr_store.check(
                            self.remote_gid, rkey, raddr, seg_len,
                            cpu_id=self.cpu_id, deadline=deadline,
                        )
                    if not ok:
                        raise KrcoreError(
                            f"invalid remote MR in gather list (rkey={rkey})",
                            code=WcStatus.REM_ACCESS_ERR,
                        )
        if deadline is not None:
            # The blocking validation above is where one-sided posts burn
            # time; check here, before any CQ-entry/wr_id bookkeeping
            # exists that an abort would have to roll back.
            deadline.check(self.sim.now, f"validated {len(wrs)} WR(s)")
        # --- build the physical requests (lines 4-17) ---
        phys = []
        unsignaled_cnt = 0
        for wr in wrs:
            pwr = wr.clone()
            if qp.qp_type is QpType.DC:
                pwr.dct_gid = self.remote_gid
                pwr.dct_number, pwr.dct_key = self.dct_meta
            if pwr.opcode is Opcode.SEND:
                self._prepare_send(pwr)
            if wr.signaled:
                entry = CompletionEntry(wr.wr_id, wr.opcode)
                self.comp_queue.append(entry)
                pwr.wr_id = module.encode_wr_id(self, unsignaled_cnt + 1, entry=entry)
                unsignaled_cnt = 0
            else:
                pwr.wr_id = 0
                unsignaled_cnt += 1
            phys.append(pwr)
        if unsignaled_cnt:
            # Lines 15-17: force-signal the last request so the queue space
            # of the trailing unsignaled run can be reclaimed.
            last = phys[-1]
            last.signaled = True
            last.wr_id = module.encode_wr_id(None, unsignaled_cnt, entry=None)
        # --- prevent queue overflow (lines 2-3) ---
        yield timing.POST_SEND_CPU_NS
        while qp.free_slots < len(phys):
            if module.poll_inner(qp) == 0:
                yield qp.send_cq.wait()
        # No simulated time may pass between the capacity check and the
        # post: the two lines below are atomic in the event loop.
        try:
            if batched and len(phys) >= 2:
                qp.post_send_batch(phys)
            else:
                qp.post_send(phys)
        except VerbsError as err:
            # A remote failure wrecked the shared QP under us (the kernel
            # repairs it in the background).  Nothing reached the wire, so
            # roll back this chunk's bookkeeping -- a not-ready entry left
            # at the head of the software CQ would block every later
            # completion, and an orphaned wr_id token would read as a lost
            # completion -- then surface a clean error.
            for pwr in phys:
                if pwr.wr_id:
                    token = module._wrid_tokens.pop(pwr.wr_id, None)
                    if token is not None and token.entry is not None:
                        try:
                            self.comp_queue.remove(token.entry)
                        except ValueError:
                            pass
            raise KrcoreError(
                f"physical QP unavailable ({err}); retry after repair",
                code=getattr(err, "code", None) or WcStatus.RETRY_EXC_ERR,
            ) from err
        self.stats_posted += len(phys)
        if _metrics.METRICS is not None:
            _metrics.METRICS.counter("krcore.wr_posted").inc(len(phys))
        module.note_traffic(self.remote_gid, self.cpu_id, len(phys))

    def _prepare_send(self, pwr):
        """Attach the piggybacked header; switch to the zero-copy protocol
        for payloads the kernel buffers cannot (or should not) carry."""
        module = self.module
        header = {
            "dst_port": self.remote_port,
            "dst_vqp": self.peer[1] if self.peer else None,
            "src_gid": self.node.gid,
            "src_vqp": self.id,
            "src_dct_meta": module.own_dct_meta,
        }
        if pwr.length > module.zero_copy_threshold:
            if not module.zero_copy:
                raise KrcoreError(
                    f"{pwr.length}B message exceeds the kernel buffer and "
                    "the zero-copy protocol is disabled"
                )
            region = module.valid_mr.lookup_region_by_lkey(pwr.lkey)
            if region is None:
                raise KrcoreError(f"zero-copy send from unregistered buffer (lkey={pwr.lkey})")
            header["zc"] = {"addr": pwr.laddr, "rkey": region.rkey, "len": pwr.length}
            pwr.length = 0  # only the descriptor message goes on the wire
        pwr.header = header

    # --------------------------------------------------- Algorithm 2: poll_cq

    def poll_cq(self):
        """poll_cq_virtualized: dispatch physical completions, then return
        the head of the software queue if ready (non-blocking)."""
        if self.qp is not None:
            self.module.poll_inner(self.qp)
        if self.comp_queue and self.comp_queue[0].ready:
            return self.comp_queue.popleft()
        return None

    def wait_send_completion(self):
        """Process: block until the next send completion of *this* VQP.

        Waiting follows the physical CQ's polling mode (event by default;
        ``busy``/``adaptive`` account the kernel polling core's CPU burn).
        """
        while True:
            entry = self.poll_cq()
            if entry is not None:
                return entry
            yield from self.qp.send_cq.wait_notify()

    # ----------------------------------------------------------------- recv

    def post_recv(self, recv_buffer):
        """ibv_post_recv: record the buffer in the virtual recv queue."""
        self.recv_queue.append(recv_buffer)

    def poll_recv(self):
        """Process: deliver pending messages into user buffers, then pop one
        recv completion if available (non-blocking in the common case)."""
        yield from self.module.deliver_vqp_msgs(self)
        if self.recv_completions:
            return self.recv_completions.popleft()
        return None

    def wait_recv_completion(self):
        """Process: block until a two-sided message arrives for this VQP."""
        while True:
            completion = yield from self.poll_recv()
            if completion is not None:
                return completion
            yield self.module.vqp_msg_event(self)

    # ------------------------------------------------------ transfer protocol

    def transfer_to(self, new_qp, new_dct_meta=None):
        """Process: §4.6 -- seamlessly re-virtualize onto ``new_qp``.

        FIFO is preserved by fencing the old QP with a fake signaled
        request; a two-sided peer is notified and must acknowledge before
        the switch (otherwise its replies would target the old QP).
        """
        old = self.qp
        if old is new_qp:
            return
        if old is not None:
            try:
                yield from self.module.fence_qp(self, old)
            except KrcoreError:
                # The remote died: the old QP's outstanding requests can
                # only fail, so FIFO is vacuously preserved -- swap anyway.
                pass
            if self.peer is not None:
                yield from self.module.notify_peer_transfer(self)
        self.qp = new_qp
        if new_dct_meta is not None:
            self.dct_meta = new_dct_meta
        self.module.stats_transfers += 1
