"""Client side of DrTM-KV: lookups via one-sided RDMA READs.

A lookup costs two READs in the common case -- one for the home bucket,
one for the record -- and never touches the server's CPU.  This is the
query path KRCORE uses for DCT metadata (§4.2) and MR validation.
"""

from repro.cluster import timing
from repro.kvs.layout import BUCKET_BYTES, Layout, key_fingerprint
from repro.kvs.store import PROBE_WINDOW, TOMBSTONE_FP
from repro.verbs import WorkRequest
from repro.verbs.errors import VerbsError


class DrtmKvClient:
    """Reads a remote DrTM-KV through an RC QP connected to its node.

    One client object supports one lookup at a time (it owns a single
    scratch buffer); use one client per concurrent caller.
    """

    def __init__(self, catalog, qp, scratch_addr, scratch_len, scratch_lkey, charge_cpu=True):
        if scratch_len < BUCKET_BYTES:
            raise ValueError("scratch buffer smaller than one bucket")
        self.catalog = catalog
        self.qp = qp
        self.scratch_addr = scratch_addr
        self.scratch_len = scratch_len
        self.scratch_lkey = scratch_lkey
        self.charge_cpu = charge_cpu
        self.heap_addr = catalog.base_addr + catalog.bucket_count * BUCKET_BYTES
        self.stats_reads = 0

    def lookup(self, key):
        """Process: fetch ``key``'s value bytes, or None if absent."""
        fp = key_fingerprint(key)
        home = fp & (self.catalog.bucket_count - 1)
        for probe in range(PROBE_WINDOW):
            bucket_index = (home + probe) % self.catalog.bucket_count
            bucket_addr = self.catalog.base_addr + bucket_index * BUCKET_BYTES
            bucket = yield from self._read(bucket_addr, BUCKET_BYTES)
            has_empty = False
            for slot_fp, slot_off, slot_len in Layout.unpack_slots(bucket):
                if slot_fp == 0:
                    has_empty = True
                    continue
                if slot_fp == TOMBSTONE_FP or slot_fp != fp:
                    continue
                record = yield from self._read(self.heap_addr + slot_off, slot_len)
                record_key, record_value = Layout.unpack_record(record)
                if record_key == key:
                    return record_value
            if has_empty:
                return None
        return None

    def _read(self, raddr, length):
        if length > self.scratch_len:
            raise VerbsError(f"record of {length} bytes exceeds scratch buffer")
        if self.charge_cpu:
            yield timing.POST_SEND_CPU_NS
        self.qp.post_send(
            WorkRequest.read(
                self.scratch_addr, length, self.scratch_lkey, raddr, self.catalog.rkey
            )
        )
        completions = yield from self.qp.send_cq.wait_poll()
        if self.charge_cpu:
            yield timing.POLL_CQ_CPU_NS
        completion = completions[0]
        if not completion.ok:
            raise VerbsError(
                f"meta read failed: {completion.status}", code=completion.status
            )
        self.stats_reads += 1
        return self.qp.node.memory.read(self.scratch_addr, length)
