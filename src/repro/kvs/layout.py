"""On-memory layout of the DrTM-KV hash table.

The table is a closed-addressing hash table with fixed-size buckets,
followed by a bump-allocated record heap, all inside one registered
region so remote clients can READ any of it:

* bucket: SLOTS_PER_BUCKET slots of 16 bytes each;
* slot:   fingerprint (8B) | record offset (4B) | record length (4B);
* record: key length (2B) | value length (2B) | key bytes | value bytes.

A zero fingerprint marks an empty slot.  When a bucket fills up,
insertion probes linearly to the following bucket, and lookups mirror
that rule (probe further only if the bucket has no free slot).
"""

import hashlib
import struct

SLOT_BYTES = 16
SLOTS_PER_BUCKET = 4
BUCKET_BYTES = SLOT_BYTES * SLOTS_PER_BUCKET
RECORD_HEADER = struct.Struct(">HH")
SLOT = struct.Struct(">QII")


class StoreFullError(Exception):
    """No free slot within the probe window, or the record heap is full."""


def key_fingerprint(key):
    """A stable non-zero 8-byte fingerprint of ``key`` (bytes)."""
    digest = hashlib.blake2b(key, digest_size=8).digest()
    fp = int.from_bytes(digest, "big")
    return fp or 1  # zero marks an empty slot


class Layout:
    """Address arithmetic for a table of ``bucket_count`` buckets."""

    def __init__(self, base_addr, bucket_count, heap_bytes):
        if bucket_count & (bucket_count - 1):
            raise ValueError("bucket_count must be a power of two")
        self.base_addr = base_addr
        self.bucket_count = bucket_count
        self.table_bytes = bucket_count * BUCKET_BYTES
        self.heap_addr = base_addr + self.table_bytes
        self.heap_bytes = heap_bytes

    @property
    def total_bytes(self):
        return self.table_bytes + self.heap_bytes

    def bucket_index(self, fingerprint):
        return fingerprint & (self.bucket_count - 1)

    def bucket_addr(self, index):
        return self.base_addr + (index % self.bucket_count) * BUCKET_BYTES

    def slot_addr(self, bucket_index, slot_index):
        return self.bucket_addr(bucket_index) + slot_index * SLOT_BYTES

    @staticmethod
    def pack_slot(fingerprint, offset, length):
        return SLOT.pack(fingerprint, offset, length)

    @staticmethod
    def unpack_slots(bucket_bytes):
        """Yield (fingerprint, offset, length) for each slot of a bucket."""
        for i in range(SLOTS_PER_BUCKET):
            yield SLOT.unpack_from(bucket_bytes, i * SLOT_BYTES)

    @staticmethod
    def pack_record(key, value):
        return RECORD_HEADER.pack(len(key), len(value)) + key + value

    @staticmethod
    def unpack_record(record_bytes):
        klen, vlen = RECORD_HEADER.unpack_from(record_bytes)
        start = RECORD_HEADER.size
        return record_bytes[start : start + klen], record_bytes[start + klen : start + klen + vlen]

    @staticmethod
    def record_bytes_for(key, value):
        return RECORD_HEADER.size + len(key) + len(value)
