"""DrTM-KV: an RDMA-enabled key-value store readable by one-sided READs.

The paper deploys DrTM-KV [58] as the backing store of KRCORE's meta
servers (§4.2): values (DCT metadata, MR records) are laid out in RDMA-
registered memory so that clients can look keys up with *two one-sided
READs* -- one for the hash bucket, one for the record -- fully bypassing
the server's CPU.  That CPU-bypass is what gives KRCORE its 11.8x
throughput edge over an RPC-based metadata service (Fig 9a).
"""

from repro.kvs.layout import Layout, StoreFullError, key_fingerprint
from repro.kvs.store import Catalog, DrtmKvServer
from repro.kvs.client import DrtmKvClient

__all__ = [
    "Catalog",
    "DrtmKvClient",
    "DrtmKvServer",
    "Layout",
    "StoreFullError",
    "key_fingerprint",
]
