"""Server side of DrTM-KV: owns the table, serves local puts/gets."""

from repro.kvs.layout import (
    BUCKET_BYTES,
    Layout,
    StoreFullError,
    key_fingerprint,
)

#: How many buckets an insert (and thus a lookup) may probe past home.
PROBE_WINDOW = 8

#: Fingerprint marking a deleted slot.  A tombstone is reusable by inserts
#: but does not terminate a probe chain, so keys that overflowed past it
#: stay reachable.
TOMBSTONE_FP = (1 << 64) - 1


class Catalog:
    """What a remote client needs to know to READ the store: the region's
    rkey and the table geometry.  Broadcast at boot time (§3.2)."""

    __slots__ = ("gid", "rkey", "base_addr", "bucket_count")

    def __init__(self, gid, rkey, base_addr, bucket_count):
        self.gid = gid
        self.rkey = rkey
        self.base_addr = base_addr
        self.bucket_count = bucket_count


class DrtmKvServer:
    """A DrTM-KV instance living in one node's registered memory.

    Mutations are performed locally by the owning node (the paper's meta
    servers receive metadata broadcasts at node boot); reads can come in
    remotely via one-sided READs without involving this code at all.
    """

    def __init__(self, node, bucket_count=1024, heap_bytes=1 << 20):
        self.node = node
        base_addr = node.memory.alloc(bucket_count * BUCKET_BYTES + heap_bytes)
        self.layout = Layout(base_addr, bucket_count, heap_bytes)
        # Zero the table region (empty fingerprints).
        node.memory.write(base_addr, bytes(self.layout.table_bytes))
        self.region = node.memory.register(base_addr, self.layout.total_bytes)
        self._heap_cursor = self.layout.heap_addr
        self.size = 0

    @property
    def catalog(self):
        return Catalog(
            self.node.gid, self.region.rkey, self.layout.base_addr, self.layout.bucket_count
        )

    # -- local operations -----------------------------------------------------

    def put(self, key, value):
        """Insert or update ``key`` (bytes) -> ``value`` (bytes)."""
        fp = key_fingerprint(key)
        offset, length = self._append_record(key, value)
        slot_bytes = Layout.pack_slot(fp, offset, length)
        home = self.layout.bucket_index(fp)
        free = None  # (bucket, slot) of the first reusable slot seen
        for probe in range(PROBE_WINDOW):
            bucket_index = (home + probe) % self.layout.bucket_count
            has_empty = False
            for slot_index, (slot_fp, slot_off, slot_len) in enumerate(self._slots(bucket_index)):
                if slot_fp == fp and self._record_key(slot_off, slot_len) == key:
                    self._write_slot(bucket_index, slot_index, slot_bytes)
                    return
                if slot_fp in (0, TOMBSTONE_FP) and free is None:
                    free = (bucket_index, slot_index)
                if slot_fp == 0:
                    has_empty = True
            if has_empty:
                break  # an empty slot terminates every probe chain
        if free is None:
            raise StoreFullError(f"no slot for key within {PROBE_WINDOW} buckets")
        self._write_slot(free[0], free[1], slot_bytes)
        self.size += 1

    def get_local(self, key):
        """Local lookup (no network); returns value bytes or None."""
        fp = key_fingerprint(key)
        home = self.layout.bucket_index(fp)
        for probe in range(PROBE_WINDOW):
            bucket_index = (home + probe) % self.layout.bucket_count
            has_empty = False
            for slot_fp, slot_off, slot_len in self._slots(bucket_index):
                if slot_fp == 0:
                    has_empty = True
                    continue
                if slot_fp == fp:
                    record = self.node.memory.read(self.layout.heap_addr + slot_off, slot_len)
                    record_key, record_value = Layout.unpack_record(record)
                    if record_key == key:
                        return record_value
            if has_empty:
                return None
        return None

    def delete(self, key):
        """Remove ``key``; returns True if it was present."""
        fp = key_fingerprint(key)
        home = self.layout.bucket_index(fp)
        tombstone = Layout.pack_slot(TOMBSTONE_FP, 0, 0)
        for probe in range(PROBE_WINDOW):
            bucket_index = (home + probe) % self.layout.bucket_count
            has_empty = False
            for slot_index, (slot_fp, slot_off, slot_len) in enumerate(self._slots(bucket_index)):
                if slot_fp == 0:
                    has_empty = True
                    continue
                if slot_fp == fp and self._record_key(slot_off, slot_len) == key:
                    self._write_slot(bucket_index, slot_index, tombstone)
                    self.size -= 1
                    return True
            if has_empty:
                return False
        return False

    # -- internals --------------------------------------------------------------

    def _slots(self, bucket_index):
        bucket = self.node.memory.read(self.layout.bucket_addr(bucket_index), BUCKET_BYTES)
        return Layout.unpack_slots(bucket)

    def _write_slot(self, bucket_index, slot_index, slot_bytes):
        self.node.memory.write(self.layout.slot_addr(bucket_index, slot_index), slot_bytes)

    def _record_key(self, offset, length):
        record = self.node.memory.read(self.layout.heap_addr + offset, length)
        return Layout.unpack_record(record)[0]

    def _append_record(self, key, value):
        record = Layout.pack_record(key, value)
        end = self.layout.heap_addr + self.layout.heap_bytes
        if self._heap_cursor + len(record) > end:
            raise StoreFullError("record heap exhausted")
        self.node.memory.write(self._heap_cursor, record)
        offset = self._heap_cursor - self.layout.heap_addr
        self._heap_cursor += len(record)
        return offset, len(record)
