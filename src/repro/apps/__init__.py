"""Application case studies from the paper's evaluation (§5.3):

* :mod:`repro.apps.race`       -- a RACE-style disaggregated key-value
  store driven over one-sided RDMA (verbs / LITE / KRCORE backends);
* :mod:`repro.apps.serverless` -- an Fn-like serverless platform running
  ServerlessBench's data-transfer testcase over RDMA.
"""
