"""Storage-node side of the RACE-style hash table.

Memory layout (one registered region, fully READ/WRITE/CAS-able remotely):

    +0                meta page: the block allocator cursor (8 B, FETCH_ADD'ed
                      remotely by writers)
    +META_BYTES       bucket array: num_buckets x 64 B, 8 slots of 8 B each
    +...              block heap: bump-allocated key/value blocks

A slot packs everything a reader needs into one CAS-able word:

    fp (12 bits) | klen (8 bits) | vlen (12 bits) | offset (32 bits)

A block is ``klen(2B) | key | value`` so readers can verify the key after
the (fingerprint-guided) block READ.
"""

import hashlib
import struct

META_BYTES = 64
BUCKET_BYTES = 64
SLOT_BYTES = 8
SLOTS_PER_BUCKET = BUCKET_BYTES // SLOT_BYTES
PROBE_WINDOW = 4

_BLOCK_HDR = struct.Struct(">H")

MAX_KLEN = (1 << 8) - 1
MAX_VLEN = (1 << 12) - 1
MAX_OFFSET = (1 << 32) - 1


class RaceError(Exception):
    """A RACE operation failed (table full, oversized entry, ...)."""


def fingerprint(key):
    """Stable hash of ``key``: (fp12, bucket_spread) both derived from one
    digest.  fp12 is non-zero (zero marks an empty slot)."""
    digest = hashlib.blake2b(key, digest_size=8).digest()
    value = int.from_bytes(digest, "big")
    fp12 = (value >> 44) & 0xFFF
    return (fp12 or 1), value & 0xFFFFFFFFF


def pack_slot(fp12, klen, vlen, offset):
    if klen > MAX_KLEN:
        raise RaceError(f"key of {klen}B exceeds the {MAX_KLEN}B slot limit")
    if vlen > MAX_VLEN:
        raise RaceError(f"value of {vlen}B exceeds the {MAX_VLEN}B slot limit")
    if offset > MAX_OFFSET:
        raise RaceError("block offset exceeds 32 bits")
    return (fp12 << 52) | (klen << 44) | (vlen << 32) | offset


def unpack_slot(word):
    """Returns (fp12, klen, vlen, offset)."""
    return ((word >> 52) & 0xFFF, (word >> 44) & 0xFF, (word >> 32) & 0xFFF, word & 0xFFFFFFFF)


def pack_block(key, value):
    return _BLOCK_HDR.pack(len(key)) + key + value


def unpack_block(block, klen, vlen):
    (stored_klen,) = _BLOCK_HDR.unpack_from(block)
    if stored_klen != klen:
        raise RaceError("corrupt block: slot/header key length mismatch")
    start = _BLOCK_HDR.size
    return block[start : start + klen], block[start + klen : start + klen + vlen]


def block_bytes(key, value):
    return _BLOCK_HDR.size + len(key) + len(value)


class Catalog:
    """Everything a computing node needs to drive one storage node."""

    __slots__ = ("gid", "rkey", "alloc_addr", "bucket_base", "num_buckets", "heap_base", "heap_bytes")

    def __init__(self, gid, rkey, alloc_addr, bucket_base, num_buckets, heap_base, heap_bytes):
        self.gid = gid
        self.rkey = rkey
        self.alloc_addr = alloc_addr
        self.bucket_base = bucket_base
        self.num_buckets = num_buckets
        self.heap_base = heap_base
        self.heap_bytes = heap_bytes

    def bucket_addr(self, index):
        return self.bucket_base + (index % self.num_buckets) * BUCKET_BYTES


class RaceStorage:
    """A passive storage node hosting one RACE table."""

    def __init__(self, node, num_buckets=4096, heap_bytes=1 << 20, register=True):
        if num_buckets & (num_buckets - 1):
            raise RaceError("num_buckets must be a power of two")
        self.node = node
        self.num_buckets = num_buckets
        self.heap_bytes = heap_bytes
        total = META_BYTES + num_buckets * BUCKET_BYTES + heap_bytes
        self.base = node.memory.alloc(total)
        node.memory.write(self.base, bytes(META_BYTES + num_buckets * BUCKET_BYTES))
        self.region = node.memory.register(self.base, total) if register else None

    @property
    def alloc_addr(self):
        return self.base

    @property
    def bucket_base(self):
        return self.base + META_BYTES

    @property
    def heap_base(self):
        return self.bucket_base + self.num_buckets * BUCKET_BYTES

    def catalog(self, rkey=None):
        return Catalog(
            self.node.gid,
            self.region.rkey if rkey is None else rkey,
            self.alloc_addr,
            self.bucket_base,
            self.num_buckets,
            self.heap_base,
            self.heap_bytes,
        )

    # -- local (load-phase / test) helpers -------------------------------------

    def load(self, key, value):
        """Insert locally, without the network (the bulk load phase)."""
        fp12, spread = fingerprint(key)
        offset = self._alloc_local(block_bytes(key, value))
        self.node.memory.write(self.heap_base + offset, pack_block(key, value))
        new_slot = pack_slot(fp12, len(key), len(value), offset)
        home = spread % self.num_buckets
        for probe in range(PROBE_WINDOW):
            bucket = (home + probe) % self.num_buckets
            for slot_index in range(SLOTS_PER_BUCKET):
                addr = self.bucket_base + bucket * BUCKET_BYTES + slot_index * SLOT_BYTES
                word = int.from_bytes(self.node.memory.read(addr, 8), "big")
                if word == 0:
                    self.node.memory.write(addr, new_slot.to_bytes(8, "big"))
                    return
                fp, klen, vlen, off = unpack_slot(word)
                if fp == fp12:
                    block = self.node.memory.read(self.heap_base + off, block_bytes(b"x" * klen, b"y" * vlen))
                    stored_key, _ = unpack_block(block, klen, vlen)
                    if stored_key == key:
                        self.node.memory.write(addr, new_slot.to_bytes(8, "big"))
                        return
        raise RaceError(f"no free slot within {PROBE_WINDOW} buckets")

    def get_local(self, key):
        """Local lookup (tests); returns value bytes or None."""
        fp12, spread = fingerprint(key)
        home = spread % self.num_buckets
        for probe in range(PROBE_WINDOW):
            bucket = (home + probe) % self.num_buckets
            for slot_index in range(SLOTS_PER_BUCKET):
                addr = self.bucket_base + bucket * BUCKET_BYTES + slot_index * SLOT_BYTES
                word = int.from_bytes(self.node.memory.read(addr, 8), "big")
                if word == 0:
                    continue
                fp, klen, vlen, off = unpack_slot(word)
                if fp != fp12:
                    continue
                block = self.node.memory.read(self.heap_base + off, _BLOCK_HDR.size + klen + vlen)
                stored_key, stored_value = unpack_block(block, klen, vlen)
                if stored_key == key:
                    return stored_value
        return None

    def _alloc_local(self, nbytes):
        cursor = int.from_bytes(self.node.memory.read(self.alloc_addr, 8), "big")
        if cursor + nbytes > self.heap_bytes:
            raise RaceError("block heap exhausted")
        self.node.memory.write(self.alloc_addr, (cursor + nbytes).to_bytes(8, "big"))
        return cursor
