"""A RACE-style disaggregated key-value store (Zuo et al., ATC'21).

RACE separates computing nodes from storage nodes: computing nodes execute
key-value requests purely with one-sided RDMA against passive storage.
RACE is closed-source, so -- like the paper itself (§5.3.1: "we implement a
simplified version") -- we build a simplified one-sided hash table:

* GET  = one bucket READ + one block READ (with linear probing);
* PUT  = one remote FETCH_ADD block allocation + one block WRITE + one
  slot CAS (retried on contention);
* all slots are 8 bytes so a single RDMA CAS updates them atomically.

The default table (:mod:`repro.apps.race.hashing`) pre-sizes its
subtables -- all the paper's load-spike experiment needs.  The full
one-sided *extendible* variant, with online lock-free splits via remote
CAS (RACE's headline feature), lives in
:mod:`repro.apps.race.extendible`.

The same client runs over three interchangeable backends (verbs, LITE,
KRCORE), which is exactly how the paper compares them in Fig 16.
"""

from repro.apps.race.hashing import RaceError, RaceStorage
from repro.apps.race.backends import KrcoreBackend, LiteBackend, VerbsBackend
from repro.apps.race.client import RaceClient
from repro.apps.race.extendible import ExtendibleRaceClient, ExtendibleRaceStorage

__all__ = [
    "ExtendibleRaceClient",
    "ExtendibleRaceStorage",
    "KrcoreBackend",
    "LiteBackend",
    "RaceClient",
    "RaceError",
    "RaceStorage",
    "VerbsBackend",
]
