"""Interchangeable RDMA transports for the RACE client.

The paper implements its simplified RACE "atop of verbs, LITE and KRCORE,
respectively" (§5.3.1) -- the same application code driven through three
control/data planes:

* :class:`VerbsBackend`  -- user-space verbs: per-process driver init
  (~13.3 ms), one RC connection per storage node (~2 ms each, plus the
  server-side 712 QP/s ceiling), but full low-level access (doorbell
  batching).
* :class:`LiteBackend`   -- LITE's high-level kernel API: no driver init,
  cached connections, but only synchronous one-op-at-a-time calls
  (Issue #3: no RDMA-aware optimizations).
* :class:`KrcoreBackend` -- VQPs: microsecond connections *and* the
  low-level interface, so doorbell batching still works.
"""

from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.verbs import DriverContext, Opcode, WorkRequest
from repro.verbs.connection import rc_connect
from repro.apps.race.hashing import RaceError


def register_storage(storage, krcore_module=None):
    """Process: register a storage region the way the deployment needs.

    With a KRCORE module, registration goes through reg_mr so the region
    is recorded in ValidMR and published to the meta server; otherwise a
    plain verbs registration.  Returns the region.
    """
    node = storage.node
    total = storage.heap_base + storage.heap_bytes - storage.base
    if krcore_module is not None:
        region = yield from krcore_module.reg_mr(storage.base, total)
    else:
        yield timing.reg_mr_ns(total)
        region = node.memory.register(storage.base, total)
    storage.region = region
    return region


class VerbsBackend:
    """User-space verbs: the baseline control plane."""

    supports_doorbell = True

    def __init__(self, node, qps_per_target=1, port=0):
        self.node = node
        self.sim = node.sim
        self.context = DriverContext(node)
        self.port = port
        self.qps_per_target = qps_per_target
        self.cq = None
        self._qps = {}  # gid -> [QueuePair]
        self._rr = 0

    def connect(self, gids):
        """Process: driver init + one (or more) RC connections per node."""
        yield from self.context.ensure_init()
        if self.cq is None:
            self.cq = yield from self.context.create_cq()
        for gid in gids:
            if gid in self._qps:
                continue
            qps = []
            for _ in range(self.qps_per_target):
                qp = yield from rc_connect(self.context, self.cq, gid, port=self.port)
                qps.append(qp)
            self._qps[gid] = qps

    def setup_buffer(self, nbytes):
        """Process: allocate + register a local scratch buffer."""
        addr = self.node.memory.alloc(nbytes)
        yield timing.reg_mr_ns(nbytes)
        region = self.node.memory.register(addr, nbytes)
        return addr, region.lkey

    def _qp(self, gid):
        qps = self._qps[gid]
        self._rr += 1
        return qps[self._rr % len(qps)]

    def _sync(self, gid, wr):
        qp = self._qp(gid)
        yield timing.POST_SEND_CPU_NS
        qp.post_send(wr)
        completions = yield from qp.send_cq.wait_poll()
        yield timing.POLL_CQ_CPU_NS
        if not completions[0].ok:
            raise RaceError(f"verbs op failed: {completions[0].status}")

    def read(self, gid, laddr, lkey, raddr, rkey, length):
        yield from self._sync(gid, WorkRequest.read(laddr, length, lkey, raddr, rkey))

    def write(self, gid, laddr, lkey, raddr, rkey, length):
        yield from self._sync(gid, WorkRequest.write(laddr, length, lkey, raddr, rkey))

    def cas(self, gid, laddr, lkey, raddr, rkey, compare, swap):
        yield from self._sync(gid, WorkRequest.cas(laddr, lkey, raddr, rkey, compare, swap))

    def fetch_add(self, gid, laddr, lkey, raddr, rkey, delta):
        wr = WorkRequest(
            Opcode.FETCH_ADD, laddr=laddr, length=8, lkey=lkey, raddr=raddr, rkey=rkey,
            compare=delta,
        )
        yield from self._sync(gid, wr)

    def read_batch(self, requests):
        """Process: doorbell-batch READs -- one WR chain (and one doorbell)
        per target QP via ``post_send_batch`` -- then wait for every
        completion."""
        chains = {}  # QueuePair -> WR chain, in first-use order
        for gid, laddr, lkey, raddr, rkey, length in requests:
            qp = self._qp(gid)
            chains.setdefault(qp, []).append(
                WorkRequest.read(laddr, length, lkey, raddr, rkey)
            )
        expected = 0
        for qp, wrs in chains.items():
            yield timing.doorbell_batch_cpu_ns(len(wrs))
            qp.post_send_batch(wrs)
            expected += len(wrs)
        seen = 0
        while seen < expected:
            completions = yield from self.cq.wait_poll(expected)
            for completion in completions:
                if not completion.ok:
                    raise RaceError(f"batched READ failed: {completion.status}")
            seen += len(completions)
        yield timing.POLL_CQ_CPU_NS


class LiteBackend:
    """LITE's high-level kernel API (synchronous only)."""

    supports_doorbell = False

    def __init__(self, node):
        module = node.services.get("lite")
        if module is None:
            raise RaceError(f"{node.gid} has no LITE module loaded")
        self.node = node
        self.module = module

    def connect(self, gids):
        """Process: warm LITE's kernel connection cache (~2 ms per miss)."""
        for gid in gids:
            yield from self.module.ensure_qp(gid)

    def setup_buffer(self, nbytes):
        addr = self.node.memory.alloc(nbytes)
        yield timing.reg_mr_ns(nbytes)
        region = self.node.memory.register(addr, nbytes)
        return addr, region.lkey

    def read(self, gid, laddr, lkey, raddr, rkey, length):
        yield from self.module.read(gid, laddr, lkey, raddr, rkey, length)

    def write(self, gid, laddr, lkey, raddr, rkey, length):
        yield from self.module.write(gid, laddr, lkey, raddr, rkey, length)

    def cas(self, gid, laddr, lkey, raddr, rkey, compare, swap):
        yield from self.module.cas(gid, laddr, lkey, raddr, rkey, compare, swap)

    def fetch_add(self, gid, laddr, lkey, raddr, rkey, delta):
        yield from self.module.fetch_add(gid, laddr, lkey, raddr, rkey, delta)

    def read_batch(self, requests):
        """Process: LITE's API has no doorbell batching -- serial reads."""
        for gid, laddr, lkey, raddr, rkey, length in requests:
            yield from self.module.read(gid, laddr, lkey, raddr, rkey, length)


class KrcoreBackend:
    """KRCORE VQPs: microsecond control plane, low-level data plane."""

    supports_doorbell = True

    def __init__(self, node, cpu_id=0):
        self.node = node
        self.lib = KrcoreLib(node, cpu_id=cpu_id)
        self._vqps = {}

    def connect(self, gids):
        """Process: qconnect to each storage node (us-scale, Fig 8a)."""
        for gid in gids:
            if gid in self._vqps:
                continue
            vqp = yield from self.lib.create_vqp()
            yield from self.lib.qconnect(vqp, gid)
            self._vqps[gid] = vqp

    def setup_buffer(self, nbytes):
        addr = self.node.memory.alloc(nbytes)
        region = yield from self.lib.reg_mr(addr, nbytes)
        return addr, region.lkey

    def read(self, gid, laddr, lkey, raddr, rkey, length):
        yield from self.lib.read_sync(self._vqps[gid], laddr, lkey, raddr, rkey, length)

    def write(self, gid, laddr, lkey, raddr, rkey, length):
        yield from self.lib.write_sync(self._vqps[gid], laddr, lkey, raddr, rkey, length)

    def cas(self, gid, laddr, lkey, raddr, rkey, compare, swap):
        wr = WorkRequest.cas(laddr, lkey, raddr, rkey, compare, swap)
        entry = yield from self.lib.post_send_and_wait(self._vqps[gid], wr)
        if not entry.ok:
            raise RaceError(f"KRCORE CAS failed: {entry.status}")

    def fetch_add(self, gid, laddr, lkey, raddr, rkey, delta):
        wr = WorkRequest(
            Opcode.FETCH_ADD, laddr=laddr, length=8, lkey=lkey, raddr=raddr, rkey=rkey,
            compare=delta,
        )
        entry = yield from self.lib.post_send_and_wait(self._vqps[gid], wr)
        if not entry.ok:
            raise RaceError(f"KRCORE FETCH_ADD failed: {entry.status}")

    def read_batch(self, requests):
        """Process: doorbell batching through the VQPs (one syscall per
        target batch -- the low-level optimization LITE cannot express)."""
        by_gid = {}
        for gid, laddr, lkey, raddr, rkey, length in requests:
            by_gid.setdefault(gid, []).append(
                WorkRequest.read(laddr, length, lkey, raddr, rkey)
            )
        for gid, wrs in by_gid.items():
            yield from self.lib.post_send_batch(self._vqps[gid], wrs)
        for gid, wrs in by_gid.items():
            vqp = self._vqps[gid]
            for _ in range(len(wrs)):
                entry = yield from vqp.wait_send_completion()
                if not entry.ok:
                    raise RaceError(f"batched READ failed: {entry.status}")
