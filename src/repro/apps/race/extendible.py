"""Extendible RACE hashing: one-sided-friendly online resizing.

The real RACE's headline feature is *lock-free remote resizing*: when a
subtable fills up, a computing node splits it purely with one-sided verbs
(allocate a new subtable remotely, move slots, repoint directory entries
with CAS) while other clients keep operating.  The simplified table in
:mod:`repro.apps.race.hashing` pre-sizes everything (all the paper's own
experiments need); this module implements the resizable variant.

Layout (one registered region):

    meta page:    block-heap cursor (8B) | subtable cursor (8B)
    directory:    2^MAX_DEPTH entries of 8B: subtable_index:32 | local_depth:16
                  -- *flattened*: every entry is always valid, entries that
                  share a subtable are replicas, so readers never need the
                  global depth (RACE's client-cached directory trick)
    subtables:    MAX_SUBTABLES x (BUCKETS_PER_SUBTABLE x 64B buckets)
    block heap:   key/value blocks (shared by all subtables; splits move
                  slots, never blocks)

Directory selection uses the *low* MAX_DEPTH bits of the key's spread;
bucket selection inside a subtable uses the bits above them, so a split
redistributes by one more directory bit, never by bucket position.

Concurrency: splits race safely through CAS -- a loser simply wasted one
subtable allocation and retries; readers holding a stale cached directory
miss, refresh it once, and retry (the "stale read" path RACE describes).
"""

import struct

from repro.apps.race.hashing import (
    BUCKET_BYTES,
    RaceError,
    SLOTS_PER_BUCKET,
    SLOT_BYTES,
    block_bytes,
    fingerprint,
    pack_block,
    pack_slot,
    unpack_block,
    unpack_slot,
)

MAX_DEPTH = 8
MAX_SUBTABLES = 1 << MAX_DEPTH
DIR_ENTRIES = 1 << MAX_DEPTH
DIR_ENTRY = struct.Struct(">Q")
META_BYTES = 64

#: Buckets per subtable (power of two).
BUCKETS_PER_SUBTABLE = 8

#: How many buckets an insert may probe inside one subtable before it
#: decides the subtable is full and splits it.
PROBE_WINDOW = 2


def pack_dir_entry(subtable_index, local_depth):
    return (subtable_index << 16) | local_depth


def unpack_dir_entry(word):
    return word >> 16, word & 0xFFFF


class ExtendibleCatalog:
    """What a client needs: geometry + the region's rkey."""

    __slots__ = (
        "gid", "rkey", "alloc_addr", "subtable_cursor_addr", "dir_addr",
        "subtable_base", "heap_base", "heap_bytes",
    )

    def __init__(self, storage, rkey):
        self.gid = storage.node.gid
        self.rkey = rkey
        self.alloc_addr = storage.base
        self.subtable_cursor_addr = storage.base + 8
        self.dir_addr = storage.base + META_BYTES
        self.subtable_base = self.dir_addr + DIR_ENTRIES * 8
        self.heap_base = storage.heap_base
        self.heap_bytes = storage.heap_bytes

    def subtable_addr(self, index):
        return self.subtable_base + index * BUCKETS_PER_SUBTABLE * BUCKET_BYTES

    def bucket_addr(self, subtable_index, bucket_index):
        return self.subtable_addr(subtable_index) + (
            bucket_index % BUCKETS_PER_SUBTABLE
        ) * BUCKET_BYTES


class ExtendibleRaceStorage:
    """The passive storage side: lays out and zeroes the region."""

    def __init__(self, node, initial_depth=1, heap_bytes=1 << 20, register=True):
        if initial_depth > MAX_DEPTH:
            raise RaceError(f"initial depth {initial_depth} exceeds {MAX_DEPTH}")
        self.node = node
        self.heap_bytes = heap_bytes
        table_bytes = MAX_SUBTABLES * BUCKETS_PER_SUBTABLE * BUCKET_BYTES
        total = META_BYTES + DIR_ENTRIES * 8 + table_bytes + heap_bytes
        self.base = node.memory.alloc(total)
        node.memory.write(self.base, bytes(META_BYTES + DIR_ENTRIES * 8 + table_bytes))
        self.heap_base = self.base + META_BYTES + DIR_ENTRIES * 8 + table_bytes
        # Initial subtables: 2^initial_depth, directory fully replicated.
        initial = 1 << initial_depth
        self.node.memory.write(self.base + 8, initial.to_bytes(8, "big"))
        for entry_index in range(DIR_ENTRIES):
            subtable = entry_index % initial
            word = pack_dir_entry(subtable, initial_depth)
            node.memory.write(
                self.base + META_BYTES + entry_index * 8, DIR_ENTRY.pack(word)
            )
        self.region = node.memory.register(self.base, total) if register else None

    def catalog(self, rkey=None):
        return ExtendibleCatalog(
            self, self.region.rkey if rkey is None else rkey
        )

    # -- local test helpers ------------------------------------------------------

    def dir_entry_local(self, index):
        word = int.from_bytes(
            self.node.memory.read(self.base + META_BYTES + index * 8, 8), "big"
        )
        return unpack_dir_entry(word)

    def subtable_count_local(self):
        return int.from_bytes(self.node.memory.read(self.base + 8, 8), "big")


class ExtendibleRaceClient:
    """A computing worker driving the extendible table with one-sided ops."""

    def __init__(self, backend, catalog):
        self.backend = backend
        self.node = backend.node
        self.catalog = catalog
        self.scratch_addr = None
        self.scratch_lkey = None
        self._dir = None  # cached directory: list of (subtable, depth)
        self.stats_splits = 0
        self.stats_dir_refreshes = 0

    # ------------------------------------------------------------- lifecycle

    #: Scratch layout (offsets): 0 directory image (2 KB), 4096 outgoing
    #: block, 8184 atomic result, 8192 bucket+block reads (<= ~4.5 KB),
    #: 16384 split block reads, 20480 whole-subtable image (512 B).
    _SCRATCH_BYTES = 24576

    def setup(self):
        yield from self.backend.connect([self.catalog.gid])
        self.scratch_addr, self.scratch_lkey = yield from self.backend.setup_buffer(
            self._SCRATCH_BYTES
        )
        yield from self._refresh_directory()

    def _refresh_directory(self):
        """One big READ of the (flattened) directory."""
        yield from self.backend.read(
            self.catalog.gid, self.scratch_addr, self.scratch_lkey,
            self.catalog.dir_addr, self.catalog.rkey, DIR_ENTRIES * 8,
        )
        raw = self.node.memory.read(self.scratch_addr, DIR_ENTRIES * 8)
        self._dir = [
            unpack_dir_entry(DIR_ENTRY.unpack_from(raw, i * 8)[0])
            for i in range(DIR_ENTRIES)
        ]
        self.stats_dir_refreshes += 1

    # ------------------------------------------------------------------ keys

    @staticmethod
    def _locate(key):
        fp12, spread = fingerprint(key)
        dir_index = spread & (DIR_ENTRIES - 1)
        bucket_index = (spread >> MAX_DEPTH) % BUCKETS_PER_SUBTABLE
        return fp12, spread, dir_index, bucket_index

    # ------------------------------------------------------------------- GET

    def get(self, key, _retried=False):
        fp12, spread, dir_index, bucket_index = self._locate(key)
        subtable, _depth = self._dir[dir_index]
        value = yield from self._get_in_subtable(key, fp12, subtable, bucket_index)
        if value is None and not _retried:
            # A concurrent split may have moved the slot: refresh + retry.
            yield from self._refresh_directory()
            value = yield from self.get(key, _retried=True)
        return value

    def _get_in_subtable(self, key, fp12, subtable, bucket_index):
        scratch = self.scratch_addr + 8192
        for probe in range(PROBE_WINDOW):
            bucket_addr = self.catalog.bucket_addr(subtable, bucket_index + probe)
            yield from self.backend.read(
                self.catalog.gid, scratch, self.scratch_lkey,
                bucket_addr, self.catalog.rkey, BUCKET_BYTES,
            )
            bucket = self.node.memory.read(scratch, BUCKET_BYTES)
            for slot_index in range(SLOTS_PER_BUCKET):
                word = int.from_bytes(
                    bucket[slot_index * SLOT_BYTES : (slot_index + 1) * SLOT_BYTES], "big"
                )
                if word == 0:
                    continue
                fp, klen, vlen, offset = unpack_slot(word)
                if fp != fp12:
                    continue
                length = 2 + klen + vlen
                yield from self.backend.read(
                    self.catalog.gid, scratch + BUCKET_BYTES, self.scratch_lkey,
                    self.catalog.heap_base + offset, self.catalog.rkey, length,
                )
                block = self.node.memory.read(scratch + BUCKET_BYTES, length)
                stored_key, stored_value = unpack_block(block, klen, vlen)
                if stored_key == key:
                    return stored_value
        return None

    # ------------------------------------------------------------------- PUT

    #: Retry budget for inserts.  Retries are triggered both by genuine
    #: splits (bounded by MAX_DEPTH) and by benign races with concurrent
    #: writers/splitters (stale directory, lost slot CAS), so the budget
    #: is far above the split bound.
    _MAX_PUT_ATTEMPTS = 64

    def put(self, key, value, _attempts=0):
        if _attempts > self._MAX_PUT_ATTEMPTS:
            raise RaceError(f"insert of {key!r} kept failing (table full?)")
        fp12, spread, dir_index, bucket_index = self._locate(key)
        subtable, depth = self._dir[dir_index]
        # Write the block first (its offset goes into the slot).
        offset = yield from self._alloc_and_write_block(key, value)
        new_slot = pack_slot(fp12, len(key), len(value), offset)
        installed = yield from self._install(
            key, fp12, subtable, bucket_index, new_slot
        )
        if installed == "ok":
            return
        if installed == "retry":
            yield from self._refresh_directory()
            yield from self.put(key, value, _attempts=_attempts + 1)
            return
        # "full": split this subtable by one more directory bit, then retry.
        yield from self._split(dir_index, subtable, depth)
        yield from self.put(key, value, _attempts=_attempts + 1)

    def _alloc_and_write_block(self, key, value):
        scratch = self.scratch_addr + 8192 - 8
        size = block_bytes(key, value)
        yield from self.backend.fetch_add(
            self.catalog.gid, scratch, self.scratch_lkey,
            self.catalog.alloc_addr, self.catalog.rkey, size,
        )
        offset = int.from_bytes(self.node.memory.read(scratch, 8), "big")
        if offset + size > self.catalog.heap_bytes:
            raise RaceError("block heap exhausted")
        block_scratch = self.scratch_addr + 4096
        self.node.memory.write(block_scratch, pack_block(key, value))
        yield from self.backend.write(
            self.catalog.gid, block_scratch, self.scratch_lkey,
            self.catalog.heap_base + offset, self.catalog.rkey, size,
        )
        return offset

    def _install(self, key, fp12, subtable, bucket_index, new_slot):
        """Try to place ``new_slot``; returns 'ok', 'full', or 'retry'."""
        scratch = self.scratch_addr + 8192
        stale_seen = False
        for probe in range(PROBE_WINDOW):
            bucket_addr = self.catalog.bucket_addr(subtable, bucket_index + probe)
            yield from self.backend.read(
                self.catalog.gid, scratch, self.scratch_lkey,
                bucket_addr, self.catalog.rkey, BUCKET_BYTES,
            )
            bucket = self.node.memory.read(scratch, BUCKET_BYTES)
            empty_at = None
            for slot_index in range(SLOTS_PER_BUCKET):
                word = int.from_bytes(
                    bucket[slot_index * SLOT_BYTES : (slot_index + 1) * SLOT_BYTES], "big"
                )
                if word == 0:
                    if empty_at is None:
                        empty_at = bucket_addr + slot_index * SLOT_BYTES
                    continue
                fp, klen, vlen, offset = unpack_slot(word)
                if fp != fp12:
                    continue
                length = 2 + klen + vlen
                yield from self.backend.read(
                    self.catalog.gid, scratch + BUCKET_BYTES, self.scratch_lkey,
                    self.catalog.heap_base + offset, self.catalog.rkey, length,
                )
                block = self.node.memory.read(scratch + BUCKET_BYTES, length)
                stored_key, _ = unpack_block(block, klen, vlen)
                if stored_key == key:
                    won = yield from self._cas(
                        bucket_addr + slot_index * SLOT_BYTES, word, new_slot
                    )
                    return "ok" if won else "retry"
            if empty_at is not None:
                won = yield from self._cas(empty_at, 0, new_slot)
                if won:
                    return "ok"
                stale_seen = True
        return "retry" if stale_seen else "full"

    def _cas(self, slot_addr, expected, new_word):
        scratch = self.scratch_addr + 8192 - 8
        yield from self.backend.cas(
            self.catalog.gid, scratch, self.scratch_lkey,
            slot_addr, self.catalog.rkey, expected, new_word,
        )
        old = int.from_bytes(self.node.memory.read(scratch, 8), "big")
        return old == expected

    # ------------------------------------------------------------------ SPLIT

    def _split(self, dir_index, subtable, depth):
        """Split ``subtable`` by directory bit ``depth`` (RACE's remote,
        lock-free resize, §5.3.1 context)."""
        if depth >= MAX_DEPTH:
            raise RaceError("cannot split: directory depth exhausted")
        scratch = self.scratch_addr + 8192 - 8
        # 1. Allocate a fresh subtable index remotely.
        yield from self.backend.fetch_add(
            self.catalog.gid, scratch, self.scratch_lkey,
            self.catalog.subtable_cursor_addr, self.catalog.rkey, 1,
        )
        new_subtable = int.from_bytes(self.node.memory.read(scratch, 8), "big")
        if new_subtable >= MAX_SUBTABLES:
            raise RaceError("out of subtables")
        # 2. Claim the split: repoint the *new-half* directory replicas.
        #    The pattern with bit `depth` set moves to the new subtable.
        old_entry = pack_dir_entry(subtable, depth)
        new_entry_new = pack_dir_entry(new_subtable, depth + 1)
        new_entry_old = pack_dir_entry(subtable, depth + 1)
        pattern = dir_index & ((1 << depth) - 1)
        claimed = False
        for entry_index in range(DIR_ENTRIES):
            if entry_index & ((1 << depth) - 1) != pattern:
                continue
            moves = bool(entry_index & (1 << depth))
            target = new_entry_new if moves else new_entry_old
            won = yield from self._cas(
                self.catalog.dir_addr + entry_index * 8, old_entry, target
            )
            if not claimed and not won:
                # Another client split (or deepened) this subtable first:
                # abandon ours (the allocated subtable index is wasted).
                yield from self._refresh_directory()
                return
            claimed = True
        # 3. Move slots whose spread has bit `depth` set into the new
        #    subtable (blocks stay put; only 8B slots move).
        buckets_scratch = self.scratch_addr + 20480
        yield from self.backend.read(
            self.catalog.gid, buckets_scratch, self.scratch_lkey,
            self.catalog.subtable_addr(subtable), self.catalog.rkey,
            BUCKETS_PER_SUBTABLE * BUCKET_BYTES,
        )
        raw = self.node.memory.read(
            buckets_scratch, BUCKETS_PER_SUBTABLE * BUCKET_BYTES
        )
        for bucket_index in range(BUCKETS_PER_SUBTABLE):
            for slot_index in range(SLOTS_PER_BUCKET):
                base = bucket_index * BUCKET_BYTES + slot_index * SLOT_BYTES
                word = int.from_bytes(raw[base : base + SLOT_BYTES], "big")
                if word == 0:
                    continue
                fp, klen, vlen, offset = unpack_slot(word)
                length = 2 + klen + vlen
                yield from self.backend.read(
                    self.catalog.gid, self.scratch_addr + 16384, self.scratch_lkey,
                    self.catalog.heap_base + offset, self.catalog.rkey, length,
                )
                block = self.node.memory.read(self.scratch_addr + 16384, length)
                stored_key, _value = unpack_block(block, klen, vlen)
                _fp, spread = fingerprint(stored_key)
                if not spread & (1 << depth):
                    continue  # stays in the old subtable
                # Install in the new subtable, then clear the old slot.
                target_bucket = (spread >> MAX_DEPTH) % BUCKETS_PER_SUBTABLE
                placed = False
                for probe in range(PROBE_WINDOW):
                    for new_slot_index in range(SLOTS_PER_BUCKET):
                        slot_addr = (
                            self.catalog.bucket_addr(new_subtable, target_bucket + probe)
                            + new_slot_index * SLOT_BYTES
                        )
                        won = yield from self._cas(slot_addr, 0, word)
                        if won:
                            placed = True
                            break
                    if placed:
                        break
                if not placed:
                    raise RaceError("split target subtable overflowed")
                old_addr = (
                    self.catalog.bucket_addr(subtable, bucket_index)
                    + slot_index * SLOT_BYTES
                )
                yield from self._cas(old_addr, word, 0)
        self.stats_splits += 1
        yield from self._refresh_directory()
