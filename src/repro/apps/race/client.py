"""The computing-node side of RACE: one-sided GET/PUT over any backend."""

from repro.apps.race.hashing import (
    BUCKET_BYTES,
    PROBE_WINDOW,
    RaceError,
    SLOTS_PER_BUCKET,
    SLOT_BYTES,
    block_bytes,
    fingerprint,
    pack_block,
    pack_slot,
    unpack_block,
    unpack_slot,
)

#: Scratch layout: one bucket image, one block image, one atomic result,
#: then per-key slices for doorbell-batched GETs.
_SCRATCH_BUCKET = 0
_SCRATCH_BLOCK = 64
_SCRATCH_ATOMIC = 8192 - 8
_SCRATCH_BYTES = 8192

#: Per-key slice for batched GETs: bucket image + worst-case block.
_BATCH_SLICE = 64 + 2 + 255 + 4095

#: Bounded CAS retries under slot contention.
_MAX_RETRIES = 8


class RaceClient:
    """A RACE computing worker: GETs cost two READs, PUTs cost one remote
    allocation (FETCH_ADD) + one WRITE + one CAS."""

    def __init__(self, backend, catalogs):
        if not catalogs:
            raise RaceError("need at least one storage catalog")
        self.backend = backend
        self.node = backend.node
        self.catalogs = list(catalogs)
        self.scratch_addr = None
        self.scratch_lkey = None
        self.stats_gets = 0
        self.stats_puts = 0

    # -------------------------------------------------------------- lifecycle

    def setup(self, max_batch=64):
        """Process: connect to every storage node + register scratch.

        This is the worker bootstrap whose cost Fig 16 compares across
        backends.  ``max_batch`` sizes the scratch for get_batch.
        """
        yield from self.backend.connect([catalog.gid for catalog in self.catalogs])
        self.max_batch = max_batch
        self.scratch_addr, self.scratch_lkey = yield from self.backend.setup_buffer(
            _SCRATCH_BYTES + max_batch * _BATCH_SLICE
        )
        self._batch_base = self.scratch_addr + _SCRATCH_BYTES

    def _catalog_for(self, spread):
        return self.catalogs[(spread >> 20) % len(self.catalogs)]

    # ------------------------------------------------------------------- GET

    def get(self, key):
        """Process: fetch ``key``'s value (bytes) or None."""
        self.stats_gets += 1
        fp12, spread = fingerprint(key)
        catalog = self._catalog_for(spread)
        home = spread % catalog.num_buckets
        scratch = self.scratch_addr
        for probe in range(PROBE_WINDOW):
            bucket_addr = catalog.bucket_addr(home + probe)
            yield from self.backend.read(
                catalog.gid, scratch + _SCRATCH_BUCKET, self.scratch_lkey,
                bucket_addr, catalog.rkey, BUCKET_BYTES,
            )
            bucket = self.node.memory.read(scratch + _SCRATCH_BUCKET, BUCKET_BYTES)
            for slot_index in range(SLOTS_PER_BUCKET):
                word = int.from_bytes(
                    bucket[slot_index * SLOT_BYTES : (slot_index + 1) * SLOT_BYTES], "big"
                )
                if word == 0:
                    continue
                fp, klen, vlen, offset = unpack_slot(word)
                if fp != fp12:
                    continue
                length = 2 + klen + vlen
                yield from self.backend.read(
                    catalog.gid, scratch + _SCRATCH_BLOCK, self.scratch_lkey,
                    catalog.heap_base + offset, catalog.rkey, length,
                )
                block = self.node.memory.read(scratch + _SCRATCH_BLOCK, length)
                stored_key, stored_value = unpack_block(block, klen, vlen)
                if stored_key == key:
                    return stored_value
        return None

    def get_batch(self, keys):
        """Process: doorbell-batched GETs -- one READ round for all the
        buckets, then one for all the candidate blocks (the RDMA-aware
        optimization that gives KRCORE its Fig 16 edge over LITE)."""
        if len(keys) > self.max_batch:
            raise RaceError(f"batch of {len(keys)} exceeds max_batch={self.max_batch}")
        self.stats_gets += len(keys)
        plans = []
        for index, key in enumerate(keys):
            fp12, spread = fingerprint(key)
            catalog = self._catalog_for(spread)
            plans.append((key, fp12, catalog, spread % catalog.num_buckets))
        # Round 1: every home bucket.
        base = self._batch_base
        requests = []
        for index, (key, fp12, catalog, home) in enumerate(plans):
            requests.append(
                (
                    catalog.gid,
                    base + index * _BATCH_SLICE,
                    self.scratch_lkey,
                    catalog.bucket_addr(home),
                    catalog.rkey,
                    BUCKET_BYTES,
                )
            )
        yield from self.backend.read_batch(requests)
        # Round 2: the matching blocks.
        block_requests = []
        pending = []
        for index, (key, fp12, catalog, home) in enumerate(plans):
            slice_addr = base + index * _BATCH_SLICE
            bucket = self.node.memory.read(slice_addr, BUCKET_BYTES)
            hit = None
            for slot_index in range(SLOTS_PER_BUCKET):
                word = int.from_bytes(
                    bucket[slot_index * SLOT_BYTES : (slot_index + 1) * SLOT_BYTES], "big"
                )
                if word == 0:
                    continue
                fp, klen, vlen, offset = unpack_slot(word)
                if fp == fp12:
                    hit = (klen, vlen, offset)
                    break
            if hit is None:
                pending.append((key, None, None))
                continue
            klen, vlen, offset = hit
            length = 2 + klen + vlen
            block_addr = slice_addr + BUCKET_BYTES
            block_requests.append(
                (catalog.gid, block_addr, self.scratch_lkey,
                 catalog.heap_base + offset, catalog.rkey, length)
            )
            pending.append((key, block_addr, (klen, vlen)))
        if block_requests:
            yield from self.backend.read_batch(block_requests)
        results = {}
        for key, block_addr, shape in pending:
            if block_addr is None:
                results[key] = None
                continue
            klen, vlen = shape
            block = self.node.memory.read(block_addr, 2 + klen + vlen)
            stored_key, stored_value = unpack_block(block, klen, vlen)
            results[key] = stored_value if stored_key == key else None
        return results

    # ------------------------------------------------------------------- PUT

    def put(self, key, value):
        """Process: insert/update via remote alloc + WRITE + slot CAS."""
        self.stats_puts += 1
        fp12, spread = fingerprint(key)
        catalog = self._catalog_for(spread)
        scratch = self.scratch_addr
        # 1. Allocate a block remotely (FETCH_ADD on the heap cursor).
        size = block_bytes(key, value)
        yield from self.backend.fetch_add(
            catalog.gid, scratch + _SCRATCH_ATOMIC, self.scratch_lkey,
            catalog.alloc_addr, catalog.rkey, size,
        )
        offset = int.from_bytes(self.node.memory.read(scratch + _SCRATCH_ATOMIC, 8), "big")
        if offset + size > catalog.heap_bytes:
            raise RaceError("storage block heap exhausted")
        # 2. Write the block.
        self.node.memory.write(scratch + _SCRATCH_BLOCK, pack_block(key, value))
        yield from self.backend.write(
            catalog.gid, scratch + _SCRATCH_BLOCK, self.scratch_lkey,
            catalog.heap_base + offset, catalog.rkey, size,
        )
        new_slot = pack_slot(fp12, len(key), len(value), offset)
        # 3. Install the slot with CAS (update in place if the key exists).
        home = spread % catalog.num_buckets
        for _ in range(_MAX_RETRIES):
            installed = yield from self._try_install(catalog, fp12, key, home, new_slot)
            if installed:
                return
        raise RaceError(f"slot CAS kept failing for {key!r}")

    def _try_install(self, catalog, fp12, key, home, new_slot):
        scratch = self.scratch_addr
        for probe in range(PROBE_WINDOW):
            bucket_addr = catalog.bucket_addr(home + probe)
            yield from self.backend.read(
                catalog.gid, scratch + _SCRATCH_BUCKET, self.scratch_lkey,
                bucket_addr, catalog.rkey, BUCKET_BYTES,
            )
            bucket = self.node.memory.read(scratch + _SCRATCH_BUCKET, BUCKET_BYTES)
            empty_at = None
            for slot_index in range(SLOTS_PER_BUCKET):
                word = int.from_bytes(
                    bucket[slot_index * SLOT_BYTES : (slot_index + 1) * SLOT_BYTES], "big"
                )
                if word == 0:
                    if empty_at is None:
                        empty_at = (bucket_addr + slot_index * SLOT_BYTES, 0)
                    continue
                fp, klen, vlen, offset = unpack_slot(word)
                if fp != fp12:
                    continue
                length = 2 + klen + vlen
                yield from self.backend.read(
                    catalog.gid, scratch + _SCRATCH_BLOCK, self.scratch_lkey,
                    catalog.heap_base + offset, catalog.rkey, length,
                )
                block = self.node.memory.read(scratch + _SCRATCH_BLOCK, length)
                stored_key, _ = unpack_block(block, klen, vlen)
                if stored_key == key:
                    # Update in place: CAS old slot word -> new.
                    won = yield from self._cas_slot(
                        catalog, bucket_addr + slot_index * SLOT_BYTES, word, new_slot
                    )
                    return won
            if empty_at is not None:
                slot_addr, expected = empty_at
                won = yield from self._cas_slot(catalog, slot_addr, expected, new_slot)
                if won:
                    return True
                return False  # lost the race: re-read and retry
        raise RaceError(f"no free slot within {PROBE_WINDOW} buckets")

    # ---------------------------------------------------------------- DELETE

    def delete(self, key):
        """Process: remove ``key`` by CAS-ing its slot to zero.

        Safe with linear probing because lookups always scan the full
        probe window (they never early-stop on an empty slot).  Returns
        True if the key was present.
        """
        fp12, spread = fingerprint(key)
        catalog = self._catalog_for(spread)
        scratch = self.scratch_addr
        home = spread % catalog.num_buckets
        for _ in range(_MAX_RETRIES):
            for probe in range(PROBE_WINDOW):
                bucket_addr = catalog.bucket_addr(home + probe)
                yield from self.backend.read(
                    catalog.gid, scratch + _SCRATCH_BUCKET, self.scratch_lkey,
                    bucket_addr, catalog.rkey, BUCKET_BYTES,
                )
                bucket = self.node.memory.read(scratch + _SCRATCH_BUCKET, BUCKET_BYTES)
                for slot_index in range(SLOTS_PER_BUCKET):
                    word = int.from_bytes(
                        bucket[slot_index * SLOT_BYTES : (slot_index + 1) * SLOT_BYTES],
                        "big",
                    )
                    if word == 0:
                        continue
                    fp, klen, vlen, offset = unpack_slot(word)
                    if fp != fp12:
                        continue
                    length = 2 + klen + vlen
                    yield from self.backend.read(
                        catalog.gid, scratch + _SCRATCH_BLOCK, self.scratch_lkey,
                        catalog.heap_base + offset, catalog.rkey, length,
                    )
                    block = self.node.memory.read(scratch + _SCRATCH_BLOCK, length)
                    stored_key, _ = unpack_block(block, klen, vlen)
                    if stored_key != key:
                        continue
                    won = yield from self._cas_slot(
                        catalog, bucket_addr + slot_index * SLOT_BYTES, word, 0
                    )
                    if won:
                        return True
                    break  # slot changed under us: retry the whole scan
                else:
                    continue
                break
            else:
                return False  # full window scanned, key absent
        raise RaceError(f"delete kept losing CAS races for {key!r}")

    def _cas_slot(self, catalog, slot_addr, expected, new_slot):
        scratch = self.scratch_addr
        yield from self.backend.cas(
            catalog.gid, scratch + _SCRATCH_ATOMIC, self.scratch_lkey,
            slot_addr, catalog.rkey, expected, new_slot,
        )
        old = int.from_bytes(self.node.memory.read(scratch + _SCRATCH_ATOMIC, 8), "big")
        return old == expected
