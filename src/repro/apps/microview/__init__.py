"""MicroView: a SmartNIC-style collector harvesting per-pod metric MRs.

The scenario from ROADMAP item 5: one collector node READs thousands of
tiny (4 KB) per-pod memory regions off the worker nodes every cycle,
while pods churn -- each pod death retracts its MR and each pod start
registers a fresh one.  Registration/validation cost, not connection
setup, dominates (KRCORE §4.2), which is exactly the MRStore lease/epoch
machinery this app stresses.

Three harvest strategies ride three control planes:

* ``serial``   -- N small one-sided READs, one per pod;
* ``batched``  -- doorbell-batched READ chains (PR 8's
  ``post_send_batch``): one doorbell per worker;
* ``vectored`` -- multi-SGE gather READs (``Opcode.READ_V``): one WR
  names up to ``timing.MAX_VECTORED_SGES`` pod segments.

across the verbs / LITE / KRCORE backends (LITE's high-level API can
only harvest serially).
"""

from repro.apps.microview.backends import (
    KrcoreBackend,
    LiteBackend,
    MicroViewError,
    VerbsBackend,
)
from repro.apps.microview.collector import STRATEGIES, Collector, HarvestStats
from repro.apps.microview.pods import POD_BYTES, Pod, PodDirectory

__all__ = [
    "Collector",
    "HarvestStats",
    "KrcoreBackend",
    "LiteBackend",
    "MicroViewError",
    "POD_BYTES",
    "Pod",
    "PodDirectory",
    "STRATEGIES",
    "VerbsBackend",
]
