"""The MicroView collector: harvest every pod MR, each cycle.

One :class:`Collector` drives one backend over one
:class:`~repro.apps.microview.pods.PodDirectory`: each cycle re-snapshots
the pod targets (churn swaps rkeys out between cycles), runs one harvest
with the chosen strategy, and accounts latency/goodput into a
:class:`HarvestStats`.
"""

from repro.sim import US

#: The harvest strategies every backend answers to (LITE degrades the
#: last two to the serial loop).
STRATEGIES = ("serial", "batched", "vectored")


class HarvestStats:
    """Per-run harvest accounting."""

    def __init__(self):
        self.cycles = 0
        self.total_ns = 0
        self.bytes_ok = 0
        self.failed_reads = 0
        self.cycle_ns = []  # per-cycle harvest latency, in cycle order

    @property
    def avg_cycle_us(self):
        if not self.cycles:
            return 0.0
        return self.total_ns / self.cycles / US

    @property
    def goodput_mbps(self):
        """Successfully harvested MB/s over the harvesting wall-clock."""
        if not self.total_ns:
            return 0.0
        return self.bytes_ok / (self.total_ns / 1e9) / 1e6


class Collector:
    """The metrics-harvesting loop on the collector node."""

    def __init__(self, node, backend, directory):
        self.node = node
        self.sim = node.sim
        self.backend = backend
        self.directory = directory
        self.stats = HarvestStats()

    def setup(self):
        """Process: connect to every worker and size the scratch buffer
        for the largest possible snapshot."""
        gids = sorted({node.gid for node, _ in self.directory.workers})
        yield from self.backend.connect(gids)
        nbytes = max(
            len(self.directory.pods) * self.directory.pod_bytes,
            self.directory.pod_bytes,
        )
        self._laddr, self._lkey = yield from self.backend.setup_buffer(nbytes)

    def harvest_cycle(self, strategy):
        """Process: one full harvest of the current pod snapshot."""
        harvest = getattr(self.backend, f"harvest_{strategy}")
        targets = self.directory.targets()
        started = self.sim.now
        bytes_ok, failed = yield from harvest(targets, self._laddr, self._lkey)
        elapsed = self.sim.now - started
        stats = self.stats
        stats.cycles += 1
        stats.total_ns += elapsed
        stats.bytes_ok += bytes_ok
        stats.failed_reads += failed
        stats.cycle_ns.append(elapsed)

    def run_cycles(self, cycles, strategy, gap_ns=0):
        """Process: ``cycles`` back-to-back harvests (plus an optional
        inter-cycle gap, the collector's sampling interval)."""
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown harvest strategy {strategy!r}")
        for _ in range(cycles):
            yield from self.harvest_cycle(strategy)
            if gap_ns:
                yield gap_ns
        return self.stats
