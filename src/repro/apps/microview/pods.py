"""Per-pod metric regions and the pod-churn driver.

A :class:`PodDirectory` owns every pod MR on the worker nodes and is the
registry the collector harvests from.  With a :class:`KrcoreModule` per
worker, registrations go through ``reg_mr`` (ValidMR + meta publication)
and churn through ``dereg_mr`` (retraction + one-lease deferred free),
so a churn storm exercises the full lease/epoch safety machinery; bare
workers (verbs/LITE deployments) register plain verbs MRs.
"""

from repro.cluster import timing

#: One pod's metric page (the MicroView per-pod snapshot).
POD_BYTES = 4096


class Pod:
    """One pod's live metric region on a worker node."""

    __slots__ = ("node", "module", "index", "region", "generation")

    def __init__(self, node, module, index, region):
        self.node = node
        self.module = module
        self.index = index
        self.region = region
        #: Bumped every churn (dereg + re-register): the collector can
        #: tell a recycled pod slot from the one it last harvested.
        self.generation = 0

    @property
    def worker_gid(self):
        return self.node.gid


class PodDirectory:
    """Every pod MR across the worker nodes, plus the churn driver."""

    def __init__(self, workers, pod_bytes=POD_BYTES):
        #: ``workers`` is a list of (node, module-or-None) pairs.
        self.workers = list(workers)
        self.pod_bytes = pod_bytes
        self.sim = self.workers[0][0].sim
        self.pods = []
        #: Completed churn events (one dereg + one re-register each).
        self.stats_churns = 0

    def deploy(self, pods_per_worker):
        """Process: register ``pods_per_worker`` pod MRs on every worker."""
        for node, module in self.workers:
            for index in range(pods_per_worker):
                region = yield from self._register(node, module)
                self.pods.append(Pod(node, module, len(self.pods), region))

    def _register(self, node, module):
        addr = node.memory.alloc(self.pod_bytes)
        if module is not None:
            region = yield from module.reg_mr(addr, self.pod_bytes)
        else:
            yield timing.reg_mr_ns(self.pod_bytes)
            region = node.memory.register(addr, self.pod_bytes)
        return region

    def targets(self):
        """The current harvest list: (gid, raddr, rkey, length) per pod.

        Re-snapshot every cycle -- churn swaps regions (and rkeys) out
        from under a stale list.
        """
        return [
            (pod.worker_gid, pod.region.addr, pod.region.rkey, pod.region.length)
            for pod in self.pods
        ]

    def churn_one(self, pod):
        """Process: one pod dies and restarts -- retract its MR (deferred
        free, one lease) and register a replacement page."""
        if pod.module is None:
            raise ValueError("churn requires KRCORE-managed pods (reg/dereg_mr)")
        yield from pod.module.dereg_mr(pod.region)
        pod.region = yield from self._register(pod.node, pod.module)
        pod.generation += 1
        self.stats_churns += 1

    def churn_driver(self, interval_ns, horizon_ns, seed=1):
        """Process: the churn storm -- every ``interval_ns``, a seeded LCG
        picks one pod to kill and restart, until ``horizon_ns``."""
        state = (seed * 6364136223846793005 + 1442695040888963407) % (1 << 64) or 1
        while self.sim.now < horizon_ns:
            yield interval_ns
            if not self.pods:
                continue
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            pod = self.pods[(state >> 33) % len(self.pods)]
            yield from self.churn_one(pod)
