"""Interchangeable RDMA transports for the MicroView collector.

Same deal as the RACE backends (§5.3.1): one collector loop driven
through three control/data planes.  Every harvest method takes the
snapshot ``targets`` list (``(gid, raddr, rkey, length)`` per pod) and a
local scratch buffer, scatters the pod pages back-to-back into it, and
returns ``(bytes_ok, failed)`` -- under churn a READ can lose the race
with a retraction, and the collector wants the goodput, not an abort.

* :class:`VerbsBackend`  -- RC connections; serial, doorbell-batched,
  and vectored (READ_V) harvests.
* :class:`LiteBackend`   -- LITE's synchronous kernel API: every
  strategy degrades to the serial loop (Issue #3: no low-level access,
  so no doorbell chains and no gather WRs).
* :class:`KrcoreBackend` -- VQPs: all three strategies, with KRCORE's
  software pre-checks keeping a mid-harvest retraction from wrecking
  the shared physical QP.
"""

from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.verbs import DriverContext, WorkRequest
from repro.verbs.connection import rc_connect
from repro.verbs.errors import KrcoreError


class MicroViewError(Exception):
    """A harvest op failed outside the expected churn races."""


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


class VerbsBackend:
    """User-space verbs: the baseline control plane."""

    def __init__(self, node, port=0):
        self.node = node
        self.sim = node.sim
        self.context = DriverContext(node)
        self.port = port
        self.cq = None
        self._qps = {}  # gid -> QueuePair

    def connect(self, gids):
        """Process: driver init + one RC connection per worker."""
        yield from self.context.ensure_init()
        if self.cq is None:
            self.cq = yield from self.context.create_cq()
        for gid in gids:
            if gid not in self._qps:
                self._qps[gid] = yield from rc_connect(
                    self.context, self.cq, gid, port=self.port
                )

    def setup_buffer(self, nbytes):
        """Process: allocate + register the harvest scratch buffer."""
        addr = self.node.memory.alloc(nbytes)
        yield timing.reg_mr_ns(nbytes)
        region = self.node.memory.register(addr, nbytes)
        return addr, region.lkey

    def _sync(self, gid, wr):
        qp = self._qps[gid]
        yield timing.POST_SEND_CPU_NS
        qp.post_send(wr)
        completions = yield from qp.send_cq.wait_poll()
        yield timing.POLL_CQ_CPU_NS
        if not completions[0].ok:
            raise MicroViewError(f"verbs harvest READ failed: {completions[0].status}")

    def harvest_serial(self, targets, laddr, lkey):
        """Process: N small READs, one per pod."""
        offset = 0
        for gid, raddr, rkey, length in targets:
            yield from self._sync(
                gid, WorkRequest.read(laddr + offset, length, lkey, raddr, rkey)
            )
            offset += length
        return offset, 0

    def harvest_batched(self, targets, laddr, lkey):
        """Process: one doorbell-batched READ chain per worker QP."""
        chains = {}  # QueuePair -> WR chain, in first-use order
        offset = 0
        for gid, raddr, rkey, length in targets:
            chains.setdefault(self._qps[gid], []).append(
                WorkRequest.read(laddr + offset, length, lkey, raddr, rkey)
            )
            offset += length
        expected = 0
        for qp, wrs in chains.items():
            yield timing.doorbell_batch_cpu_ns(len(wrs))
            qp.post_send_batch(wrs)
            expected += len(wrs)
        seen = 0
        while seen < expected:
            completions = yield from self.cq.wait_poll(expected)
            for completion in completions:
                if not completion.ok:
                    raise MicroViewError(
                        f"batched harvest READ failed: {completion.status}"
                    )
            seen += len(completions)
        yield timing.POLL_CQ_CPU_NS
        return offset, 0

    def harvest_vectored(self, targets, laddr, lkey):
        """Process: gather READs -- one READ_V per MAX_VECTORED_SGES pods
        of one worker, scattering the pages into the scratch buffer."""
        by_gid = {}
        offset = 0
        for gid, raddr, rkey, length in targets:
            by_gid.setdefault(gid, []).append((offset, (raddr, rkey, length)))
            offset += length
        for gid, entries in by_gid.items():
            for chunk in _chunks(entries, timing.MAX_VECTORED_SGES):
                wr = WorkRequest.read_vectored(
                    laddr + chunk[0][0], lkey, [sge for _, sge in chunk]
                )
                yield from self._sync(gid, wr)
        return offset, 0


class LiteBackend:
    """LITE's high-level kernel API (synchronous one-op-at-a-time)."""

    def __init__(self, node):
        module = node.services.get("lite")
        if module is None:
            raise MicroViewError(f"{node.gid} has no LITE module loaded")
        self.node = node
        self.module = module

    def connect(self, gids):
        """Process: warm LITE's kernel connection cache (~2 ms per miss)."""
        for gid in gids:
            yield from self.module.ensure_qp(gid)

    def setup_buffer(self, nbytes):
        addr = self.node.memory.alloc(nbytes)
        yield timing.reg_mr_ns(nbytes)
        region = self.node.memory.register(addr, nbytes)
        return addr, region.lkey

    def harvest_serial(self, targets, laddr, lkey):
        offset = 0
        for gid, raddr, rkey, length in targets:
            yield from self.module.read(gid, laddr + offset, lkey, raddr, rkey, length)
            offset += length
        return offset, 0

    # The kernel API exposes neither doorbell chains nor gather WRs, so
    # the "optimized" strategies are the serial loop in a trench coat.
    harvest_batched = harvest_serial
    harvest_vectored = harvest_serial


class KrcoreBackend:
    """KRCORE VQPs: microsecond control plane, low-level data plane."""

    def __init__(self, node, cpu_id=0):
        self.node = node
        self.lib = KrcoreLib(node, cpu_id=cpu_id)
        self._vqps = {}
        #: Harvest READs lost to churn races (failed validation or
        #: completion); the shared QP survives them all.
        self.stats_failed = 0

    def connect(self, gids):
        """Process: qconnect to each worker (us-scale, Fig 8a)."""
        for gid in gids:
            if gid in self._vqps:
                continue
            vqp = yield from self.lib.create_vqp()
            yield from self.lib.qconnect(vqp, gid)
            self._vqps[gid] = vqp

    def setup_buffer(self, nbytes):
        addr = self.node.memory.alloc(nbytes)
        region = yield from self.lib.reg_mr(addr, nbytes)
        return addr, region.lkey

    def harvest_serial(self, targets, laddr, lkey):
        harvested = 0
        failed = 0
        offset = 0
        for gid, raddr, rkey, length in targets:
            try:
                yield from self.lib.read_sync(
                    self._vqps[gid], laddr + offset, lkey, raddr, rkey, length
                )
                harvested += length
            except KrcoreError:
                failed += 1
            offset += length
        self.stats_failed += failed
        return harvested, failed

    def harvest_batched(self, targets, laddr, lkey):
        """Process: doorbell batching through the VQPs.  Validation runs
        before anything is posted, so a churned-out pod fails its whole
        chain cleanly instead of wrecking the shared physical QP."""
        by_gid = {}
        offset = 0
        for gid, raddr, rkey, length in targets:
            by_gid.setdefault(gid, []).append(
                WorkRequest.read(laddr + offset, length, lkey, raddr, rkey)
            )
            offset += length
        harvested = 0
        failed = 0
        posted = []
        for gid, wrs in by_gid.items():
            try:
                yield from self.lib.post_send_batch(self._vqps[gid], wrs)
                posted.append((gid, wrs))
            except KrcoreError:
                failed += len(wrs)
        for gid, wrs in posted:
            vqp = self._vqps[gid]
            for wr in wrs:
                entry = yield from vqp.wait_send_completion()
                if entry.ok:
                    harvested += wr.length
                else:
                    failed += 1
        self.stats_failed += failed
        return harvested, failed

    def harvest_vectored(self, targets, laddr, lkey):
        """Process: gather READs through the VQPs -- every segment is
        pre-validated against the MRStore before the WR posts."""
        by_gid = {}
        offset = 0
        for gid, raddr, rkey, length in targets:
            by_gid.setdefault(gid, []).append((offset, (raddr, rkey, length)))
            offset += length
        harvested = 0
        failed = 0
        for gid, entries in by_gid.items():
            for chunk in _chunks(entries, timing.MAX_VECTORED_SGES):
                try:
                    yield from self.lib.read_vectored_sync(
                        self._vqps[gid],
                        laddr + chunk[0][0],
                        lkey,
                        [sge for _, sge in chunk],
                    )
                    harvested += sum(sge[2] for _, sge in chunk)
                except KrcoreError:
                    failed += len(chunk)
        self.stats_failed += failed
        return harvested, failed
