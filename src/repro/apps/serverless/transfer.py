"""ServerlessBench TestCase5: pass a payload between two functions (§5.3.2).

The receiver function runs on a separate machine and starts *after* the
sender finishes execution (the paper's setup).  The measured quantity is
the data-transfer time: everything from the receiver being ready to the
payload landing in its buffer -- which, over verbs, is dominated by both
sides' RDMA control paths (~33 ms), and over KRCORE collapses to tens of
microseconds (a 99% reduction, Fig 12b).
"""

from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.verbs import (
    ConnectionManager,
    DriverContext,
    RecvBuffer,
    WorkRequest,
)
from repro.verbs.connection import rc_connect

_PORT = 55


class TransferResult:
    """Timing breakdown of one TestCase5 run."""

    __slots__ = ("payload_bytes", "transfer_ns", "receiver_setup_ns", "sender_setup_ns", "send_ns")

    def __init__(self, payload_bytes, transfer_ns, receiver_setup_ns, sender_setup_ns, send_ns):
        self.payload_bytes = payload_bytes
        self.transfer_ns = transfer_ns
        self.receiver_setup_ns = receiver_setup_ns
        self.sender_setup_ns = sender_setup_ns
        self.send_ns = send_ns


def run_transfer_testcase(sim, sender_node, receiver_node, payload_bytes, backend):
    """Process: one message pass; returns a :class:`TransferResult`.

    ``backend`` is "verbs" or "krcore" (the receiver node must run the
    matching stack: a ConnectionManager for verbs, a KRCORE module for
    krcore).
    """
    if backend == "verbs":
        result = yield from _verbs_transfer(sim, sender_node, receiver_node, payload_bytes)
    elif backend == "krcore":
        result = yield from _krcore_transfer(sim, sender_node, receiver_node, payload_bytes)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return result


def _verbs_transfer(sim, sender_node, receiver_node, payload_bytes):
    start = sim.now
    # --- receiver side: a fresh process must build its whole RDMA stack ---
    recv_ctx = DriverContext(receiver_node)
    yield from recv_ctx.ensure_init()
    recv_cq = yield from recv_ctx.create_cq()
    recv_pd = recv_ctx.alloc_pd()
    recv_addr = receiver_node.memory.alloc(payload_bytes)
    recv_mr = yield from recv_pd.reg_mr(recv_addr, payload_bytes)
    manager = receiver_node.services[ConnectionManager.SERVICE]
    accepted = []

    def on_accept(qp, gid):
        qp.send_cq = recv_cq
        qp.recv_cq = recv_cq
        qp.post_recv(RecvBuffer(recv_addr, payload_bytes, recv_mr.lkey))
        accepted.append(qp)

    manager.listen(_PORT, on_accept)
    receiver_ready = sim.now

    # --- sender side ---
    send_ctx = DriverContext(sender_node)
    yield from send_ctx.ensure_init()
    send_cq = yield from send_ctx.create_cq()
    send_pd = send_ctx.alloc_pd()
    send_addr = sender_node.memory.alloc(payload_bytes)
    send_mr = yield from send_pd.reg_mr(send_addr, payload_bytes)
    qp = yield from rc_connect(send_ctx, send_cq, receiver_node.gid, port=_PORT)
    # Wait until the receiver's accept path posted its buffer.
    while not accepted:
        yield 10_000
    sender_ready = sim.now
    yield timing.POST_SEND_CPU_NS
    qp.post_send(WorkRequest.send(send_addr, payload_bytes, send_mr.lkey))
    completions = yield from recv_cq.wait_poll()
    assert completions[0].byte_len == payload_bytes
    done = sim.now
    manager.unlisten(_PORT)
    return TransferResult(
        payload_bytes,
        transfer_ns=done - start,
        receiver_setup_ns=receiver_ready - start,
        sender_setup_ns=sender_ready - receiver_ready,
        send_ns=done - sender_ready,
    )


def _krcore_transfer(sim, sender_node, receiver_node, payload_bytes):
    start = sim.now
    # --- receiver: qbind + post_recv (microseconds) ---
    recv_lib = KrcoreLib(receiver_node)
    recv_vqp = yield from recv_lib.create_vqp()
    yield from recv_lib.qbind(recv_vqp, _PORT)
    recv_addr = receiver_node.memory.alloc(payload_bytes)
    recv_mr = yield from recv_lib.reg_mr(recv_addr, payload_bytes)
    yield from recv_lib.post_recv(
        recv_vqp, RecvBuffer(recv_addr, payload_bytes, recv_mr.lkey)
    )
    receiver_ready = sim.now

    # --- sender: qconnect + SEND ---
    send_lib = KrcoreLib(sender_node)
    send_addr = sender_node.memory.alloc(payload_bytes)
    send_mr = yield from send_lib.reg_mr(send_addr, payload_bytes)
    send_vqp = yield from send_lib.create_vqp()
    yield from send_lib.qconnect(send_vqp, receiver_node.gid, _PORT)
    sender_ready = sim.now
    yield from send_lib.post_send(
        send_vqp, WorkRequest.send(send_addr, payload_bytes, send_mr.lkey)
    )
    results = yield from recv_lib.qpop_msgs_wait(recv_vqp)
    assert results and results[0][1].byte_len == payload_bytes
    done = sim.now
    recv_lib.module.unbind(_PORT)  # free the port for reruns
    return TransferResult(
        payload_bytes,
        transfer_ns=done - start,
        receiver_setup_ns=receiver_ready - start,
        sender_setup_ns=sender_ready - receiver_ready,
        send_ns=done - sender_ready,
    )
