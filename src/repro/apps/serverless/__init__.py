"""An Fn-like serverless platform (§5.3.2).

Functions run in containers on cluster nodes; the platform models cold
and warm starts (the paper uses warm-start techniques [40] so container
time does not mask the RDMA control path).  The data-transfer testcase is
ServerlessBench's TestCase5: measure the time to pass a message between
two functions on different machines over RDMA.
"""

from repro.apps.serverless.platform import (
    COLD_START_NS,
    WARM_START_NS,
    FunctionError,
    ServerlessPlatform,
)
from repro.apps.serverless.transfer import TransferResult, run_transfer_testcase

__all__ = [
    "COLD_START_NS",
    "FunctionError",
    "ServerlessPlatform",
    "TransferResult",
    "WARM_START_NS",
    "run_transfer_testcase",
]
