"""The serverless platform: functions, containers, cold/warm starts."""

from repro.sim import MS

#: First launch of a function on a node: pull image, create container.
COLD_START_NS = 250 * MS

#: Warm start: a paused container is resumed (the paper cites SOCK-style
#: techniques [40] reaching ~10 ms).
WARM_START_NS = 10 * MS


class FunctionError(Exception):
    """Invoking an unknown function or a handler failure."""


class _Container:
    __slots__ = ("warm", "runs")

    def __init__(self):
        self.warm = False
        self.runs = 0


class ServerlessPlatform:
    """Schedules function invocations onto cluster nodes.

    Handlers are generator functions ``handler(ctx, payload)`` run as
    simulation processes; ``ctx`` gives them their node and platform.
    """

    def __init__(self, sim):
        self.sim = sim
        self._functions = {}  # name -> (handler, node)
        self._containers = {}  # (name) -> _Container
        self.stats_cold_starts = 0
        self.stats_warm_starts = 0

    def deploy(self, name, handler, node):
        if name in self._functions:
            raise FunctionError(f"function {name!r} already deployed")
        self._functions[name] = (handler, node)
        self._containers[name] = _Container()

    def prewarm(self, name):
        """Mark the function's container warm (pre-provisioned)."""
        self._container(name).warm = True

    def _container(self, name):
        if name not in self._functions:
            raise FunctionError(f"unknown function {name!r}")
        return self._containers[name]

    def invoke(self, name, payload=None):
        """Process: start the container (cold or warm) and run the handler.

        Returns the handler's return value.
        """
        handler, node = self._functions.get(name, (None, None))
        if handler is None:
            raise FunctionError(f"unknown function {name!r}")
        container = self._container(name)
        if container.warm:
            self.stats_warm_starts += 1
            yield WARM_START_NS
        else:
            self.stats_cold_starts += 1
            yield COLD_START_NS
            container.warm = True
        container.runs += 1
        ctx = InvocationContext(self, node, name)
        result = yield from handler(ctx, payload)
        return result

    def node_of(self, name):
        return self._functions[name][1]


class InvocationContext:
    """What a running function sees: its node, platform, and name."""

    __slots__ = ("platform", "node", "function_name")

    def __init__(self, platform, node, function_name):
        self.platform = platform
        self.node = node
        self.function_name = function_name

    @property
    def sim(self):
        return self.platform.sim
