"""Storage-node side: a fixed table of versioned, lockable records.

Record layout (header is one CAS-able 64-bit word):

    header:  lock (bit 63) | version (bits 0..62)
    value:   ``value_bytes`` of payload

Records live in one registered region so computing nodes can READ /
WRITE / CAS them directly.
"""

LOCK_BIT = 1 << 63
VERSION_MASK = LOCK_BIT - 1

HEADER_BYTES = 8


class TxnError(Exception):
    """Misuse of the transaction substrate (bad record id, oversize...)."""


class TxnCatalog:
    """Geometry a computing node needs to drive one storage node."""

    __slots__ = ("gid", "rkey", "base_addr", "num_records", "value_bytes")

    def __init__(self, gid, rkey, base_addr, num_records, value_bytes):
        self.gid = gid
        self.rkey = rkey
        self.base_addr = base_addr
        self.num_records = num_records
        self.value_bytes = value_bytes

    @property
    def record_bytes(self):
        return HEADER_BYTES + self.value_bytes

    def header_addr(self, record_id):
        return self.base_addr + record_id * self.record_bytes

    def value_addr(self, record_id):
        return self.header_addr(record_id) + HEADER_BYTES


class TxnStorage:
    """A passive storage node hosting ``num_records`` fixed-size records."""

    def __init__(self, node, num_records=1024, value_bytes=64, register=True):
        self.node = node
        self.num_records = num_records
        self.value_bytes = value_bytes
        total = num_records * (HEADER_BYTES + value_bytes)
        self.base = node.memory.alloc(total)
        node.memory.write(self.base, bytes(total))
        self.region = node.memory.register(self.base, total) if register else None

    def catalog(self, rkey=None):
        return TxnCatalog(
            self.node.gid,
            self.region.rkey if rkey is None else rkey,
            self.base,
            self.num_records,
            self.value_bytes,
        )

    # -- local helpers (load phase / assertions) -------------------------------

    def load(self, record_id, value):
        """Initialize a record locally (version stays, lock cleared)."""
        catalog = self.catalog(rkey=0)
        if len(value) > self.value_bytes:
            raise TxnError(f"value of {len(value)}B exceeds {self.value_bytes}B records")
        self.node.memory.write(
            catalog.value_addr(record_id), value.ljust(self.value_bytes, b"\x00")
        )

    def read_local(self, record_id):
        """(version, locked, value) as stored right now."""
        catalog = self.catalog(rkey=0)
        header = int.from_bytes(self.node.memory.read(catalog.header_addr(record_id), 8), "big")
        value = self.node.memory.read(catalog.value_addr(record_id), self.value_bytes)
        return header & VERSION_MASK, bool(header & LOCK_BIT), value
