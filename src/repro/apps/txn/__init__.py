"""FaRM-style distributed transactions over one-sided RDMA.

Fig 1 of the paper motivates KRCORE with elastic RDMA applications; one of
them is FaRM-v2 [46] running TPC-C-style transactions whose execution has
reached 10-100 us -- dwarfed by a 15.7 ms connection setup.  This package
implements that substrate: optimistic concurrency control in the style of
FaRM's commit protocol (SOSP'15 / SIGMOD'19), executed purely with
one-sided READ / WRITE / CAS against passive storage nodes:

* **execute**: READ records (version + value) into a local read-set;
  writes buffer locally;
* **lock**: CAS each write-set record's header to set the lock bit;
* **validate**: re-READ each read-set header -- unchanged and unlocked;
* **install**: WRITE new values, then WRITE headers with version+1 and
  the lock released.

No replication or logging (the paper's Fig 1 only needs the transaction
execution path); conflicts abort and the caller retries.
"""

from repro.apps.txn.storage import TxnError, TxnStorage
from repro.apps.txn.client import Transaction, TxnAborted, TxnClient

__all__ = ["Transaction", "TxnAborted", "TxnClient", "TxnError", "TxnStorage"]
