"""Computing-node side: FaRM-style OCC transactions over any backend."""

from repro.apps.txn.storage import HEADER_BYTES, LOCK_BIT, TxnError, VERSION_MASK


class TxnAborted(Exception):
    """The transaction lost a conflict (lock or validation failure)."""


class TxnClient:
    """Executes transactions against a set of storage-node catalogs.

    Records are addressed globally: record ``n`` lives on storage node
    ``n % len(catalogs)`` at local id ``n // len(catalogs)``.
    """

    def __init__(self, backend, catalogs):
        if not catalogs:
            raise TxnError("need at least one storage catalog")
        self.backend = backend
        self.node = backend.node
        self.catalogs = list(catalogs)
        self.scratch_addr = None
        self.scratch_lkey = None
        self.stats_commits = 0
        self.stats_aborts = 0

    def setup(self):
        """Process: connect + register scratch (the elastic-worker cost)."""
        yield from self.backend.connect([catalog.gid for catalog in self.catalogs])
        record_bytes = max(c.record_bytes for c in self.catalogs)
        self.scratch_addr, self.scratch_lkey = yield from self.backend.setup_buffer(
            4096 + record_bytes * 64
        )

    def begin(self):
        return Transaction(self)

    def _place(self, record_id):
        catalog = self.catalogs[record_id % len(self.catalogs)]
        local_id = record_id // len(self.catalogs)
        if local_id >= catalog.num_records:
            raise TxnError(f"record {record_id} out of range")
        return catalog, local_id

    def run(self, work, max_retries=16):
        """Process: run ``work(txn)`` (a generator) with commit retries.

        Returns the committed transaction's return value.
        """
        for _attempt in range(max_retries):
            txn = self.begin()
            try:
                result = yield from work(txn)
                yield from txn.commit()
                return result
            except TxnAborted:
                continue  # conflict during execution or commit: retry
        raise TxnAborted(f"transaction kept aborting after {max_retries} attempts")


class Transaction:
    """One OCC transaction: read-set versions, buffered writes."""

    def __init__(self, client):
        self.client = client
        self._read_versions = {}  # record_id -> version observed
        self._writes = {}  # record_id -> value bytes
        self._next_scratch = 64

    # ------------------------------------------------------------- execution

    def read(self, record_id):
        """Process: read a record (returns its value bytes).

        Reads-your-writes; a locked record aborts immediately (FaRM reads
        ignore locks only with more machinery than Fig 1 needs).
        """
        if record_id in self._writes:
            return self._writes[record_id]
        catalog, local_id = self.client._place(record_id)
        scratch = self.client.scratch_addr + self._scratch_slot(catalog)
        yield from self.client.backend.read(
            catalog.gid, scratch, self.client.scratch_lkey,
            catalog.header_addr(local_id), catalog.rkey, catalog.record_bytes,
        )
        header = int.from_bytes(self.client.node.memory.read(scratch, 8), "big")
        if header & LOCK_BIT:
            self.client.stats_aborts += 1
            raise TxnAborted(f"record {record_id} is locked")
        version = header & VERSION_MASK
        previous = self._read_versions.get(record_id)
        if previous is not None and previous != version:
            self.client.stats_aborts += 1
            raise TxnAborted(f"record {record_id} changed mid-transaction")
        self._read_versions[record_id] = version
        value = self.client.node.memory.read(
            scratch + HEADER_BYTES, catalog.value_bytes
        )
        return value

    def write(self, record_id, value):
        """Buffer a write (installed at commit)."""
        catalog, _local = self.client._place(record_id)
        if len(value) > catalog.value_bytes:
            raise TxnError(f"value of {len(value)}B exceeds {catalog.value_bytes}B records")
        self._writes[record_id] = value

    def _observe_version(self, record_id):
        """Process: READ just the header; abort if locked."""
        client = self.client
        catalog, local_id = client._place(record_id)
        scratch = client.scratch_addr + 8
        yield from client.backend.read(
            catalog.gid, scratch, client.scratch_lkey,
            catalog.header_addr(local_id), catalog.rkey, HEADER_BYTES,
        )
        header = int.from_bytes(client.node.memory.read(scratch, 8), "big")
        if header & LOCK_BIT:
            raise TxnAborted(f"record {record_id} is locked")
        version = header & VERSION_MASK
        self._read_versions[record_id] = version
        return version

    def _scratch_slot(self, catalog):
        slot = self._next_scratch
        self._next_scratch += catalog.record_bytes
        if self._next_scratch > 4096 + catalog.record_bytes * 60:
            self._next_scratch = 64  # reuse (read data already consumed)
        return slot

    # ---------------------------------------------------------------- commit

    def commit(self):
        """Process: FaRM's lock -> validate -> install -> unlock."""
        client = self.client
        if not self._writes:
            self.client.stats_commits += 1
            return  # read-only: validation happened at read time
        atomic_scratch = client.scratch_addr
        locked = []  # (record_id, old_header)
        try:
            # 1. Lock the write set (deterministic order avoids deadlock
            #    even though CAS locks never block).
            for record_id in sorted(self._writes):
                catalog, local_id = client._place(record_id)
                expected_version = self._read_versions.get(record_id)
                if expected_version is None:
                    # Blind write: observe the current version first.
                    expected_version = yield from self._observe_version(record_id)
                old_header = expected_version
                new_header = expected_version | LOCK_BIT
                yield from client.backend.cas(
                    catalog.gid, atomic_scratch, client.scratch_lkey,
                    catalog.header_addr(local_id), catalog.rkey,
                    old_header, new_header,
                )
                seen = int.from_bytes(client.node.memory.read(atomic_scratch, 8), "big")
                if seen != old_header:
                    raise TxnAborted(f"lock on record {record_id} lost")
                locked.append((record_id, old_header))
            # 2. Validate the read set (records not in the write set).
            for record_id, version in self._read_versions.items():
                if record_id in self._writes:
                    continue
                catalog, local_id = client._place(record_id)
                yield from client.backend.read(
                    catalog.gid, atomic_scratch + 8, client.scratch_lkey,
                    catalog.header_addr(local_id), catalog.rkey, HEADER_BYTES,
                )
                header = int.from_bytes(
                    client.node.memory.read(atomic_scratch + 8, 8), "big"
                )
                if header != version:  # changed or locked by someone else
                    raise TxnAborted(f"validation failed on record {record_id}")
            # 3. Install values, then release locks with bumped versions.
            for record_id, old_header in locked:
                catalog, local_id = client._place(record_id)
                value = self._writes[record_id].ljust(catalog.value_bytes, b"\x00")
                client.node.memory.write(atomic_scratch + 16, value)
                yield from client.backend.write(
                    catalog.gid, atomic_scratch + 16, client.scratch_lkey,
                    catalog.value_addr(local_id), catalog.rkey, catalog.value_bytes,
                )
                new_version = ((old_header & VERSION_MASK) + 1) & VERSION_MASK
                client.node.memory.write(
                    atomic_scratch + 16, new_version.to_bytes(8, "big")
                )
                yield from client.backend.write(
                    catalog.gid, atomic_scratch + 16, client.scratch_lkey,
                    catalog.header_addr(local_id), catalog.rkey, HEADER_BYTES,
                )
            self.client.stats_commits += 1
        except TxnAborted:
            self.client.stats_aborts += 1
            # Roll back any locks we hold (values untouched before step 3).
            for record_id, old_header in locked:
                catalog, local_id = client._place(record_id)
                yield from client.backend.cas(
                    catalog.gid, atomic_scratch, client.scratch_lkey,
                    catalog.header_addr(local_id), catalog.rkey,
                    old_header | LOCK_BIT, old_header,
                )
            raise
