"""Partitioned parallel simulation: conservative lookahead over engine shards.

The single-engine cores (:mod:`repro.sim.engine_flat` /
``engine_classic``) dispatch every event of a run through one Python
loop, which caps cluster size at whatever one interpreter can chew
through.  This module splits a run into *partitions* — one independent
engine instance per rack group — and synchronizes them with the classic
conservative (null-message / bounded-window) protocol:

* **Lookahead.**  Partitions only interact through *channels*, and every
  channel message must be delivered at least ``lookahead_ns`` after it
  was sent.  In the cluster model the lookahead is physical: a
  cross-rack interaction cannot take effect sooner than one spine
  traversal (:data:`repro.cluster.timing.INTER_RACK_ONE_WAY_NS`).

* **Windows.**  Let ``T`` be the global minimum next-event time over
  all partitions and all undelivered messages.  Every partition may
  safely execute all events with timestamp ``<= T + lookahead - 1``:
  any message generated inside that window is sent at ``>= T`` and
  therefore delivers at ``>= T + lookahead``, strictly after the
  window.  Each round therefore advances simulated time by at least
  ``lookahead_ns`` — the run takes at most ``horizon / lookahead``
  synchronization barriers.

* **Deterministic merge.**  Messages buffered for a window are injected
  *before* the window runs, sorted by the canonical key
  ``(deliver_ns, src_node, seq)``.  Because a message for timestamp
  ``t`` can only be produced in a window that ends before ``t``, every
  message for ``t`` is known (and injected, in canonical order) before
  any event at ``t`` runs — delivery order is a pure function of the
  message set, independent of partition count, execution mode, and
  engine.  This is the property the cross-partition equivalence suite
  (``tests/test_partition_equivalence.py``) pins.

Two execution modes share the window loop byte for byte:

* ``inline`` — every partition lives in this process; rounds visit
  partitions in index order.  Zero IPC, fully deterministic; this is
  what the equivalence and determinism suites run.
* ``mp`` — one OS process per partition (``multiprocessing``), windows
  coordinated over pipes.  Same windows, same injection sets, same
  results; this is the mode that actually buys wall-clock speedup
  (``cluster_scale`` figure).

A partition runs a completely ordinary engine internally — the flat or
classic core, untouched.  ``partitions=1`` is the degenerate case: one
partition, no cross-partition channels ever carry traffic, and the model
code paths are identical to a plain single-engine run.
"""

from time import perf_counter

from repro.sim import engine as _engine
from repro.sim.engine import SimulationError


class PartitionError(SimulationError):
    """A violation of the inter-partition channel protocol."""


class Message:
    """One typed cross-partition event.

    ``payload`` must be built from plain picklable values (the ``mp``
    mode ships messages between processes).  ``src_node``/``seq`` make
    the canonical merge key: per-sender sequence numbers are assigned in
    deterministic send order, so ``(deliver_ns, src_node, seq)`` totally
    orders any message set the same way at every partition count.
    """

    __slots__ = ("deliver_ns", "dst_part", "kind", "payload", "src_node", "seq")

    def __init__(self, deliver_ns, dst_part, kind, payload, src_node, seq):
        self.deliver_ns = deliver_ns
        self.dst_part = dst_part
        self.kind = kind
        self.payload = payload
        self.src_node = src_node
        self.seq = seq

    @property
    def sort_key(self):
        return (self.deliver_ns, self.src_node, self.seq)

    def __repr__(self):
        return (
            f"Message(deliver={self.deliver_ns}, dst_part={self.dst_part}, "
            f"kind={self.kind!r}, src_node={self.src_node}, seq={self.seq})"
        )

    def __getstate__(self):
        return (self.deliver_ns, self.dst_part, self.kind, self.payload,
                self.src_node, self.seq)

    def __setstate__(self, state):
        (self.deliver_ns, self.dst_part, self.kind, self.payload,
         self.src_node, self.seq) = state


class Channel:
    """A directed inter-partition message queue with monotonic batches.

    ``push`` enforces the lookahead guarantee per message; ``seal``
    closes the current batch at a window barrier and enforces batch
    monotonicity: every sealed batch's messages deliver at or after the
    barrier, and barriers only move forward.  Violating either is a bug
    in the model (it would let an effect outrun the synchronization
    protocol), so both raise :class:`PartitionError` instead of
    silently corrupting the run.
    """

    __slots__ = ("src_part", "dst_part", "lookahead_ns", "_pending", "_floor")

    def __init__(self, src_part, dst_part, lookahead_ns):
        if lookahead_ns < 1:
            raise PartitionError("channel lookahead must be >= 1 ns")
        self.src_part = src_part
        self.dst_part = dst_part
        self.lookahead_ns = lookahead_ns
        self._pending = []
        self._floor = 0

    def __len__(self):
        return len(self._pending)

    def push(self, msg, send_ns):
        """Queue ``msg``, validating the lookahead bound at send time."""
        if msg.deliver_ns < send_ns + self.lookahead_ns:
            raise PartitionError(
                f"message {msg!r} sent at {send_ns} delivers before the "
                f"lookahead bound {send_ns + self.lookahead_ns}"
            )
        if msg.dst_part != self.dst_part:
            raise PartitionError(
                f"message {msg!r} pushed onto channel to partition {self.dst_part}"
            )
        self._pending.append(msg)

    def seal(self, barrier_ns):
        """Close the batch at a window barrier; return its messages.

        Timestamps are *batch-monotonic*: each sealed batch delivers at
        or after its barrier, and barriers never regress.
        """
        if barrier_ns < self._floor:
            raise PartitionError(
                f"channel barrier moved backwards: {barrier_ns} < {self._floor}"
            )
        self._floor = barrier_ns
        batch, self._pending = self._pending, []
        for msg in batch:
            if msg.deliver_ns < barrier_ns:
                raise PartitionError(
                    f"sealed batch at barrier {barrier_ns} contains early "
                    f"message {msg!r}"
                )
        return batch


def merge_due(buffered, window_end):
    """Split a message buffer at a window boundary, canonically ordered.

    Returns ``(due, remaining)``: ``due`` holds every message with
    ``deliver_ns <= window_end`` sorted by the canonical key — the order
    is a pure function of the message *set*, so any arrival order
    (partition visit order, pipe scheduling) merges identically.
    """
    due = []
    remaining = []
    for msg in buffered:
        (due if msg.deliver_ns <= window_end else remaining).append(msg)
    due.sort(key=lambda m: m.sort_key)
    return due, remaining


def _resolve_engine(engine):
    """Map an engine name to its Simulator class.

    ``"default"`` follows the process-wide ``REPRO_ENGINE`` selection;
    naming ``"flat"``/``"classic"`` explicitly lets one process host a
    cross-engine determinism matrix (both modules are always importable).
    """
    if engine in (None, "default"):
        return _engine.Simulator
    if engine == "flat":
        from repro.sim import engine_flat

        return engine_flat.Simulator
    if engine == "classic":
        from repro.sim import engine_classic

        return engine_classic.Simulator
    raise PartitionError(f"unknown engine {engine!r}")


class Partition:
    """One engine shard: a private Simulator plus the channel endpoints.

    The model registers message handlers by kind and attaches a
    ``harvest`` callable returning the partition's (picklable) results;
    everything in between — local scheduling, per-node state — is plain
    single-engine simulation code.
    """

    def __init__(self, index, num_partitions, lookahead_ns, engine="default"):
        if not 0 <= index < num_partitions:
            raise PartitionError(
                f"partition index {index} outside 0..{num_partitions - 1}"
            )
        self.index = index
        self.num_partitions = num_partitions
        self.lookahead_ns = lookahead_ns
        self.sim = _resolve_engine(engine)()
        self._handlers = {}
        self._outboxes = {}
        self._node_seq = {}
        self.messages_sent = 0
        self.messages_injected = 0
        #: Model-provided: () -> picklable partition result.
        self.harvest = _no_harvest

    # -- model-facing API ---------------------------------------------------

    def register(self, kind, handler):
        """Install ``handler(partition, message)`` for a message kind."""
        if kind in self._handlers:
            raise PartitionError(f"handler for {kind!r} already registered")
        self._handlers[kind] = handler

    def next_seq(self, src_node):
        """The next per-sender sequence number (canonical-merge key part).

        Senders draw one per message — channel *and* direct — in
        deterministic send order, so the stream is identical at every
        partition count.
        """
        seq = self._node_seq.get(src_node, 0)
        self._node_seq[src_node] = seq + 1
        return seq

    def send(self, dst_part, kind, payload, src_node, deliver_ns):
        """Send a cross-partition message (also used for self-traffic).

        Every inter-rack interaction goes through a channel — including
        when both racks currently share a partition — so buffering and
        delivery timing are identical at every partition count.
        """
        msg = Message(int(deliver_ns), dst_part, kind, payload, src_node,
                      self.next_seq(src_node))
        outbox = self._outboxes.get(dst_part)
        if outbox is None:
            if not 0 <= dst_part < self.num_partitions:
                raise PartitionError(f"no partition {dst_part}")
            outbox = self._outboxes[dst_part] = Channel(
                self.index, dst_part, self.lookahead_ns
            )
        outbox.push(msg, self.sim.now)
        self.messages_sent += 1
        return msg

    def send_direct(self, kind, payload, src_node, deliver_ns):
        """Deliver an *intra-rack* message by direct local scheduling.

        Below-lookahead latencies are legal here because rack-mates are
        co-partitioned at every partition count; the handler still runs
        through the same dispatch shape as channel messages.
        """
        sim = self.sim
        deliver_ns = int(deliver_ns)
        if deliver_ns <= sim.now:
            raise PartitionError(
                f"direct delivery at {deliver_ns} not after now={sim.now}"
            )
        msg = Message(deliver_ns, self.index, kind, payload, src_node,
                      self.next_seq(src_node))
        handler = self._handlers[kind]
        sim.schedule(deliver_ns - sim.now, _Dispatch(handler, self, msg))
        return msg

    # -- runner-facing API --------------------------------------------------

    def inject(self, msg):
        """Schedule a delivered channel message (runner calls, in canonical
        order, before the window that covers its timestamp runs)."""
        sim = self.sim
        delay = msg.deliver_ns - sim.now
        if delay <= 0:
            raise PartitionError(
                f"late injection: {msg!r} at partition now={sim.now}"
            )
        handler = self._handlers[msg.kind]
        sim.schedule(delay, _Dispatch(handler, self, msg))
        self.messages_injected += 1

    def next_event_ns(self):
        """The timestamp of this partition's earliest pending event, or None."""
        sim = self.sim
        rbuf = getattr(sim, "_rbuf", None)
        if rbuf is not None:  # flat core
            if rbuf or sim._cohort is not None:
                return sim.now
        elif sim._ready:  # classic core
            return sim.now
        heap = sim._heap
        if heap:
            return heap[0][0]
        return None

    def advance(self, until_ns):
        """Run the local engine through the window (all events <= until)."""
        self.sim.run(until=until_ns)

    def drain_outboxes(self, barrier_ns):
        """Seal every outbox batch at the window barrier; destinations
        ascending so the flat message list is deterministic."""
        out = []
        for dst in sorted(self._outboxes):
            out.extend(self._outboxes[dst].seal(barrier_ns))
        return out


class _Dispatch:
    """A scheduled handler invocation (cheaper/picklier than a closure)."""

    __slots__ = ("handler", "partition", "msg")

    def __init__(self, handler, partition, msg):
        self.handler = handler
        self.partition = partition
        self.msg = msg

    def __call__(self):
        self.handler(self.partition, self.msg)


def _no_harvest():
    return None


class PartitionedResult:
    """Everything a partitioned run produced.

    ``partition_compute_s[i]`` is the CPU seconds partition ``i`` spent
    building and executing its own events (measured inside the worker in
    ``mp`` mode, around each partition's slice in ``inline`` mode);
    ``coordinator_s`` is the synchronization overhead outside any
    partition.  ``critical_path_s`` — the slowest partition plus the
    coordinator — is the wall time the run would take given one core per
    partition, which is the honest speedup measure on machines with
    fewer cores than partitions.
    """

    __slots__ = ("harvests", "windows", "cross_messages", "events_dispatched",
                 "partitions", "mode", "partition_compute_s", "coordinator_s")

    def __init__(self, harvests, windows, cross_messages, events_dispatched,
                 partitions, mode, partition_compute_s, coordinator_s):
        self.harvests = harvests
        self.windows = windows
        self.cross_messages = cross_messages
        self.events_dispatched = events_dispatched
        self.partitions = partitions
        self.mode = mode
        self.partition_compute_s = partition_compute_s
        self.coordinator_s = coordinator_s

    @property
    def critical_path_s(self):
        peak = max(self.partition_compute_s) if self.partition_compute_s else 0.0
        return peak + self.coordinator_s


def run_partitioned(builder, spec, num_partitions, lookahead_ns,
                    mode="inline", mp_context=None):
    """Run a partitioned simulation to completion.

    ``builder(spec, part_index)`` must be a module-level callable (the
    ``mp`` mode imports it by reference in each worker) returning a
    fully wired :class:`Partition`.  The run ends when no partition has
    pending events and no message is undelivered; the result carries
    each partition's ``harvest()``.
    """
    if num_partitions < 1:
        raise PartitionError("num_partitions must be >= 1")
    if mode == "inline":
        return _run_inline(builder, spec, num_partitions, lookahead_ns)
    if mode == "mp":
        return _run_mp(builder, spec, num_partitions, lookahead_ns, mp_context)
    raise PartitionError(f"unknown mode {mode!r} (use 'inline' or 'mp')")


def _next_window(nexts, buffered_heads, lookahead_ns):
    """The next window bound ``U``, or None when the run is complete.

    ``nexts`` are per-partition next-event times (None when idle);
    ``buffered_heads`` the deliver times of undelivered messages.
    """
    candidates = [t for t in nexts if t is not None]
    candidates.extend(buffered_heads)
    if not candidates:
        return None
    return min(candidates) + lookahead_ns - 1


def _run_inline(builder, spec, num_partitions, lookahead_ns):
    clock = perf_counter
    t_run = clock()
    compute = [0.0] * num_partitions
    partitions = []
    for index in range(num_partitions):
        t0 = clock()
        partitions.append(builder(spec, index))
        compute[index] += clock() - t0
    buffered = []
    windows = 0
    cross = 0
    while True:
        window_end = _next_window(
            [p.next_event_ns() for p in partitions],
            [m.deliver_ns for m in buffered],
            lookahead_ns,
        )
        if window_end is None:
            break
        windows += 1
        due, buffered = merge_due(buffered, window_end)
        per_part = [[] for _ in range(num_partitions)]
        for msg in due:
            per_part[msg.dst_part].append(msg)
        barrier = window_end + 1
        for partition, mine in zip(partitions, per_part):
            # A message drained this window delivers past window_end
            # (lookahead), so injecting/advancing partitions one at a
            # time cannot starve a later partition of due messages.
            t0 = clock()
            for msg in mine:
                partition.inject(msg)
            partition.advance(window_end)
            drained = partition.drain_outboxes(barrier)
            compute[partition.index] += clock() - t0
            for msg in drained:
                buffered.append(msg)
                if msg.dst_part != partition.index:
                    cross += 1
    coordinator = max(0.0, (clock() - t_run) - sum(compute))
    return PartitionedResult(
        harvests=[p.harvest() for p in partitions],
        windows=windows,
        cross_messages=cross,
        events_dispatched=sum(p.sim.events_dispatched for p in partitions),
        partitions=num_partitions,
        mode="inline",
        partition_compute_s=compute,
        coordinator_s=coordinator,
    )


# -- multiprocessing mode ----------------------------------------------------

def _revive(states):
    """Rebuild messages from the plain state tuples shipped over pipes.

    Custom-object pickling costs several times a tuple's; at tens of
    thousands of cross-partition messages per run the difference is the
    bulk of the coordinator's overhead.
    """
    out = []
    for state in states:
        msg = Message.__new__(Message)
        msg.__setstate__(state)
        out.append(msg)
    return out


def _fold_next(next_ns, local):
    """A partition's next relevant time: local events or buffered self-traffic."""
    if not local:
        return next_ns
    head = min(m.deliver_ns for m in local)
    if next_ns is None or head < next_ns:
        return head
    return next_ns


def _partition_worker(conn, builder, spec, index):
    """Worker-process main: build the partition, then serve window rounds.

    Self-channel messages (cross-rack traffic between racks that share
    this partition) never cross the pipe: the worker buffers them
    locally, folds their earliest delivery into the next-event time it
    reports, and merges them with the coordinator's incoming batch at
    each window — the injection set and order are identical to the
    inline runner's, without paying IPC for intra-partition traffic.
    """
    try:
        t0 = perf_counter()
        partition = builder(spec, index)
        compute = perf_counter() - t0
        local = []
        conn.send(("ready", partition.next_event_ns()))
        while True:
            op = conn.recv()
            if op[0] == "window":
                t0 = perf_counter()
                _tag, window_end, incoming = op
                due, local = merge_due(local, window_end)
                due.extend(_revive(incoming))
                due.sort(key=lambda m: m.sort_key)
                for msg in due:
                    partition.inject(msg)
                partition.advance(window_end)
                ship = []
                for msg in partition.drain_outboxes(window_end + 1):
                    if msg.dst_part == index:
                        local.append(msg)
                    else:
                        ship.append(msg.__getstate__())
                compute += perf_counter() - t0
                conn.send(("ok",
                           _fold_next(partition.next_event_ns(), local),
                           ship))
            elif op[0] == "finish":
                conn.send(("result", partition.harvest(),
                           partition.sim.events_dispatched, compute))
                return
            else:  # pragma: no cover - protocol misuse
                raise PartitionError(f"unknown op {op[0]!r}")
    except BaseException as err:  # noqa: BLE001 - forwarded to the coordinator
        import traceback

        try:
            conn.send(("error", f"{err!r}\n{traceback.format_exc()}"))
        except Exception:  # pragma: no cover - pipe already gone
            pass
        raise


def _run_mp(builder, spec, num_partitions, lookahead_ns, mp_context):
    import multiprocessing

    if mp_context is None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
    else:
        ctx = multiprocessing.get_context(mp_context)

    conns = []
    procs = []
    t_run = perf_counter()
    blocked = 0.0
    try:
        for index in range(num_partitions):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_partition_worker,
                args=(child, builder, spec, index),
                name=f"partition-{index}",
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        nexts = []
        for conn in conns:
            t0 = perf_counter()
            reply = _recv(conn)
            blocked += perf_counter() - t0
            nexts.append(reply[1])

        buffered = []
        windows = 0
        cross = 0
        while True:
            window_end = _next_window(
                nexts, [m.deliver_ns for m in buffered], lookahead_ns
            )
            if window_end is None:
                break
            windows += 1
            due, buffered = merge_due(buffered, window_end)
            per_part = [[] for _ in range(num_partitions)]
            for msg in due:
                per_part[msg.dst_part].append(msg.__getstate__())
            for conn, states in zip(conns, per_part):
                conn.send(("window", window_end, states))
            for index, conn in enumerate(conns):
                t0 = perf_counter()
                reply = _recv(conn)
                blocked += perf_counter() - t0
                nexts[index] = reply[1]
                buffered.extend(_revive(reply[2]))
            cross += len(due)

        harvests = []
        events = 0
        compute = []
        for conn in conns:
            conn.send(("finish",))
        for conn in conns:
            t0 = perf_counter()
            reply = _recv(conn)
            blocked += perf_counter() - t0
            harvests.append(reply[1])
            events += reply[2]
            compute.append(reply[3])
        # Coordinator overhead is the loop's wall time minus time spent
        # blocked on worker pipes; with one core per partition that is
        # the only serial component on top of the slowest partition.
        coordinator = max(0.0, (perf_counter() - t_run) - blocked)
        return PartitionedResult(
            harvests=harvests,
            windows=windows,
            cross_messages=cross,
            events_dispatched=events,
            partitions=num_partitions,
            mode="mp",
            partition_compute_s=compute,
            coordinator_s=coordinator,
        )
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join()


def _recv(conn):
    reply = conn.recv()
    if reply[0] == "error":
        raise PartitionError(f"partition worker failed:\n{reply[1]}")
    return reply


__all__ = [
    "Channel",
    "Message",
    "Partition",
    "PartitionError",
    "PartitionedResult",
    "merge_due",
    "run_partitioned",
]
