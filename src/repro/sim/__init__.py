"""Discrete-event simulation kernel.

Time is measured in integer nanoseconds for determinism.  Processes are
plain Python generators that ``yield`` awaitables: an integer delay, an
:class:`Event`, another :class:`Process` (join), or the combinators
:class:`AllOf` / :class:`AnyOf`.

This is the substrate every simulated component (CPU, RNIC, fabric) runs on.
"""

from repro.sim.engine import (
    ENGINE,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
)
from repro.sim.resources import Resource, Store
from repro.sim.stats import LatencyRecorder, RateMeter, percentile

US = 1_000  # nanoseconds per microsecond
MS = 1_000_000  # nanoseconds per millisecond
SEC = 1_000_000_000  # nanoseconds per second

__all__ = [
    "AllOf",
    "AnyOf",
    "ENGINE",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "MS",
    "Process",
    "RateMeter",
    "Resource",
    "SEC",
    "SimulationError",
    "Simulator",
    "Store",
    "US",
    "percentile",
]
