"""Shared-resource primitives: counted resources and FIFO stores."""

from collections import deque

from repro.sim.engine import Event, SimulationError


class Resource:
    """A counted resource with FIFO granting (models CPU cores, NIC units).

    Usage inside a process::

        grant = yield resource.acquire()
        try:
            yield service_time
        finally:
            resource.release(grant)
    """

    def __init__(self, sim, capacity):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting = deque()

    @property
    def in_use(self):
        return self._in_use

    @property
    def queue_length(self):
        return len(self._waiting)

    def acquire(self):
        """Return an event that fires (with a grant token) once capacity frees."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.trigger(_Grant(self))
        else:
            self._waiting.append(event)
        return event

    def release(self, grant):
        if not isinstance(grant, _Grant) or grant.resource is not self:
            raise SimulationError("release() needs the grant from acquire()")
        if grant.released:
            raise SimulationError("grant released twice")
        grant.released = True
        if self._waiting:
            waiter = self._waiting.popleft()
            waiter.trigger(_Grant(self))
        else:
            self._in_use -= 1

    def serve(self, service_time):
        """Process helper: acquire, hold for ``service_time`` ns, release."""
        grant = yield self.acquire()
        try:
            yield int(service_time)
        finally:
            self.release(grant)


class _Grant:
    __slots__ = ("resource", "released")

    def __init__(self, resource):
        self.resource = resource
        self.released = False


class Store:
    """An unbounded FIFO channel of items; getters block until an item exists."""

    def __init__(self, sim):
        self.sim = sim
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        if self._getters:
            getter = self._getters.popleft()
            getter.trigger(item)
        else:
            self._items.append(item)

    def get(self):
        """Return an event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Non-blocking: pop and return an item, or None if empty."""
        if self._items:
            return self._items.popleft()
        return None
