"""The classic discrete-event engine: simulator clock, events, processes.

This is the deque+heap engine introduced in PR 1, kept as the selectable
pure-Python fallback (``REPRO_ENGINE=classic``).  The default engine is
the flat-record core in ``repro.sim.engine_flat``; ``repro.sim.engine``
selects between the two at import time.  Both must execute callbacks in
exactly the same order as the frozen seed engine
(``tests/_seed_engine_reference.py``) — the hypothesis harness in
``tests/test_sim_engine_perf.py`` pins all three together.

Hot-path notes
--------------

The engine dispatches tens of millions of callbacks per figure, so the
scheduler is split in two:

* a binary heap (``_heap``) for callbacks in the future, and
* a FIFO ready-deque (``_ready``) for callbacks at the current timestamp
  (zero-delay schedules, event dispatch, process starts), which skips the
  ``heapq`` log-n push/pop entirely.

Both share one monotonically increasing sequence counter, and the run loop
always executes the lowest pending sequence number at the current
timestamp, so the observable order is *identical* to a single heap keyed on
``(time, seq)``: same-timestamp callbacks run in schedule (FIFO) order.
``tests/test_sim_engine_perf.py`` checks this equivalence against a copy of
the heap-only engine on randomized schedules.

Waiter wake-ups are encoded inline in the queue records instead of
per-event lambdas and per-yield closures: a queue entry's argument slot
holds ``None`` for a plain callback, an ``int`` wait-generation for a
timer resume, or a ``(gen, event)`` tuple for an event-waiter resume, and
the run loop performs the resume directly.  ``Process._wait_on`` has fast
paths for the two overwhelmingly common yield targets — an integer
timeout and an already-triggered event — that skip the intermediate
``Event`` machinery while consuming the same sequence numbers (order
stays bit-identical).

The engine counts work as it goes: ``Simulator.events_dispatched`` is the
exact number of callbacks the instance's run loop executed, and the
class-level ``Simulator.total_events_dispatched`` / ``total_sim_ns``
aggregate across all instances in the process (the bench runner's perf
JSON is derived from them).
"""

import heapq
from collections import deque
from heapq import heappush

from repro.obs import metrics as _obs_metrics


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts untriggered.  Processes that yield it are suspended
    until someone calls :meth:`trigger` (resuming them with ``value``) or
    :meth:`fail` (raising ``exc`` inside them).  Triggering twice is an
    error; waiting on an already-triggered event resumes immediately.
    """

    __slots__ = ("sim", "value", "_exc", "_triggered", "_waiters")

    def __init__(self, sim):
        self.sim = sim
        self.value = None
        self._exc = None
        self._triggered = False
        self._waiters = None  # lazily a list: most events get 0 or 1 waiters

    @property
    def triggered(self):
        return self._triggered

    @property
    def ok(self):
        """True once triggered successfully (not failed)."""
        return self._triggered and self._exc is None

    def trigger(self, value=None):
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._dispatch(waiters)
        return self

    def fail(self, exc):
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError("Event.fail expects an exception instance")
        self._triggered = True
        self._exc = exc
        waiters = self._waiters
        if waiters:
            self._dispatch(waiters)
        return self

    def _dispatch(self, waiters):
        """Run waiters through the scheduler (same timestamp) rather than
        synchronously, so triggering code never reenters waiter code.

        A waiter is either a ``(process, gen)`` tuple (a suspended
        process, see ``Process._wait_on``) -- re-encoded so the run loop
        resumes it without any intermediate call -- or a plain callable
        from :meth:`add_callback`, invoked as ``callback(event)``.
        """
        self._waiters = None
        sim = self.sim
        seq = sim._seq
        ready = sim._ready
        for waiter in waiters:
            seq += 1
            if waiter.__class__ is tuple:
                ready.append((seq, waiter[0], (waiter[1], self)))
            else:
                ready.append((seq, waiter, self))
        sim._seq = seq

    def add_callback(self, callback):
        """Invoke ``callback(event)`` when the event fires (or now if fired)."""
        if self._triggered:
            self.sim._schedule_call(callback, self)
        elif self._waiters is None:
            self._waiters = [callback]
        else:
            self._waiters.append(callback)


class AllOf:
    """Awaitable that fires when every child event/process has fired.

    The resumed value is a list of the children's values in order.
    """

    def __init__(self, children):
        self.children = list(children)


class AnyOf:
    """Awaitable that fires when the first child fires.

    The resumed value is ``(index, value)`` of the first child to fire.
    """

    def __init__(self, children):
        self.children = list(children)


class _TimerResume:
    """Resume record for a process suspended on a *zero-delay* timeout.

    Fires in two hops through the ready queue, consuming sequence numbers
    exactly like the equivalent timeout ``Event``'s trigger-then-dispatch
    would, so callback order is identical to the event-based slow path.
    (Positive-delay timeouts skip even this record: the run loop
    recognizes ``(when, seq, process, gen)`` queue entries — ``gen`` an
    int — and performs the same two hops inline.)
    """

    __slots__ = ("process", "gen", "fired")

    def __init__(self, process, gen):
        self.process = process
        self.gen = gen
        self.fired = False

    def __call__(self):
        process = self.process
        if not self.fired:
            self.fired = True
            sim = process.sim
            sim._seq += 1
            sim._ready.append((sim._seq, self, None))
            return
        if process._wait_gen == self.gen:
            process._resume(None, None)


class _EventTrigger:
    """Deferred ``event.trigger(value)`` without a lambda per timeout."""

    __slots__ = ("event", "trigger_value")

    def __init__(self, event, value):
        self.event = event
        self.trigger_value = value

    def __call__(self):
        self.event.trigger(self.trigger_value)


class Process:
    """A running generator, driven by the simulator.

    The generator's ``return`` value becomes the value delivered to any
    process that yields (joins) this one.  An uncaught exception inside
    the generator propagates into joiners; if nobody joins, it is re-raised
    from :meth:`Simulator.run` so failures never pass silently.
    """

    __slots__ = (
        "sim", "name", "_gen", "_send", "_throw", "_done", "_interrupts", "_wait_gen",
    )

    def __init__(self, sim, gen, name=None):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        self._done = Event(sim)
        self._interrupts = None  # lazily a deque: most processes never see one
        self._wait_gen = 0
        sim._seq += 1
        sim._ready.append((sim._seq, self._start, None))

    def _start(self):
        self._resume(None, None)

    @property
    def done_event(self):
        return self._done

    @property
    def is_alive(self):
        return not self._done.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            return
        if self._interrupts is None:
            self._interrupts = deque()
        self._interrupts.append(Interrupt(cause))
        self.sim._schedule_call(self._deliver_interrupt, None)

    def _deliver_interrupt(self):
        if not self.is_alive or not self._interrupts:
            return
        exc = self._interrupts.popleft()
        self._wait_gen += 1  # invalidate whatever the process was waiting on
        self._resume(None, exc)

    def _resume(self, value, exc):
        if self._done._triggered:
            return
        sim = self.sim
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as err:  # noqa: BLE001 - must forward any failure
            self._finish(None, err)
            return
        if target.__class__ is int:
            # Fast path, inlined: a plain timeout needs no Event at all.
            # Zero delays go to the ready deque -- run() relies on heap
            # entries being strictly in the future.
            if target <= 0:
                if target < 0:
                    raise SimulationError("cannot schedule into the past")
                self._wait_gen = gen = self._wait_gen + 1
                sim._seq += 1
                sim._ready.append((sim._seq, _TimerResume(self, gen), None))
                return
            self._wait_gen = gen = self._wait_gen + 1
            sim._seq += 1
            heappush(sim._heap, (sim.now + target, sim._seq, self, gen))
            return
        self._wait_on(target)

    def _finish(self, value, exc):
        if exc is None:
            self._done.trigger(value)
        else:
            if not self._done._waiters:
                self.sim._record_orphan_failure(self, exc)
            self._done.fail(exc)

    def _wait_on(self, target):
        sim = self.sim
        self._wait_gen = gen = self._wait_gen + 1
        cls = target.__class__
        if cls is Event:
            event = target
        elif isinstance(target, Process):
            event = target._done
        elif isinstance(target, Event):
            event = target
        elif isinstance(target, int):  # bool and other int subclasses
            delay = int(target)
            if delay < 0:
                raise SimulationError("cannot schedule into the past")
            sim._seq += 1
            if delay == 0:
                sim._ready.append((sim._seq, _TimerResume(self, gen), None))
            else:
                heappush(sim._heap, (sim.now + delay, sim._seq, self, gen))
            return
        else:
            event = sim._as_event(target)
        if event._triggered:
            # Already fired: resume through the ready queue directly, in
            # the inline encoding the run loop understands.
            sim._seq += 1
            sim._ready.append((sim._seq, self, (gen, event)))
        elif event._waiters is None:
            event._waiters = [(self, gen)]
        else:
            event._waiters.append((self, gen))


class Simulator:
    """The event loop: a clock, a ready FIFO for the current timestamp, and
    a priority queue of future callbacks."""

    #: Engine kind marker; the schedule controller (repro.check) keys its
    #: drive loop on this.  The flat core sets it True.
    FLAT_CORE = False

    #: Process-wide totals across every Simulator instance, folded in when
    #: each ``run()`` returns.  The bench runner samples these around a
    #: figure to report events/sec and simulated-ns/sec.
    total_events_dispatched = 0
    total_sim_ns = 0

    def __init__(self):
        self.now = 0
        self._heap = []
        self._ready = deque()
        self._seq = 0
        self._current = None
        self._orphan_failures = deque()
        #: Optional schedule controller (repro.check): when set, run()
        #: delegates to it so same-timestamp dispatch order can be
        #: explored.  None (the default) keeps the FIFO fast path below
        #: untouched.
        self._controller = None
        #: Exact number of callbacks this instance's run loop has executed.
        self.events_dispatched = 0
        #: Timer maturations the run loop performed (hop-1 requeues).
        self.timer_fires = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay, callback):
        """Run ``callback()`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        delay = int(delay)
        self._seq += 1
        if delay == 0:
            # run() relies on heap entries being strictly in the future.
            self._ready.append((self._seq, callback, None))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, callback, None))

    def _schedule_call(self, callback, arg):
        """Enqueue ``callback(arg)`` (or ``callback()`` if arg is None) at
        the current timestamp, in FIFO order with everything else."""
        self._seq += 1
        self._ready.append((self._seq, callback, arg))

    def _schedule_now(self, callback):
        self._schedule_call(callback, None)

    def timeout(self, delay, value=None):
        """An event that triggers after ``delay`` nanoseconds."""
        event = Event(self)
        self.schedule(delay, _EventTrigger(event, value))
        return event

    def event(self):
        return Event(self)

    def process(self, gen, name=None):
        """Start ``gen`` (a generator) as a simulated process."""
        if not hasattr(gen, "send"):
            raise SimulationError("process() expects a generator")
        return Process(self, gen, name=name)

    # -- awaitable coercion --------------------------------------------------

    def _as_event(self, target):
        if isinstance(target, Event):
            return target
        if isinstance(target, Process):
            return target.done_event
        if isinstance(target, int):
            return self.timeout(target)
        if isinstance(target, AllOf):
            return self._all_of(target.children)
        if isinstance(target, AnyOf):
            return self._any_of(target.children)
        raise SimulationError(f"cannot wait on {target!r}")

    def _all_of(self, children):
        events = [self._as_event(child) for child in children]
        combined = Event(self)
        remaining = [len(events)]
        values = [None] * len(events)
        if not events:
            combined.trigger([])
            return combined

        def on_child(index):
            def callback(event):
                if combined.triggered:
                    return
                if event._exc is not None:
                    combined.fail(event._exc)
                    return
                values[index] = event.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    combined.trigger(list(values))

            return callback

        for index, event in enumerate(events):
            event.add_callback(on_child(index))
        return combined

    def _any_of(self, children):
        events = [self._as_event(child) for child in children]
        combined = Event(self)
        if not events:
            raise SimulationError("AnyOf requires at least one child")

        def on_child(index):
            def callback(event):
                if combined.triggered:
                    return
                if event._exc is not None:
                    combined.fail(event._exc)
                    return
                combined.trigger((index, event.value))

            return callback

        for index, event in enumerate(events):
            event.add_callback(on_child(index))
        return combined

    # -- running -------------------------------------------------------------

    def run(self, until=None):
        """Drain the event queue, stopping after simulated time ``until``.

        Dispatch order is by (timestamp, schedule sequence): the ready
        deque holds only current-timestamp callbacks (always enqueued
        after any heap entry that shares their timestamp was *scheduled*,
        never before it in sequence order... the sequence comparison below
        arbitrates the one ambiguous case: a heap entry that matured at
        exactly the current timestamp with a lower sequence number than
        the ready head).
        """
        if self._controller is not None:
            return self._controller.drive(self, until)
        heap = self._heap
        ready = self._ready
        popheap = heapq.heappop
        popready = ready.popleft
        dispatched = 0
        timer_fires = 0
        start_ns = self.now
        orphans = self._orphan_failures
        # Sequence number of the heap head iff it matured at the current
        # timestamp, else None.  Heap pushes are strictly in the future
        # (zero delays go to the ready deque), so this only changes when
        # the loop itself pops the heap or advances the clock.
        if heap and heap[0][0] == self.now:
            heap_seq = heap[0][1]
        else:
            heap_seq = None
        try:
            while True:
                if ready:
                    if until is not None and self.now > until:
                        break
                    if heap_seq is not None and heap_seq < ready[0][0]:
                        head = popheap(heap)
                        callback = head[2]
                        arg = head[3]
                        if heap and heap[0][0] == self.now:
                            heap_seq = heap[0][1]
                        else:
                            heap_seq = None
                        if arg.__class__ is int:
                            # Timer maturing (hop 1 of 2): requeue the
                            # resume at the next sequence number, exactly
                            # where a timeout Event's trigger would have
                            # dispatched its waiter.
                            dispatched += 1
                            timer_fires += 1
                            self._seq += 1
                            ready.append((self._seq, callback, arg))
                            continue
                    else:
                        _seq, callback, arg = popready()
                        if arg.__class__ is int:
                            # Timer resume (hop 2 of 2): callback is the
                            # process, arg its wait generation.
                            dispatched += 1
                            if callback._wait_gen == arg:
                                callback._resume(None, None)
                            if orphans:
                                _process, exc = orphans.popleft()
                                raise exc
                            continue
                        if arg.__class__ is tuple:
                            # Event waiter resume: callback is the process,
                            # arg its (wait generation, event).  A stale
                            # generation means an interrupt superseded it.
                            dispatched += 1
                            gen = arg[0]
                            if callback._wait_gen == gen:
                                event = arg[1]
                                callback._resume(event.value, event._exc)
                            if orphans:
                                _process, exc = orphans.popleft()
                                raise exc
                            continue
                elif heap:
                    head = heap[0]
                    when = head[0]
                    if until is not None and when > until:
                        break
                    popheap(heap)
                    self.now = when
                    callback = head[2]
                    arg = head[3]
                    if heap and heap[0][0] == when:
                        heap_seq = heap[0][1]
                    else:
                        heap_seq = None
                    if arg.__class__ is int:
                        dispatched += 1
                        timer_fires += 1
                        self._seq += 1
                        ready.append((self._seq, callback, arg))
                        continue
                else:
                    break
                dispatched += 1
                if arg is None:
                    callback()
                else:
                    callback(arg)
                if orphans:
                    _process, exc = orphans.popleft()
                    raise exc
        finally:
            self.events_dispatched += dispatched
            self.timer_fires += timer_fires
            Simulator.total_events_dispatched += dispatched
            Simulator.total_sim_ns += self.now - start_ns
            registry = _obs_metrics.METRICS
            if registry is not None:
                registry.counter("sim.dispatches").inc(dispatched)
                registry.counter("sim.timer_fires").inc(timer_fires)
                registry.counter("sim.runs").inc()
                registry.counter("sim.elapsed_ns").inc(self.now - start_ns)
        if until is not None and self.now < until:
            self.now = int(until)

    def run_process(self, gen, name=None, until=None):
        """Start ``gen``, run to completion, and return its value."""
        proc = self.process(gen, name=name)
        self.run(until=until)
        if not proc.done_event.triggered:
            raise SimulationError(f"process {proc.name} did not finish")
        if proc.done_event._exc is not None:
            raise proc.done_event._exc
        return proc.done_event.value

    def _record_orphan_failure(self, process, exc):
        self._orphan_failures.append((process, exc))
