"""The flat-record engine core: struct-packed scheduling slabs, arena
free-lists, and batched same-timestamp dispatch.

Why a second engine
-------------------

The classic engine (``repro.sim.engine_classic``) spends a measurable
fraction of every figure run on queue bookkeeping: one ``(seq, callback,
arg)`` tuple per ready entry, one ``(when, seq, callback, arg)`` tuple
plus a log-n ``heapq`` push/pop per future entry (tuple-compared, ~40% of
all dispatches in fig10 go through the heap), one ``_TimerResume`` object
per zero-delay yield, and a run loop that re-checks the heap head, the
``until`` bound, and the deque per event.  The flat core removes all of
it:

* **Flat ready slab.**  The ready queue is a single flat list of
  ``callback, arg`` pairs (stride 2) plus a read cursor — no per-entry
  tuple, no deque.  Enqueue is two ``list.append`` calls; dispatch is two
  indexed loads.  The slab is emptied in place (``del slab[:]``) once a
  timestamp drains, so the same arena is reused for the whole run.

* **Cohort collection from the future heap.**  Future work lives in one
  ``(when, seq, callback, arg)`` min-heap, pushed exactly like the
  classic engine's (a single C ``heappush`` per entry — an earlier
  design bucketed records per timestamp behind a dict, which benches
  faster only when many records share a timestamp; the figure workloads
  average ~1.5 records per distinct timestamp, where the dict traffic
  costs more than it saves).  The flat win is on the *pop* side: when
  the clock advances, every record at the new timestamp is drained into
  a stride-2 cohort slab in one pass, and same-timestamp dispatch never
  touches the heap again.

* **Arena free-lists.**  Drained cohort slabs are cleared and parked on
  ``_free`` instead of being garbage; the next timestamp reuses one.
  After warm-up the hot loop allocates nothing per event beyond the heap
  entry itself and whatever the dispatched callbacks allocate.

* **Batched same-timestamp dispatch.**  A pure-timer cohort (the
  overwhelmingly common case — plain ``schedule()``/``timeout()``
  callbacks are rare in the future set) takes a *fused* pass: hop-1
  maturation and hop-2 resume collapse into one direct gen-checked
  resume per record.  This is order-exact because hop-1 records run no
  user code and, in the two-phase order, all of them precede the first
  resume.  Mixed cohorts take the order-exact two-phase pass: timers
  requeue (hop 1) onto the ready slab, plain callbacks dispatch inline
  in schedule order.  Either way the ready slab then drains by a tight
  cursor loop with no per-event heap or ``until`` checks.  The
  eliminations are exact: heap entries are always strictly in the
  future (zero delays go to the ready slab), so once a timestamp
  starts, (a) every cohort record predates every ready-slab entry in
  schedule order, and (b) nothing new can arrive at the current
  timestamp from the future side.  The classic engine's per-event
  lazy-maturation arbitration is therefore vacuous inside a timestamp,
  and batching preserves the exact same-timestamp FIFO order.

No sequence numbers at the current timestamp
--------------------------------------------

The classic engine orders same-timestamp work by an explicit sequence
counter on *every* queue entry.  In the flat core only future heap
entries carry one (heapq is not stable); at the current timestamp order
is purely positional: append order on the ready slab *is* schedule
order, cohort slabs are collected from the heap in sequence order, and
the two interleave only at the cohort boundary where every cohort
record is older than every ready record.  The schedule controller
(``repro.check``) consumes the same positional order through its cohort
hook, so decision points line up one-for-one with the classic engine's.

Record encodings (the ``arg`` slot, mirroring the classic engine):

========================  ====================================================
``None``                  plain callback, invoked as ``callback()``
positive ``int``          timer resume (hop 2): ``callback`` is the process,
                          ``arg`` its wait generation
negative ``int``          zero-delay timer maturing (hop 1): requeue hop 2
                          with the negated generation — replaces the classic
                          engine's per-yield ``_TimerResume`` allocation
``tuple``                 event-waiter resume: ``(generation, event)``
anything else             argument callback, invoked as ``callback(arg)``
========================  ====================================================

Wait generations are always >= 1, so the sign carries the hop for free.

The public API (:class:`Event`, :class:`Process`, ``timeout``,
``AllOf``/``AnyOf``) is a thin veneer over the slabs: :class:`Event`
subclasses the classic event and overrides only waiter dispatch;
:class:`Process` and :class:`Simulator` are rewritten around the flat
records.  ``Interrupt``/``SimulationError`` are *shared* with the classic
engine so ``except`` clauses work regardless of the selected core.
``tests/test_sim_engine_perf.py`` pins this engine (and the classic one)
against the frozen seed engine on randomized schedules.
"""

from collections import deque
from heapq import heappop, heappush

from repro.obs import metrics as _obs_metrics
from repro.sim import engine_classic as _classic
from repro.sim.engine_classic import (  # noqa: F401  (re-exported)
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    _EventTrigger,
)

_BaseEvent = _classic.Event


class Event(_BaseEvent):
    """A one-shot occurrence processes can wait on (flat-core edition).

    Identical to the classic event except that waiter dispatch appends
    flat ``callback, arg`` pairs to the simulator's ready slab instead of
    ``(seq, callback, arg)`` tuples to a deque.
    """

    __slots__ = ()

    def _dispatch(self, waiters):
        """Run waiters through the scheduler (same timestamp) rather than
        synchronously, so triggering code never reenters waiter code.

        A waiter is either a ``(process, gen)`` tuple (a suspended
        process, see ``Process._wait_on``) — re-encoded so the run loop
        resumes it without any intermediate call — or a plain callable
        from ``add_callback``, invoked as ``callback(event)``.  Append
        order is dispatch order.
        """
        self._waiters = None
        slab = self.sim._rbuf
        append = slab.append
        for waiter in waiters:
            if waiter.__class__ is tuple:
                append(waiter[0])
                append((waiter[1], self))
            else:
                append(waiter)
                append(self)


class Process:
    """A running generator, driven by the simulator.

    The generator's ``return`` value becomes the value delivered to any
    process that yields (joins) this one.  An uncaught exception inside
    the generator propagates into joiners; if nobody joins, it is re-raised
    from :meth:`Simulator.run` so failures never pass silently.
    """

    __slots__ = (
        "sim", "name", "_gen", "_send", "_throw", "_done", "_interrupts", "_wait_gen",
    )

    def __init__(self, sim, gen, name=None):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        self._done = Event(sim)
        self._interrupts = None  # lazily a deque: most processes never see one
        self._wait_gen = 0
        slab = sim._rbuf
        slab.append(self._start)
        slab.append(None)

    def _start(self):
        self._resume(None, None)

    @property
    def done_event(self):
        return self._done

    @property
    def is_alive(self):
        return not self._done.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            return
        if self._interrupts is None:
            self._interrupts = deque()
        self._interrupts.append(Interrupt(cause))
        self.sim._schedule_call(self._deliver_interrupt, None)

    def _deliver_interrupt(self):
        if not self.is_alive or not self._interrupts:
            return
        exc = self._interrupts.popleft()
        self._wait_gen += 1  # invalidate whatever the process was waiting on
        self._resume(None, exc)

    def _resume(self, value, exc):
        if self._done._triggered:
            return
        sim = self.sim
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as err:  # noqa: BLE001 - must forward any failure
            self._finish(None, err)
            return
        if target.__class__ is int:
            # Fast path, inlined: a plain timeout needs no Event at all.
            # Zero delays go to the ready slab as a hop-1 record (negative
            # generation) — buckets hold only strictly-future work.
            if target <= 0:
                if target < 0:
                    raise SimulationError("cannot schedule into the past")
                self._wait_gen = gen = self._wait_gen + 1
                slab = sim._rbuf
                slab.append(self)
                slab.append(-gen)
                return
            self._wait_gen = gen = self._wait_gen + 1
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (sim.now + target, seq, self, gen))
            return
        self._wait_on(target)

    def _finish(self, value, exc):
        if exc is None:
            self._done.trigger(value)
        else:
            if not self._done._waiters:
                self.sim._record_orphan_failure(self, exc)
            self._done.fail(exc)

    def _wait_on(self, target):
        sim = self.sim
        self._wait_gen = gen = self._wait_gen + 1
        cls = target.__class__
        if cls is Event:
            event = target
        elif isinstance(target, Process):
            event = target._done
        elif isinstance(target, _BaseEvent):
            event = target
        elif isinstance(target, int):  # bool and other int subclasses
            delay = int(target)
            if delay < 0:
                raise SimulationError("cannot schedule into the past")
            if delay == 0:
                slab = sim._rbuf
                slab.append(self)
                slab.append(-gen)
            else:
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap, (sim.now + delay, seq, self, gen))
            return
        else:
            event = sim._as_event(target)
        if event._triggered:
            # Already fired: resume through the ready slab directly, in
            # the inline encoding the run loop understands.
            slab = sim._rbuf
            slab.append(self)
            slab.append((gen, event))
        elif event._waiters is None:
            event._waiters = [(self, gen)]
        else:
            event._waiters.append((self, gen))


class Simulator:
    """The event loop: a clock, a flat ready slab for the current
    timestamp, and timestamp-cohort buckets for the future."""

    #: Engine kind marker; the schedule controller keys its drive on this.
    FLAT_CORE = True

    #: Process-wide totals across every Simulator instance, folded in when
    #: each ``run()`` returns.  The bench runner samples these around a
    #: figure to report events/sec and simulated-ns/sec.  Kept per engine
    #: class, like the classic engine's.
    total_events_dispatched = 0
    total_sim_ns = 0

    def __init__(self):
        self.now = 0
        #: Ready slab: flat ``callback, arg`` pairs at the current
        #: timestamp, in schedule (dispatch) order from ``_rpos`` on.
        self._rbuf = []
        self._rpos = 0
        #: Future side: min-heap of ``(when, seq, callback, arg)`` records
        #: (timer args are positive int wait generations, plain schedule
        #: callbacks carry None).  ``_seq`` makes same-timestamp heap
        #: order FIFO; only future entries need one.
        self._heap = []
        self._seq = 0
        #: Arena free-list of drained cohort slabs, reused at the next
        #: clock advance.
        self._free = []
        #: Cohort being matured, with cursor — persisted only when a
        #: dispatch raises mid-timestamp so a later run() resumes exactly.
        self._cohort = None
        self._cpos = 0
        self._current = None
        self._orphan_failures = deque()
        #: Optional schedule controller (repro.check): when set, run()
        #: delegates to it so same-timestamp dispatch order can be
        #: explored.  None (the default) keeps the batched loop below
        #: untouched.
        self._controller = None
        #: Exact number of callbacks this instance's run loop has executed.
        self.events_dispatched = 0
        #: Timer maturations the run loop performed (hop-1 requeues).
        self.timer_fires = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay, callback):
        """Run ``callback()`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        delay = int(delay)
        if delay == 0:
            # Buckets hold only strictly-future work.
            slab = self._rbuf
            slab.append(callback)
            slab.append(None)
        else:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self.now + delay, seq, callback, None))

    def _schedule_call(self, callback, arg):
        """Enqueue ``callback(arg)`` (or ``callback()`` if arg is None) at
        the current timestamp, in FIFO order with everything else."""
        slab = self._rbuf
        slab.append(callback)
        slab.append(arg)

    def _schedule_now(self, callback):
        slab = self._rbuf
        slab.append(callback)
        slab.append(None)

    def timeout(self, delay, value=None):
        """An event that triggers after ``delay`` nanoseconds."""
        event = Event(self)
        self.schedule(delay, _EventTrigger(event, value))
        return event

    def event(self):
        return Event(self)

    def process(self, gen, name=None):
        """Start ``gen`` (a generator) as a simulated process."""
        if not hasattr(gen, "send"):
            raise SimulationError("process() expects a generator")
        return Process(self, gen, name=name)

    # -- awaitable coercion --------------------------------------------------

    def _as_event(self, target):
        if isinstance(target, _BaseEvent):
            return target
        if isinstance(target, Process):
            return target.done_event
        if isinstance(target, int):
            return self.timeout(target)
        if isinstance(target, AllOf):
            return self._all_of(target.children)
        if isinstance(target, AnyOf):
            return self._any_of(target.children)
        raise SimulationError(f"cannot wait on {target!r}")

    def _all_of(self, children):
        events = [self._as_event(child) for child in children]
        combined = Event(self)
        remaining = [len(events)]
        values = [None] * len(events)
        if not events:
            combined.trigger([])
            return combined

        def on_child(index):
            def callback(event):
                if combined.triggered:
                    return
                if event._exc is not None:
                    combined.fail(event._exc)
                    return
                values[index] = event.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    combined.trigger(list(values))

            return callback

        for index, event in enumerate(events):
            event.add_callback(on_child(index))
        return combined

    def _any_of(self, children):
        events = [self._as_event(child) for child in children]
        combined = Event(self)
        if not events:
            raise SimulationError("AnyOf requires at least one child")

        def on_child(index):
            def callback(event):
                if combined.triggered:
                    return
                if event._exc is not None:
                    combined.fail(event._exc)
                    return
                combined.trigger((index, event.value))

            return callback

        for index, event in enumerate(events):
            event.add_callback(on_child(index))
        return combined

    # -- running -------------------------------------------------------------

    def run(self, until=None):
        """Drain the event queue, stopping after simulated time ``until``.

        Dispatch order is by (timestamp, schedule order), identical to the
        classic and seed engines.  Per timestamp: the whole cohort matures
        in one batched pass (every cohort record predates every ready-slab
        record — the slab is empty when the clock advances and only fills
        at the current timestamp), then the ready slab drains by cursor
        with no per-event heap or ``until`` checks (future entries are
        strictly future, so neither can change mid-timestamp).
        """
        if self._controller is not None:
            return self._controller.drive(self, until)
        rbuf = self._rbuf
        heap = self._heap
        free = self._free
        orphans = self._orphan_failures
        dispatched = 0
        timer_fires = 0
        start_ns = self.now
        pos = self._rpos
        cohort = self._cohort
        cpos = self._cpos
        #: One comparison per check instead of two: +inf compares greater
        #: than any timestamp, so "no bound" needs no None test.
        limit = float("inf") if until is None else until
        #: True when the current cohort is known to be pure timer records.
        #: A cohort persisted by an earlier (interrupted) run is treated
        #: as mixed — the two-phase path is always order-exact.
        pure = False
        if pos:
            # Normalize a mid-drain cursor persisted by an interrupted
            # run: shift the undrained tail to the slab head.  With the
            # cursor pinned at zero outside a drain, slab emptiness is a
            # truth test everywhere below instead of a len() call per
            # loop iteration.
            del rbuf[:pos]
            pos = 0
        try:
            while True:
                if cohort is not None or rbuf:
                    if self.now > limit:
                        break
                    if cohort is not None and pure and not rbuf:
                        # Fused maturation fast path: a pure-timer cohort
                        # with nothing already on the ready slab.  Hop-1
                        # requeue and hop-2 resume collapse into a direct
                        # resume per record -- user-visible order is
                        # unchanged (hop-1s run no user code and all
                        # precede the first resume), so this equals the
                        # two-phase path record for record.  Counters are
                        # settled per batch in the finally: each record
                        # still accounts for both hops.
                        n = len(cohort)
                        cbase = cpos
                        try:
                            while cpos < n:
                                cb = cohort[cpos]
                                gen = cohort[cpos + 1]
                                cpos += 2
                                if cb._wait_gen == gen:
                                    cb._resume(None, None)
                                if orphans:
                                    _process, exc = orphans.popleft()
                                    raise exc
                        finally:
                            matured = (cpos - cbase) >> 1
                            dispatched += matured << 1
                            timer_fires += matured
                        cohort.clear()
                        free.append(cohort)
                        cohort = None
                    elif cohort is not None:
                        # Order-exact two-phase maturation: timers requeue
                        # (hop 1) onto the ready slab, plain callbacks
                        # dispatch inline.  Required when the cohort holds
                        # plain ``schedule()`` records (they interleave
                        # with timer resumes by schedule order) or when a
                        # resumed run left records on the slab (cohort
                        # hop-2s must land behind them).  The cohort
                        # cannot grow (new future work is strictly
                        # future), so its length is fixed.  Counters are
                        # settled per batch, not per record (the finally
                        # keeps them exact if a callback raises):
                        # matured = records consumed, of which the
                        # non-timers were counted one by one.
                        n = len(cohort)
                        cbase = cpos
                        plain = 0
                        rappend = rbuf.append
                        try:
                            while cpos < n:
                                cb = cohort[cpos]
                                arg = cohort[cpos + 1]
                                cpos += 2
                                if arg.__class__ is int:
                                    rappend(cb)
                                    rappend(arg)
                                else:
                                    plain += 1
                                    if arg is None:
                                        cb()
                                    else:
                                        cb(arg)
                                    if orphans:
                                        _process, exc = orphans.popleft()
                                        raise exc
                        finally:
                            matured = (cpos - cbase) >> 1
                            dispatched += matured
                            timer_fires += matured - plain
                        cohort.clear()
                        free.append(cohort)
                        cohort = None
                    # Batched ready drain: appends during dispatch extend
                    # the slab past the cursor and run in schedule order.
                    # Records are pushed in pairs, so the cursor lands
                    # exactly on len(rbuf) when the slab is dry -- the
                    # IndexError probe replaces a len() check per record;
                    # the finally settles the dispatch count per batch.
                    # The guard skips the whole drain (probe exception,
                    # append binding, slab recycle) on the common sparse
                    # path where a cohort matured onto an empty slab.
                    if not rbuf:
                        continue
                    base = pos
                    rappend = rbuf.append
                    try:
                        while True:
                            try:
                                arg = rbuf[pos + 1]
                            except IndexError:
                                break
                            cb = rbuf[pos]
                            pos += 2
                            cls = arg.__class__
                            if cls is int:
                                if arg > 0:
                                    # Timer resume (hop 2): cb is the
                                    # process, arg its wait generation.
                                    # Stale means an interrupt superseded
                                    # the wait.
                                    if cb._wait_gen == arg:
                                        cb._resume(None, None)
                                    if orphans:
                                        _process, exc = orphans.popleft()
                                        raise exc
                                else:
                                    # Zero-delay timer maturing (hop 1):
                                    # requeue the resume at the slab tail,
                                    # exactly where the classic engine's
                                    # _TimerResume requeue would land it.
                                    rappend(cb)
                                    rappend(-arg)
                            elif cls is tuple:
                                # Event waiter resume: (generation, event).
                                if cb._wait_gen == arg[0]:
                                    event = arg[1]
                                    cb._resume(event.value, event._exc)
                                if orphans:
                                    _process, exc = orphans.popleft()
                                    raise exc
                            elif arg is None:
                                cb()
                                if orphans:
                                    _process, exc = orphans.popleft()
                                    raise exc
                            else:
                                cb(arg)
                                if orphans:
                                    _process, exc = orphans.popleft()
                                    raise exc
                    finally:
                        dispatched += (pos - base) >> 1
                    # Timestamp fully drained: recycle the slab in place.
                    del rbuf[:]
                    pos = 0
                elif heap:
                    when = heap[0][0]
                    if when > limit:
                        break
                    self.now = when
                    entry = heappop(heap)
                    if not heap or heap[0][0] != when:
                        # Singleton fast path: exactly one record matures
                        # at this timestamp.  The ready slab is empty by
                        # the loop-top condition (this arm is reached only
                        # once the slab is drained), so order is trivially
                        # exact.  This is the dominant shape in open-loop
                        # workloads (fig10 averages 1.5 records per
                        # distinct timestamp).
                        # Dispatch straight off the heap entry: no cohort
                        # slab, no free-list round-trip, no drain pass.
                        # Counters are bumped before the fire so the
                        # finally persists exact totals if it raises.
                        arg = entry[3]
                        cb = entry[2]
                        if arg.__class__ is int:
                            dispatched += 2
                            timer_fires += 1
                            if cb._wait_gen == arg:
                                cb._resume(None, None)
                        elif arg is None:
                            dispatched += 1
                            cb()
                        else:
                            dispatched += 1
                            cb(arg)
                        if orphans:
                            _process, exc = orphans.popleft()
                            raise exc
                    else:
                        # Collect the whole cohort at this timestamp into
                        # a recycled stride-2 slab, in sequence (FIFO)
                        # order.
                        cohort = free.pop() if free else []
                        cpos = 0
                        arg = entry[3]
                        cohort.append(entry[2])
                        cohort.append(arg)
                        pure = arg.__class__ is int
                        while heap and heap[0][0] == when:
                            entry = heappop(heap)
                            arg = entry[3]
                            cohort.append(entry[2])
                            cohort.append(arg)
                            if arg.__class__ is not int:
                                pure = False
                else:
                    break
        finally:
            self._rpos = pos
            self._cohort = cohort
            self._cpos = cpos
            self.events_dispatched += dispatched
            self.timer_fires += timer_fires
            Simulator.total_events_dispatched += dispatched
            Simulator.total_sim_ns += self.now - start_ns
            registry = _obs_metrics.METRICS
            if registry is not None:
                registry.counter("sim.dispatches").inc(dispatched)
                registry.counter("sim.timer_fires").inc(timer_fires)
                registry.counter("sim.runs").inc()
                registry.counter("sim.elapsed_ns").inc(self.now - start_ns)
        if until is not None and self.now < until:
            self.now = int(until)

    def run_process(self, gen, name=None, until=None):
        """Start ``gen``, run to completion, and return its value."""
        proc = self.process(gen, name=name)
        self.run(until=until)
        if not proc.done_event.triggered:
            raise SimulationError(f"process {proc.name} did not finish")
        if proc.done_event._exc is not None:
            raise proc.done_event._exc
        return proc.done_event.value

    def _record_orphan_failure(self, process, exc):
        self._orphan_failures.append((process, exc))
