"""Measurement helpers: latency samples, percentiles, throughput meters."""

import math


def percentile(samples, fraction):
    """Return the ``fraction`` (0..1) percentile by linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class LatencyRecorder:
    """Collects latency samples (ns) and summarizes them."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def record(self, latency_ns):
        if latency_ns < 0:
            raise ValueError("negative latency")
        self.samples.append(latency_ns)

    def __len__(self):
        return len(self.samples)

    @property
    def count(self):
        return len(self.samples)

    def mean(self):
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    def p(self, fraction):
        return percentile(self.samples, fraction)

    def min(self):
        return min(self.samples)

    def max(self):
        return max(self.samples)

    def mean_us(self):
        return self.mean() / 1_000.0

    def cdf(self, points=100):
        """Return (latency_ns, cumulative_fraction) pairs for plotting."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        n = len(ordered)
        step = max(1, n // points)
        curve = []
        for index in range(0, n, step):
            curve.append((ordered[index], (index + 1) / n))
        if curve[-1][0] != ordered[-1]:
            curve.append((ordered[-1], 1.0))
        return curve


class RateMeter:
    """Counts events over a simulated-time window to compute throughput."""

    __slots__ = ("sim", "count", "_window_start")

    def __init__(self, sim):
        self.sim = sim
        self.count = 0
        self._window_start = sim.now

    def tick(self, n=1):
        self.count += n

    def reset(self):
        self.count = 0
        self._window_start = self.sim.now

    @property
    def elapsed_ns(self):
        return self.sim.now - self._window_start

    def rate_per_sec(self):
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            raise ValueError("no elapsed simulated time")
        return self.count * 1_000_000_000 / elapsed

    def rate_million_per_sec(self):
        return self.rate_per_sec() / 1_000_000.0
