"""Engine selection: the flat-record core by default, classic on request.

Two interchangeable discrete-event engines live side by side:

* ``repro.sim.engine_flat`` — the default: flat ``callback, arg`` record
  slabs, timestamp-cohort buckets with arena free-lists, and batched
  same-timestamp dispatch (see its module docstring for the layout).
* ``repro.sim.engine_classic`` — the PR-1 ready-deque + future-heap
  engine, kept as a selectable pure-Python fallback.

Set ``REPRO_ENGINE=classic`` (or ``flat``) in the environment to choose;
the selection happens once, at import time, so every component in the
process runs on the same core.  Both engines execute callbacks in
exactly the same order as the frozen seed engine
(``tests/_seed_engine_reference.py``); the figure CSVs, golden traces,
and the model-checking schedule corpus are byte-identical under either.

``Interrupt`` and ``SimulationError`` are single shared classes (defined
in the classic module) regardless of the selected engine, so ``except``
clauses and ``AllOf``/``AnyOf`` containers work across both.
"""

import os

from repro.sim.engine_classic import (  # noqa: F401  (shared, engine-agnostic)
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
)

#: Which core this process runs on: "flat" or "classic".
ENGINE = os.environ.get("REPRO_ENGINE", "flat").strip().lower() or "flat"

if ENGINE == "flat":
    from repro.sim.engine_flat import Event, Process, Simulator  # noqa: F401
elif ENGINE == "classic":
    from repro.sim.engine_classic import Event, Process, Simulator  # noqa: F401
else:
    raise SimulationError(
        f"REPRO_ENGINE must be 'flat' or 'classic', got {ENGINE!r}"
    )

__all__ = [
    "AllOf",
    "AnyOf",
    "ENGINE",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
]
