PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos bench-fast bench bench-full perf-budget coverage trace check check-sweep

test:
	$(PYTHON) -m pytest -x -q

# Coverage gate (needs the `cov` extra: pip install -e '.[test,cov]').
# The floor only ratchets up: raise it when coverage rises, never lower it.
coverage:
	$(PYTHON) -m pytest --cov=repro --cov-report=term-missing:skip-covered --cov-fail-under=70

# One Perfetto-loadable trace + metrics snapshot of the Fig 3 scenario
# (open traces/fig03.json at https://ui.perfetto.dev).
trace:
	$(PYTHON) -m repro.bench fig03 --trace traces/fig03.json --metrics traces/fig03-metrics.json

# Full seeded chaos schedules (YCSB over KRCORE under fault plans).
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -m chaos -q

# Quick perf check: the perf smoke test (budgeted wall time, appends to
# benchmarks/BENCH_<date>.json) plus two real figures with perf records
# (fig10 for the data path, meta_scale for the sharded control plane).
bench-fast:
	$(PYTHON) -m pytest benchmarks/perf_smoke.py -m perf -q
	$(PYTHON) -m repro.bench fig10 meta_scale --perf-json $$(test -n "$$REPRO_PERF_JSON" && echo "$$REPRO_PERF_JSON" || echo benchmarks/BENCH_$$(date +%Y-%m-%d).json) --perf-label bench-fast

# Regenerate every figure (fast mode) with perf records.
bench:
	$(PYTHON) -m repro.bench --perf-json $$(test -n "$$REPRO_PERF_JSON" && echo "$$REPRO_PERF_JSON" || echo benchmarks/BENCH_$$(date +%Y-%m-%d).json) --perf-label bench

# Paper-scale regeneration (slow).
bench-full:
	$(PYTHON) -m repro.bench --full

# Throughput gate: the latest `make bench` run's aggregate fast-suite
# events/s must stay within 20% of benchmarks/perf_floor.json.
# Re-baseline an intended change with:
#   python -m repro.bench.budget <BENCH.json> --label bench --write-floor
perf-budget:
	$(PYTHON) -m repro.bench.budget $$(test -n "$$REPRO_PERF_JSON" && echo "$$REPRO_PERF_JSON" || echo benchmarks/BENCH_$$(date +%Y-%m-%d).json) --label bench

# Model checker (repro.check): replay the committed schedule corpus
# (tier-1 smoke), then a quick randomized sweep.
check:
	$(PYTHON) -m repro.check --replay tests/schedules/*_fifo_clean.json tests/schedules/racey_pipeline_underflow.json
	$(PYTHON) -m repro.check pool_churn --mode random --seeds 5 --quiet

# Nightly-sized budgeted sweep: random schedules over three scenarios,
# shrinking any failure to schedules-out/<scenario>.json.
check-sweep:
	mkdir -p schedules-out
	$(PYTHON) -m repro.check pool_churn --mode random --seeds 40 --shrink --out schedules-out/pool_churn.json
	$(PYTHON) -m repro.check kvs_lin --mode random --seeds 25 --shrink --out schedules-out/kvs_lin.json
	$(PYTHON) -m repro.check chaos_small --mode pct --seeds 15 --shrink --out schedules-out/chaos_small.json
