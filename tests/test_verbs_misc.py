"""Additional verbs-layer tests: payload cost model, UD details, QP and
CQ edge cases, fabric behaviour."""

import pytest

from repro.cluster import Cluster, timing
from repro.sim import Simulator, US
from repro.verbs import (
    CompletionQueue,
    DriverContext,
    Opcode,
    QpState,
    QpType,
    RecvBuffer,
    VerbsError,
    WcStatus,
    WorkRequest,
)
from tests.conftest import quick_dc_qp, quick_rc_pair, quick_ud_qp, register


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim):
    return Cluster(sim, num_nodes=3, memory_size=32 << 20)


def _read_latency(sim, cluster, payload):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, payload + 64)
    raddr, rmr = register(server, payload + 64)

    def proc():
        qp.post_send(WorkRequest.read(laddr, payload, lmr.lkey, raddr, rmr.rkey))
        yield from qp.send_cq.wait_poll()
        return sim.now

    return sim.run_process(proc())


def test_read_latency_grows_with_payload(sim, cluster):
    small = _read_latency(sim, cluster, 8)
    sim2 = Simulator()
    cluster2 = Cluster(sim2, num_nodes=2, memory_size=32 << 20)
    large = _read_latency(sim2, cluster2, 1 << 20)
    # 1 MB at 100 Gb/s is ~84 us of serialization on top of the base.
    assert large - small > 80_000
    assert large - small < 200_000


def test_write_pays_extra_per_byte(sim, cluster):
    # The Fig 13 calibration: WRITE's per-byte cost exceeds READ's.
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 1 << 16)
    raddr, rmr = register(server, 1 << 16)

    def op_latency(wr):
        start = sim.now
        qp.post_send(wr)
        yield from qp.send_cq.wait_poll()
        return sim.now - start

    def proc():
        read_ns = yield from op_latency(
            WorkRequest.read(laddr, 32768, lmr.lkey, raddr, rmr.rkey)
        )
        write_ns = yield from op_latency(
            WorkRequest.write(laddr, 32768, lmr.lkey, raddr, rmr.rkey)
        )
        return read_ns, write_ns

    read_ns, write_ns = sim.run_process(proc())
    assert write_ns > read_ns * 2


def test_responder_payload_service_tiers():
    assert timing.responder_payload_service_ns(8) == 0
    assert timing.responder_payload_service_ns(16) == 0
    small = timing.responder_payload_service_ns(64)
    assert small == pytest.approx(48 * 0.45)
    # Beyond the small tier, bytes stream at wire bandwidth.
    big = timing.responder_payload_service_ns(16 + 240 + 1000)
    assert big == pytest.approx(240 * 0.45 + 1000 * timing.WIRE_NS_PER_BYTE)


def test_fetch_add_accumulates(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    server.memory.write(raddr, (100).to_bytes(8, "big"))

    def proc():
        for delta in (5, 7):
            qp.post_send(
                WorkRequest(
                    Opcode.FETCH_ADD, laddr=laddr, length=8, lkey=lmr.lkey,
                    raddr=raddr, rkey=rmr.rkey, compare=delta,
                )
            )
            yield from qp.send_cq.wait_poll()
        return int.from_bytes(server.memory.read(raddr, 8), "big")

    assert sim.run_process(proc()) == 112
    # The second op observed the first's result.
    assert int.from_bytes(cluster.node(0).memory.read(laddr, 8), "big") == 105


def test_ud_to_dead_node_completes_silently(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c = quick_ud_qp(client)
    qp_s = quick_ud_qp(server)
    laddr, lmr = register(client, 64)
    server.fail()

    def proc():
        qp_c.post_send(
            WorkRequest.send(laddr, 8, lmr.lkey, dct_gid=server.gid, dct_number=qp_s.qpn)
        )
        completions = yield from qp_c.send_cq.wait_poll()
        return completions[0]

    completion = sim.run_process(proc())
    assert completion.ok  # unreliable datagram: fire and forget
    assert qp_c.state is QpState.RTS


def test_ud_oversized_payload_dropped(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c = quick_ud_qp(client)
    qp_s = quick_ud_qp(server)
    laddr, lmr = register(client, 8192)
    raddr, rmr = register(server, 8192)
    qp_s.post_recv(RecvBuffer(raddr, 64, rmr.lkey))  # too small

    def proc():
        qp_c.post_send(
            WorkRequest.send(
                laddr, 4096, lmr.lkey, dct_gid=server.gid, dct_number=qp_s.qpn
            )
        )
        completions = yield from qp_c.send_cq.wait_poll()
        return completions[0]

    assert sim.run_process(proc()).ok
    assert len(qp_s.recv_cq) == 0  # silently dropped


def test_post_send_before_rts_rejected(sim, cluster):
    node = cluster.node(0)
    ctx = DriverContext(node, kernel=True)
    cq = CompletionQueue(sim)
    qp = ctx.create_qp_fast(QpType.RC, cq)
    with pytest.raises(VerbsError):
        qp.post_send(WorkRequest.read(0, 8, 1, 0, 1))


def test_state_machine_rejects_skipping(sim, cluster):
    node = cluster.node(0)
    ctx = DriverContext(node, kernel=True)
    qp = ctx.create_qp_fast(QpType.RC, CompletionQueue(sim))
    with pytest.raises(VerbsError):
        qp.to_rtr(("x", 1))  # must pass INIT first
    qp.to_init()
    with pytest.raises(VerbsError):
        qp.to_rts()  # must pass RTR first
    with pytest.raises(VerbsError):
        qp.to_rtr()  # RC needs the remote


def test_empty_post_send_is_noop(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    qp.post_send([])
    assert qp.outstanding == 0


def test_cq_poll_batches(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)

    def proc():
        qp.post_send(
            [WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=i) for i in range(6)]
        )
        yield 50_000  # let everything complete
        first = qp.send_cq.poll(4)
        rest = qp.send_cq.poll(4)
        return first, rest

    first, rest = sim.run_process(proc())
    assert [c.wr_id for c in first] == [0, 1, 2, 3]
    assert [c.wr_id for c in rest] == [4, 5]


def test_dc_qp_single_target_has_one_reconnect(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp = quick_dc_qp(client)
    target = server.rnic.create_dct_target(dc_key=3)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)

    def proc():
        for _ in range(10):
            qp.post_send(
                WorkRequest.read(
                    laddr, 8, lmr.lkey, raddr, rmr.rkey,
                    dct_gid=server.gid, dct_number=target.number, dct_key=3,
                )
            )
            yield from qp.send_cq.wait_poll()

    sim.run_process(proc())
    assert qp.stats_reconnects == 1  # connected once, reused 9 times


def test_fabric_latency_model():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=2)
    fabric = cluster.fabric
    assert fabric.one_way_ns(0) == timing.WIRE_ONE_WAY_NS
    assert fabric.one_way_ns(12500) == timing.WIRE_ONE_WAY_NS + 1000  # 0.08 ns/B
    with pytest.raises(ValueError):
        from repro.cluster.node import Node

        Node(sim, fabric, gid="node0")  # duplicate gid


def test_driver_context_requires_init_for_resources():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=1)
    ctx = DriverContext(cluster.node(0))
    with pytest.raises(VerbsError):
        ctx.alloc_pd()
