"""Failure injection: node death, metadata invalidation, QP repair.

§4.2: DCT metadata is "only invalidated when the corresponding host is
down" -- these tests exercise exactly those paths, plus the recovery of a
shared physical QP after a remote failure wrecks it.
"""

import pytest

from repro.cluster import timing
from repro.krcore import KrcoreError, KrcoreLib
from repro.lite import LiteError
from repro.sim import MS, Simulator
from repro.verbs import QpState, WcStatus, WorkRequest
from tests.conftest import krcore_cluster


@pytest.fixture
def env():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(sim, num_nodes=4, background_rc=False)
    return sim, cluster, meta, modules


def _register(sim, lib, node, nbytes=4096):
    def proc():
        addr = node.memory.alloc(nbytes)
        region = yield from lib.reg_mr(addr, nbytes)
        return addr, region

    return sim.run_process(proc())


def test_qconnect_to_dead_node_fails_cleanly(env):
    sim, cluster, meta, modules = env
    victim = cluster.node(2)
    victim.fail()
    meta.retract_node(victim.gid)
    lib = KrcoreLib(cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        with pytest.raises(KrcoreError):
            yield from lib.qconnect(vqp, victim.gid)

    sim.run_process(proc())


def test_read_after_remote_death_errors_and_qp_repairs(env):
    sim, cluster, meta, modules = env
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _register(sim, lib_s, cluster.node(2))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _register(sim, lib, cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)
        phys = vqp.qp
        cluster.node(2).fail()
        # The in-flight request fails: the user sees an error completion.
        yield from vqp.post_send(
            WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey)
        )
        entry = yield from vqp.wait_send_completion()
        assert entry.status is WcStatus.RETRY_EXC_ERR
        # The kernel repairs the shared physical QP in the background.
        yield 3 * MS
        assert phys.state is QpState.RTS
        return phys

    sim.run_process(proc())


def test_repaired_qp_carries_traffic_to_other_nodes(env):
    sim, cluster, meta, modules = env
    lib_2 = KrcoreLib(cluster.node(2))
    raddr2, rmr2 = _register(sim, lib_2, cluster.node(2))
    lib_3 = KrcoreLib(cluster.node(3))
    raddr3, rmr3 = _register(sim, lib_3, cluster.node(3))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _register(sim, lib, cluster.node(1))
    # A 1-DCQP pool: both VQPs share the same physical QP.
    pool = modules[1].pool(0)
    pool.dc = pool.dc[:1]

    def proc():
        vqp_dead = yield from lib.create_vqp()
        yield from lib.qconnect(vqp_dead, cluster.node(2).gid)
        vqp_live = yield from lib.create_vqp()
        yield from lib.qconnect(vqp_live, cluster.node(3).gid)
        assert vqp_dead.qp is vqp_live.qp
        cluster.node(2).fail()
        yield from vqp_dead.post_send(
            WorkRequest.read(laddr, 8, lmr.lkey, raddr2, rmr2.rkey)
        )
        entry = yield from vqp_dead.wait_send_completion()
        assert not entry.ok
        yield 3 * MS  # background repair
        # The innocent VQP sharing the QP works again after the repair.
        cluster.node(3).memory.write(raddr3, b"survivor")
        yield from lib.read_sync(vqp_live, laddr, lmr.lkey, raddr3, rmr3.rkey, 8)
        return cluster.node(1).memory.read(laddr, 8)

    assert sim.run_process(proc()) == b"survivor"


def test_post_to_wrecked_qp_raises_clean_error(env):
    sim, cluster, meta, modules = env
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _register(sim, lib_s, cluster.node(2))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _register(sim, lib, cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)
        cluster.node(2).fail()
        yield from vqp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey))
        yield from vqp.wait_send_completion()
        # Immediately reposting (before the background repair finishes)
        # surfaces a clean KRCORE error, not a corrupted-state crash.
        with pytest.raises(KrcoreError):
            yield from vqp.post_send(
                WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey)
            )

    sim.run_process(proc())


def test_invalidate_node_purges_meta_and_pools(env):
    sim, cluster, meta, modules = env
    victim = cluster.node(2)
    lib = KrcoreLib(cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, victim.gid)

    sim.run_process(proc())
    assert victim.gid in modules[1].dc_cache
    assert meta.store.get_local(b"dct:" + victim.gid.encode()) is not None
    victim.fail()
    modules[1].invalidate_node(victim.gid)
    modules[0].invalidate_node(victim.gid)  # the meta node retracts it
    assert victim.gid not in modules[1].dc_cache
    assert meta.store.get_local(b"dct:" + victim.gid.encode()) is None


def test_fresh_connect_after_invalidation_fails_then_new_node_reuses_gid(env):
    sim, cluster, meta, modules = env
    victim = cluster.node(2)
    victim.fail()
    modules[0].invalidate_node(victim.gid)
    modules[1].invalidate_node(victim.gid)
    lib = KrcoreLib(cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        with pytest.raises(KrcoreError):
            yield from lib.qconnect(vqp, victim.gid)

    sim.run_process(proc())

    # A replacement node comes up under the same address (gid reuse) and
    # broadcasts fresh metadata at boot.
    from repro.cluster.node import Node
    from repro.krcore import KrcoreModule

    replacement = Node(sim, cluster.fabric, victim.gid)
    module = KrcoreModule(replacement, meta, background_rc=False)
    lib2 = KrcoreLib(cluster.node(1))

    def proc2():
        vqp = yield from lib2.create_vqp()
        yield from lib2.qconnect(vqp, victim.gid)
        return vqp

    vqp = sim.run_process(proc2())
    assert vqp.dct_meta == module.own_dct_meta


def test_mr_retraction_blocks_new_validations(env):
    sim, cluster, meta, modules = env
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _register(sim, lib_s, cluster.node(2))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _register(sim, lib, cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        # Deregister before the client ever validated this MR.
        yield from lib_s.dereg_mr(rmr)
        with pytest.raises(KrcoreError):
            yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)

    sim.run_process(proc())


def test_transfer_with_dead_peer_does_not_hang(env):
    sim, cluster, meta, modules = env
    server_node, client_node = cluster.node(2), cluster.node(1)
    lib_s = KrcoreLib(server_node)
    lib_c = KrcoreLib(client_node)
    PORT = 47
    saddr, smr = _register(sim, lib_s, server_node)
    caddr, cmr = _register(sim, lib_c, client_node)

    from repro.verbs import RecvBuffer
    from tests.conftest import quick_rc_pair

    def proc():
        server_vqp = yield from lib_s.create_vqp()
        yield from lib_s.qbind(server_vqp, PORT)
        yield from lib_s.post_recv(server_vqp, RecvBuffer(saddr, 512, smr.lkey))
        client_vqp = yield from lib_c.create_vqp()
        yield from lib_c.qconnect(client_vqp, server_node.gid, PORT)
        yield from lib_c.post_send(client_vqp, WorkRequest.send(caddr, 8, cmr.lkey))
        results = yield from lib_s.qpop_msgs_wait(server_vqp)
        reply_vqp = results[0][0]
        # The client dies; the server's transfer must not hang waiting for
        # an acknowledgment that can never arrive.
        client_node.fail()
        rc, _ = quick_rc_pair(server_node, client_node)
        start = sim.now
        yield from reply_vqp.transfer_to(rc)
        return sim.now - start

    elapsed = sim.run_process(proc())
    assert elapsed < 50 * 1_000_000  # bounded by the ack timeout
