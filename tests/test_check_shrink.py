"""Schedule shrinking: ddmin properties + end-to-end shrink-and-replay.

The hypothesis properties pin the two guarantees the regression corpus
rests on:

* a shrunk decision list still fails the same invariant (shrinking
  never "fixes" the schedule it is minimizing);
* replaying any serialized schedule is deterministic -- two replays
  yield byte-identical result digests.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import (
    ReplayStrategy,
    Schedule,
    shrink_decisions,
)
from repro.check.runner import (
    replay_schedule,
    run_once,
    shrink_failure,
    sweep,
)

# Decision lists over a small step space; steps unique and ascending the
# way the controller records them.
decision_lists = st.lists(
    st.tuples(st.integers(min_value=1, max_value=30),
              st.integers(min_value=1, max_value=4)),
    min_size=0, max_size=8,
    unique_by=lambda pair: pair[0],
).map(lambda pairs: sorted(pairs))


# ------------------------------------------------------- ddmin properties


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(decisions=decision_lists, threshold=st.integers(min_value=1, max_value=4))
def test_shrink_preserves_failure_and_is_one_minimal(decisions, threshold):
    """Against a pure predicate ("some decision has choice >= t"), the
    shrunk list still fails, and no single further removal does."""

    def fails(candidate):
        return any(choice >= threshold for _step, choice in candidate)

    if not fails(decisions):
        decisions = decisions + [(31, threshold)]
    minimal, _runs = shrink_decisions(decisions, fails, max_runs=2000)
    assert fails(minimal)
    for index in range(len(minimal)):
        assert not fails(minimal[:index] + minimal[index + 1:]), (
            f"{minimal} is not 1-minimal at {index}"
        )
    # For this predicate one decision is always sufficient.
    assert len(minimal) == 1


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(decisions=decision_lists)
def test_shrink_of_passing_input_raises_nothing_new(decisions):
    """ddmin on a predicate the input already fails vacuously (always
    True) reduces to empty; shrink never *adds* decisions."""
    minimal, _runs = shrink_decisions(decisions, lambda _c: True, max_runs=500)
    assert minimal == []


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(decisions=decision_lists)
def test_replaying_any_schedule_twice_is_byte_identical(decisions):
    """Determinism: the same schedule replayed twice gives identical
    digests (violations included), whatever the schedule does."""
    schedule = Schedule("racey_pipeline", decisions)
    first = replay_schedule(schedule)
    second = replay_schedule(schedule)
    assert first.digest() == second.digest()
    assert first.to_dict() == second.to_dict()


# ------------------------------------------------------------- end-to-end


def test_shrunk_racey_schedule_still_fails_its_invariant():
    results, failure = sweep("racey_pipeline", mode="random", seeds=10)
    assert failure is not None, "random sweep never broke the racey toy"
    schedule, replay, _runs = shrink_failure(failure, max_runs=150)
    assert len(schedule.decisions) <= len(failure.decisions)
    assert any(
        v.invariant == failure.violations[0].invariant
        for v in replay.violations
    )
    # 1-minimality against the real scenario: dropping any surviving
    # decision loses the failure.
    for index in range(len(schedule.decisions)):
        probe = run_once(
            "racey_pipeline",
            ReplayStrategy(
                schedule.decisions[:index] + schedule.decisions[index + 1:]
            ),
            schedule.scenario_kwargs,
        )
        assert not any(
            v.invariant == schedule.invariant for v in probe.violations
        ), f"shrunk schedule not minimal at decision {index}"


def test_shrink_serializes_and_replays_from_disk(tmp_path):
    _results, failure = sweep("racey_pipeline", mode="random", seeds=10)
    schedule, _replay, _runs = shrink_failure(failure, max_runs=150)
    path = tmp_path / "shrunk.json"
    schedule.save(path)
    loaded = Schedule.load(path)
    replayed = replay_schedule(loaded)
    assert any(v.invariant == schedule.invariant for v in replayed.violations)
