"""Control-path tests: driver init, QP creation, RC connection handshake."""

import pytest

from repro.cluster import Cluster, timing
from repro.sim import MS, Simulator, US
from repro.verbs import (
    ConnectionManager,
    DriverContext,
    QpState,
    QpType,
    WorkRequest,
)
from repro.verbs.connection import ConnectError, rc_connect
from tests.conftest import register


def _make_env(num_nodes=3):
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=num_nodes)
    for node in cluster.nodes:
        ConnectionManager(node, DriverContext(node, kernel=True))
    return sim, cluster


def test_driver_init_costs_and_is_once():
    sim, cluster = _make_env()
    ctx = DriverContext(cluster.node(0))

    def proc():
        yield from ctx.ensure_init()
        first = sim.now
        yield from ctx.ensure_init()
        return first, sim.now

    first, second = sim.run_process(proc())
    assert first == timing.DRIVER_INIT_NS
    assert second == first  # second call is free


def test_kernel_context_is_preinitialized():
    sim, cluster = _make_env()
    ctx = DriverContext(cluster.node(0), kernel=True)
    assert ctx.initialized


def test_create_qp_costs_413us():
    sim, cluster = _make_env()
    ctx = DriverContext(cluster.node(0), kernel=True)

    def proc():
        cq = yield from ctx.create_cq()
        start = sim.now
        qp = yield from ctx.create_qp(QpType.RC, cq)
        return sim.now - start, qp

    elapsed, qp = sim.run_process(proc())
    assert elapsed == timing.CREATE_QP_NS
    assert qp.state is QpState.RESET


def test_rc_connect_first_connection_is_15_7ms():
    sim, cluster = _make_env()
    client = cluster.node(0)
    ctx = DriverContext(client)

    def proc():
        yield from ctx.ensure_init()
        cq = yield from ctx.create_cq()
        qp = yield from rc_connect(ctx, cq, cluster.node(1).gid)
        return sim.now, qp

    elapsed, qp = sim.run_process(proc())
    # Fig 3a: 15.7 ms (wire time of the handshake datagrams adds ~1.3 us).
    assert abs(elapsed - 15_700 * US) < 20 * US
    assert qp.state is QpState.RTS


def test_rc_connect_cached_context_is_about_2ms():
    # LITE's per-connection cost: kernel context + shared CQ already exist.
    sim, cluster = _make_env()
    client = cluster.node(0)
    ctx = DriverContext(client, kernel=True)

    def proc():
        cq = yield from ctx.create_cq()
        start = sim.now
        yield from rc_connect(ctx, cq, cluster.node(1).gid)
        return sim.now - start

    elapsed = sim.run_process(proc())
    assert abs(elapsed - timing.LITE_CONTROL_PATH_NS) < 20 * US
    assert 1_800 * US < elapsed < 2_500 * US


def test_connected_pair_carries_traffic_both_ways():
    sim, cluster = _make_env()
    client, server = cluster.node(0), cluster.node(1)
    ctx = DriverContext(client, kernel=True)
    raddr, rmr = register(server, 4096)
    server.memory.write(raddr, b"post-handshake")
    laddr, lmr = register(client, 4096)

    def proc():
        cq = yield from ctx.create_cq()
        qp = yield from rc_connect(ctx, cq, server.gid)
        qp.post_send(WorkRequest.read(laddr, 14, lmr.lkey, raddr, rmr.rkey))
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    assert sim.run_process(proc()).ok
    assert client.memory.read(laddr, 14) == b"post-handshake"


def test_server_accept_throughput_near_712_per_sec():
    # Fig 8a: the server RNIC command processor caps accepts at ~712/s.
    sim, cluster = _make_env(num_nodes=3)
    server_gid = cluster.node(2).gid
    accepted = []
    num_clients = 40

    def one_client(node):
        ctx = DriverContext(node, kernel=True)
        cq = yield from ctx.create_cq()
        yield from rc_connect(ctx, cq, server_gid)
        accepted.append(sim.now)

    for i in range(num_clients):
        sim.process(one_client(cluster.node(i % 2)))
    sim.run()
    assert len(accepted) == num_clients
    window = max(accepted) - min(accepted)
    rate = (num_clients - 1) * 1e9 / window
    # Paper: 712 QP/s sustained.  A short burst reads slightly high because
    # replies only wait on create_qp while the RTR/RTS backlog drains later;
    # the sustained rate is asserted by the Fig 8 benchmark.
    assert 600 <= rate <= 900


def test_connect_to_dead_node_raises():
    sim, cluster = _make_env()
    client = cluster.node(0)
    cluster.node(1).fail()
    ctx = DriverContext(client, kernel=True)

    def proc():
        cq = yield from ctx.create_cq()
        with pytest.raises(ConnectError):
            yield from rc_connect(ctx, cq, cluster.node(1).gid)

    sim.run_process(proc())


def test_connect_to_unbound_port_raises():
    sim, cluster = _make_env()
    client = cluster.node(0)
    ctx = DriverContext(client, kernel=True)

    def proc():
        cq = yield from ctx.create_cq()
        with pytest.raises(ConnectError):
            yield from rc_connect(ctx, cq, cluster.node(1).gid, port=99)

    sim.run_process(proc())


def test_listener_receives_accepted_qp():
    sim, cluster = _make_env()
    client, server = cluster.node(0), cluster.node(1)
    manager = server.services[ConnectionManager.SERVICE]
    got = []
    manager.listen(7, lambda qp, gid: got.append((qp, gid)))
    ctx = DriverContext(client, kernel=True)

    def proc():
        cq = yield from ctx.create_cq()
        qp = yield from rc_connect(ctx, cq, server.gid, port=7)
        # Let the server finish its own RTR/RTS configuration.
        yield 2 * MS
        return qp

    client_qp = sim.run_process(proc())
    assert len(got) == 1
    server_qp, gid = got[0]
    assert gid == client.gid
    assert server_qp.state is QpState.RTS
    assert server_qp.remote == (client.gid, client_qp.qpn)


def test_reg_mr_is_microsecond_scale():
    sim, cluster = _make_env()
    ctx = DriverContext(cluster.node(0), kernel=True)
    pd = ctx.alloc_pd()

    def proc():
        addr = cluster.node(0).memory.alloc(4 << 20)
        start = sim.now
        region = yield from pd.reg_mr(addr, 4 << 20)
        return sim.now - start, region

    elapsed, region = sim.run_process(proc())
    assert elapsed < 2 * US  # §5.1: 1.4 us for 4 MB
    assert region.valid
