"""Tests for lazily-paged PhysicalMemory backing store.

The byte-level semantics are covered by ``test_cluster_memory.py``
(unchanged from the seed, by design); these tests pin the properties the
lazy page table adds: untouched memory costs nothing, reads of
never-written ranges are zeros, and writes spanning page boundaries stay
byte-exact against a flat reference model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.memory import _PAGE_SIZE, PhysicalMemory


def test_fresh_memory_has_no_resident_pages():
    memory = PhysicalMemory(size=16 << 20)
    assert memory.resident_bytes == 0


def test_untouched_ranges_read_as_zeros():
    memory = PhysicalMemory(size=4 << 20)
    assert memory.read(0, 64) == bytes(64)
    assert memory.read((4 << 20) - 10, 10) == bytes(10)
    # Reads do not materialize pages.
    assert memory.resident_bytes == 0


def test_write_materializes_only_touched_pages():
    memory = PhysicalMemory(size=16 << 20)
    memory.write(0, b"x")
    assert memory.resident_bytes == _PAGE_SIZE
    memory.write(5 * _PAGE_SIZE + 7, b"y" * 10)
    assert memory.resident_bytes == 2 * _PAGE_SIZE
    # Rewriting a resident page allocates nothing new.
    memory.write(3, b"z" * 100)
    assert memory.resident_bytes == 2 * _PAGE_SIZE


def test_page_straddling_write_reads_back_exactly():
    memory = PhysicalMemory(size=4 * _PAGE_SIZE)
    payload = bytes(range(256)) * 4  # 1 KiB, non-trivial pattern
    addr = _PAGE_SIZE - 100  # straddles the first page boundary
    memory.write(addr, payload)
    assert memory.read(addr, len(payload)) == payload
    # The zero gap before the write is preserved.
    assert memory.read(addr - 50, 50) == bytes(50)


def test_multi_page_spanning_write():
    memory = PhysicalMemory(size=8 * _PAGE_SIZE)
    payload = b"\xab" * (2 * _PAGE_SIZE + 123)
    memory.write(_PAGE_SIZE - 1, payload)
    assert memory.read(_PAGE_SIZE - 1, len(payload)) == payload
    assert memory.resident_bytes == 4 * _PAGE_SIZE  # pages 0..3 touched


@settings(max_examples=100, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3 * _PAGE_SIZE),
            st.binary(min_size=0, max_size=300),
        ),
        max_size=10,
    ),
    read_addr=st.integers(min_value=0, max_value=3 * _PAGE_SIZE),
    read_len=st.integers(min_value=0, max_value=600),
)
def test_lazy_memory_matches_flat_bytearray(writes, read_addr, read_len):
    size = 3 * _PAGE_SIZE + 1024
    memory = PhysicalMemory(size=size)
    flat = bytearray(size)
    for addr, payload in writes:
        memory.write(addr, payload)
        flat[addr : addr + len(payload)] = payload
    assert memory.read(read_addr, read_len) == bytes(flat[read_addr : read_addr + read_len])
