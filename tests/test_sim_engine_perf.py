"""Order-equivalence and dispatch-counter tests for the optimized engines.

Two production engines must execute callbacks in *exactly* the order the
seed engine would have executed them (same-timestamp FIFO by schedule
sequence) -- the bit-for-bit deterministic figure reproductions depend
on it:

* ``repro.sim.engine_classic`` -- FIFO ready-deque for same-timestamp
  work plus a strictly-future heap, timer resumes encoded inline.
* ``repro.sim.engine_flat`` -- the default flat-record core: stride-2
  ``callback, arg`` slabs, timestamp-cohort buckets recycled through an
  arena free-list, and batched same-timestamp dispatch.

``tests/_seed_engine_reference.py`` is a verbatim copy of the seed
engine, kept as the ordering oracle.  The hypothesis test below generates
random programs (processes that sleep, wait on events, trigger events,
schedule bare callbacks, and spawn sub-processes), interprets each
program on every engine, and asserts the execution traces are identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as new_engine
import repro.sim.engine_classic as classic_engine
import repro.sim.engine_flat as flat_engine
import tests._seed_engine_reference as seed_engine

# Every production core that must match the seed oracle, by name so a
# failing parametrization identifies the engine directly.
ENGINES = {"classic": classic_engine, "flat": flat_engine}

NUM_EVENTS = 4

# One step of a process script.  ``spawn`` targets only strictly-higher
# script indices, so programs form a DAG and always terminate.
_step = st.one_of(
    st.tuples(st.just("sleep"), st.integers(min_value=0, max_value=4)),
    st.tuples(st.just("wait"), st.integers(min_value=0, max_value=NUM_EVENTS - 1)),
    st.tuples(st.just("trigger"), st.integers(min_value=0, max_value=NUM_EVENTS - 1)),
    st.tuples(st.just("sched"), st.integers(min_value=0, max_value=4)),
    st.tuples(st.just("spawn"), st.integers(min_value=0, max_value=10 ** 6)),
)

_scripts = st.lists(
    st.lists(_step, min_size=0, max_size=6), min_size=1, max_size=5
)

_roots = st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=4)


def _interpret(engine, scripts, roots):
    """Run the program on ``engine`` and return its execution trace.

    The trace records (sim.now, which script, which instance, which step)
    at every resume point, plus scheduled-callback firings -- a total
    order over everything the engine dispatched.
    """
    sim = engine.Simulator()
    events = [sim.event() for _ in range(NUM_EVENTS)]
    trace = []
    instances = [0]

    def make(script_idx):
        instances[0] += 1
        inst = instances[0]

        def body():
            for step_no, (op, arg) in enumerate(scripts[script_idx]):
                trace.append((sim.now, script_idx, inst, step_no, op))
                if op == "sleep":
                    yield arg
                elif op == "wait":
                    # Waiting on an already-triggered event resumes via the
                    # queue as well; exercise both states.
                    yield events[arg]
                elif op == "trigger":
                    if not events[arg].triggered:
                        events[arg].trigger((script_idx, step_no))
                elif op == "sched":
                    label = (script_idx, inst, step_no)
                    sim.schedule(arg, lambda label=label: trace.append((sim.now, "cb", label)))
                elif op == "spawn":
                    target = script_idx + 1 + arg % max(1, len(scripts) - script_idx - 1)
                    if target < len(scripts):
                        sim.process(make(target)())
            trace.append((sim.now, script_idx, inst, "end", "end"))

        return body

    for root in roots:
        sim.process(make(root % len(scripts))())
    sim.run()
    trace.append(("final-now", sim.now))
    return trace


@pytest.mark.parametrize("name", sorted(ENGINES))
@settings(max_examples=200, deadline=None)
@given(scripts=_scripts, roots=_roots)
def test_execution_order_matches_seed_engine(name, scripts, roots):
    assert _interpret(ENGINES[name], scripts, roots) == _interpret(
        seed_engine, scripts, roots
    )


@settings(max_examples=100, deadline=None)
@given(scripts=_scripts, roots=_roots)
def test_flat_and_classic_traces_are_identical(scripts, roots):
    """Belt and braces: the two production cores also match each other."""
    assert _interpret(flat_engine, scripts, roots) == _interpret(
        classic_engine, scripts, roots
    )


def test_events_dispatched_counter_is_exact():
    """N scheduled callbacks, nothing else: the counter reads exactly N."""
    sim = new_engine.Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i % 4, lambda i=i: fired.append(i))
    assert sim.events_dispatched == 0
    sim.run()
    assert len(fired) == 10
    assert sim.events_dispatched == 10


def test_events_dispatched_counter_is_deterministic():
    """The same program dispatches the same number of events every run."""

    def program():
        sim = new_engine.Simulator()

        def worker(n):
            for _ in range(n):
                yield 3
            done.trigger(None)

        def waiter():
            yield done

        done = sim.event()
        sim.process(worker(5))
        sim.process(waiter())
        sim.run()
        return sim.events_dispatched

    first = program()
    assert first > 0
    assert all(program() == first for _ in range(3))


def test_class_totals_accumulate_across_simulators():
    before_events = new_engine.Simulator.total_events_dispatched
    before_ns = new_engine.Simulator.total_sim_ns

    def proc():
        yield 7

    sim = new_engine.Simulator()
    sim.process(proc())
    sim.run()
    assert new_engine.Simulator.total_events_dispatched - before_events == sim.events_dispatched
    assert new_engine.Simulator.total_sim_ns - before_ns == sim.now == 7
