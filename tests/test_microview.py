"""The MicroView metrics-harvesting scenario: app, backends, chaos.

Covers the collector/backend/pod-directory stack (serial vs batched vs
vectored harvests over verbs/LITE/KRCORE), the seeded pod-churn driver,
and the churn chaos harness with its ``mr-read-churn-window`` invariant.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.microview import (
    Collector,
    KrcoreBackend,
    LiteBackend,
    PodDirectory,
    VerbsBackend,
)
from repro.bench.setups import lite_cluster, verbs_cluster
from repro.check import hooks as _check_hooks
from repro.check.invariants import Checker
from repro.sim import MS, US, Simulator
from tests.conftest import krcore_cluster

POD = 4096


def _krcore_deploy(mr_lease_ns=None):
    sim = Simulator()
    kwargs = {"background_rc": False}
    if mr_lease_ns is not None:
        kwargs["mr_lease_ns"] = mr_lease_ns
    cluster, meta, modules = krcore_cluster(sim, num_nodes=4, **kwargs)
    backend = KrcoreBackend(cluster.node(1))
    workers = [(cluster.node(2), modules[2]), (cluster.node(3), modules[3])]
    return sim, cluster, meta, modules, backend, workers


def _run_harvest(sim, backend, workers, pods_per_worker, cycles, strategy,
                 directory=None, gap_ns=0):
    directory = directory or PodDirectory(workers)
    collector = Collector(backend.node, backend, directory)

    def drive():
        yield from directory.deploy(pods_per_worker)
        yield from collector.setup()
        yield from collector.run_cycles(cycles, strategy, gap_ns=gap_ns)

    sim.run_process(drive())
    return collector.stats, directory


# ------------------------------------------------------------ backends


@pytest.mark.parametrize("strategy", ["serial", "batched", "vectored"])
def test_verbs_harvest_collects_every_pod(strategy):
    sim, cluster = verbs_cluster(num_nodes=3)
    backend = VerbsBackend(cluster.node(0))
    workers = [(cluster.node(1), None), (cluster.node(2), None)]
    stats, _ = _run_harvest(sim, backend, workers, 2, 3, strategy)
    assert stats.cycles == 3
    assert stats.bytes_ok == 3 * 4 * POD
    assert stats.failed_reads == 0


@pytest.mark.parametrize("strategy", ["serial", "batched", "vectored"])
def test_krcore_harvest_collects_every_pod(strategy):
    sim, cluster, meta, modules, backend, workers = _krcore_deploy()
    stats, _ = _run_harvest(sim, backend, workers, 2, 3, strategy)
    assert stats.cycles == 3
    assert stats.bytes_ok == 3 * 4 * POD
    assert stats.failed_reads == 0


def test_lite_batched_and_vectored_degrade_to_serial():
    """LITE's kernel API has no doorbell chains and no gather WRs: every
    strategy must cost exactly the serial loop (that *is* the figure)."""
    latencies = {}
    for strategy in ("serial", "batched", "vectored"):
        sim, cluster, _modules = lite_cluster(num_nodes=3)
        backend = LiteBackend(cluster.node(0))
        workers = [(cluster.node(1), None), (cluster.node(2), None)]
        stats, _ = _run_harvest(sim, backend, workers, 2, 2, strategy)
        latencies[strategy] = stats.total_ns
    assert latencies["serial"] == latencies["batched"] == latencies["vectored"]


def test_verbs_batched_and_vectored_beat_serial():
    latencies = {}
    for strategy in ("serial", "batched", "vectored"):
        sim, cluster = verbs_cluster(num_nodes=3)
        backend = VerbsBackend(cluster.node(0))
        workers = [(cluster.node(1), None), (cluster.node(2), None)]
        stats, _ = _run_harvest(sim, backend, workers, 8, 2, strategy)
        latencies[strategy] = stats.total_ns
    assert latencies["batched"] < latencies["serial"]
    assert latencies["vectored"] < latencies["serial"]


def test_collector_rejects_unknown_strategy():
    sim, cluster, meta, modules, backend, workers = _krcore_deploy()
    directory = PodDirectory(workers)
    collector = Collector(backend.node, backend, directory)
    with pytest.raises(ValueError):
        sim.run_process(collector.run_cycles(1, "telepathy"))


# ---------------------------------------------------------------- churn


def test_churn_driver_swaps_pods_deterministically():
    sim, cluster, meta, modules, backend, workers = _krcore_deploy()
    directory = PodDirectory(workers)

    def drive():
        yield from directory.deploy(2)
        before = directory.targets()
        yield from directory.churn_driver(50 * US, 500 * US, seed=3)
        return before, directory.targets()

    before, after = sim.run_process(drive())
    assert directory.stats_churns > 0
    assert {t[2] for t in before} != {t[2] for t in after}  # rkeys moved
    assert len(before) == len(after)  # pods re-registered, never lost
    assert max(pod.generation for pod in directory.pods) > 0


def test_krcore_harvest_survives_churn_storm():
    """Churn races may fail individual READs; they must never abort the
    harvest or wreck the shared physical QP."""
    sim, cluster, meta, modules, backend, workers = _krcore_deploy()
    directory = PodDirectory(workers)
    collector = Collector(backend.node, backend, directory)

    def drive():
        yield from directory.deploy(4)
        yield from collector.setup()
        sim.process(directory.churn_driver(20 * US, 2 * MS, seed=5), name="churn")
        yield from collector.run_cycles(10, "serial", gap_ns=20 * US)

    sim.run_process(drive())
    stats = collector.stats
    assert stats.cycles == 10
    assert stats.bytes_ok > 0
    assert directory.stats_churns > 0
    from repro.verbs.types import QpState

    assert all(
        vqp.qp is None or vqp.qp.state is not QpState.ERR
        for vqp in backend._vqps.values()
    )


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    interval_us=st.integers(min_value=15, max_value=120),
    strategy=st.sampled_from(["serial", "batched", "vectored"]),
)
def test_churned_harvest_upholds_churn_window_invariant(seed, interval_us, strategy):
    """Property: under any churn seed/rate/strategy, no READ executes
    against an MR retracted more than one lease ago, and the full
    invariant registry stays clean (both engines via the CI matrix)."""
    sim, cluster, meta, modules, backend, workers = _krcore_deploy(
        mr_lease_ns=200 * US
    )
    directory = PodDirectory(workers)
    collector = Collector(backend.node, backend, directory)

    def drive():
        yield from directory.deploy(3)
        yield from collector.setup()
        sim.process(
            directory.churn_driver(interval_us * US, 1500 * US, seed=seed),
            name="churn",
        )
        yield from collector.run_cycles(6, strategy, gap_ns=30 * US)

    checker = Checker()
    with _check_hooks.checking(checker):
        sim.run_process(drive())
        checker.finalize(
            modules=[m for m in modules], plane=modules[1].meta_plane, now=sim.now
        )
    window = [v for v in checker.violations if v.invariant == "mr-read-churn-window"]
    assert not window, window
    assert checker.ok, checker.violations


# ---------------------------------------------------------------- chaos


def test_microview_chaos_invariants_hold_and_run_is_deterministic():
    from repro.faults.microview import run_microview_chaos

    first = run_microview_chaos(1)
    assert first.all_invariants_hold, first.invariants
    assert first.stale_accepts > 0 and first.stale_hits > 0
    assert first.churns > 0 and first.failed_reads >= 0
    second = run_microview_chaos(1)
    assert first.digest() == second.digest()
    assert run_microview_chaos(2).digest() != first.digest()
