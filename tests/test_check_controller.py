"""Schedule-controller semantics: FIFO equivalence, replay, recording.

The whole model-checking layer rests on one contract: a
:class:`ScheduleController` with :class:`FifoStrategy` drives the engine
*event-for-event identically* to the engine's own run loop, so the
controller adds zero behavioural drift when not exploring -- the figure
CSVs, golden traces, and chaos digests all stay byte-identical.  These
tests pin that contract, plus decision recording and replay.
"""

import random

from repro import obs
from repro.check import (
    FifoStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    Schedule,
    ScheduleController,
)
from repro.faults.harness import ChaosHarness
from repro.faults.plan import FaultPlan
from repro.krcore import KrcoreLib
from repro.sim import Simulator
import repro.sim.engine_classic as classic_engine
import repro.sim.engine_flat as flat_engine
from tests.conftest import krcore_cluster

import pytest

MS = 1_000_000

#: Both production cores, driven directly (bypassing the REPRO_ENGINE
#: selector) so one test run covers the cross-engine contract.
ENGINES = {"classic": classic_engine, "flat": flat_engine}


def _smoke_plan(seed):
    return (
        FaultPlan(seed)
        .crash_node(2 * MS, "node1")
        .restart_node(4 * MS, "node1")
        .meta_outage(5 * MS, 1 * MS)
    )


def _qconnect_digest(controlled):
    """The golden-trace scenario of test_obs_golden, optionally driven
    by a FIFO controller; returns (trace digest, sim)."""
    sim = Simulator()
    if controlled:
        ScheduleController(FifoStrategy()).attach(sim)
    cluster, meta, modules = krcore_cluster(sim, num_nodes=3)
    lib = KrcoreLib(cluster.node(1))
    target = cluster.node(2).gid

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, target)

    with obs.observe() as (tracer, metrics):
        sim.run_process(proc())
    return tracer.digest(), sim


def test_fifo_controller_is_trace_identical_to_engine():
    vanilla_digest, vanilla_sim = _qconnect_digest(controlled=False)
    fifo_digest, fifo_sim = _qconnect_digest(controlled=True)
    assert fifo_digest == vanilla_digest
    # The accounting counters advance identically too.
    assert fifo_sim.events_dispatched == vanilla_sim.events_dispatched
    assert fifo_sim.timer_fires == vanilla_sim.timer_fires
    assert fifo_sim.now == vanilla_sim.now


def test_fifo_controller_chaos_digest_identical():
    vanilla = ChaosHarness(11, _smoke_plan(11), ops_per_client=20).run()
    harness = ChaosHarness(11, _smoke_plan(11), ops_per_client=20)
    controller = ScheduleController(FifoStrategy())
    controller.attach(harness.sim)
    controlled = harness.run()
    assert controlled.digest() == vanilla.digest()
    # The run had real same-timestamp choice points -- the equivalence
    # statement is non-vacuous.
    assert controller.steps > 0
    assert controller.decisions == []


def test_fifo_equivalence_on_randomized_workload():
    """Random timer/event workloads: the controlled engine reaches the
    same final state and dispatch counts as the bare engine."""

    def run(controlled, seed):
        sim = Simulator()
        if controlled:
            ScheduleController(FifoStrategy()).attach(sim)
        rng = random.Random(seed)
        log = []

        def worker(wid):
            for step in range(rng.randrange(3, 9)):
                yield rng.randrange(0, 5)  # 0-delays collide timestamps
                log.append((sim.now, wid, step))

        for wid in range(6):
            sim.process(worker(wid), name=f"w{wid}")
        sim.run()
        return log, sim.events_dispatched, sim.timer_fires, sim.now

    for seed in range(5):
        assert run(False, seed) == run(True, seed)


def test_random_strategy_perturbs_and_replays_byte_identically():
    def run(strategy):
        harness = ChaosHarness(11, _smoke_plan(11), ops_per_client=20)
        controller = ScheduleController(strategy)
        controller.attach(harness.sim)
        report = harness.run()
        return controller, report.digest()

    _, fifo_digest = run(FifoStrategy())
    controller, random_digest = run(RandomWalkStrategy(7))
    assert controller.decisions, "random walk never deviated from FIFO"
    assert random_digest != fifo_digest, (
        "reordering same-timestamp dispatch changed nothing observable"
    )
    _, replay_digest = run(ReplayStrategy(controller.decisions))
    assert replay_digest == random_digest
    _, again = run(RandomWalkStrategy(7))
    assert again == random_digest


def test_controller_records_choice_points():
    sim = Simulator()
    controller = ScheduleController(RandomWalkStrategy(1))
    controller.attach(sim)
    hits = []

    def proc(pid):
        yield 10
        hits.append(pid)

    for pid in range(4):
        sim.process(proc(pid), name=f"p{pid}")
    sim.run()
    assert controller.steps > 0
    assert controller.points
    for step, n_alts, chosen in controller.points:
        assert n_alts >= 2
        assert 0 <= chosen < n_alts
    assert all(choice != 0 for _step, choice in controller.decisions)
    assert sorted(hits) == [0, 1, 2, 3]


def test_controller_respects_until_bound():
    def run(controlled):
        sim = Simulator()
        if controlled:
            ScheduleController(FifoStrategy()).attach(sim)
        fired = []
        for when in (0, 10, 10, 20, 30):
            sim.schedule(when, lambda w=when: fired.append(w))
        sim.run(until=15)
        mid = (list(fired), sim.now)
        sim.run()
        return mid, fired, sim.now

    assert run(True) == run(False)


def _controlled_timer_run(engine_mod, strategy):
    """A timer/event workload with heavy timestamp collisions, driven
    under ``strategy`` on the given engine core; self-contained so it can
    run on either core regardless of which one REPRO_ENGINE selected."""
    sim = engine_mod.Simulator()
    controller = ScheduleController(strategy)
    controller.attach(sim)
    log = []
    done = sim.event()

    def worker(wid):
        rng = random.Random(wid * 7919 + 13)
        for step in range(rng.randrange(3, 9)):
            yield rng.randrange(0, 5)  # 0-delays collide timestamps
            log.append((sim.now, wid, step))
        if wid == 0:
            done.trigger(wid)
        else:
            yield done
            log.append((sim.now, wid, "joined"))

    for wid in range(6):
        sim.process(worker(wid), name=f"w{wid}")
    sim.run()
    state = (log, sim.now, sim.events_dispatched, sim.timer_fires)
    return controller, state


def test_decision_points_identical_across_engines():
    """The controller enumerates the *same* choice points -- step number,
    alternative count, chosen index -- whichever core it drives.  This is
    the contract that keeps the committed schedule corpus portable."""
    fifo_runs = {}
    walk_runs = {}
    for name, mod in ENGINES.items():
        fifo_runs[name] = _controlled_timer_run(mod, FifoStrategy())
        walk_runs[name] = _controlled_timer_run(mod, RandomWalkStrategy(23))

    fifo_classic, fifo_flat = fifo_runs["classic"], fifo_runs["flat"]
    assert fifo_classic[0].points == fifo_flat[0].points
    assert fifo_classic[0].steps == fifo_flat[0].steps > 0
    assert fifo_classic[1] == fifo_flat[1]

    walk_classic, walk_flat = walk_runs["classic"], walk_runs["flat"]
    assert walk_classic[0].decisions, "random walk never deviated"
    assert walk_classic[0].points == walk_flat[0].points
    assert walk_classic[0].decisions == walk_flat[0].decisions
    assert walk_classic[1] == walk_flat[1]


def test_recorded_decisions_replay_across_engines():
    """Decisions recorded on one core replay to the identical execution
    on the other (ReplayStrategy is index-based, engine-independent)."""
    recorder, recorded_state = _controlled_timer_run(
        ENGINES["classic"], RandomWalkStrategy(5)
    )
    assert recorder.decisions
    for name, mod in ENGINES.items():
        _, replayed = _controlled_timer_run(
            mod, ReplayStrategy(recorder.decisions)
        )
        assert replayed == recorded_state, name


def test_corpus_replays_identically_under_both_engines():
    """The committed schedule corpus produces byte-identical replay
    reports under the flat core's batched dispatch and the classic core."""
    import pathlib
    import subprocess
    import sys

    repo = pathlib.Path(__file__).resolve().parent.parent
    corpus = sorted(
        str(p.relative_to(repo)) for p in (repo / "tests" / "schedules").glob("*_fifo_clean.json")
    ) + ["tests/schedules/racey_pipeline_underflow.json"]
    outputs = {}
    for engine in ("classic", "flat"):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "--replay", *corpus],
            cwd=repo,
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(repo / "src"),
                "REPRO_ENGINE": engine,
                "PATH": "/usr/bin:/bin",
            },
        )
        outputs[engine] = (proc.returncode, proc.stdout)
    assert outputs["classic"] == outputs["flat"]
    assert "racey_pipeline_underflow.json: reproduced" in outputs["flat"][1]


def test_attach_rejects_second_controller():
    sim = Simulator()
    ScheduleController(FifoStrategy()).attach(sim)
    with pytest.raises(ValueError):
        ScheduleController(FifoStrategy()).attach(sim)


def test_schedule_round_trips_canonical_json(tmp_path):
    schedule = Schedule(
        "pool_churn",
        [(3, 1), (17, 2)],
        scenario_kwargs={"ops": 6},
        seed=9,
        invariant="pool-qp-accounting",
        note="test",
    )
    path = tmp_path / "s.json"
    schedule.save(path)
    loaded = Schedule.load(path)
    assert loaded.to_json() == schedule.to_json()
    assert loaded.decisions == [(3, 1), (17, 2)]
    assert path.read_text().endswith("\n")
