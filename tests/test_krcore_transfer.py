"""Tests for the QP transfer protocol (§4.6) and background RC creation."""

import pytest

from repro.cluster import timing
from repro.krcore import KrcoreLib
from repro.sim import MS, Simulator
from repro.verbs import QpType, RecvBuffer, WorkRequest
from tests.conftest import krcore_cluster, quick_rc_pair


@pytest.fixture
def env():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(sim, num_nodes=4)
    return sim, cluster, meta, modules


def _setup(sim, lib, node, nbytes=4096):
    def proc():
        addr = node.memory.alloc(nbytes)
        region = yield from lib.reg_mr(addr, nbytes)
        return addr, region

    return sim.run_process(proc())


def test_transfer_dc_to_rc_keeps_vqp_working(env):
    sim, cluster, meta, modules = env
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _setup(sim, lib_s, cluster.node(2))
    cluster.node(2).memory.write(raddr, b"before+after")
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _setup(sim, lib, cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        assert vqp.qp.qp_type is QpType.DC
        yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 6)
        # Plant an RCQP (as the background creator would) and transfer.
        rc, _ = quick_rc_pair(cluster.node(1), cluster.node(2))
        yield from vqp.transfer_to(rc)
        assert vqp.qp is rc
        yield from lib.read_sync(vqp, laddr + 16, lmr.lkey, raddr + 6, rmr.rkey, 6)
        return vqp

    vqp = sim.run_process(proc())
    assert vqp.is_rc_backed
    assert cluster.node(1).memory.read(laddr, 6) == b"before"
    assert cluster.node(1).memory.read(laddr + 16, 6) == b"+after"
    assert modules[1].stats_transfers == 1


def test_transfer_fences_old_qp_first(env):
    # The fake signaled fence means: by the time the swap happens, every
    # request previously posted on the old QP has completed (FIFO, §4.6).
    sim, cluster, meta, modules = env
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _setup(sim, lib_s, cluster.node(2))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _setup(sim, lib, cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        old_qp = vqp.qp
        # Leave 8 signaled reads in flight, unpolled.
        wrs = [
            WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=i)
            for i in range(8)
        ]
        yield from lib.post_send(vqp, wrs)
        rc, _ = quick_rc_pair(cluster.node(1), cluster.node(2))
        yield from vqp.transfer_to(rc)
        # The fence completed, which (by FIFO) implies all 8 reads
        # completed on the network; their completions are dispatchable.
        assert old_qp.outstanding == 0 or all(
            entry.ready for entry in vqp.comp_queue
        )
        for i in range(8):
            entry = yield from vqp.wait_send_completion()
            assert entry.ok and entry.wr_id == i

    sim.run_process(proc())


def test_background_rc_created_after_traffic_threshold():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(
        sim, num_nodes=3, rc_traffic_threshold=16
    )
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _setup(sim, lib_s, cluster.node(2))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _setup(sim, lib, cluster.node(1))
    target = cluster.node(2).gid

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, target)
        assert vqp.qp.qp_type is QpType.DC
        for _ in range(20):  # cross the sampling threshold
            yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)
        # Background creation runs off the critical path: give it time
        # (control path ~2.2 ms) and keep issuing.
        yield 5 * MS
        yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)
        return vqp

    vqp = sim.run_process(proc())
    assert modules[1].pool(0).has_rc(target)
    assert vqp.is_rc_backed  # transparently transferred (Fig 16)
    assert modules[1].stats_transfers >= 1


def test_background_rc_not_created_for_light_traffic():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(
        sim, num_nodes=3, rc_traffic_threshold=1000
    )
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _setup(sim, lib_s, cluster.node(2))
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _setup(sim, lib, cluster.node(1))

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        for _ in range(10):
            yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)
        yield 5 * MS
        return vqp

    vqp = sim.run_process(proc())
    assert not modules[1].pool(0).has_rc(cluster.node(2).gid)
    assert not vqp.is_rc_backed


def test_lru_eviction_moves_vqps_back_to_dc():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(
        sim, num_nodes=5, rc_traffic_threshold=8, max_rc_per_cpu=1
    )
    targets = [cluster.node(2).gid, cluster.node(3).gid]
    lib = KrcoreLib(cluster.node(1))
    laddr, lmr = _setup(sim, lib, cluster.node(1))
    remotes = []
    for index in (2, 3):
        lib_r = KrcoreLib(cluster.node(index))
        remotes.append(_setup(sim, lib_r, cluster.node(index)))

    def proc():
        vqps = []
        for i, target in enumerate(targets):
            vqp = yield from lib.create_vqp()
            yield from lib.qconnect(vqp, target)
            vqps.append(vqp)
        # Hammer target 0 until it gets an RCQP.
        raddr, rmr = remotes[0]
        for _ in range(12):
            yield from lib.read_sync(vqps[0], laddr, lmr.lkey, raddr, rmr.rkey, 8)
        yield 5 * MS
        assert vqps[0].is_rc_backed
        # Now hammer target 1: with max_rc=1, target 0's RCQP is evicted.
        raddr, rmr = remotes[1]
        for _ in range(12):
            yield from lib.read_sync(vqps[1], laddr, lmr.lkey, raddr, rmr.rkey, 8)
        yield 8 * MS
        return vqps

    vqps = sim.run_process(proc())
    pool = modules[1].pool(0)
    assert pool.has_rc(targets[1])
    assert not pool.has_rc(targets[0])
    assert not vqps[0].is_rc_backed  # moved back onto DC
    assert vqps[1].is_rc_backed
    # Both VQPs still work after all the shuffling.
    lib2 = lib

    def after():
        raddr, rmr = remotes[0]
        yield from lib2.read_sync(vqps[0], laddr, lmr.lkey, raddr, rmr.rkey, 8)
        raddr, rmr = remotes[1]
        yield from lib2.read_sync(vqps[1], laddr, lmr.lkey, raddr, rmr.rkey, 8)

    sim.run_process(after())


def test_two_sided_transfer_notifies_peer(env):
    sim, cluster, meta, modules = env
    server_node, client_node = cluster.node(2), cluster.node(1)
    lib_s = KrcoreLib(server_node)
    lib_c = KrcoreLib(client_node)
    PORT = 13
    saddr, smr = _setup(sim, lib_s, server_node)
    caddr, cmr = _setup(sim, lib_c, client_node)
    client_node.memory.write(caddr, b"hello-xfer")

    def exchange():
        server_vqp = yield from lib_s.create_vqp()
        yield from lib_s.qbind(server_vqp, PORT)
        yield from lib_s.post_recv(server_vqp, RecvBuffer(saddr, 512, smr.lkey))
        client_vqp = yield from lib_c.create_vqp()
        yield from lib_c.qconnect(client_vqp, server_node.gid, PORT)
        yield from lib_c.post_send(client_vqp, WorkRequest.send(caddr, 10, cmr.lkey))
        results = yield from lib_s.qpop_msgs_wait(server_vqp)
        reply_vqp = results[0][0]
        # Transfer the reply VQP (it has a two-sided peer): the client's
        # kernel must be notified and acknowledge before the swap.
        rc, _ = quick_rc_pair(server_node, client_node)
        transfers_before = modules[1].stats_transfers
        yield from reply_vqp.transfer_to(rc)
        return reply_vqp, transfers_before

    reply_vqp, transfers_before = sim.run_process(exchange())
    assert reply_vqp.is_rc_backed
    # The peer (client) side re-virtualized too and sent the ack.
    assert modules[1].stats_transfers == transfers_before + 1


def test_thread_migration_revirtualizes_onto_new_pool(env):
    sim, cluster, meta, modules = env
    lib_s = KrcoreLib(cluster.node(2))
    raddr, rmr = _setup(sim, lib_s, cluster.node(2))
    cluster.node(2).memory.write(raddr, b"migrated")
    lib = KrcoreLib(cluster.node(1), cpu_id=0)
    laddr, lmr = _setup(sim, lib, cluster.node(1))
    module = modules[1]

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, cluster.node(2).gid)
        old_qp = vqp.qp
        assert old_qp in module.pool(0).dc
        # The owning thread migrates from CPU 0 to CPU 5.
        yield from module.migrate_vqp(vqp, 5)
        assert vqp.cpu_id == 5
        assert vqp.qp in module.pool(5).dc
        assert vqp.qp is not old_qp
        # Still fully functional after the migration.
        yield from lib.read_sync(vqp, laddr, lmr.lkey, raddr, rmr.rkey, 8)
        return cluster.node(1).memory.read(laddr, 8)

    assert sim.run_process(proc()) == b"migrated"


def test_thread_migration_prefers_rc_on_new_cpu(env):
    sim, cluster, meta, modules = env
    lib = KrcoreLib(cluster.node(1), cpu_id=0)
    module = modules[1]
    target = cluster.node(2).gid
    rc, _ = quick_rc_pair(cluster.node(1), cluster.node(2))
    module.pool(3).insert_rc(target, rc)

    def proc():
        vqp = yield from lib.create_vqp()
        yield from lib.qconnect(vqp, target)
        assert not vqp.is_rc_backed
        yield from module.migrate_vqp(vqp, 3)
        return vqp

    vqp = sim.run_process(proc())
    assert vqp.cpu_id == 3
    assert vqp.qp is rc
