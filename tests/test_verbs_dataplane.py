"""Data-plane tests for the verbs layer: semantics, failures, calibration."""

import pytest

from repro.cluster import timing
from repro.sim import US
from repro.verbs import (
    Opcode,
    QpError,
    QpOverflowError,
    QpState,
    RecvBuffer,
    WcStatus,
    WorkRequest,
)
from tests.conftest import quick_dc_qp, quick_rc_pair, quick_ud_qp, register


def _run_one(sim, gen):
    return sim.run_process(gen)


def _await_completion(qp):
    completions = yield from qp.send_cq.wait_poll()
    return completions[0]


# ---------------------------------------------------------------------------
# One-sided READ / WRITE / atomics correctness
# ---------------------------------------------------------------------------


def test_rc_read_moves_bytes(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)
    server.memory.write(raddr, b"remote-data-here")

    def proc():
        qp.post_send(WorkRequest.read(laddr, 16, lmr.lkey, raddr, rmr.rkey, wr_id=7))
        completion = yield from _await_completion(qp)
        return completion

    completion = _run_one(sim, proc())
    assert completion.ok
    assert completion.wr_id == 7
    assert completion.opcode is Opcode.READ
    assert client.memory.read(laddr, 16) == b"remote-data-here"


def test_rc_write_moves_bytes(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)
    client.memory.write(laddr, b"written-by-client")

    def proc():
        qp.post_send(WorkRequest.write(laddr, 17, lmr.lkey, raddr, rmr.rkey))
        completion = yield from _await_completion(qp)
        return completion

    assert _run_one(sim, proc()).ok
    assert server.memory.read(raddr, 17) == b"written-by-client"


def test_rc_cas_swaps_on_match(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    server.memory.write(raddr, (41).to_bytes(8, "big"))

    def proc():
        qp.post_send(WorkRequest.cas(laddr, lmr.lkey, raddr, rmr.rkey, compare=41, swap=42))
        completion = yield from _await_completion(qp)
        return completion

    assert _run_one(sim, proc()).ok
    assert int.from_bytes(server.memory.read(raddr, 8), "big") == 42
    # The old value lands in the client's local buffer.
    assert int.from_bytes(client.memory.read(laddr, 8), "big") == 41


def test_rc_cas_no_swap_on_mismatch(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    server.memory.write(raddr, (99).to_bytes(8, "big"))

    def proc():
        qp.post_send(WorkRequest.cas(laddr, lmr.lkey, raddr, rmr.rkey, compare=41, swap=42))
        yield from _await_completion(qp)

    _run_one(sim, proc())
    assert int.from_bytes(server.memory.read(raddr, 8), "big") == 99
    assert int.from_bytes(client.memory.read(laddr, 8), "big") == 99


# ---------------------------------------------------------------------------
# Latency calibration (Fig 3a / Fig 10a)
# ---------------------------------------------------------------------------


def test_8b_read_latency_is_2_15us(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)

    def proc():
        yield timing.POST_SEND_CPU_NS
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey))
        yield from qp.send_cq.wait_poll()
        yield timing.POLL_CQ_CPU_NS
        return sim.now

    latency = _run_one(sim, proc())
    # Paper: 2.15 us for verbs 8B READ (small service-time slack allowed).
    assert abs(latency - 2_150) <= 60


def test_read_completion_order_is_fifo(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)

    def proc():
        for wr_id in range(8):
            qp.post_send(
                WorkRequest.read(laddr + 8 * wr_id, 8, lmr.lkey, raddr, rmr.rkey, wr_id=wr_id)
            )
        seen = []
        while len(seen) < 8:
            completions = yield from qp.send_cq.wait_poll(8)
            seen.extend(c.wr_id for c in completions)
        return seen

    assert _run_one(sim, proc()) == list(range(8))


def test_pipelined_reads_much_faster_than_serial(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)
    batch = 32

    def proc():
        wrs = [
            WorkRequest.read(laddr + 8 * i, 8, lmr.lkey, raddr, rmr.rkey, wr_id=i)
            for i in range(batch)
        ]
        qp.post_send(wrs)
        seen = 0
        while seen < batch:
            seen += len((yield from qp.send_cq.wait_poll(batch)))
        return sim.now

    elapsed = _run_one(sim, proc())
    serial = batch * 2_150
    assert elapsed < serial / 5  # doorbell batching pipelines the wire time


# ---------------------------------------------------------------------------
# Two-sided SEND/RECV
# ---------------------------------------------------------------------------


def test_rc_send_recv_delivers_payload_and_src(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c, qp_s = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)
    client.memory.write(laddr, b"ping")
    qp_s.post_recv(RecvBuffer(raddr, 4096, rmr.lkey, wr_id=55))

    def proc():
        qp_c.post_send(WorkRequest.send(laddr, 4, lmr.lkey, header={"tag": 9}))
        completions = yield from qp_s.recv_cq.wait_poll()
        send_done = yield from qp_c.send_cq.wait_poll()
        return completions[0], send_done[0]

    recv, send = _run_one(sim, proc())
    assert recv.ok and send.ok
    assert recv.opcode is Opcode.RECV
    assert recv.wr_id == 55
    assert recv.byte_len == 4
    assert recv.src == (client.gid, qp_c.qpn)
    assert recv.header == {"tag": 9}
    assert server.memory.read(raddr, 4) == b"ping"


def test_rc_send_without_recv_buffer_errors_sender(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c, qp_s = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)

    def proc():
        qp_c.post_send(WorkRequest.send(laddr, 8, lmr.lkey))
        completions = yield from qp_c.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.status is WcStatus.RNR_ERR
    assert qp_c.state is QpState.ERR


def test_ud_send_to_missing_buffer_is_dropped_silently(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c = quick_ud_qp(client)
    qp_s = quick_ud_qp(server)
    laddr, lmr = register(client, 64)

    def proc():
        qp_c.post_send(
            WorkRequest.send(
                laddr, 8, lmr.lkey, dct_gid=server.gid, dct_number=qp_s.qpn
            )
        )
        completions = yield from qp_c.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.ok  # unreliable: the sender never learns
    assert qp_c.state is QpState.RTS
    assert len(qp_s.recv_cq) == 0


def test_ud_send_recv_roundtrip(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c = quick_ud_qp(client)
    qp_s = quick_ud_qp(server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 4096)
    client.memory.write(laddr, b"rpc-req!")
    qp_s.post_recv(RecvBuffer(raddr, 4096, rmr.lkey))

    def proc():
        qp_c.post_send(
            WorkRequest.send(
                laddr, 8, lmr.lkey, dct_gid=server.gid, dct_number=qp_s.qpn
            )
        )
        completions = yield from qp_s.recv_cq.wait_poll()
        return completions[0]

    recv = _run_one(sim, proc())
    assert recv.ok
    assert server.memory.read(raddr, 8) == b"rpc-req!"


# ---------------------------------------------------------------------------
# DC transport
# ---------------------------------------------------------------------------


def test_dc_read_with_target_metadata(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp = quick_dc_qp(client)
    target = server.rnic.create_dct_target(dc_key=1234)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    server.memory.write(raddr, b"dc-bytes")

    def proc():
        qp.post_send(
            WorkRequest.read(
                laddr,
                8,
                lmr.lkey,
                raddr,
                rmr.rkey,
                dct_gid=server.gid,
                dct_number=target.number,
                dct_key=target.key,
            )
        )
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    assert _run_one(sim, proc()).ok
    assert client.memory.read(laddr, 8) == b"dc-bytes"


def test_dc_wrong_key_is_remote_access_error(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp = quick_dc_qp(client)
    target = server.rnic.create_dct_target(dc_key=1234)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)

    def proc():
        qp.post_send(
            WorkRequest.read(
                laddr,
                8,
                lmr.lkey,
                raddr,
                rmr.rkey,
                dct_gid=server.gid,
                dct_number=target.number,
                dct_key=999,
            )
        )
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.status is WcStatus.REM_ACCESS_ERR
    assert qp.state is QpState.ERR


def test_dc_retarget_costs_reconnect(sim, cluster):
    client = cluster.node(0)
    servers = [cluster.node(1), cluster.node(2)]
    qp = quick_dc_qp(client)
    targets = [s.rnic.create_dct_target(dc_key=1) for s in servers]
    laddr, lmr = register(client, 64)
    remote = [register(s, 64) for s in servers]

    def one_read(server_index):
        raddr, rmr = remote[server_index]
        qp.post_send(
            WorkRequest.read(
                laddr,
                8,
                lmr.lkey,
                raddr,
                rmr.rkey,
                dct_gid=servers[server_index].gid,
                dct_number=targets[server_index].number,
                dct_key=1,
            )
        )

    def same_target():
        one_read(0)
        yield from qp.send_cq.wait_poll()
        start = sim.now
        one_read(0)
        yield from qp.send_cq.wait_poll()
        return sim.now - start

    def switch_target():
        one_read(0)
        yield from qp.send_cq.wait_poll()
        start = sim.now
        one_read(1)
        yield from qp.send_cq.wait_poll()
        return sim.now - start

    same = _run_one(sim, same_target())
    sim2_cluster = cluster  # same sim reused; measure switch on a fresh QP
    switch = _run_one(sim, switch_target())
    assert qp.stats_reconnects >= 2
    assert switch - same >= timing.DCT_RECONNECT_NS - 50


def test_dc_send_goes_to_srq(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    from repro.verbs import CompletionQueue

    qp = quick_dc_qp(client)
    target = server.rnic.create_dct_target(dc_key=7)
    target.recv_cq = CompletionQueue(sim)
    raddr, rmr = register(server, 4096)
    target.post_srq(RecvBuffer(raddr, 4096, rmr.lkey, wr_id=3))
    laddr, lmr = register(client, 64)
    client.memory.write(laddr, b"to-srq")

    def proc():
        qp.post_send(
            WorkRequest.send(
                laddr,
                6,
                lmr.lkey,
                dct_gid=server.gid,
                dct_number=target.number,
                dct_key=7,
            )
        )
        completions = yield from target.recv_cq.wait_poll()
        return completions[0]

    recv = _run_one(sim, proc())
    assert recv.ok
    assert recv.wr_id == 3
    assert server.memory.read(raddr, 6) == b"to-srq"


# ---------------------------------------------------------------------------
# Failure semantics: the hazards Algorithm 2 must defend against (§3.1)
# ---------------------------------------------------------------------------


def test_malformed_opcode_wrecks_qp(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)

    def proc():
        qp.post_send(WorkRequest(Opcode.RECV, laddr=laddr, length=8, lkey=lmr.lkey))
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.status is WcStatus.BAD_OPCODE_ERR
    assert qp.state is QpState.ERR


def test_invalid_local_key_wrecks_qp(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    raddr, rmr = register(server, 64)

    def proc():
        qp.post_send(WorkRequest.read(0, 8, 424242, raddr, rmr.rkey))
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.status is WcStatus.LOC_PROT_ERR
    assert qp.state is QpState.ERR


def test_invalid_remote_key_wrecks_qp(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)

    def proc():
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, 0, 424242))
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.status is WcStatus.REM_ACCESS_ERR
    assert qp.state is QpState.ERR


def test_queued_requests_flushed_after_error(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)

    def proc():
        bad = WorkRequest.read(laddr, 8, lmr.lkey, 0, 424242, wr_id=1)
        good = [
            WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=2 + i)
            for i in range(3)
        ]
        qp.post_send([bad] + good)
        seen = []
        while len(seen) < 4:
            seen.extend((yield from qp.send_cq.wait_poll(4)))
        return seen

    completions = _run_one(sim, proc())
    assert completions[0].status is WcStatus.REM_ACCESS_ERR
    assert all(c.status is WcStatus.FLUSH_ERR for c in completions[1:])


def test_post_to_err_qp_raises(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)

    def proc():
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, 0, 424242))
        yield from qp.send_cq.wait_poll()
        with pytest.raises(QpError):
            qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, 0, 1))

    _run_one(sim, proc())


def test_overflow_wrecks_qp(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server, sq_depth=4)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)
    wrs = [
        WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=i) for i in range(5)
    ]
    with pytest.raises(QpOverflowError):
        qp.post_send(wrs)
    assert qp.state is QpState.ERR


def test_slots_reclaimed_only_by_polling(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server, sq_depth=4)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)

    def proc():
        for i in range(4):
            qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=i))
        # Give the network time to finish everything -- slots still held.
        yield 100_000
        assert qp.free_slots == 0
        with pytest.raises(QpOverflowError):
            qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey))

    _run_one(sim, proc())


def test_unsignaled_slots_covered_by_next_signaled_poll(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server, sq_depth=8)
    laddr, lmr = register(client, 4096)
    raddr, rmr = register(server, 4096)

    def proc():
        wrs = [
            WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=i, signaled=False)
            for i in range(3)
        ]
        wrs.append(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, wr_id=3))
        qp.post_send(wrs)
        yield 100_000
        assert qp.free_slots == 4  # nothing reclaimed until polled
        completions = yield from qp.send_cq.wait_poll(4)
        assert len(completions) == 1  # only the signaled one completes
        assert completions[0].covers == 4
        assert qp.free_slots == 8

    _run_one(sim, proc())


def test_reconfigure_recovers_err_qp(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    server.memory.write(raddr, b"recovery")

    def proc():
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, 0, 424242))
        yield from qp.send_cq.wait_poll()
        assert qp.state is QpState.ERR
        start = sim.now
        yield from qp.reconfigure()
        assert sim.now - start >= timing.MODIFY_RTR_NS  # recovery is expensive
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey))
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    assert _run_one(sim, proc()).ok
    assert client.memory.read(laddr, 8) == b"recovery"


def test_read_from_dead_node_fails(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    server.fail()

    def proc():
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey))
        completions = yield from qp.send_cq.wait_poll()
        return completions[0]

    completion = _run_one(sim, proc())
    assert completion.status is WcStatus.RETRY_EXC_ERR
    assert qp.state is QpState.ERR
