"""Consistency checks for the calibration constants (paper's numbers)."""

from repro.cluster import timing
from repro.sim import US


def test_verbs_control_path_matches_paper():
    # Fig 3a: 15.7 ms client-observed first connection.
    assert timing.VERBS_CONTROL_PATH_NS == 15_700 * US


def test_lite_control_path_near_2ms():
    # Fig 3a / §2.3.2: ~2 ms per connection for optimized LITE.
    assert 1_800 * US <= timing.LITE_CONTROL_PATH_NS <= 2_400 * US


def test_server_qp_setup_rate_near_712_per_sec():
    rate = 1e9 / timing.QP_SETUP_HW_SERVICE_NS
    assert 650 <= rate <= 780  # paper: 712 QP/s


def test_rc_qp_memory_at_least_159kb():
    # Footnote 3: each QP consumes at least 159 KB.
    assert timing.rc_qp_memory_bytes() >= 159 * 1024


def test_dc_qp_memory_smaller_than_rc():
    assert timing.dc_qp_memory_bytes() < timing.rc_qp_memory_bytes()


def test_krcore_pool_memory_close_to_paper():
    # Fig 15a: 48 DCQPs = ~6.3 MB.
    pool = 48 * timing.dc_qp_memory_bytes()
    assert 5.5e6 <= pool <= 7.5e6


def test_lite_5000_connections_memory_close_to_paper():
    # Fig 15a: 5,000 RCQPs = ~780 MB.
    total = 5_000 * timing.rc_qp_memory_bytes()
    assert 700e6 <= total <= 860e6


def test_read_responder_rate_matches_fig10():
    assert abs(1e9 / timing.READ_RESPONDER_SERVICE_NS - 138e6) / 138e6 < 0.01
    dc = timing.READ_RESPONDER_SERVICE_NS + timing.DC_READ_SERVICE_EXTRA_NS
    assert abs(1e9 / dc - 118e6) / 118e6 < 0.01


def test_write_responder_rate_matches_fig10():
    assert abs(1e9 / timing.WRITE_RESPONDER_SERVICE_NS - 145e6) / 145e6 < 0.01
    dc = timing.WRITE_RESPONDER_SERVICE_NS + timing.DC_WRITE_SERVICE_EXTRA_NS
    assert abs(1e9 / dc - 132e6) / 132e6 < 0.01


def test_two_sided_cpu_rates_match_fig11():
    # 24 cores: verbs 42.3 M/s, KRCORE 33.7 M/s.
    assert abs(24e9 / timing.TWO_SIDED_SERVER_CPU_NS - 42.3e6) / 42.3e6 < 0.01
    assert abs(24e9 / timing.TWO_SIDED_SERVER_CPU_KERNEL_NS - 33.7e6) / 33.7e6 < 0.01


def test_qconnect_uncached_is_5_4_us():
    # Fig 8a: syscall + one meta-server lookup (2 one-sided READs).
    total = timing.SYSCALL_NS + timing.META_KV_READS_PER_LOOKUP * timing.META_KV_READ_RTT_NS
    assert total == 5_400


def test_reg_mr_4mb_close_to_paper():
    # §5.1: registering 4 MB takes 1.4 us.
    assert abs(timing.reg_mr_ns(4 << 20) - 1_400) <= 50


def test_round_to_hw_granularity():
    assert timing.round_to_hw(1) == timing.HW_QUEUE_GRANULARITY
    assert timing.round_to_hw(timing.HW_QUEUE_GRANULARITY) == timing.HW_QUEUE_GRANULARITY
    assert timing.round_to_hw(timing.HW_QUEUE_GRANULARITY + 1) == 2 * timing.HW_QUEUE_GRANULARITY
    # Footnote 3's arithmetic: a default RCQP lands at ~160 KB (">= 159 KB").
    assert timing.round_to_hw(292 * 448) == 131_072
    assert timing.round_to_hw(257 * 64) == 32_768


def test_wire_transfer_rate_is_100gbps():
    # 12.5 GB/s => 1 MB in ~83.9 us.
    assert abs(timing.wire_transfer_ns(1 << 20) - 83_886) <= 100
