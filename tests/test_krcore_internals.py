"""Unit tests for KRCORE's internal components: the hybrid pool, the
meta server/client, ValidMR/MRStore, and wr_id token encoding."""

import pytest

from repro.cluster import Cluster, timing
from repro.krcore.meta import MetaClient, MetaServer
from repro.krcore.mrstore import MrStore, ValidMr
from repro.krcore.pool import HybridQpPool
from repro.sim import Simulator
from tests.conftest import krcore_cluster, quick_dc_qp, quick_rc_pair


# ---------------------------------------------------------------------------
# HybridQpPool
# ---------------------------------------------------------------------------


def _pool(sim, cluster, dc_count=2, max_rc=2):
    dc_qps = [quick_dc_qp(cluster.node(0)) for _ in range(dc_count)]
    return HybridQpPool(sim, cpu_id=0, dc_qps=dc_qps, max_rc=max_rc)


def test_pool_round_robins_dc(sim):
    cluster = Cluster(sim, num_nodes=1)
    pool = _pool(sim, cluster, dc_count=3)
    picks = [pool.select_dc() for _ in range(6)]
    assert picks[:3] == picks[3:]
    assert len(set(id(qp) for qp in picks[:3])) == 3


def test_pool_empty_dc_raises(sim):
    cluster = Cluster(sim, num_nodes=1)
    pool = HybridQpPool(sim, cpu_id=0, dc_qps=[], max_rc=2)
    with pytest.raises(LookupError):
        pool.select_dc()


def test_pool_rc_insert_and_lookup(sim):
    cluster = Cluster(sim, num_nodes=3)
    pool = _pool(sim, cluster)
    rc1, _ = quick_rc_pair(cluster.node(0), cluster.node(1))
    assert pool.insert_rc("node1", rc1) is None
    assert pool.has_rc("node1")
    assert pool.select_rc("node1") is rc1


def test_pool_lru_evicts_least_recent(sim):
    cluster = Cluster(sim, num_nodes=3)
    pool = _pool(sim, cluster, max_rc=2)
    rc_a, _ = quick_rc_pair(cluster.node(0), cluster.node(1))
    rc_b, _ = quick_rc_pair(cluster.node(0), cluster.node(2))
    rc_c, _ = quick_rc_pair(cluster.node(0), cluster.node(2))
    pool.insert_rc("a", rc_a)

    def advance_then_touch():
        yield 100
        pool.select_rc("a")  # refresh a's recency
        yield 100

    pool.insert_rc("b", rc_b)
    sim.run_process(advance_then_touch())
    evicted = pool.insert_rc("c", rc_c)
    assert evicted is not None
    assert evicted[0] == "b"  # b was least recently used
    assert pool.has_rc("a") and pool.has_rc("c") and not pool.has_rc("b")


def test_pool_reinsert_same_gid_does_not_evict(sim):
    cluster = Cluster(sim, num_nodes=2)
    pool = _pool(sim, cluster, max_rc=1)
    rc1, _ = quick_rc_pair(cluster.node(0), cluster.node(1))
    rc2, _ = quick_rc_pair(cluster.node(0), cluster.node(1))
    pool.insert_rc("x", rc1)
    assert pool.insert_rc("x", rc2) is None
    assert pool.select_rc("x") is rc2


def test_pool_memory_accounting(sim):
    cluster = Cluster(sim, num_nodes=2)
    pool = _pool(sim, cluster, dc_count=2)
    base = pool.memory_bytes()
    assert base == 2 * timing.dc_qp_memory_bytes()
    rc, _ = quick_rc_pair(cluster.node(0), cluster.node(1))
    pool.insert_rc("y", rc)
    assert pool.memory_bytes() == base + timing.rc_qp_memory_bytes()


# ---------------------------------------------------------------------------
# MetaServer / MetaClient
# ---------------------------------------------------------------------------


def test_meta_server_publish_and_retract(sim):
    cluster = Cluster(sim, num_nodes=2)
    meta = MetaServer(cluster.node(0))
    meta.publish_dct("nodeX", 7, 1234)
    client = MetaClient(cluster.node(1), meta)

    def proc():
        value = yield from client.lookup_dct("nodeX")
        meta.retract_node("nodeX")
        gone = yield from client.lookup_dct("nodeX")
        return value, gone

    value, gone = sim.run_process(proc())
    assert value == (7, 1234)
    assert gone is None


def test_meta_server_mr_records(sim):
    cluster = Cluster(sim, num_nodes=2)
    meta = MetaServer(cluster.node(0))
    meta.publish_mr("nodeX", 42, 0x1000, 4096)
    client = MetaClient(cluster.node(1), meta)

    def proc():
        record = yield from client.lookup_mr("nodeX", 42)
        missing = yield from client.lookup_mr("nodeX", 99)
        meta.retract_mr("nodeX", 42)
        retracted = yield from client.lookup_mr("nodeX", 42)
        return record, missing, retracted

    record, missing, retracted = sim.run_process(proc())
    assert record == (0x1000, 4096)
    assert missing is None
    assert retracted is None


def test_meta_client_serializes_concurrent_lookups(sim):
    cluster = Cluster(sim, num_nodes=2)
    meta = MetaServer(cluster.node(0))
    meta.publish_dct("a", 1, 1)
    meta.publish_dct("b", 2, 2)
    client = MetaClient(cluster.node(1), meta)
    results = []

    def lookup(gid):
        value = yield from client.lookup_dct(gid)
        results.append((gid, value, sim.now))

    sim.process(lookup("a"))
    sim.process(lookup("b"))
    sim.run()
    assert {r[0] for r in results} == {"a", "b"}
    assert all(r[1] is not None for r in results)
    # The shared scratch buffer forces serialization: completions separated
    # by at least one lookup's latency.
    times = sorted(r[2] for r in results)
    assert times[1] - times[0] >= 3_000


# ---------------------------------------------------------------------------
# ValidMr / MrStore
# ---------------------------------------------------------------------------


def test_valid_mr_records_and_checks(sim):
    cluster = Cluster(sim, num_nodes=1)
    node = cluster.node(0)
    registry = ValidMr(node)
    addr = node.memory.alloc(4096)
    region = node.memory.register(addr, 4096)
    registry.record(region)
    assert registry.check_local(region.lkey, addr, 4096)
    assert not registry.check_local(region.lkey, addr, 4097)
    assert not registry.check_local(999, addr, 8)
    assert registry.lookup_rkey(region.rkey) == (addr, 4096)
    assert registry.lookup_region_by_lkey(region.lkey) is region
    registry.forget(region)
    assert registry.lookup_rkey(region.rkey) is None


def test_mrstore_epoch_expiry():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(sim, num_nodes=3)
    store = modules[1].mr_store
    store._cache[("g", 1)] = (store._epoch(), (0, 64))
    assert store.cached("g", 1) == (0, 64)

    def advance():
        yield store.lease_ns + 1

    sim.run_process(advance())
    assert store.cached("g", 1) is None  # lease boundary crossed


def test_mrstore_invalidate_by_gid():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(sim, num_nodes=3)
    store = modules[1].mr_store
    epoch = store._epoch()
    store._cache[("g", 1)] = (epoch, (0, 64))
    store._cache[("g", 2)] = (epoch, (64, 64))
    store._cache[("h", 1)] = (epoch, (0, 64))
    store.invalidate("g")
    assert store.cached("g", 1) is None
    assert store.cached("g", 2) is None
    assert store.cached("h", 1) == (0, 64)
    store.invalidate("h", 1)
    assert store.cached("h", 1) is None


# ---------------------------------------------------------------------------
# wr_id token table
# ---------------------------------------------------------------------------


def test_token_encode_decode_roundtrip():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(sim, num_nodes=3)
    module = modules[1]
    token = module.encode_wr_id("vqp-sentinel", 5)
    decoded = module.decode_wr_id(token)
    assert decoded.vqp == "vqp-sentinel"
    assert decoded.covers == 5
    # Tokens are one-shot.
    assert module.decode_wr_id(token) is None
    assert module.decode_wr_id(987654321) is None
