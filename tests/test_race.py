"""Tests for the RACE-style disaggregated KV store over all three backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.race import (
    KrcoreBackend,
    LiteBackend,
    RaceClient,
    RaceError,
    RaceStorage,
    VerbsBackend,
)
from repro.apps.race.backends import register_storage
from repro.apps.race.hashing import fingerprint, pack_slot, unpack_slot
from repro.cluster import Cluster
from repro.lite import LiteModule
from repro.sim import MS, Simulator, US
from repro.verbs import ConnectionManager, DriverContext
from tests.conftest import krcore_cluster


# ---------------------------------------------------------------------------
# Slot packing
# ---------------------------------------------------------------------------


def test_slot_roundtrip():
    word = pack_slot(0x123, 10, 200, 0xDEADBEEF)
    assert unpack_slot(word) == (0x123, 10, 200, 0xDEADBEEF)


@settings(max_examples=50, deadline=None)
@given(
    fp=st.integers(1, 0xFFF),
    klen=st.integers(0, 255),
    vlen=st.integers(0, 4095),
    off=st.integers(0, 0xFFFFFFFF),
)
def test_slot_roundtrip_property(fp, klen, vlen, off):
    assert unpack_slot(pack_slot(fp, klen, vlen, off)) == (fp, klen, vlen, off)


def test_slot_rejects_oversize():
    with pytest.raises(RaceError):
        pack_slot(1, 300, 0, 0)
    with pytest.raises(RaceError):
        pack_slot(1, 0, 5000, 0)


def test_fingerprint_nonzero_and_stable():
    fp1, spread1 = fingerprint(b"key")
    fp2, spread2 = fingerprint(b"key")
    assert (fp1, spread1) == (fp2, spread2)
    assert fp1 != 0


# ---------------------------------------------------------------------------
# Local storage behaviour
# ---------------------------------------------------------------------------


def _local_storage():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=1)
    return sim, RaceStorage(cluster.node(0), num_buckets=256, heap_bytes=1 << 18)


def test_local_load_and_get():
    _, storage = _local_storage()
    storage.load(b"alpha", b"one")
    storage.load(b"beta", b"two")
    assert storage.get_local(b"alpha") == b"one"
    assert storage.get_local(b"beta") == b"two"
    assert storage.get_local(b"gamma") is None


def test_local_load_overwrites():
    _, storage = _local_storage()
    storage.load(b"k", b"v1")
    storage.load(b"k", b"v2")
    assert storage.get_local(b"k") == b"v2"


def test_storage_rejects_non_power_of_two():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=1)
    with pytest.raises(RaceError):
        RaceStorage(cluster.node(0), num_buckets=100)


# ---------------------------------------------------------------------------
# Remote clients: one per backend
# ---------------------------------------------------------------------------


def _verbs_env():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=3, memory_size=32 << 20)
    for node in cluster.nodes:
        ConnectionManager(node, DriverContext(node, kernel=True))
    storage = RaceStorage(cluster.node(1), num_buckets=1024, heap_bytes=1 << 19)
    backend = VerbsBackend(cluster.node(0))
    client = RaceClient(backend, [storage.catalog()])
    return sim, cluster, storage, client


def _lite_env():
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=3, memory_size=32 << 20)
    modules = [LiteModule(node) for node in cluster.nodes]
    storage = RaceStorage(cluster.node(1), num_buckets=1024, heap_bytes=1 << 19)
    backend = LiteBackend(cluster.node(0))
    client = RaceClient(backend, [storage.catalog()])
    return sim, cluster, storage, client


def _krcore_env():
    sim = Simulator()
    cluster, meta, modules = krcore_cluster(sim, num_nodes=3)
    storage = RaceStorage(cluster.node(1), num_buckets=1024, heap_bytes=1 << 19, register=False)
    region = sim.run_process(register_storage(storage, krcore_module=modules[1]))
    backend = KrcoreBackend(cluster.node(0))
    client = RaceClient(backend, [storage.catalog(rkey=region.rkey)])
    return sim, cluster, storage, client


@pytest.mark.parametrize("make_env", [_verbs_env, _lite_env, _krcore_env])
def test_put_get_roundtrip_over_backend(make_env):
    sim, cluster, storage, client = make_env()

    def proc():
        yield from client.setup()
        yield from client.put(b"hello", b"world")
        value = yield from client.get(b"hello")
        missing = yield from client.get(b"nope")
        return value, missing

    value, missing = sim.run_process(proc())
    assert value == b"world"
    assert missing is None
    assert storage.get_local(b"hello") == b"world"


@pytest.mark.parametrize("make_env", [_verbs_env, _lite_env, _krcore_env])
def test_update_over_backend(make_env):
    sim, cluster, storage, client = make_env()

    def proc():
        yield from client.setup()
        yield from client.put(b"k", b"v1")
        yield from client.put(b"k", b"v2")
        return (yield from client.get(b"k"))

    assert sim.run_process(proc()) == b"v2"


@pytest.mark.parametrize("make_env", [_verbs_env, _krcore_env])
def test_batched_get_over_backend(make_env):
    sim, cluster, storage, client = make_env()
    keys = [b"user%04d" % i for i in range(16)]
    for i, key in enumerate(keys):
        storage.load(key, b"value%04d" % i)

    def proc():
        yield from client.setup()
        results = yield from client.get_batch(keys + [b"missing-key"])
        return results

    results = sim.run_process(proc())
    for i, key in enumerate(keys):
        assert results[key] == b"value%04d" % i
    assert results[b"missing-key"] is None


def test_many_keys_roundtrip_verbs():
    sim, cluster, storage, client = _verbs_env()

    def proc():
        yield from client.setup()
        for i in range(80):
            yield from client.put(b"key%03d" % i, b"val%03d" % i)
        values = []
        for i in range(80):
            values.append((yield from client.get(b"key%03d" % i)))
        return values

    values = sim.run_process(proc())
    assert values == [b"val%03d" % i for i in range(80)]


def test_client_reads_data_loaded_locally():
    sim, cluster, storage, client = _verbs_env()
    storage.load(b"preloaded", b"bulk")

    def proc():
        yield from client.setup()
        return (yield from client.get(b"preloaded"))

    assert sim.run_process(proc()) == b"bulk"


def test_setup_cost_reflects_backend_control_path():
    # The heart of Fig 16: worker bootstrap is ~ms for verbs/LITE and ~us
    # for KRCORE (after the first worker warms LITE's kernel cache, LITE
    # gets cheap too -- but the *first* contact is what spikes care about).
    sim_v, _, _, client_v = _verbs_env()
    sim_l, _, _, client_l = _lite_env()
    sim_k, _, _, client_k = _krcore_env()

    def timed_setup(sim, client):
        def proc():
            start = sim.now
            yield from client.setup()
            return sim.now - start

        return sim.run_process(proc())

    verbs_cost = timed_setup(sim_v, client_v)
    lite_cost = timed_setup(sim_l, client_l)
    krcore_cost = timed_setup(sim_k, client_k)
    assert verbs_cost > 15 * MS  # driver init dominates
    assert 1 * MS < lite_cost < 4 * MS  # create+configure per connection
    assert krcore_cost < 50 * US  # qconnect + reg_mr
    assert krcore_cost < lite_cost / 10
    assert lite_cost < verbs_cost


def test_concurrent_writers_do_not_lose_updates():
    # Two workers inserting disjoint keys through the same storage node.
    sim, cluster, storage, client_a = _verbs_env()
    backend_b = VerbsBackend(cluster.node(2))
    client_b = RaceClient(backend_b, [storage.catalog()])

    def writer(client, prefix, count):
        yield from client.setup()
        for i in range(count):
            yield from client.put(b"%s%03d" % (prefix, i), b"v-%s%03d" % (prefix, i))

    sim.process(writer(client_a, b"aa", 30))
    sim.process(writer(client_b, b"bb", 30))
    sim.run()
    for prefix in (b"aa", b"bb"):
        for i in range(30):
            key = b"%s%03d" % (prefix, i)
            assert storage.get_local(key) == b"v-" + key


def test_contending_writers_same_key_one_wins():
    sim, cluster, storage, client_a = _verbs_env()
    backend_b = VerbsBackend(cluster.node(2))
    client_b = RaceClient(backend_b, [storage.catalog()])

    def writer(client, value):
        yield from client.setup()
        yield from client.put(b"contended", value)

    sim.process(writer(client_a, b"from-a"))
    sim.process(writer(client_b, b"from-b"))
    sim.run()
    assert storage.get_local(b"contended") in (b"from-a", b"from-b")


def test_delete_removes_key():
    sim, cluster, storage, client = _verbs_env()

    def proc():
        yield from client.setup()
        yield from client.put(b"doomed", b"value")
        present = yield from client.delete(b"doomed")
        value = yield from client.get(b"doomed")
        absent = yield from client.delete(b"doomed")
        return present, value, absent

    present, value, absent = sim.run_process(proc())
    assert present is True
    assert value is None
    assert absent is False
    assert storage.get_local(b"doomed") is None


def test_delete_does_not_break_probe_chains():
    # Keys that overflowed into later buckets stay reachable after an
    # earlier colliding key is deleted (lookups scan the full window).
    sim, cluster, storage, client = _verbs_env()
    from repro.apps.race.hashing import fingerprint

    target = fingerprint(b"seed")[1] % storage.num_buckets
    colliders = [b"seed"]
    i = 0
    while len(colliders) < 10:
        key = b"c%05d" % i
        if fingerprint(key)[1] % storage.num_buckets == target:
            colliders.append(key)
        i += 1

    def proc():
        yield from client.setup()
        for j, key in enumerate(colliders):
            yield from client.put(key, b"v%d" % j)
        # Delete the first (home-bucket) key...
        yield from client.delete(colliders[0])
        # ...and every overflowed key must still be found.
        values = []
        for key in colliders[1:]:
            values.append((yield from client.get(key)))
        return values

    values = sim.run_process(proc())
    assert values == [b"v%d" % j for j in range(1, 10)]


def test_put_after_delete_reuses_slot():
    sim, cluster, storage, client = _verbs_env()

    def proc():
        yield from client.setup()
        yield from client.put(b"cycled", b"v1")
        yield from client.delete(b"cycled")
        yield from client.put(b"cycled", b"v2")
        return (yield from client.get(b"cycled"))

    assert sim.run_process(proc()) == b"v2"
