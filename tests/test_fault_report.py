"""Regression pin for ChaosReport invariant reporting.

``all_invariants_hold`` must be a *property* whose value feeds
``summary()``.  Were it a plain method, ``summary()``'s truthiness test
would see the bound method object -- always truthy -- and report PASS on
a failing run.  These tests fail on that regression in either direction.
"""

import inspect

from repro.faults.harness import ChaosReport


def test_all_invariants_hold_is_a_property_not_a_method():
    attr = inspect.getattr_static(ChaosReport, "all_invariants_hold")
    assert isinstance(attr, property), (
        "all_invariants_hold must stay a property: as a bound method it "
        "is always truthy and summary() would report PASS on failures"
    )


def test_summary_reports_fail_when_an_invariant_is_false():
    report = ChaosReport(seed=1)
    report.invariants = {"convergence": True, "exactly_once": False}
    assert report.all_invariants_hold is False
    assert "invariants=FAIL" in report.summary()


def test_summary_reports_pass_only_when_all_hold():
    report = ChaosReport(seed=1)
    report.invariants = {"convergence": True, "exactly_once": True}
    assert report.all_invariants_hold is True
    assert "invariants=PASS" in report.summary()


def test_empty_invariants_do_not_count_as_passing():
    report = ChaosReport(seed=1)
    assert report.invariants == {}
    assert report.all_invariants_hold is False
    assert "invariants=FAIL" in report.summary()


def test_invariant_outcome_is_part_of_the_digest():
    passing = ChaosReport(seed=1)
    passing.invariants = {"convergence": True}
    failing = ChaosReport(seed=1)
    failing.invariants = {"convergence": False}
    assert passing.digest() != failing.digest()
