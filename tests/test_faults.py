"""Fault-injection primitives and the retransmission machinery under them.

Covers the `repro.faults` building blocks (LinkFault draws, FaultPlan
generation, the injector) and the hardened verbs layer they exercise:
timeout/retry retransmission, exactly-once semantics under packet
duplication and response loss, RNIC engine stalls, crash/restart.
"""

import pytest

from repro.cluster import timing
from repro.cluster.fabric import LinkFault
from repro.cluster.node import Node
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import META_OUTAGE, NODE_CRASH, NODE_RESTART
from repro.sim import MS, US
from repro.verbs import Opcode, QpState, WcStatus, WorkRequest
from tests.conftest import quick_rc_pair, register


def _await_completion(qp):
    completions = yield from qp.send_cq.wait_poll()
    return completions[0]


# ---------------------------------------------------------------------------
# LinkFault: seeded, deterministic packet draws
# ---------------------------------------------------------------------------


def test_link_fault_draws_are_seed_deterministic():
    a = LinkFault(drop_prob=0.3, dup_prob=0.2, seed=7)
    b = LinkFault(drop_prob=0.3, dup_prob=0.2, seed=7)
    seq_a = [(a.drops(), a.duplicates()) for _ in range(256)]
    seq_b = [(b.drops(), b.duplicates()) for _ in range(256)]
    assert seq_a == seq_b

    c = LinkFault(drop_prob=0.3, dup_prob=0.2, seed=8)
    seq_c = [(c.drops(), c.duplicates()) for _ in range(256)]
    assert seq_c != seq_a


def test_link_fault_probability_extremes():
    never = LinkFault(drop_prob=0.0, dup_prob=0.0, seed=3)
    assert not any(never.drops() for _ in range(64))
    assert not any(never.duplicates() for _ in range(64))
    always = LinkFault(drop_prob=1.0, dup_prob=1.0, seed=3)
    assert all(always.drops() for _ in range(64))
    assert all(always.duplicates() for _ in range(64))


def test_link_fault_rates_track_probability():
    fault = LinkFault(drop_prob=0.25, seed=11)
    dropped = sum(fault.drops() for _ in range(4096))
    assert 0.18 < dropped / 4096 < 0.32


# ---------------------------------------------------------------------------
# Fabric detach / node crash + restart
# ---------------------------------------------------------------------------


def test_detach_is_idempotent(cluster):
    node = cluster.node(1)
    fabric = cluster.fabric
    assert fabric.has_node(node.gid)
    fabric.detach(node)
    assert not fabric.has_node(node.gid)
    fabric.detach(node)  # second detach is a no-op, not an error
    assert not fabric.has_node(node.gid)


def test_detach_never_knocks_out_a_gid_reusing_replacement(sim, cluster):
    old = cluster.node(1)
    old.fail()
    replacement = Node(sim, cluster.fabric, old.gid)
    # Detaching the *old* object must not remove the replacement's route.
    cluster.fabric.detach(old)
    assert cluster.fabric.node(old.gid) is replacement


def test_fail_detaches_and_is_idempotent(cluster):
    node = cluster.node(1)
    node.fail()
    assert not node.alive
    assert not cluster.fabric.has_node(node.gid)
    node.fail()  # crashing a dead node changes nothing
    assert not node.alive


def test_restart_requires_a_failed_node(cluster):
    with pytest.raises(ValueError):
        cluster.node(1).restart()


def test_restart_gives_fresh_hardware_and_bumps_incarnation(sim, cluster):
    node = cluster.node(1)
    old_rnic, old_memory = node.rnic, node.memory
    node.services["marker"] = object()
    node.fail()
    node.restart()
    assert node.alive
    assert node.incarnation == 1
    assert node.rnic is not old_rnic
    assert node.memory is not old_memory
    assert node.services == {}
    assert cluster.fabric.node(node.gid) is node


def test_restart_wrecks_the_old_qps(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp_c, qp_s = quick_rc_pair(client, server)
    server.fail()
    server.restart()
    assert qp_s.state is QpState.ERR
    # The client-side QP is untouched: its peer death surfaces through
    # retransmission timeouts, not through magic state changes.
    assert qp_c.state is QpState.RTS


def test_rnic_stall_backs_up_command_work(sim, cluster):
    node = cluster.node(1)
    sim.process(node.rnic.stall(50 * US, engine="command"), name="stall")

    def proc():
        yield 1  # let the stall acquire the engine first
        start = sim.now
        yield from node.rnic.command(1 * US)
        return sim.now - start

    elapsed = sim.run_process(proc())
    assert elapsed >= 50 * US


# ---------------------------------------------------------------------------
# Retransmission: timeout/retry_cnt attributes on the QP
# ---------------------------------------------------------------------------


def test_transient_loss_is_absorbed_by_retransmission(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64, fill=0x5A)
    fabric = cluster.fabric
    fabric.set_link_fault(client.gid, server.gid, LinkFault(drop_prob=1.0, seed=1))
    # The outage heals before the retry budget runs out.
    sim.schedule(qp.timeout_ns // 2, lambda: fabric.clear_link_fault(client.gid, server.gid))

    def proc():
        start = sim.now
        qp.post_send(WorkRequest.read(laddr, 16, lmr.lkey, raddr, rmr.rkey))
        completion = yield from _await_completion(qp)
        return completion, sim.now - start

    completion, elapsed = sim.run_process(proc())
    assert completion.ok
    assert elapsed >= qp.timeout_ns  # paid at least one retransmission timer
    assert client.memory.read(laddr, 16) == b"\x5a" * 16
    assert qp.state is QpState.RTS


def test_retry_exhaustion_completes_retry_exc(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    cluster.fabric.set_link_fault(
        client.gid, server.gid, LinkFault(drop_prob=1.0, seed=2)
    )

    def proc():
        start = sim.now
        qp.post_send(WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey))
        completion = yield from _await_completion(qp)
        return completion, sim.now - start

    completion, elapsed = sim.run_process(proc())
    assert completion.status is WcStatus.RETRY_EXC_ERR
    # retry_cnt retransmissions, each after a full timeout.
    assert elapsed >= qp.retry_cnt * qp.timeout_ns
    assert qp.state is QpState.ERR


def test_request_duplication_applies_atomics_exactly_once(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    cluster.fabric.set_link_fault(
        client.gid, server.gid, LinkFault(dup_prob=1.0, seed=4)
    )

    def proc():
        for _ in range(5):
            qp.post_send(
                WorkRequest(
                    Opcode.FETCH_ADD,
                    laddr=laddr,
                    length=8,
                    lkey=lmr.lkey,
                    raddr=raddr,
                    rkey=rmr.rkey,
                    compare=1,
                    signaled=True,
                )
            )
            completion = yield from _await_completion(qp)
            assert completion.ok

    sim.run_process(proc())
    # Every request arrived twice; the duplicate is discarded by PSN, so
    # the counter advanced exactly once per post.
    assert int.from_bytes(server.memory.read(raddr, 8), "big") == 5


def test_response_loss_does_not_reapply_the_op(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    laddr, lmr = register(client, 64)
    raddr, rmr = register(server, 64)
    fabric = cluster.fabric
    # Drop the *response* path: the op executes, the ACK is lost, and the
    # retransmitted request must not apply the side effect again.
    fabric.set_link_fault(server.gid, client.gid, LinkFault(drop_prob=1.0, seed=5))
    sim.schedule(qp.timeout_ns // 2, lambda: fabric.clear_link_fault(server.gid, client.gid))

    def proc():
        qp.post_send(
            WorkRequest(
                Opcode.FETCH_ADD,
                laddr=laddr,
                length=8,
                lkey=lmr.lkey,
                raddr=raddr,
                rkey=rmr.rkey,
                compare=1,
                signaled=True,
            )
        )
        completion = yield from _await_completion(qp)
        return completion

    completion = sim.run_process(proc())
    assert completion.ok
    assert int.from_bytes(server.memory.read(raddr, 8), "big") == 1
    # The (replayed) response still carries the original old value.
    assert int.from_bytes(client.memory.read(laddr, 8), "big") == 0


def test_mid_flight_crash_completes_retry_exc_with_code(sim, cluster):
    client, server = cluster.node(0), cluster.node(1)
    qp, _ = quick_rc_pair(client, server)
    nbytes = 1 << 20  # ~80 us on the wire: the crash lands mid-transfer
    laddr, lmr = register(client, nbytes)
    raddr, rmr = register(server, nbytes)
    sim.schedule(10 * US, server.fail)

    def proc():
        qp.post_send(WorkRequest.read(laddr, nbytes, lmr.lkey, raddr, rmr.rkey))
        completion = yield from _await_completion(qp)
        return completion

    completion = sim.run_process(proc())
    assert completion.status is WcStatus.RETRY_EXC_ERR


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------


def test_fault_plan_random_is_reproducible():
    kwargs = dict(
        victim_gids=["node1", "node2"], horizon_ns=8 * MS, meta_gid="node0"
    )
    a = FaultPlan.random(97, **kwargs)
    b = FaultPlan.random(97, **kwargs)
    assert [repr(e) for e in a.sorted_events()] == [repr(e) for e in b.sorted_events()]
    c = FaultPlan.random(98, **kwargs)
    assert [repr(e) for e in a.sorted_events()] != [repr(e) for e in c.sorted_events()]


def test_fault_plan_random_spares_meta_and_pairs_restarts():
    for seed in range(20):
        plan = FaultPlan.random(
            seed, ["node1", "node2", "node0"], horizon_ns=8 * MS, meta_gid="node0"
        )
        crashes = {}
        restarts = {}
        for event in plan.events:
            gid = event.params.get("gid")
            assert gid != "node0" or event.kind == META_OUTAGE
            if event.kind == NODE_CRASH:
                crashes[gid] = event.at_ns
            elif event.kind == NODE_RESTART:
                restarts[gid] = event.at_ns
        for gid, at in crashes.items():
            assert gid in restarts and restarts[gid] > at


def test_injector_applies_events_in_order(sim, cluster):
    from repro.krcore import MetaServer

    meta = MetaServer(cluster.node(0))
    victim = cluster.node(1)
    plan = (
        FaultPlan(seed=6)
        .meta_outage(1 * US, 5 * US)
        .crash_node(10 * US, victim.gid)
        .restart_node(20 * US, victim.gid)
    )
    restarted = []
    injector = FaultInjector(
        type("C", (), {"sim": sim, "fabric": cluster.fabric, "nodes": cluster.nodes})(),
        meta,
        plan,
        on_restart=restarted.append,
    )
    injector.start()
    sim.run()
    assert [kind for _, kind, _ in injector.applied] == [
        "meta_outage",
        "node_crash",
        "node_restart",
    ]
    assert [t for t, _, _ in injector.applied] == [1 * US, 10 * US, 20 * US]
    assert restarted == [victim]
    assert victim.alive and victim.incarnation == 1


def test_link_fault_install_and_clear_round_trip(sim, cluster):
    fabric = cluster.fabric
    plan = FaultPlan(seed=9).degrade_link(
        1 * US, "node0", "node1", duration_ns=10 * US, drop_prob=0.5
    )
    injector = FaultInjector(
        type("C", (), {"sim": sim, "fabric": fabric, "nodes": cluster.nodes})(),
        None,
        plan,
    )
    injector.start()
    sim.run(until=5 * US)
    assert fabric.link_fault("node0", "node1") is not None
    sim.run()
    assert not fabric.link_faults  # cleared after the window


# -- partition-local fault targeting (repro.faults.scale) --------------------


def test_slow_node_builder_and_for_gids_split():
    from repro.faults.plan import NODE_SLOW

    plan = (
        FaultPlan(seed=3)
        .slow_node(1 * US, "rack0-n0", duration_ns=5 * US, factor=4.0)
        .slow_node(2 * US, "rack1-n2", duration_ns=5 * US, factor=2.0)
        .degrade_link(3 * US, "rack0-n1", "rack1-n2", duration_ns=1 * US)
    )
    assert plan.events[0].kind == NODE_SLOW
    assert plan.events[0].params["factor"] == 4.0
    sub = plan.for_gids({"rack0-n0", "rack0-n1"})
    assert sub.seed == plan.seed
    assert [e.params.get("gid", e.params.get("src_gid")) for e in sub.events] == [
        "rack0-n0", "rack0-n1",
    ]
    # Ownership split covers the full plan: no event duplicated or lost.
    other = plan.for_gids({"rack1-n2"})
    assert len(sub.events) + len(other.events) == len(plan.events)


def test_random_scale_plan_is_reproducible_and_in_bounds():
    from repro.cluster.topology import RackTopology
    from repro.faults.plan import NODE_SLOW

    topo = RackTopology(racks=3, nodes_per_rack=2)
    a = FaultPlan.random_scale(11, topo, horizon_ns=100 * US, events=5)
    b = FaultPlan.random_scale(11, topo, horizon_ns=100 * US, events=5)
    assert [repr(e) for e in a.events] == [repr(e) for e in b.events]
    assert len(a.events) == 5
    valid_gids = {topo.gid(n) for n in range(topo.num_nodes)}
    for event in a.events:
        assert event.kind == NODE_SLOW
        assert event.params["gid"] in valid_gids
        assert 0 <= event.at_ns < 100 * US


def test_faults_from_plan_lowers_gids_to_nodes():
    from repro.cluster.topology import RackTopology
    from repro.faults.scale import faults_from_plan

    topo = RackTopology(racks=2, nodes_per_rack=3)
    plan = FaultPlan(seed=1).slow_node(5 * US, "rack1-n4",
                                       duration_ns=2 * US, factor=8.0)
    assert faults_from_plan(plan, topo) == [(4, 5 * US, 2 * US, 8.0)]
    with pytest.raises(ValueError):
        faults_from_plan(
            FaultPlan(seed=1).crash_node(1 * US, "rack0-n0"), topo
        )
    with pytest.raises(ValueError):
        faults_from_plan(
            FaultPlan(seed=1).slow_node(1 * US, "rack9-n99",
                                        duration_ns=1 * US), topo
        )


def test_scale_chaos_invariants_hold_and_digest_is_stable():
    from repro.faults.scale import run_scale_chaos

    first = run_scale_chaos(7, partitions=3, racks=6, nodes_per_rack=1,
                            ops_per_tenant=8)
    second = run_scale_chaos(7, partitions=3, racks=6, nodes_per_rack=1,
                             ops_per_tenant=8)
    assert first.all_invariants_hold, first.invariants
    assert first.digest() == second.digest()
    assert first.summary() == second.summary()
    # A different seed must give a different storm.
    third = run_scale_chaos(8, partitions=3, racks=6, nodes_per_rack=1,
                            ops_per_tenant=8)
    assert third.digest() != first.digest()
