"""Tests for the workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SEC
from repro.workloads import (
    LoadSpikeTrace,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YcsbWorkload,
    ZipfGenerator,
)


def test_zipf_is_deterministic_per_seed():
    a = ZipfGenerator(1000, seed=5)
    b = ZipfGenerator(1000, seed=5)
    assert a.sample_many(50) == b.sample_many(50)


def test_zipf_different_seeds_differ():
    a = ZipfGenerator(1000, seed=5)
    b = ZipfGenerator(1000, seed=6)
    assert a.sample_many(50) != b.sample_many(50)


def test_zipf_skews_towards_low_ranks():
    gen = ZipfGenerator(1000, theta=0.99, seed=1)
    samples = gen.sample_many(5000)
    head = sum(1 for s in samples if s < 10)
    assert head / len(samples) > 0.25  # the hot head dominates


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=500), seed=st.integers(0, 1000))
def test_zipf_samples_in_range(n, seed):
    gen = ZipfGenerator(n, seed=seed)
    for _ in range(20):
        assert 0 <= gen.sample() < n


def test_zipf_rejects_empty_keyspace():
    with pytest.raises(ValueError):
        ZipfGenerator(0)


def test_ycsb_c_is_read_only():
    workload = YcsbWorkload(YCSB_C, num_keys=100)
    assert all(workload.next_op()[0] == "read" for _ in range(200))


def test_ycsb_a_is_half_updates():
    workload = YcsbWorkload(YCSB_A, num_keys=100, seed=3)
    updates = sum(1 for _ in range(2000) if workload.next_op()[0] == "update")
    assert 0.4 < updates / 2000 < 0.6


def test_ycsb_b_is_mostly_reads():
    workload = YcsbWorkload(YCSB_B, num_keys=100, seed=3)
    reads = sum(1 for _ in range(2000) if workload.next_op()[0] == "read")
    assert reads / 2000 > 0.9


def test_ycsb_rejects_bad_mix():
    with pytest.raises(ValueError):
        YcsbWorkload({"read": 0.5, "update": 0.2})


def test_ycsb_load_keys_covers_keyspace():
    workload = YcsbWorkload(num_keys=10)
    keys = workload.load_keys()
    assert len(keys) == 10
    assert len(set(keys)) == 10


def test_spike_trace_rates():
    trace = LoadSpikeTrace(base_rate=1e6, spike_rate=5e6, spike_at_ns=SEC, end_ns=3 * SEC)
    assert trace.rate_at(0) == 1e6
    assert trace.rate_at(SEC) == 5e6
    assert trace.rate_at(3 * SEC) == 1e6  # after the trace ends


def test_spike_trace_rejects_downward_spike():
    with pytest.raises(ValueError):
        LoadSpikeTrace(base_rate=10, spike_rate=5)


def test_spike_offered_integrates_across_boundary():
    trace = LoadSpikeTrace(base_rate=100, spike_rate=300, spike_at_ns=SEC, end_ns=10 * SEC)
    # Half a second at 100/s + half a second at 300/s.
    offered = trace.offered_in_window(SEC // 2, 3 * SEC // 2)
    assert offered == pytest.approx(50 + 150)


def test_spike_offered_empty_window():
    trace = LoadSpikeTrace(base_rate=100, spike_rate=300)
    assert trace.offered_in_window(5, 5) == 0.0
