"""Tests for LITE's RPC interface (the third of its high-level APIs)."""

import pytest

from repro.cluster import Cluster
from repro.lite import LiteError, LiteModule
from repro.sim import MS, Simulator, US


def _make_env(num_nodes=3):
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=num_nodes)
    modules = [LiteModule(node) for node in cluster.nodes]
    return sim, cluster, modules


def test_rpc_roundtrip():
    sim, cluster, modules = _make_env()
    modules[1].rpc_register(lambda request: b"echo:" + request)

    def proc():
        response = yield from modules[0].rpc_call(cluster.node(1).gid, b"ping")
        return response

    assert sim.run_process(proc()) == b"echo:ping"


def test_rpc_roundtrip_after_prewarm():
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    modules[1].rpc_register(lambda request: request[::-1])

    def proc():
        start = sim.now
        response = yield from modules[0].rpc_call(cluster.node(1).gid, b"abcdef")
        return response, sim.now - start

    response, elapsed = sim.run_process(proc())
    assert response == b"fedcba"
    assert elapsed < 20 * US  # data path only: no connection setup


def test_rpc_first_call_pays_connection_cost():
    sim, cluster, modules = _make_env()
    modules[1].rpc_register(lambda request: b"ok")

    def proc():
        start = sim.now
        yield from modules[0].rpc_call(cluster.node(1).gid, b"x")
        return sim.now - start

    assert sim.run_process(proc()) > 1_800 * US  # Issue #1 again


def test_rpc_without_handler_fails():
    sim, cluster, modules = _make_env()

    def proc():
        yield from modules[0].rpc_call(cluster.node(1).gid, b"x")

    with pytest.raises(LiteError):
        sim.run_process(proc())


def test_concurrent_rpcs_get_matching_replies():
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    modules[1].rpc_register(lambda request: b"r:" + request)
    results = {}

    def caller(tag):
        response = yield from modules[0].rpc_call(cluster.node(1).gid, tag)
        results[tag] = response

    for i in range(6):
        sim.process(caller(b"req%d" % i))
    sim.run()
    assert results == {b"req%d" % i: b"r:req%d" % i for i in range(6)}


def test_rpc_both_directions_on_one_connection():
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    modules[0].rpc_register(lambda request: b"from0")
    modules[1].rpc_register(lambda request: b"from1")

    def proc():
        first = yield from modules[0].rpc_call(cluster.node(1).gid, b"a")
        second = yield from modules[1].rpc_call(cluster.node(0).gid, b"b")
        return first, second

    assert sim.run_process(proc()) == (b"from1", b"from0")


def test_rpc_rejects_oversized_message():
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    modules[1].rpc_register(lambda request: b"ok")

    def proc():
        with pytest.raises(LiteError):
            yield from modules[0].rpc_call(cluster.node(1).gid, b"x" * 8192)

    sim.run_process(proc())
