"""Gray-failure injection and the two-tenant overload chaos harness."""

from repro.cluster import timing
from repro.cluster.fabric import LinkFault
from repro.faults import FaultPlan, run_gray_chaos
from repro.faults.gray import (
    GOODPUT_FLOOR,
    P99_BOUND_NS,
    GrayChaosHarness,
)
from repro.faults.plan import GRAY_LINK, META_LAG, RNIC_DEGRADE

SEED = 5


# -------------------------------------------------------------- fault model


def test_link_fault_latency_multiplier():
    fault = LinkFault(latency_mult=4.0, extra_ns=100)
    assert fault.delay_ns(1000) == 4100
    # The no-fault identity: mult 1.0 must reproduce base + extra exactly
    # (the committed figure CSVs ride on this).
    assert LinkFault(extra_ns=7).delay_ns(1000) == 1007
    assert LinkFault().delay_ns(1000) == 1000
    assert not fault.drops() and not fault.duplicates()


def test_meta_lag_window():
    from repro.cluster import Cluster
    from repro.krcore import MetaServer
    from repro.sim import Simulator

    sim = Simulator()
    cluster = Cluster(sim, num_nodes=1)
    server = MetaServer(cluster.node(0))
    assert server.current_lag_ns == 0
    server.set_lag(1000, 250)
    assert server.current_lag_ns == 250
    assert server.available  # gray: slow, never dark
    sim.schedule(2000, lambda: None)
    sim.run()
    assert server.current_lag_ns == 0  # window expired


def test_rnic_degrade_window():
    from repro.cluster import Cluster
    from repro.sim import Simulator

    sim = Simulator()
    rnic = Cluster(sim, num_nodes=1).node(0).rnic
    rnic.set_degraded(1000, 8.0)
    assert rnic._degraded_until == 1000
    assert rnic._degrade_factor == 8.0


def test_random_gray_plans_are_gray_and_seeded():
    gids = ["node0", "node1"]
    plan = FaultPlan.random_gray(3, gids, 4 * timing.MS, meta_shards=2)
    again = FaultPlan.random_gray(3, gids, 4 * timing.MS, meta_shards=2)
    assert [repr(e) for e in plan.events] == [repr(e) for e in again.events]
    assert plan.events
    # Gray means gray: never a crash, outage, or packet loss.
    assert {e.kind for e in plan.events} <= {GRAY_LINK, META_LAG, RNIC_DEGRADE}
    assert not plan.crash_targets()


# ------------------------------------------------------------------ harness


def test_gray_chaos_is_deterministic():
    first = run_gray_chaos(SEED)
    second = run_gray_chaos(SEED)
    assert first.digest() == second.digest()
    assert first.op_log == second.op_log


def test_gray_chaos_protected_rides_out_the_storm():
    report = run_gray_chaos(SEED)
    assert report.all_invariants_hold, report.invariants
    assert report.victim_goodput >= GOODPUT_FLOOR
    assert report.victim_p99_ns <= P99_BOUND_NS
    # The defenses actually engaged, not just stayed out of the way.
    assert report.storm_shed > 0
    assert report.victim_ops == 80
    assert report.checker_summary.startswith("invariants=PASS")


def test_gray_chaos_unprotected_collapses():
    """The contrast run: same seed, same storm, no protection layer --
    the well-behaved tenant's goodput and p99 both blow through the
    bounds the protected run holds."""
    protected = run_gray_chaos(SEED)
    unprotected = run_gray_chaos(SEED, protected=False)
    assert not unprotected.invariants["victim_goodput_floor"]
    assert not unprotected.invariants["victim_p99_bounded"]
    assert unprotected.victim_goodput < protected.victim_goodput
    assert unprotected.victim_p99_ns > 2 * P99_BOUND_NS
    # No protection, no shedding: the storm runs unchecked.
    assert unprotected.storm_shed == 0


def test_gray_chaos_breaker_half_open_probe_cycle():
    """Regression: under the seeded gray plan the victim's breaker on
    the sick shard opens, probes half-open after recovery_ns, finds the
    shard still lagging, and re-opens -- all without tripping the
    breaker-state-sanity invariant."""
    harness = GrayChaosHarness(SEED, protected=True)
    report = harness.run()
    assert report.invariants["checker_clean"]
    module = harness.modules[harness.victim_node.gid]
    breaker = module._meta_breakers.get(harness.sick_shard)
    assert breaker is not None
    assert breaker.stats_opens >= 2  # opened, probed, re-opened
    assert breaker.stats_probes >= 1
    assert breaker.stats_fast_fails > 0  # open state actually fast-failed
    # The healthy replica shard's breaker never tripped.
    other = module._meta_breakers.get(1 - harness.sick_shard)
    assert other is None or other.stats_opens == 0
