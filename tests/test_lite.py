"""Tests for the LITE baseline: caching, miss costs, and the overflow flaw."""

import pytest

from repro.cluster import Cluster, timing
from repro.lite import LiteError, LiteModule
from repro.sim import MS, Simulator, US
from repro.verbs import QpState
from repro.verbs.errors import QpOverflowError
from repro.verbs.wr import WorkRequest
from tests.conftest import register


def _make_env(num_nodes=3):
    sim = Simulator()
    cluster = Cluster(sim, num_nodes=num_nodes)
    modules = [LiteModule(node) for node in cluster.nodes]
    return sim, cluster, modules


def test_cache_miss_costs_about_2ms():
    sim, cluster, modules = _make_env()
    laddr, lmr = register(cluster.node(0), 64)
    raddr, rmr = register(cluster.node(1), 64)
    cluster.node(1).memory.write(raddr, b"litedata")

    def proc():
        yield from modules[0].read(
            cluster.node(1).gid, laddr, lmr.lkey, raddr, rmr.rkey, 8
        )
        return sim.now

    elapsed = sim.run_process(proc())
    # Issue #1: first contact pays Create+Configure (~2 ms) plus the read.
    assert 1_800 * US < elapsed < 2_600 * US
    assert cluster.node(0).memory.read(laddr, 8) == b"litedata"
    assert modules[0].stats_cache_misses == 1


def test_cache_hit_is_microseconds():
    sim, cluster, modules = _make_env()
    laddr, lmr = register(cluster.node(0), 64)
    raddr, rmr = register(cluster.node(1), 64)

    def proc():
        yield from modules[0].read(
            cluster.node(1).gid, laddr, lmr.lkey, raddr, rmr.rkey, 8
        )
        start = sim.now
        yield from modules[0].read(
            cluster.node(1).gid, laddr, lmr.lkey, raddr, rmr.rkey, 8
        )
        return sim.now - start

    elapsed = sim.run_process(proc())
    assert elapsed < 5 * US  # syscall + data path only
    assert modules[0].stats_cache_misses == 1


def test_concurrent_misses_share_one_handshake():
    sim, cluster, modules = _make_env()
    laddr, lmr = register(cluster.node(0), 64)
    raddr, rmr = register(cluster.node(1), 64)
    target = cluster.node(1).gid

    def one_read():
        yield from modules[0].read(target, laddr, lmr.lkey, raddr, rmr.rkey, 8)

    for _ in range(5):
        sim.process(one_read())
    sim.run()
    assert modules[0].stats_cache_misses == 1
    assert len(modules[0].pool) == 1


def test_write_roundtrip():
    sim, cluster, modules = _make_env()
    laddr, lmr = register(cluster.node(0), 64)
    raddr, rmr = register(cluster.node(1), 64)
    cluster.node(0).memory.write(laddr, b"from-lite")

    def proc():
        yield from modules[0].write(
            cluster.node(1).gid, laddr, lmr.lkey, raddr, rmr.rkey, 9
        )

    sim.run_process(proc())
    assert cluster.node(1).memory.read(raddr, 9) == b"from-lite"


def test_prewarm_gives_zero_cost_connection():
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    laddr, lmr = register(cluster.node(0), 64)
    raddr, rmr = register(cluster.node(1), 64)

    def proc():
        yield from modules[0].read(
            cluster.node(1).gid, laddr, lmr.lkey, raddr, rmr.rkey, 8
        )
        return sim.now

    assert sim.run_process(proc()) < 5 * US
    assert modules[0].stats_cache_misses == 0


def test_accepted_connection_is_cached_on_server_too():
    sim, cluster, modules = _make_env()
    laddr, lmr = register(cluster.node(0), 64)
    raddr, rmr = register(cluster.node(1), 64)

    def proc():
        yield from modules[0].read(
            cluster.node(1).gid, laddr, lmr.lkey, raddr, rmr.rkey, 8
        )
        yield 2 * MS  # let the server finish configuring its side

    sim.run_process(proc())
    assert cluster.node(0).gid in modules[1].pool


def test_async_without_precheck_overflows_shared_qp():
    # Issue #3 / Fig 15b: concurrent posters with no capacity pre-check
    # overflow the shared QP and wreck it.
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    laddr, lmr = register(cluster.node(0), 4096)
    raddr, rmr = register(cluster.node(1), 4096)
    target = cluster.node(1).gid
    window = 48
    failures = []

    def thread(index):
        wrs = [
            WorkRequest.read(laddr, 8, lmr.lkey, raddr, rmr.rkey, signaled=(i == window - 1))
            for i in range(window)
        ]
        yield index  # stagger starts by a nanosecond each
        try:
            modules[0].post_async(target, wrs)
        except QpOverflowError as exc:
            failures.append(exc)

    # 6 threads x 48 outstanding = 288 <= 292: fine.
    for i in range(6):
        sim.process(thread(i))
    sim.run()
    assert not failures
    assert modules[0].pool[target].state is not QpState.ERR

    # The 7th thread pushes it to 336 > 292: QP wrecked.
    sim2 = Simulator()
    cluster2 = Cluster(sim2, num_nodes=2)
    mods2 = [LiteModule(node) for node in cluster2.nodes]
    mods2[0].prewarm(mods2[1])
    laddr2, lmr2 = register(cluster2.node(0), 4096)
    raddr2, rmr2 = register(cluster2.node(1), 4096)
    failures2 = []

    def thread2(index):
        wrs = [
            WorkRequest.read(laddr2, 8, lmr2.lkey, raddr2, rmr2.rkey, signaled=(i == window - 1))
            for i in range(window)
        ]
        yield index
        try:
            mods2[0].post_async(cluster2.node(1).gid, wrs)
        except QpOverflowError as exc:
            failures2.append(exc)

    for i in range(7):
        sim2.process(thread2(i))
    sim2.run()
    assert failures2
    assert mods2[0].pool[cluster2.node(1).gid].state is QpState.ERR


def test_post_async_requires_cached_qp():
    sim, cluster, modules = _make_env()
    with pytest.raises(LiteError):
        modules[0].post_async(cluster.node(1).gid, [])


def test_memory_grows_linearly_with_cluster():
    # Issue #2 / Fig 15a: 5,000 cached RCQPs cost ~780 MB.
    per_qp = timing.rc_qp_memory_bytes()
    assert LiteModule.cache_bytes_for(5_000) == 5_000 * per_qp
    assert 700e6 < LiteModule.cache_bytes_for(5_000) < 860e6
    assert LiteModule.cache_bytes_for(10_000) == 2 * LiteModule.cache_bytes_for(5_000)


def test_connection_cache_bytes_tracks_pool():
    sim, cluster, modules = _make_env()
    modules[0].prewarm(modules[1])
    modules[0].prewarm(modules[2])
    assert modules[0].connection_cache_bytes() == 2 * timing.rc_qp_memory_bytes()
