"""The Wing & Gong linearizability checker and its history plumbing."""

from repro.check import FifoStrategy, check_histories, check_register
from repro.check.linearizability import (
    Op,
    extract_histories,
    record_invoke,
    record_response,
)
from repro.check.runner import run_once
from repro.obs import Tracer


def _op(proc, kind, value, invoke, response):
    return Op(proc, kind, value, invoke, response)


# ---------------------------------------------------------------- unit layer


def test_sequential_history_linearizes():
    ops = [
        _op("a", "w", 1, 0, 10),
        _op("b", "r", 1, 20, 30),
        _op("a", "w", 2, 40, 50),
        _op("b", "r", 2, 60, 70),
    ]
    assert check_register(ops)


def test_read_of_never_written_value_fails():
    ops = [_op("a", "w", 1, 0, 10), _op("b", "r", 99, 20, 30)]
    assert not check_register(ops)


def test_stale_read_after_write_completes_fails():
    # w(1) responded at 10; a read invoked at 20 cannot still see 0.
    ops = [_op("a", "w", 1, 0, 10), _op("b", "r", 0, 20, 30)]
    assert not check_register(ops)


def test_concurrent_read_may_see_old_or_new():
    # A read overlapping w(1) may return either 0 or 1.
    assert check_register([_op("a", "w", 1, 0, 100), _op("b", "r", 0, 10, 20)])
    assert check_register([_op("a", "w", 1, 0, 100), _op("b", "r", 1, 10, 20)])


def test_new_old_inversion_fails():
    # Two sequential reads during one long write: 1 then 0 is an
    # inversion (the write cannot un-happen).
    ops = [
        _op("a", "w", 1, 0, 1000),
        _op("b", "r", 1, 10, 20),
        _op("b", "r", 0, 30, 40),
    ]
    assert not check_register(ops)
    # The other order is fine.
    ops = [
        _op("a", "w", 1, 0, 1000),
        _op("b", "r", 0, 10, 20),
        _op("b", "r", 1, 30, 40),
    ]
    assert check_register(ops)


def test_incomplete_write_may_or_may_not_take_effect():
    # The pending write may linearize before the read...
    assert check_register([_op("a", "w", 5, 0, None), _op("b", "r", 5, 10, 20)])
    # ...or never.
    assert check_register([_op("a", "w", 5, 0, None), _op("b", "r", 0, 10, 20)])
    # But it cannot take effect before its invocation.
    assert not check_register([_op("b", "r", 5, 0, 5), _op("a", "w", 5, 10, None)])


def test_incomplete_write_cannot_unhappen():
    ops = [
        _op("a", "w", 5, 0, None),
        _op("b", "r", 5, 10, 20),
        _op("b", "r", 0, 30, 40),
    ]
    assert not check_register(ops)


def test_per_key_composition():
    histories = {
        "good": [_op("a", "w", 1, 0, 10), _op("b", "r", 1, 20, 30)],
        "bad": [_op("a", "w", 1, 0, 10), _op("b", "r", 0, 20, 30)],
    }
    assert check_histories(histories) == ["bad"]


def test_checker_scales_past_naive_factorial():
    # 16 sequential write/read pairs: naive DFS would be 32! orderings;
    # memoization + the horizon rule make this instant.
    ops = []
    for index in range(16):
        ops.append(_op("w", "w", index, 100 * index, 100 * index + 10))
        ops.append(_op("r", "r", index, 100 * index + 20, 100 * index + 30))
    assert check_register(ops)


# ------------------------------------------------------------ trace plumbing


def test_history_round_trip_through_tracer():
    tracer = Tracer()
    aid = record_invoke(tracer, 5, "k0", "w", "c0", value=7)
    record_response(tracer, 15, aid)
    rid = record_invoke(tracer, 20, "k0", "r", "c1")
    record_response(tracer, 30, rid, value=7)
    open_aid = record_invoke(tracer, 40, "k1", "w", "c0", value=9)
    del open_aid  # crashed client: never responds
    lost_read = record_invoke(tracer, 50, "k1", "r", "c1")
    del lost_read  # incomplete reads constrain nothing and are dropped

    histories = extract_histories(tracer)
    assert sorted(histories) == ["k0", "k1"]
    k0 = sorted(histories["k0"], key=lambda op: op.invoke)
    assert [(op.kind, op.value, op.invoke, op.response) for op in k0] == [
        ("w", 7, 5, 15),
        ("r", 7, 20, 30),
    ]
    (k1,) = histories["k1"]
    assert (k1.kind, k1.value, k1.response) == ("w", 9, None)
    assert check_histories(histories) == []


# ----------------------------------------------------------- scenario layer


def test_kvs_lin_scenario_records_and_linearizes():
    result = run_once("kvs_lin", FifoStrategy())
    assert result.ok, result.violations
    assert result.histories, "kvs_lin recorded no histories"
    total_ops = sum(len(ops) for ops in result.histories.values())
    assert total_ops == result.summary["ops"]
    assert result.nonlinearizable == []


def test_meta_histories_linearize_on_single_shard_plane():
    """With one shard (no replica to race), the recorded meta lookup
    histories must linearize; the replicated plane only promises
    convergence, which is why meta_failover reports instead of enforces."""
    result = run_once(
        "meta_failover",
        FifoStrategy(),
        scenario_kwargs={"shards": 1, "writers": 2, "rounds": 2},
    )
    assert result.ok, result.violations
    assert result.histories
    assert result.nonlinearizable == []
